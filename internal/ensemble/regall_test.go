package ensemble

import "testing"

func TestRegAllHeadsExpandsRegularizerSet(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(61)

	cfg := tinyConfig(62)
	cfg.RegAllHeads = false
	e := Train(cfg, train, nil)
	if got := len(e.regHeads()); got != cfg.P {
		t.Errorf("selected-only regularizer set has %d heads, want P=%d", got, cfg.P)
	}

	cfg2 := tinyConfig(62)
	cfg2.RegAllHeads = true
	e2 := Train(cfg2, train, nil)
	if got := len(e2.regHeads()); got != cfg2.N {
		t.Errorf("all-heads regularizer set has %d heads, want N=%d", got, cfg2.N)
	}
}

func TestSelectorContains(t *testing.T) {
	s := FixedSelector(5, []int{1, 4})
	if !s.Contains(1) || !s.Contains(4) || s.Contains(0) || s.Contains(3) {
		t.Error("Contains wrong")
	}
}
