package comm

// Serving-path observability: a ServerMetrics bundle of telemetry series the
// server updates per request, and a FeatureObserver hook that mirrors
// transmitted features into the privacy-audit engine. Both are opt-in and
// cost exactly one nil check each on the hot path when disabled — the
// contract BenchmarkServing holds the serving subsystem to (±5%), asserted
// by the allocation tests in the audit package.

import (
	"time"

	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// FeatureObserver receives the intermediate feature tensors clients
// transmit, exactly as the serving worker is about to compute on them. The
// audit engine's reservoir sampler implements it.
//
// ObserveFeatures is called synchronously on the worker goroutine once per
// input tensor (batched requests observe each input), after the request
// resolved its model but before any body pass. The tensor is owned by the
// request: an implementation that retains it must copy, and must return
// quickly — its latency is request latency.
type FeatureObserver interface {
	ObserveFeatures(model string, version int, features *tensor.Tensor)
}

// FeatureObserver32 is the optional float32 ingress of a FeatureObserver: on
// a PrecisionF32 server, observers that implement it receive the f32-decoded
// tensors the compute path actually runs on, with no widening copy on the
// hot path. The audit sampler implements it (widening only inside its
// sampled branch); an observer that does not is handed a widened copy — one
// allocation per observed tensor, the honest fallback that keeps the audit
// plane seeing production-precision features either way.
type FeatureObserver32 interface {
	ObserveFeatures32(model string, version int, features *tensor.Tensor32)
}

// WithObserver mirrors every request's transmitted features into o — the
// comm-side half of the audit subsystem's sampling loop. A nil observer
// (the default) leaves the hot path untouched.
func WithObserver(o FeatureObserver) ServerOption {
	return func(opts *serverOptions) { opts.observer = o }
}

// WithMetrics makes the server record per-request telemetry into m. A nil
// bundle (the default) leaves the hot path untouched.
func WithMetrics(m *ServerMetrics) ServerOption {
	return func(opts *serverOptions) { opts.metrics = m }
}

// WithTracer attaches a request tracer: every request's decode, queue,
// batch-window, forward, and encode legs feed the tracer's per-stage
// histograms, and tail-sampled requests (errors, sheds, the slowest seen,
// plus a probabilistic sample) retain full span timelines in the tracer's
// ring — scrapeable via the admin plane's /traces endpoints. A nil tracer
// (the default) leaves the hot path untouched; with one attached, the span
// storage recycles with the server's jobs, so tracing performs no
// steady-state allocation either.
func WithTracer(t *trace.Tracer) ServerOption {
	return func(opts *serverOptions) { opts.tracer = t }
}

// ServerMetrics is the per-request telemetry the serving path maintains.
// Construct with NewServerMetrics so the series land in a scrapeable
// registry; every field is updated lock-free.
type ServerMetrics struct {
	// Requests counts requests served, including failed ones.
	Requests *telemetry.Counter
	// Errors counts requests answered with an error response.
	Errors *telemetry.Counter
	// Images counts input rows served (batch rows × inputs per request).
	Images *telemetry.Counter
	// ServeSeconds observes per-request server-side time: resolve + replica
	// lookup (or clone) + all hosted body passes. Its Sum divided by
	// workers × uptime is the pool utilization.
	ServeSeconds *telemetry.Histogram
	// BatchInputs observes the number of feature tensors per request (1 for
	// a plain Infer, len(Inputs) for InferBatch).
	BatchInputs *telemetry.Histogram
	// Shed counts requests rejected by the continuous-batching dispatcher's
	// admission control (answered with ErrOverloaded). Shed requests also
	// count in Requests and Errors, so error rates stay honest.
	Shed *telemetry.Counter
	// CoalescedBatch observes the occupancy of every multi-connection batch
	// the dispatcher stacked (coalesced batches only; singletons don't
	// observe). A Count > 0 is the witness that cross-connection batching
	// actually happened.
	CoalescedBatch *telemetry.Histogram
}

// NewServerMetrics registers the serving metric family into r under the
// ensembler_server_* namespace and returns the bundle to pass to
// WithMetrics.
func NewServerMetrics(r *telemetry.Registry) *ServerMetrics {
	return &ServerMetrics{
		Requests: r.Counter("ensembler_server_requests_total",
			"Requests served, including failed ones.", nil),
		Errors: r.Counter("ensembler_server_errors_total",
			"Requests answered with an error response.", nil),
		Images: r.Counter("ensembler_server_images_total",
			"Input rows pushed through the hosted bodies.", nil),
		ServeSeconds: r.Histogram("ensembler_server_serve_seconds",
			"Server-side time per request: resolve, replica lookup, body passes.",
			telemetry.DefaultLatencyBuckets, nil),
		BatchInputs: r.Histogram("ensembler_server_batch_inputs",
			"Feature tensors per request (batched requests carry several).",
			telemetry.DefaultSizeBuckets, nil),
		Shed: r.Counter("ensembler_server_shed_total",
			"Requests rejected by dispatcher admission control (ErrOverloaded).", nil),
		CoalescedBatch: r.Histogram("ensembler_server_coalesced_batch",
			"Jobs per cross-connection coalesced batch (multi-job batches only).",
			telemetry.DefaultSizeBuckets, nil),
	}
}

// record tallies one finished request.
func (m *ServerMetrics) record(j *job, resp *Response, dur time.Duration) {
	m.Requests.Inc()
	if resp.Err != "" {
		m.Errors.Inc()
	}
	inputs, rows := requestSize(j)
	m.BatchInputs.Observe(float64(inputs))
	m.Images.Add(uint64(rows))
	m.ServeSeconds.Observe(dur.Seconds())
}

// requestSize reports how many input tensors and total batch rows a request
// carries — whichever precision it decoded at — tolerating malformed wire
// data (shapes are validated later, on the compute path).
func requestSize(j *job) (inputs, rows int) {
	if len(j.inputs32) > 0 {
		for _, in := range j.inputs32 {
			if in != nil && len(in.Shape) > 0 && in.Shape[0] > 0 {
				rows += in.Shape[0]
			}
		}
		return len(j.inputs32), rows
	}
	if f := j.feat32; f != nil {
		if len(f.Shape) > 0 && f.Shape[0] > 0 {
			rows = f.Shape[0]
		}
		return 1, rows
	}
	req := &j.req
	if req.Inputs != nil {
		for _, in := range req.Inputs {
			if in != nil && len(in.Shape) > 0 && in.Shape[0] > 0 {
				rows += in.Shape[0]
			}
		}
		return len(req.Inputs), rows
	}
	if f := req.Features; f != nil && len(f.Shape) > 0 && f.Shape[0] > 0 {
		rows = f.Shape[0]
	}
	return 1, rows
}

// observeRequest mirrors a request's feature tensors into the observer.
// Each tensor is fully validated first — the same structural-honesty check
// the compute path applies — because the observer may copy what it is
// handed: an attacker-controlled Shape claiming 2^62 elements over an empty
// Data slice must be rejected here, not allocated by the sampler (the
// compute path re-validates later; that redundancy is the trust boundary).
func observeRequest(o FeatureObserver, model string, version int, req *Request) {
	if req.Inputs != nil {
		for _, in := range req.Inputs {
			if validateFeatures(in) == nil {
				o.ObserveFeatures(model, version, in)
			}
		}
		return
	}
	if validateFeatures(req.Features) == nil {
		o.ObserveFeatures(model, version, req.Features)
	}
}

// observeJob mirrors a job's transmitted features into the observer at
// whichever precision they were decoded — float64 requests take the
// observeRequest path unchanged; f32-decoded requests go through the
// FeatureObserver32 side interface (or a widened copy when the observer
// predates it), so the auditor scores leakage against the precision that
// actually runs.
func observeJob(o FeatureObserver, model string, version int, j *job) {
	if !j.decodedF32() {
		observeRequest(o, model, version, &j.req)
		return
	}
	o32, _ := o.(FeatureObserver32)
	if len(j.inputs32) > 0 {
		for _, in := range j.inputs32 {
			observeTensor32(o, o32, model, version, in)
		}
		return
	}
	observeTensor32(o, o32, model, version, j.feat32)
}

// observeTensor32 applies the wire trust boundary (validate before the
// observer may copy) and routes one f32 tensor to the observer.
func observeTensor32(o FeatureObserver, o32 FeatureObserver32, model string, version int, t *tensor.Tensor32) {
	if validateFeatures32(t) != nil {
		return
	}
	if o32 != nil {
		o32.ObserveFeatures32(model, version, t)
		return
	}
	o.ObserveFeatures(model, version, tensor.Widen64(t))
}
