package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome trace-event format's traceEvents
// array — the subset of the spec that about:tracing and Perfetto both load:
// "X" complete events carry a start (ts) and duration (dur) in microseconds;
// "M" metadata events name the rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the records — typically every leg of one trace ID, as
// returned by TraceByID — as Chrome trace-event JSON loadable in
// about:tracing or https://ui.perfetto.dev. Each leg becomes one timeline
// row (tid): a named row header, an enclosing event for the leg's total, and
// one event per span. Timestamps are absolute wall-clock microseconds, so
// legs recorded by one process line up on a shared axis. Scrape-path code:
// allocates freely.
func WriteChrome(w io.Writer, recs []Record) error {
	events := make([]chromeEvent, 0, 2*len(recs)+8)
	for i := range recs {
		r := &recs[i]
		tid := i + 1
		legName := fmt.Sprintf("leg %d", tid)
		switch {
		case r.Shed:
			legName += " (shed)"
		case r.Err:
			legName += " (err)"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": legName},
		})
		args := map[string]any{"trace_id": fmt.Sprintf("%016x", r.ID)}
		if r.Err {
			args["err"] = true
		}
		if r.Shed {
			args["shed"] = true
		}
		if r.Dropped > 0 {
			args["dropped_spans"] = r.Dropped
		}
		events = append(events, chromeEvent{
			Name: "request", Ph: "X",
			Ts:  float64(r.Start) / 1e3,
			Dur: float64(r.Dur) / 1e3,
			Pid: 1, Tid: tid, Args: args,
		})
		for j := 0; j < r.N && j < MaxSpans; j++ {
			sp := r.Spans[j]
			name := sp.Stage.String()
			var sargs map[string]any
			if sp.Arg != 0 || sp.Stage == StageScatter {
				sargs = map[string]any{"arg": sp.Arg}
			}
			events = append(events, chromeEvent{
				Name: name, Ph: "X",
				Ts:  float64(r.Start+sp.Start) / 1e3,
				Dur: float64(sp.Dur) / 1e3,
				Pid: 1, Tid: tid, Args: sargs,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
