package ensemble

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"testing"

	"ensembler/internal/split"
)

// fuzzConfig is the smallest pipeline the envelope can carry — seed corpus
// generation must be cheap because every fuzz iteration budget spent here
// is not spent mutating.
func fuzzConfig() Config {
	return Config{
		Arch: split.Arch{InC: 1, H: 2, W: 2, HeadC: 1, BlockWidths: []int{1}, Classes: 2},
		N:    2, P: 1, Sigma: 0.05, Seed: 1,
		Stage1Noise: true,
	}
}

// forgeEnvelope wraps arbitrary payload bytes in a checksum-valid format
// envelope, so fuzzing starts past the checksum wall and reaches the
// savedState decode and validation paths.
func forgeEnvelope(t testing.TB, payload []byte) []byte {
	t.Helper()
	env := savedFile{Format: FormatVersion, Checksum: sha256.Sum256(payload), Payload: payload}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&env); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func gobBytes(t testing.TB, v any) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// FuzzEnsemblerLoad holds Load to its decode-boundary contract: corrupt,
// truncated, or forged pipeline files must come back as errors — never a
// panic, and never a half-restored pipeline reported as success.
func FuzzEnsemblerLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := New(fuzzConfig()).Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncation
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[len(flipped)/3] ^= 0xff // bit rot (fails the checksum)
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	// Checksum-valid envelopes over hostile payloads: garbage, an invalid
	// config, a selection outside [0,N), and a nil noise tensor.
	f.Add(forgeEnvelope(f, []byte("garbage payload")))
	f.Add(forgeEnvelope(f, gobBytes(f, &savedState{Cfg: Config{N: -1, P: 1}})))
	badSel := savedState{Cfg: fuzzConfig(), Selection: []int{7}}
	f.Add(forgeEnvelope(f, gobBytes(f, &badSel)))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Load(bytes.NewReader(data))
		if err != nil {
			if e != nil {
				t.Fatal("Load returned both a pipeline and an error")
			}
			return
		}
		// A successful load must be internally consistent enough to serve.
		if e == nil {
			t.Fatal("Load returned neither pipeline nor error")
		}
		if e.Cfg.N <= 0 || len(e.Members) != e.Cfg.N {
			t.Fatalf("loaded pipeline has %d members for N=%d", len(e.Members), e.Cfg.N)
		}
		if e.Selector == nil || len(e.Selector.Indices) != e.Cfg.P {
			t.Fatalf("loaded pipeline has malformed selector %+v", e.Selector)
		}
	})
}
