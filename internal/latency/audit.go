package latency

import "fmt"

// The audit-overhead serving term: the analytic counterpart of the
// internal/audit engine, answering the planning question its flags pose —
// how aggressively can the leakage audit sample and replay before it bites
// into serving throughput? Two costs exist, and they enter the model in
// different places:
//
//  1. Mirroring. Every SampleEvery-th request pays MirrorSeconds (one
//     feature-tensor copy) synchronously on a worker, so the mean service
//     time inflates by MirrorSeconds/SampleEvery. This is on the request
//     path: it moves both the unloaded round trip and the pool's capacity.
//  2. Replay. Every PeriodSeconds the audit replays the inversion attack
//     for ReplaySeconds on a background goroutine that competes with the
//     pool for cores — ReplaySeconds/PeriodSeconds of one worker's
//     capacity, exactly like the rotation re-clone term (Rotation), and
//     never on any request's critical path.

// Audit models the audit engine's operating point.
type Audit struct {
	// SampleEvery mirrors every Nth request (the -audit-sample flag);
	// <= 0 disables sampling and the mirroring cost.
	SampleEvery int
	// MirrorSeconds is the cost of copying one request's feature tensor
	// into the reservoir.
	MirrorSeconds float64
	// PeriodSeconds is the audit cadence (-audit-every); <= 0 disables the
	// replay cost.
	PeriodSeconds float64
	// ReplaySeconds is one attack replay's compute time (shadow/decoder
	// training plus reconstruction scoring at the audit's operating point).
	ReplaySeconds float64
}

// MirrorOverheadSeconds is the amortized per-request mirroring cost.
func (a Audit) MirrorOverheadSeconds() float64 {
	if a.SampleEvery <= 0 || a.MirrorSeconds <= 0 {
		return 0
	}
	return a.MirrorSeconds / float64(a.SampleEvery)
}

// ReplayOverheadFraction is the fraction of one worker's capacity the
// background replay consumes, clamped to [0,1].
func (a Audit) ReplayOverheadFraction() float64 {
	if a.PeriodSeconds <= 0 || a.ReplaySeconds <= 0 {
		return 0
	}
	f := a.ReplaySeconds / a.PeriodSeconds
	if f > 1 {
		return 1
	}
	return f
}

// EstimateServingAudited evaluates the closed-system serving model under
// both a rotation cadence and an audit: the per-request service time gains
// the amortized mirroring cost, the pool capacity loses the rotation
// overhead (every worker re-clones per epoch) plus the replay fraction (one
// background auditor competes with the pool). Zero-valued Rotation and
// Audit reduce exactly to EstimateServing.
func EstimateServingAudited(sc ServingScenario, rot Rotation, a Audit) ServingEstimate {
	request, service := servingTimes(&sc)
	mirror := a.MirrorOverheadSeconds()
	request += mirror
	service += mirror
	// A pool larger than the host's usable cores serves at the cores' rate:
	// the extra workers only queue (see ServingScenario.EffectiveParallel).
	workers := sc.effectiveWorkers()
	capacity := float64(workers)*(1-rot.OverheadFraction()) - a.ReplayOverheadFraction()
	if capacity < 0 {
		capacity = 0
	}
	clientBound := float64(sc.Clients) / request
	x := clientBound
	if service > 0 {
		if serverBound := capacity / service; serverBound < x {
			x = serverBound
		}
	}
	name := servingName(sc, rot)
	if a.SampleEvery > 0 {
		name += fmt.Sprintf(" audit=1/%d", a.SampleEvery)
	} else if a.ReplayOverheadFraction() > 0 {
		name += " audit=bg"
	}
	return ServingEstimate{
		Name:           name,
		RequestSeconds: request,
		ThroughputRPS:  x,
		ThroughputIPS:  x * float64(sc.Batch),
		Utilization:    x * service / float64(workers),
	}
}

// AuditSweep evaluates a serving scenario across sampling rates — the
// planning table behind the -audit-sample flag: how cheap must mirroring be
// for 1/N sampling to stay invisible in throughput?
func AuditSweep(base Scenario, workers, clients, batch int, a Audit, sampleEveries []int) []ServingEstimate {
	out := make([]ServingEstimate, len(sampleEveries))
	for i, n := range sampleEveries {
		cfg := a
		cfg.SampleEvery = n
		out[i] = EstimateServingAudited(
			ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: batch},
			Rotation{}, cfg)
	}
	return out
}
