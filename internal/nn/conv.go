package nn

import (
	"fmt"
	"math"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors with square-independent
// kernel size, stride and symmetric zero padding. Weights are stored
// flattened as [OutC, InC*KH*KW] to feed the im2col matrix kernels directly.
type Conv2D struct {
	InC, OutC     int
	KH, KW        int
	Stride, Pad   int
	W             *Param
	B             *Param // nil when bias is disabled (e.g. before batch norm)
	cols          []*tensor.Tensor
	inH, inW, inN int
}

// NewConv2D creates a convolution with He-normal initialized weights drawn
// from r. Bias is included iff withBias.
func NewConv2D(name string, inC, outC, k, stride, pad int, withBias bool, r *rng.RNG) *Conv2D {
	fanIn := inC * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	w := tensor.New(outC, fanIn)
	r.FillNormal(w.Data, 0, std)
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		W: NewParam(name+".w", w),
	}
	if withBias {
		c.B = NewParam(name+".b", tensor.New(outC))
	}
	return c
}

// Forward computes the convolution, caching im2col matrices for Backward.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D %s expects [N,%d,H,W], got %v", c.W.Name, c.InC, x.Shape))
	}
	c.inN, c.inH, c.inW = x.Shape[0], x.Shape[2], x.Shape[3]
	var bias *tensor.Tensor
	if c.B != nil {
		bias = c.B.Value
	}
	y, cols := tensor.ConvForward(x, c.W.Value, bias, c.KH, c.KW, c.Stride, c.Pad)
	c.cols = cols
	return y
}

// Backward consumes dL/dy and returns dL/dx, accumulating weight and bias
// gradients.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D Backward before Forward")
	}
	gx, gw, gb := tensor.ConvBackward(grad, c.W.Value, c.cols, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad)
	c.W.Grad.AddInPlace(gw)
	if c.B != nil {
		c.B.Grad.AddInPlace(gb)
	}
	return gx
}

// Params returns the convolution's trainable parameters.
func (c *Conv2D) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// Linear is a fully connected layer y = xW^T + b over [N, In] inputs,
// with W stored as [Out, In].
type Linear struct {
	In, Out int
	W, B    *Param
	x       *tensor.Tensor
}

// NewLinear creates a fully connected layer with He-normal weights.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	w := tensor.New(out, in)
	r.FillNormal(w.Data, 0, math.Sqrt(2.0/float64(in)))
	return &Linear{In: in, Out: out, W: NewParam(name+".w", w), B: NewParam(name+".b", tensor.New(out))}
}

// Forward computes xW^T + b, caching x for Backward.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear %s expects [N,%d], got %v", l.W.Name, l.In, x.Shape))
	}
	l.x = x
	y := tensor.MatMulTransB(x, l.W.Value) // [N, Out]
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Value.Data[j]
		}
	}
	return y
}

// Backward returns dL/dx and accumulates dL/dW, dL/db.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear Backward before Forward")
	}
	// dW = grad^T × x : [Out, In]
	l.W.Grad.AddInPlace(tensor.MatMulTransA(grad, l.x))
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.B.Grad.Data[j] += row[j]
		}
	}
	// dx = grad × W : [N, In]
	return tensor.MatMul(grad, l.W.Value)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
