package tensor

// Arena32 is the float32 twin of Arena: the bump allocator backing the f32
// inference hot path. The ownership rules are identical — Reset invalidates
// every tensor handed out, one goroutine owns the arena, NewTensor data is
// NOT zeroed. See Arena's doc comment; the only difference is the element
// type (half the bytes per value, which is half the point of the backend).
type Arena32 struct {
	data []float32
	off  int
	need int

	ints  []int
	ioff  int
	ineed int

	hdrs  []Tensor32
	hoff  int
	hneed int
}

// NewArena32 returns an empty arena; the first cycle sizes it.
func NewArena32() *Arena32 { return &Arena32{} }

// Alloc returns an n-element float32 slice from the arena, falling back to a
// fresh heap allocation when capacity is exhausted (Reset then grows the
// buffer so the next cycle stays in-arena). Contents are unspecified.
func (a *Arena32) Alloc(n int) []float32 {
	a.need += n
	if a.off+n > len(a.data) {
		return make([]float32, n)
	}
	s := a.data[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// allocInts is Alloc for the int storage backing tensor shapes.
func (a *Arena32) allocInts(n int) []int {
	a.ineed += n
	if a.ioff+n > len(a.ints) {
		return make([]int, n)
	}
	s := a.ints[a.ioff : a.ioff+n : a.ioff+n]
	a.ioff += n
	return s
}

// header returns a reusable Tensor32 header.
func (a *Arena32) header() *Tensor32 {
	a.hneed++
	if a.hoff >= len(a.hdrs) {
		return &Tensor32{}
	}
	t := &a.hdrs[a.hoff]
	a.hoff++
	return t
}

// NewTensor returns a float32 tensor of the given shape backed by the arena.
// Data is NOT zeroed; see the Arena ownership rules.
func (a *Arena32) NewTensor(shape ...int) *Tensor32 {
	t := a.header()
	t.Shape = a.allocInts(len(shape))
	copy(t.Shape, shape)
	t.Data = a.Alloc(prodDims(shape))
	return t
}

// NewTensorZeroed returns a zero-filled arena tensor.
func (a *Arena32) NewTensorZeroed(shape ...int) *Tensor32 {
	t := a.NewTensor(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// View returns a tensor sharing t's backing array under a new shape of equal
// size, with the header and shape storage coming from the arena — the
// allocation-free counterpart of Reshape for the f32 inference path.
func (a *Arena32) View(t *Tensor32, shape ...int) *Tensor32 {
	if prodDims(shape) != len(t.Data) {
		panic("tensor: Arena32.View size mismatch")
	}
	v := a.header()
	v.Shape = a.allocInts(len(shape))
	copy(v.Shape, shape)
	v.Data = t.Data
	return v
}

// Clone copies t into the arena.
func (a *Arena32) Clone(t *Tensor32) *Tensor32 {
	out := a.NewTensor(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reset reclaims every allocation at once, invalidating all tensors handed
// out since the previous Reset, and grows the backing buffers to the
// finished cycle's demand so the next identical cycle allocates nothing.
func (a *Arena32) Reset() {
	if a.need > len(a.data) {
		a.data = make([]float32, a.need)
	}
	if a.ineed > len(a.ints) {
		a.ints = make([]int, a.ineed)
	}
	if a.hneed > len(a.hdrs) {
		a.hdrs = make([]Tensor32, a.hneed)
	}
	a.off, a.need = 0, 0
	a.ioff, a.ineed = 0, 0
	a.hoff, a.hneed = 0, 0
}

// Footprint reports the arena's current backing capacity in bytes — the f32
// scratch costs half the float64 arena's data bytes at the same shape load.
func (a *Arena32) Footprint() int {
	return 4*len(a.data) + 8*len(a.ints) + len(a.hdrs)*48
}
