// Command ensembler-serve hosts the N server bodies of a trained pipeline
// over TCP — the cloud half of the collaborative-inference deployment. The
// secret selector and the client tail stay with whoever holds the model
// file; the server only ever sees intermediate features and returns all N
// feature vectors.
//
// Requests from concurrent connections are served by a bounded worker pool;
// each worker owns a private replica of the bodies, and within one request
// the N body passes run in parallel. SIGINT/SIGTERM triggers a graceful
// shutdown: in-flight requests finish, their responses flush, and Serve
// returns.
//
//	ensembler-serve -model ensembler.gob -addr :7946 -workers 4 -max-batch 64
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
)

func main() {
	modelPath := flag.String("model", "ensembler.gob", "trained pipeline from ensembler-train")
	addr := flag.String("addr", "127.0.0.1:7946", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "compute worker pool size (each worker holds a body replica)")
	maxBatch := flag.Int("max-batch", comm.DefaultMaxBatch, "max inputs per batched request")
	flag.Parse()
	if *maxBatch <= 0 {
		*maxBatch = comm.DefaultMaxBatch // mirror the server's clamping in the banner
	}

	e, err := ensemble.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading model: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listening: %v\n", err)
		os.Exit(1)
	}

	srv := comm.NewServer(e.Bodies(),
		comm.WithWorkers(*workers),
		comm.WithMaxBatch(*maxBatch),
		comm.WithReplicas(e.CloneBodies),
	)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("serving %d ensemble bodies on %s (%d workers, max batch %d; selector stays client-side)\n",
		e.Cfg.N, ln.Addr(), srv.Workers(), *maxBatch)
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("shutdown complete")
}
