package main

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

func TestPrivacyFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-privacy-budget", "-1"}, "-privacy-budget"},
		{[]string{"-privacy-budget", "1", "-privacy-alpha", "1"}, "-privacy-alpha"},
		{[]string{"-privacy-policy", "frobnicate"}, "-privacy-policy"},
	}
	for _, c := range cases {
		err := run(ctx, c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

// TestServePrivacyBudgetSurface wires a budgeted server end to end through
// the operator surface: the serving banner announces the ledger, a served
// request lands in the client's account, /budget reports the account and the
// accounting configuration, /metrics exports the ensembler_privacy_ series,
// and /healthz flips budget_enabled.
func TestServePrivacyBudgetSurface(t *testing.T) {
	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-privacy-budget", "2", "-privacy-alpha", "3",
	})
	addr := scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	banner := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.Contains(sc.Text(), "privacy budget") {
				select {
				case banner <- sc.Text():
				default:
				}
			}
		}
	}()

	client, err := comm.Dial(addr, comm.WithClientID("did:ex:probe"))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail
	arch := commtest.TinyArch()
	x := tensor.New(1, arch.InC, arch.H, arch.W)
	rng.New(3).FillNormal(x.Data, 0, 1)
	want := pipeline.Predict(x)
	logits, _, err := client.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	// A far-from-drained account is served bit-exact: no escalation noise.
	if !logits.AllClose(want, 1e-9) {
		t.Error("budgeted serving perturbed a healthy client's response")
	}

	select {
	case line := <-banner:
		if !strings.Contains(line, "ε=2 at α=3") || !strings.Contains(line, "enforced") {
			t.Errorf("privacy banner %q missing budget/order/mode", line)
		}
	case <-time.After(5 * time.Second):
		t.Error("no privacy-budget banner line")
	}

	code, body := adminGet(t, admin+"/budget")
	if code != 200 {
		t.Fatalf("/budget = %d %q", code, body)
	}
	var budget struct {
		Enabled bool `json:"enabled"`
		Observe bool `json:"observe"`
		Stats   struct {
			Clients   int     `json:"clients"`
			Rows      uint64  `json:"rows_charged"`
			BudgetEps float64 `json:"budget_eps"`
			Alpha     int     `json:"alpha"`
		} `json:"stats"`
		Clients []struct {
			Client string `json:"client"`
			Rows   uint64 `json:"rows"`
		} `json:"clients"`
	}
	if err := json.Unmarshal([]byte(body), &budget); err != nil {
		t.Fatalf("/budget is not JSON: %v\n%s", err, body)
	}
	if !budget.Enabled || budget.Observe {
		t.Errorf("/budget enabled=%v observe=%v, want enforcing ledger", budget.Enabled, budget.Observe)
	}
	if budget.Stats.BudgetEps != 2 || budget.Stats.Alpha != 3 {
		t.Errorf("/budget stats = %+v, want ε=2 α=3", budget.Stats)
	}
	if budget.Stats.Clients != 1 || budget.Stats.Rows != 1 {
		t.Errorf("/budget stats = %+v, want 1 client and 1 charged row", budget.Stats)
	}
	if len(budget.Clients) != 1 || budget.Clients[0].Client != "did:ex:probe" || budget.Clients[0].Rows != 1 {
		t.Errorf("/budget clients = %+v, want the declared-ID account with 1 row", budget.Clients)
	}

	if code, body := adminGet(t, admin+"/metrics"); code != 200 ||
		!strings.Contains(body, "ensembler_privacy_budget_eps 2") ||
		!strings.Contains(body, "ensembler_privacy_clients 1") ||
		!strings.Contains(body, "ensembler_privacy_rows_charged_total 1") ||
		!strings.Contains(body, "ensembler_privacy_observe 0") ||
		!strings.Contains(body, "ensembler_privacy_refusals_total 0") {
		t.Errorf("/metrics missing privacy series: %d %q", code, body)
	}
	if code, body := adminGet(t, admin+"/healthz"); code != 200 ||
		!strings.Contains(body, `"budget_enabled": true`) {
		t.Errorf("/healthz = %d %q, want budget_enabled true", code, body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// Without -privacy-budget the endpoint must report a disabled ledger.
func TestBudgetEndpointDisabledByDefault(t *testing.T) {
	dir, _ := publishTiny(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
	})
	scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()
	if code, body := adminGet(t, admin+"/budget"); code != 200 || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/budget without a ledger = %d %q", code, body)
	}
	if code, body := adminGet(t, admin+"/healthz"); code != 200 ||
		!strings.Contains(body, `"budget_enabled": false`) {
		t.Errorf("/healthz = %d %q, want budget_enabled false", code, body)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}
