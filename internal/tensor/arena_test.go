package tensor

import (
	"testing"
)

func randTensor(seedMul float64, shape ...int) *Tensor {
	t := New(shape...)
	// Deterministic pseudo-values without pulling in the rng package (import
	// cycle: rng is above tensor? it isn't, but the kernels need no
	// distributional realism).
	x := 0.5
	for i := range t.Data {
		x = x*3.9*(1-x) + 1e-9 // logistic map, chaotic and deterministic
		t.Data[i] = (x - 0.5) * seedMul
	}
	return t
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 200, 130}, {33, 65, 129}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(2, m, k)
		b := randTensor(3, k, n)
		want := MatMul(a, b)
		dst := New(m, n)
		// Poison dst: Into kernels must fully overwrite.
		for i := range dst.Data {
			dst.Data[i] = 1e30
		}
		got := MatMulInto(dst, a, b)
		if !got.AllClose(want, 0) {
			t.Errorf("MatMulInto diverges from MatMul at %v", dims)
		}
	}
}

func TestMatMulTransIntoMatchesAllocating(t *testing.T) {
	a := randTensor(1.5, 7, 13)
	b := randTensor(2.5, 9, 13) // for TransB: [n,k]
	want := MatMulTransB(a, b)
	got := MatMulTransBInto(New(7, 9), a, b)
	if !got.AllClose(want, 0) {
		t.Error("MatMulTransBInto diverges")
	}

	at := randTensor(1.1, 13, 7) // for TransA: [k,m]
	bt := randTensor(0.9, 13, 9)
	wantA := MatMulTransA(at, bt)
	gotA := MatMulTransAInto(New(7, 9), at, bt)
	if !gotA.AllClose(wantA, 0) {
		t.Error("MatMulTransAInto diverges")
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	x := randTensor(1, 3, 9, 7)
	for _, cfg := range [][4]int{{3, 3, 1, 1}, {2, 2, 2, 0}, {5, 3, 1, 2}} {
		kh, kw, stride, pad := cfg[0], cfg[1], cfg[2], cfg[3]
		want := Im2Col(x, kh, kw, stride, pad)
		dst := New(want.Shape...)
		for i := range dst.Data {
			dst.Data[i] = -7
		}
		got := Im2ColInto(dst, x, kh, kw, stride, pad)
		if !got.AllClose(want, 0) {
			t.Errorf("Im2ColInto diverges at %v", cfg)
		}
	}
}

func TestConvForwardIntoMatchesConvForward(t *testing.T) {
	x := randTensor(1, 4, 5, 10, 8)
	w := randTensor(0.3, 6, 5*9)
	bias := randTensor(0.1, 6)
	want, _ := ConvForward(x, w, bias, 3, 3, 1, 1)
	oh := ConvOutSize(10, 3, 1, 1)
	ow := ConvOutSize(8, 3, 1, 1)
	y := New(4, 6, oh, ow)
	cols := New(5*9, oh*ow)
	got := ConvForwardInto(y, x, w, bias, cols, 3, 3, 1, 1)
	if !got.AllClose(want, 0) {
		t.Error("ConvForwardInto diverges from ConvForward")
	}

	// Without bias.
	wantNB, _ := ConvForward(x, w, nil, 3, 3, 1, 1)
	gotNB := ConvForwardInto(y, x, w, nil, cols, 3, 3, 1, 1)
	if !gotNB.AllClose(wantNB, 0) {
		t.Error("ConvForwardInto (no bias) diverges")
	}
}

func TestAddScaleInto(t *testing.T) {
	a := randTensor(1, 4, 4)
	b := randTensor(2, 4, 4)
	want := a.Add(b)
	if !AddInto(New(4, 4), a, b).AllClose(want, 0) {
		t.Error("AddInto diverges")
	}
	// Aliased dst.
	dst := a.Clone()
	if !AddInto(dst, dst, b).AllClose(want, 0) {
		t.Error("aliased AddInto diverges")
	}
	if !ScaleInto(New(4, 4), a, 2.5).AllClose(a.Scale(2.5), 0) {
		t.Error("ScaleInto diverges")
	}
}

func TestArenaReuseAndInvalidations(t *testing.T) {
	a := NewArena()
	t1 := a.NewTensor(2, 3)
	if len(t1.Data) != 6 || t1.Dim(0) != 2 {
		t.Fatalf("arena tensor shape %v", t1.Shape)
	}
	for i := range t1.Data {
		t1.Data[i] = float64(i)
	}
	v := a.View(t1, 3, 2)
	if &v.Data[0] != &t1.Data[0] {
		t.Error("View must alias the source tensor")
	}
	c := a.Clone(t1)
	if &c.Data[0] == &t1.Data[0] {
		t.Error("Clone must not alias")
	}
	a.Reset()

	// Second cycle of identical demand reuses the grown buffer: the same
	// backing array comes back.
	t2 := a.NewTensor(2, 3)
	a.Reset()
	t3 := a.NewTensor(2, 3)
	if &t2.Data[0] != &t3.Data[0] {
		t.Error("arena did not reuse its backing buffer across cycles")
	}
	if a.Footprint() == 0 {
		t.Error("warmed arena reports zero footprint")
	}
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	a := NewArena()
	shape := []int{4, 8, 16}
	// Warm-up cycle sizes the arena.
	a.NewTensor(shape...)
	a.NewTensorZeroed(2, 2)
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		t1 := a.NewTensor(shape...)
		a.View(t1, 8, 64)
		a.NewTensorZeroed(2, 2)
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("steady-state arena cycle allocates %v times, want 0", allocs)
	}
}

func TestSetKernelParallelism(t *testing.T) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(1)
	if KernelParallelism() != 1 {
		t.Fatal("knob not set")
	}
	a := randTensor(1, 40, 30)
	b := randTensor(2, 30, 20)
	serial := MatMul(a, b)
	SetKernelParallelism(0)
	if KernelParallelism() != 0 {
		t.Fatal("knob not reset")
	}
	parallel := MatMul(a, b)
	if !serial.AllClose(parallel, 0) {
		t.Error("kernel parallelism cap changes MatMul results")
	}
}
