package nn

import (
	"math"
	"testing"
	"testing/quick"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// randTensor builds a deterministic random tensor from quick's seed input.
func randTensor(seed int64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	rng.New(seed).FillNormal(t.Data, 0, 1)
	return t
}

// Property: ReLU is idempotent — relu(relu(x)) == relu(x).
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 2, 12)
		r := NewReLU()
		once := r.Forward(x, false)
		twice := NewReLU().Forward(once, false)
		return twice.AllClose(once, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ReLU output is non-negative and bounded by |x|.
func TestReLURangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 3, 9)
		y := NewReLU().Forward(x, false)
		for i, v := range y.Data {
			if v < 0 || v > math.Abs(x.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sigmoid maps into (0,1) and is monotone in its input.
func TestSigmoidRangeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 1, 16)
		y := NewSigmoid().Forward(x, false)
		for _, v := range y.Data {
			if v <= 0 || v >= 1 {
				return false
			}
		}
		bigger := NewSigmoid().Forward(x.Clone().AddScalarInPlace(0.5), false)
		for i := range y.Data {
			if bigger.Data[i] <= y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: global average pooling preserves the total mean.
func TestGAPPreservesMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 2, 3, 4, 4)
		y := NewGlobalAvgPool().Forward(x, false)
		return math.Abs(x.Mean()-y.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: max pooling dominates average pooling elementwise when both use
// the same stride-2 window.
func TestMaxPoolDominatesMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 1, 2, 6, 6)
		mp := NewMaxPool2D(2, 2).Forward(x, false)
		// Average over the same windows by hand.
		for ni := 0; ni < 1; ni++ {
			for c := 0; c < 2; c++ {
				for oy := 0; oy < 3; oy++ {
					for ox := 0; ox < 3; ox++ {
						avg := (x.At(ni, c, 2*oy, 2*ox) + x.At(ni, c, 2*oy, 2*ox+1) +
							x.At(ni, c, 2*oy+1, 2*ox) + x.At(ni, c, 2*oy+1, 2*ox+1)) / 4
						if mp.At(ni, c, oy, ox) < avg-1e-12 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Upsample then GAP preserves the channel means (nearest-neighbour
// repetition cannot change averages).
func TestUpsamplePreservesChannelMeansProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 2, 2, 3, 3)
		up := NewUpsample2D(2).Forward(x, false)
		a := NewGlobalAvgPool().Forward(x, false)
		b := NewGlobalAvgPool().Forward(up, false)
		return a.AllClose(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: fixed additive noise is a bijection — subtracting the noise
// recovers the input exactly.
func TestAdditiveNoiseInvertibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		l := NewAdditiveNoise("n", NoiseFixed, 2, 3, 3, 0.5, rng.New(seed))
		x := randTensor(seed+1, 2, 2, 3, 3)
		y := l.Forward(x, false)
		recovered := y.Clone()
		per := l.Noise.Value.Size()
		for n := 0; n < 2; n++ {
			for j := 0; j < per; j++ {
				recovered.Data[n*per+j] -= l.Noise.Value.Data[j]
			}
		}
		return recovered.AllClose(x, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: softmax cross-entropy is minimized by the true label — loss for
// a one-hot-correct logit row is below loss for the same row with the true
// logit reduced.
func TestCrossEntropyPrefersTruth(t *testing.T) {
	f := func(seed int64, labelRaw uint8) bool {
		k := 5
		label := int(labelRaw) % k
		logits := randTensor(seed, 1, k)
		boosted := logits.Clone()
		boosted.Data[label] += 2
		lBoost, _ := SoftmaxCrossEntropy(boosted, []int{label})
		lBase, _ := SoftmaxCrossEntropy(logits, []int{label})
		return lBoost < lBase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: dropout in training mode is unbiased in expectation — the mean
// over many masks approaches the identity.
func TestDropoutUnbiasedExpectation(t *testing.T) {
	l := NewDropout(0.3, rng.New(99))
	x := tensor.Full(1, 1, 64)
	sum := tensor.New(1, 64)
	const trials = 3000
	for i := 0; i < trials; i++ {
		sum.AddInPlace(l.Forward(x, true))
	}
	for _, v := range sum.Data {
		if mean := v / trials; math.Abs(mean-1) > 0.08 {
			t.Fatalf("dropout expectation %v, want ~1", mean)
		}
	}
}

// Property: BatchNorm in training mode is invariant to input shift — the
// normalized output ignores a constant added to every element of a channel.
func TestBatchNormShiftInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randTensor(seed, 4, 2, 3, 3)
		a := NewBatchNorm2D("a", 2).Forward(x, true)
		b := NewBatchNorm2D("b", 2).Forward(x.Clone().AddScalarInPlace(3.7), true)
		return a.AllClose(b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
