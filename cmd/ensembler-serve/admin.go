package main

// The admin plane: a second HTTP listener (-admin-addr) carrying the
// operational surface of a serving process — health, Prometheus metrics,
// live leakage state, and a manual rotation trigger. It is deliberately a
// separate listener from the inference socket: the inference port faces
// untrusted clients and speaks the gob protocol only, while the admin port
// is for operators and scrapers and should be firewalled accordingly.
//
// Nothing served here reveals the secret selection: health and metrics
// describe traffic volume, latency, versions, and leakage scores — all
// quantities a wire observer or the (adversarial) serving box itself already
// has. See DESIGN.md §2e on why the on-box auditor widens no attack surface.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"ensembler/internal/audit"
	"ensembler/internal/registry"
	"ensembler/internal/telemetry"
)

// adminPlane bundles what the admin endpoints read and do.
type adminPlane struct {
	reg     *registry.Registry
	model   string // default model name
	treg    *telemetry.Registry
	auditor *audit.Auditor                              // nil: audit disabled
	rotate  func(cause string) (*registry.Epoch, error) // nil: rotation not possible here (shard mode)
	workers int
	shard   string // "k/K" in fleet mode, "" otherwise
	start   time.Time
}

// mux builds the admin endpoint routing.
func (a *adminPlane) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", a.handleHealthz)
	m.Handle("/metrics", a.treg.Handler())
	m.HandleFunc("/leakage", a.handleLeakage)
	m.HandleFunc("/rotate", a.handleRotate)
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing useful to do
}

func (a *adminPlane) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cur, err := a.reg.Current(a.model)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unhealthy", "error": err.Error(),
		})
		return
	}
	resp := map[string]any{
		"status":         "ok",
		"model":          cur.Name(),
		"version":        cur.Version(),
		"models":         a.reg.Models(),
		"workers":        a.workers,
		"uptime_seconds": time.Since(a.start).Seconds(),
		"rotations":      a.reg.RotationCount(a.model),
		"audit_enabled":  a.auditor != nil,
	}
	if a.shard != "" {
		resp["shard"] = a.shard
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *adminPlane) handleLeakage(w http.ResponseWriter, r *http.Request) {
	if a.auditor == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, a.auditor.State())
}

// handleRotate triggers one selector rotation — the operator's "rotate now"
// button, recorded in the registry history with cause "admin request".
func (a *adminPlane) handleRotate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{
			"error": "rotation is a POST",
		})
		return
	}
	if a.rotate == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "this process cannot rotate: in a sharded fleet the selector is client-side — publish a rotated pipeline and SIGHUP the shards",
		})
		return
	}
	ep, err := a.rotate("admin request")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model": ep.Name(), "version": ep.Version(),
	})
}

// serveAdmin binds the admin listener, announces its address on stdout (the
// second scrapeable banner line), and serves until ctx is cancelled.
func serveAdmin(ctx context.Context, addr string, plane *adminPlane, announce func(format string, args ...any)) (func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin plane: listening on %s: %w", addr, err)
	}
	announce("admin listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: plane.mux()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	return func() error {
		err := <-done
		if errors.Is(err, http.ErrServerClosed) || ctx.Err() != nil {
			return nil
		}
		return err
	}, nil
}
