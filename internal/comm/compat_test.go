package comm_test

import (
	"context"
	"encoding/gob"
	"net"
	"testing"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/registry"
	"ensembler/internal/tensor"
)

// legacyRequest and legacyResponse are the pre-registry wire structs, bit
// by bit: no model/version header. Gob matches struct fields by name and
// skips what the receiver doesn't know, so a binary compiled against these
// types must keep round-tripping against the new server unchanged — the
// registry's default-model fallback serves it.
type legacyRequest struct {
	Features *tensor.Tensor
	Inputs   []*tensor.Tensor
}

type legacyResponse struct {
	Features []*tensor.Tensor
	Outputs  [][]*tensor.Tensor
	Err      string
}

// legacyRoundTrip speaks the old protocol over a raw connection.
func legacyRoundTrip(t *testing.T, enc *gob.Encoder, dec *gob.Decoder, req *legacyRequest) *legacyResponse {
	t.Helper()
	if err := enc.Encode(req); err != nil {
		t.Fatalf("legacy send: %v", err)
	}
	var resp legacyResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("legacy receive: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("legacy request rejected: %s", resp.Err)
	}
	return &resp
}

// TestLegacyClientAgainstRegistryServer pins wire-protocol compatibility: a
// version-header-less client round-trips against a registry-backed server
// via the default-model fallback, single and batched, with bit-exact
// results.
func TestLegacyClientAgainstRegistryServer(t *testing.T) {
	const nBodies = 3
	e := commtest.Pipeline(tiny, nBodies, 2, 131)
	x := commtest.Input(tiny, 132, 2)
	want := bodyReference(e, x)

	reg := registry.New(nil)
	if _, err := reg.Publish("default-model", e); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := comm.NewModelServer(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	// Single round trip: all N body outputs come back; the legacy client's
	// local selection must land on the same logits.
	resp := legacyRoundTrip(t, enc, dec, &legacyRequest{Features: x})
	if len(resp.Features) != nBodies {
		t.Fatalf("legacy response carries %d feature maps, want %d", len(resp.Features), nBodies)
	}
	tail := commtest.Tail(tiny, nBodies)
	got := tail.Forward(nn.ConcatFeatures(resp.Features), false)
	if !got.AllClose(want, 1e-12) {
		t.Error("legacy single round trip diverges from reference")
	}

	// Batched round trip on the same connection.
	resp = legacyRoundTrip(t, enc, dec, &legacyRequest{Inputs: []*tensor.Tensor{x, x}})
	if len(resp.Outputs) != 2 {
		t.Fatalf("legacy batched response carries %d outputs", len(resp.Outputs))
	}
	for i, feats := range resp.Outputs {
		got := tail.Forward(nn.ConcatFeatures(feats), false)
		if !got.AllClose(want, 1e-12) {
			t.Errorf("legacy batched output %d diverges", i)
		}
	}

	// A hot swap behind the fallback stays invisible: rotate and keep
	// serving the same connection.
	if _, err := reg.RotateSelector("", ensemble.RotateOptions{Seed: 133}); err != nil {
		t.Fatal(err)
	}
	resp = legacyRoundTrip(t, enc, dec, &legacyRequest{Features: x})
	got = tail.Forward(nn.ConcatFeatures(resp.Features), false)
	if !got.AllClose(want, 1e-12) {
		t.Error("legacy round trip diverges after a selector rotation")
	}

	cancel()
	<-served
}

// TestLegacyClientAgainstStaticServer covers the NewServer path: the old
// wire form against the old construction keeps working untouched.
func TestLegacyClientAgainstStaticServer(t *testing.T) {
	const nBodies = 2
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 1)
	x := commtest.Input(tiny, 134, 1)
	want := commtest.Reference(tiny, nBodies, x)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	resp := legacyRoundTrip(t, enc, dec, &legacyRequest{Features: x})
	got := commtest.Tail(tiny, nBodies).Forward(nn.ConcatFeatures(resp.Features), false)
	if !got.AllClose(want, 1e-12) {
		t.Error("legacy round trip against a static server diverges")
	}
}
