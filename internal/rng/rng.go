// Package rng provides deterministic random number generation for the
// Ensembler reproduction. Every stochastic component of the system — weight
// initialization, data synthesis, noise injection, the secret Selector —
// draws from an rng.RNG seeded explicitly, so experiments are reproducible
// bit-for-bit for a fixed configuration.
//
// The generator is SplitMix64 feeding xoshiro256**, implemented locally so
// results do not depend on the Go version's math/rand internals.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
	// spare holds a cached second Gaussian sample from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// splitmix64 advances the seed expander; used only during construction.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the zero seed is valid.
func New(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new independent generator from r's stream. The parent and
// child streams do not overlap in practice; use this to hand independent
// sources to sub-components (per-network init, per-dataset synthesis, ...).
func (r *RNG) Split() *RNG {
	c := &RNG{}
	x := r.Uint64()
	for i := range c.s {
		c.s[i] = splitmix64(&x)
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 0x9e3779b97f4a7c15
	}
	return c
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard Gaussian sample (Box-Muller with spare caching).
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap, Fisher-Yates
// style, matching the contract of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choose returns k distinct indices drawn uniformly from [0, n), in random
// order. It panics if k > n or k < 0. This is the primitive behind the
// client's secret Selector (Stage 2 of Ensembler training).
func (r *RNG) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose with k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// FillNormal fills dst with Gaussian samples of the given mean and std.
func (r *RNG) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, std)
	}
}

// FillUniform fills dst with uniform samples in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}
