package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache bounds the cost of runtime.ReadMemStats on the scrape path:
// ReadMemStats stops the world, and one /metrics scrape renders several
// runtime series, so the gauges share one snapshot refreshed at most once
// per second.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	data runtime.MemStats
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.data)
		c.at = time.Now()
	}
	return &c.data
}

// RegisterRuntimeMetrics exports Go runtime health on the registry:
// go_goroutines, go_mem_heap_alloc_bytes, and go_gc_last_pause_seconds.
// All three are computed at scrape time (GaugeFunc) — zero cost on the
// request path — with memory stats cached for a second so a tight scrape
// loop cannot turn stop-the-world sampling into load.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_mem_heap_alloc_bytes", "Bytes of allocated heap objects.", nil, func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	r.GaugeFunc("go_gc_last_pause_seconds", "Duration of the most recent GC stop-the-world pause.", nil, func() float64 {
		m := cache.get()
		if m.NumGC == 0 {
			return 0
		}
		return float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9
	})
}
