package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-scale", "huge"}, "unknown scale"},
		{[]string{"-table", "9"}, "unknown table"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunTableIII(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "3", "-n", "10"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Standard CI", "Ensembler", "STAMP", "overhead vs Standard CI"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("Table III output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServingBench(t *testing.T) {
	if testing.Short() {
		t.Skip("serving bench smoke test")
	}
	var out bytes.Buffer
	err := run([]string{"-serving", "-n", "2", "-clients", "2", "-workers", "2", "-duration", "150ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving bench", "1 connection", "analytic model"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serving bench output missing %q:\n%s", want, out.String())
		}
	}
}

func TestJSONRequiresServing(t *testing.T) {
	err := run([]string{"-json", "out.json", "-table", "3"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-serving") {
		t.Errorf("-json without -serving = %v, want an error naming -serving", err)
	}
}

// TestServingBenchWritesJSONReport runs a minimal serving bench with -json
// and validates the machine-readable report — the smoke CI runs on every
// push to start the BENCH_*.json perf trajectory.
func TestServingBenchWritesJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-serving", "-n", "2", "-clients", "2", "-workers", "2",
		"-duration", "100ms", "-json", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if report.GoVersion == "" || report.Timestamp == "" || report.GOMAXPROCS <= 0 {
		t.Errorf("report missing environment fields: %+v", report)
	}
	if report.Config.Bodies != 2 || report.Config.Clients != 2 || report.Config.WindowSeconds != 0.1 {
		t.Errorf("report config = %+v", report.Config)
	}
	byName := map[string]BenchResult{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	single, ok := byName["serve_single_connection"]
	if !ok || single.ReqPerSec <= 0 || single.NsPerOp <= 0 {
		t.Errorf("missing or empty single-connection result: %+v", report.Results)
	}
	if _, ok := byName["serve_concurrent_2"]; !ok {
		t.Errorf("missing concurrent result: %+v", report.Results)
	}
	if pred, ok := byName["predicted_speedup"]; !ok || pred.Value <= 0 {
		t.Errorf("missing predicted speedup: %+v", report.Results)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("stdout does not announce the report: %s", out.String())
	}
}

func TestWireAndCompareFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-serving", "-wire", "carrier-pigeon"}, "unknown -wire"},
		{[]string{"-compare", "base.json", "-table", "3"}, "-compare gates serving"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

// TestServingBenchGobAndF32Wires drives the serving bench over both
// non-default wires end to end.
func TestServingBenchGobAndF32Wires(t *testing.T) {
	if testing.Short() {
		t.Skip("serving bench smoke test")
	}
	for _, wire := range []string{"gob", "f32"} {
		var out bytes.Buffer
		err := run([]string{"-serving", "-n", "2", "-clients", "2", "-workers", "2",
			"-duration", "100ms", "-wire", wire}, &out, io.Discard)
		if err != nil {
			t.Fatalf("-wire %s: %v", wire, err)
		}
		if !strings.Contains(out.String(), "allocs/req") {
			t.Errorf("-wire %s output missing allocation accounting:\n%s", wire, out.String())
		}
	}
}

// TestCompareReports covers the perf gate: pass within the band, fail on
// an alloc regression, skip raw req/s across host shapes.
func TestCompareReports(t *testing.T) {
	mk := func(effective int, rps, speedup, allocs float64) *BenchReport {
		return &BenchReport{
			Config: BenchConfig{Clients: 8, EffectiveParallelism: effective},
			Results: []BenchResult{
				{Name: "serve_single_connection", ReqPerSec: rps},
				{Name: "serve_concurrent_8", ReqPerSec: rps},
				{Name: "speedup", Value: speedup},
				{Name: "allocs_per_req", Value: allocs},
			},
		}
	}
	write := func(r *BenchReport) string {
		path := filepath.Join(t.TempDir(), "base.json")
		if err := writeBenchReport(path, *r); err != nil {
			t.Fatal(err)
		}
		return path
	}

	base := write(mk(1, 1000, 1.0, 40))
	var out bytes.Buffer
	if err := compareReports(&out, base, mk(1, 950, 0.98, 42), 0.2); err != nil {
		t.Errorf("within-band run failed the gate: %v\n%s", err, out.String())
	}
	if err := compareReports(io.Discard, base, mk(1, 1000, 1.0, 500), 0.2); err == nil {
		t.Error("10x alloc regression passed the gate")
	}
	if err := compareReports(io.Discard, base, mk(1, 1000, 0.5, 40), 0.2); err == nil {
		t.Error("halved speedup passed the gate")
	}
	if err := compareReports(io.Discard, base, mk(1, 100, 1.0, 40), 0.2); err == nil {
		t.Error("5x single-connection slowdown on the same host shape passed the gate")
	}
	// Different effective parallelism: raw req/s must be skipped, not failed.
	out.Reset()
	if err := compareReports(&out, base, mk(8, 100, 1.0, 40), 0.2); err != nil {
		t.Errorf("cross-host-shape req/s comparison failed instead of skipping: %v", err)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("gate output does not announce the skip:\n%s", out.String())
	}
	if err := compareReports(io.Discard, filepath.Join(t.TempDir(), "missing.json"), mk(1, 1, 1, 1), 0.2); err == nil {
		t.Error("missing baseline accepted")
	}
}

// TestServingBenchBatchedRegime smokes the continuous-batching regime: the
// dispatcher measurement, the queueing-model gate, the planning sweep, and
// the new JSON series the perf trajectory records.
func TestServingBenchBatchedRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("serving bench smoke test")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-serving", "-n", "2", "-clients", "4", "-workers", "1",
		"-duration", "400ms", "-batch-window", "20ms", "-max-queue", "32",
		"-tolerance", "0.5", "-json", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"continuous batching", "queueing model", "queueing sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("batched bench output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if report.Config.BatchWindowSeconds != 0.02 || report.Config.MaxQueue != 32 {
		t.Errorf("report config missing batching fields: %+v", report.Config)
	}
	byName := map[string]BenchResult{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	if b, ok := byName["serve_batched"]; !ok || b.ReqPerSec <= 0 {
		t.Errorf("missing or empty serve_batched series: %+v", report.Results)
	}
	for _, name := range []string{"serve_batched_p50_ms", "serve_batched_p99_ms", "queueing_predicted_p99_ms", "batch_occupancy_max"} {
		if r, ok := byName[name]; !ok || r.Value <= 0 {
			t.Errorf("missing or empty %s series: %+v", name, byName[name])
		}
	}
	if _, ok := byName["shed_total"]; !ok {
		t.Errorf("missing shed_total series: %+v", report.Results)
	}
}

// TestCompareReportsBatchedSeries pins the gate's treatment of the batched
// throughput series: gated when both reports carry it, skipped (not failed)
// against a baseline predating the dispatcher.
func TestCompareReportsBatchedSeries(t *testing.T) {
	mk := func(batchedRPS float64) *BenchReport {
		r := &BenchReport{
			Config: BenchConfig{Clients: 8, EffectiveParallelism: 1},
			Results: []BenchResult{
				{Name: "serve_single_connection", ReqPerSec: 1000},
				{Name: "serve_concurrent_8", ReqPerSec: 1000},
				{Name: "allocs_per_req", Value: 40},
			},
		}
		if batchedRPS > 0 {
			r.Results = append(r.Results, BenchResult{Name: "serve_batched", ReqPerSec: batchedRPS})
		}
		return r
	}
	write := func(r *BenchReport) string {
		path := filepath.Join(t.TempDir(), "base.json")
		if err := writeBenchReport(path, *r); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Pre-dispatcher baseline: the new series must be skipped silently.
	if err := compareReports(io.Discard, write(mk(0)), mk(900), 0.2); err != nil {
		t.Errorf("baseline without serve_batched failed the gate: %v", err)
	}
	// Both sides carry it: a collapse must fail.
	if err := compareReports(io.Discard, write(mk(1000)), mk(100), 0.2); err == nil {
		t.Error("10x batched-throughput regression passed the gate")
	}
	if err := compareReports(io.Discard, write(mk(1000)), mk(950), 0.2); err != nil {
		t.Errorf("within-band batched run failed the gate: %v", err)
	}
}
