package attack

import (
	"math"
	"testing"

	"ensembler/internal/data"
	"ensembler/internal/metrics"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

func tinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

func tinySplits(seed int64) *data.Splits {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 96, Aux: 64, Test: 32, Seed: seed})
	for _, ds := range []*data.Dataset{sp.Train, sp.Aux, sp.Test} {
		ds.Classes = 4
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	return sp
}

func trainVictim(sp *data.Splits, seed int64) *split.Model {
	m := split.NewModel("victim", tinyArch(), 0.05, nn.NoiseFixed, 0, rng.New(seed))
	split.Train(m, sp.Train, split.TrainOptions{Epochs: 3, BatchSize: 16, LR: 0.05, Seed: seed})
	return m
}

type victimAdapter struct{ m *split.Model }

func (v victimAdapter) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	return v.m.ClientFeatures(x, false)
}

func TestShadowShapes(t *testing.T) {
	sp := tinySplits(1)
	v := trainVictim(sp, 2)
	for _, structured := range []bool{true, false} {
		s := NewShadow(tinyArch(), []*nn.Network{v.Body}, false, structured, rng.New(3))
		x, _ := sp.Aux.Batch([]int{0, 1})
		logits := s.Forward(x, false)
		if logits.Shape[0] != 2 || logits.Shape[1] != 4 {
			t.Fatalf("structured=%v logits shape %v", structured, logits.Shape)
		}
		f := s.HeadFeatures(x)
		if f.Shape[1] != 4 || f.Shape[2] != 8 || f.Shape[3] != 8 {
			t.Fatalf("shadow features shape %v", f.Shape)
		}
	}
}

func TestShadowPanicsWithoutBodies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewShadow(tinyArch(), nil, false, false, rng.New(1))
}

func TestAdaptiveGatesLearn(t *testing.T) {
	sp := tinySplits(4)
	vA := trainVictim(sp, 5)
	vB := trainVictim(sp, 6)
	cfg := Config{Arch: tinyArch(), ShadowEpochs: 3, BatchSize: 16, Seed: 7}
	s := TrainShadow(cfg, []*nn.Network{vA.Body, vB.Body}, true, sp.Aux)
	if s.Gates == nil {
		t.Fatal("adaptive shadow must have gates")
	}
	init := 1.0 / 2
	moved := false
	for _, g := range s.Gates.Value.Data {
		if math.Abs(g-init) > 1e-6 {
			moved = true
		}
	}
	if !moved {
		t.Error("gates did not move from the uniform initialization")
	}
}

func TestShadowTrainingReducesLoss(t *testing.T) {
	sp := tinySplits(8)
	v := trainVictim(sp, 9)
	x, labels := sp.Aux.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})

	fresh := NewShadow(tinyArch(), []*nn.Network{v.Body}, false, true, rng.New(10))
	lossBefore, _ := nn.SoftmaxCrossEntropy(fresh.Forward(x, false), labels)

	cfg := Config{Arch: tinyArch(), ShadowEpochs: 6, BatchSize: 16, Seed: 10}
	trained := TrainShadow(cfg, []*nn.Network{v.Body}, false, sp.Aux)
	lossAfter, _ := nn.SoftmaxCrossEntropy(trained.Forward(x, false), labels)
	if lossAfter >= lossBefore {
		t.Errorf("shadow training did not reduce loss: %.3f -> %.3f", lossBefore, lossAfter)
	}
}

func TestChannelStats(t *testing.T) {
	f := tensor.New(2, 2, 2, 2)
	for i := range f.Data {
		f.Data[i] = float64(i % 2) // channel-dependent pattern
	}
	st := ComputeChannelStats(f)
	if len(st.Mean) != 2 || len(st.Std) != 2 {
		t.Fatal("wrong stat lengths")
	}
	for c := 0; c < 2; c++ {
		if math.Abs(st.Mean[c]-0.5) > 1e-9 {
			t.Errorf("mean[%d] = %v", c, st.Mean[c])
		}
	}
}

func TestMeanFeatureMap(t *testing.T) {
	f := tensor.New(2, 1, 2, 2)
	for j := 0; j < 4; j++ {
		f.Data[j] = 1   // sample 0
		f.Data[4+j] = 3 // sample 1
	}
	m := MeanFeatureMap(f)
	for _, v := range m.Data {
		if v != 2 {
			t.Fatalf("mean map = %v", m.Data)
		}
	}
}

func TestAlignLossGradNumeric(t *testing.T) {
	r := rng.New(11)
	h := tensor.New(2, 2, 3, 3)
	r.FillNormal(h.Data, 0, 1)
	obsF := tensor.New(4, 2, 3, 3)
	r.FillNormal(obsF.Data, 0.5, 1.2)
	obs := ComputeChannelStats(obsF)
	_, grad := alignLossGrad(h, obs)
	const eps = 1e-6
	for _, idx := range []int{0, 9, 17} {
		old := h.Data[idx]
		h.Data[idx] = old + eps
		lp, _ := alignLossGrad(h, obs)
		h.Data[idx] = old - eps
		lm, _ := alignLossGrad(h, obs)
		h.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("align grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestMeanMapLossGradNumeric(t *testing.T) {
	r := rng.New(12)
	h := tensor.New(2, 2, 3, 3)
	r.FillNormal(h.Data, 0, 1)
	obsF := tensor.New(4, 2, 3, 3)
	r.FillNormal(obsF.Data, 0.2, 1)
	obsMap := MeanFeatureMap(obsF)
	_, grad := meanMapLossGrad(h, obsMap)
	const eps = 1e-6
	for _, idx := range []int{0, 13, 35} {
		old := h.Data[idx]
		h.Data[idx] = old + eps
		lp, _ := meanMapLossGrad(h, obsMap)
		h.Data[idx] = old - eps
		lm, _ := meanMapLossGrad(h, obsMap)
		h.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("mean-map grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestDecoderOutputRange(t *testing.T) {
	d := NewDecoder(tinyArch(), rng.New(13))
	f := tensor.New(2, 4, 8, 8)
	rng.New(14).FillNormal(f.Data, 0, 1)
	img := d.Reconstruct(f)
	if img.Shape[1] != 3 || img.Shape[2] != 8 || img.Shape[3] != 8 {
		t.Fatalf("recon shape %v", img.Shape)
	}
	for _, v := range img.Data {
		if v < 0 || v > 1 {
			t.Fatalf("decoder output %v outside [0,1]", v)
		}
	}
}

func TestOracleDecoderBeatsGrayBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sp := tinySplits(15)
	v := trainVictim(sp, 16)
	cfg := Config{Arch: tinyArch(), DecoderEpochs: 10, BatchSize: 16, Seed: 17}
	o := OracleDecoderAttack(cfg, victimAdapter{v}, sp.Aux, sp.Test, 16)

	// Gray-image baseline: the score an attacker gets with zero information.
	x, _ := sp.Test.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	gray := tensor.Full(0.5, x.Shape...)
	grayPSNR := metrics.BatchPSNR(gray, x)
	if o.PSNR <= grayPSNR {
		t.Errorf("oracle attack PSNR %.2f should beat gray baseline %.2f", o.PSNR, grayPSNR)
	}
	if o.SSIM <= 0.2 {
		t.Errorf("oracle attack SSIM %.3f too low — decoder machinery broken?", o.SSIM)
	}
}

func TestRunDecoderAttackProducesOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sp := tinySplits(18)
	v := trainVictim(sp, 19)
	cfg := Config{Arch: tinyArch(), ShadowEpochs: 4, DecoderEpochs: 4, BatchSize: 16, Seed: 20, StructuredShadow: true}
	o := RunDecoderAttack(cfg, "t", []*nn.Network{v.Body}, false, victimAdapter{v}, sp.Aux, sp.Test, 8)
	if o.Recon == nil || o.Recon.Shape[0] != 8 {
		t.Fatal("attack must return reconstructions")
	}
	if o.SSIM < -1 || o.SSIM > 1 || math.IsNaN(o.PSNR) {
		t.Errorf("degenerate metrics: %+v", o)
	}
}

func TestBestBy(t *testing.T) {
	outs := []Outcome{
		{Name: "a", SSIM: 0.2, PSNR: 9},
		{Name: "b", SSIM: 0.5, PSNR: 7},
		{Name: "c", SSIM: 0.1, PSNR: 12},
	}
	if BestBy(outs, "ssim").Name != "b" {
		t.Error("BestBy ssim wrong")
	}
	if BestBy(outs, "psnr").Name != "c" {
		t.Error("BestBy psnr wrong")
	}
}

func TestBestByUnknownMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BestBy([]Outcome{{Name: "a"}, {Name: "b"}}, "nope")
}

func TestTVLossGradNumeric(t *testing.T) {
	r := rng.New(21)
	x := tensor.New(1, 2, 4, 4)
	r.FillNormal(x.Data, 0, 1)
	_, grad := tvLossGrad(x)
	const eps = 1e-6
	for _, idx := range []int{0, 10, 31} {
		old := x.Data[idx]
		x.Data[idx] = old + eps
		lp, _ := tvLossGrad(x)
		x.Data[idx] = old - eps
		lm, _ := tvLossGrad(x)
		x.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("tv grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestRMLEReducesFeatureDistance(t *testing.T) {
	sp := tinySplits(22)
	v := trainVictim(sp, 23)
	x, _ := sp.Test.Batch([]int{0, 1})
	observed := v.ClientFeatures(x, false)

	// Use the true head as the "shadow" (white-box rMLE): the optimization
	// must pull the candidate's features toward the observation.
	gray := tensor.Full(0.5, 2, 3, 8, 8)
	before := metrics.MSE(v.Head.Forward(gray, false), observed)
	recon := RMLE(v.Head, observed, []int{2, 3, 8, 8}, RMLEConfig{Steps: 80, LR: 0.05, TVWeight: 1e-4})
	after := metrics.MSE(v.Head.Forward(recon, false), observed)
	if after >= before {
		t.Errorf("rMLE did not reduce feature distance: %.4f -> %.4f", before, after)
	}
	for _, vpx := range recon.Data {
		if vpx < 0 || vpx > 1 {
			t.Fatalf("rMLE pixel %v outside [0,1]", vpx)
		}
	}
}
