package comm_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/nn"
	"ensembler/internal/privacy"
)

// This file is the acceptance test for the privacy-budget subsystem end to
// end: real server, real wire, one heavy client burning its Rényi budget
// against light clients pacing theirs, and the full escalation ladder —
// clean service, then Gaussian response noise, then a selector-rotation
// request, then CodeBudgetExhausted refusals — while the light clients never
// see a single perturbed byte. Run under -race in CI, it doubles as the
// concurrency proof for the ledger/guard/serving-loop composition.

// startBudgetServer runs a serving server with the given guard attached.
func startBudgetServer(t *testing.T, nBodies int, g *privacy.Guard) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := comm.NewServer(commtest.Bodies(tiny, nBodies), comm.WithWorkers(2), comm.WithBudget(g),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(tiny, nBodies) }))
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestBudgetEscalationLadderE2E drives the whole defense ladder over the
// wire. The heavy client's budget covers exactly 20 single-row requests
// (ε=1, 0.05/row): requests 1-9 are served bit-exact, 10-20 arrive noised
// (with the rotation request firing as the drain crosses 80%), and 21+ are
// refused with a terminal ErrBudgetExhausted. Two light clients run
// concurrently on their own accounts and must finish with every response
// bit-exact and zero errors — one tenant's spending is never another's
// degradation.
func TestBudgetEscalationLadderE2E(t *testing.T) {
	const nBodies = 2
	var rotations atomic.Uint64
	var rotateCause atomic.Value
	ledger, err := privacy.NewLedger(privacy.LedgerConfig{BudgetEps: 1, QueryEps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := privacy.NewGuard(ledger, privacy.PolicyConfig{
		Rotate: func(cause string) {
			rotations.Add(1)
			rotateCause.Store(cause)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startBudgetServer(t, nBodies, guard)

	x := commtest.Input(tiny, 77, 1) // one row: one 0.05ε charge per request
	want := commtest.Reference(tiny, nBodies, x)

	// Light clients pace themselves: 5 requests each (0.25ε spent) stays far
	// above the 0.5 noise threshold. They run concurrently with the heavy
	// client's burn — the race detector watches the whole composition.
	var wg sync.WaitGroup
	lightErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := comm.Dial(addr, comm.WithClientID(fmt.Sprintf("light-%d", i)))
			if err != nil {
				lightErrs <- err
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			for r := 0; r < 5; r++ {
				got, _, err := client.Infer(context.Background(), x)
				if err != nil {
					lightErrs <- fmt.Errorf("light-%d request %d: %w", i, r, err)
					return
				}
				if !got.AllClose(want, 1e-12) {
					lightErrs <- fmt.Errorf("light-%d request %d: response not bit-exact — noised on a healthy budget", i, r)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	heavy, err := comm.Dial(addr, comm.WithClientID("heavy"))
	if err != nil {
		t.Fatal(err)
	}
	defer heavy.Close()
	commtest.Wire(heavy, tiny, nBodies)

	var clean, noised, refused int
	var refuseErr error
	for r := 1; r <= 25; r++ {
		got, _, err := heavy.Infer(context.Background(), x)
		switch {
		case err != nil:
			refused++
			refuseErr = err
		case got.AllClose(want, 1e-12):
			clean++
			if noised > 0 || refused > 0 {
				t.Errorf("request %d served clean after escalation began", r)
			}
		default:
			noised++
			if refused > 0 {
				t.Errorf("request %d served (noised) after refusals began", r)
			}
			// Escalation noise perturbs, it does not destroy: the noised
			// logits stay within a few sigma of the reference.
			if !got.AllClose(want, 1.0) {
				t.Errorf("request %d: noised response unrecognizably far from reference", r)
			}
		}
	}
	wg.Wait()
	close(lightErrs)
	for err := range lightErrs {
		t.Error(err)
	}

	// The ladder, in order and in the predicted proportions: 9 clean, 11
	// noised (requests 10-20), 5 refused.
	if clean != 9 || noised != 11 || refused != 5 {
		t.Errorf("ladder = %d clean / %d noised / %d refused, want 9/11/5", clean, noised, refused)
	}
	if !errors.Is(refuseErr, comm.ErrBudgetExhausted) {
		t.Errorf("refusal surfaced as %v, want ErrBudgetExhausted", refuseErr)
	}
	if got := rotations.Load(); got != 1 {
		t.Errorf("rotation hook fired %d times, want exactly 1 (rate-limited)", got)
	}
	if cause, _ := rotateCause.Load().(string); !strings.Contains(cause, "heavy") {
		t.Errorf("rotation cause %q does not name the drained client", cause)
	}
	if guard.Noised() == 0 || guard.Refusals() == 0 {
		t.Errorf("guard counters noised=%d refused=%d, want both nonzero", guard.Noised(), guard.Refusals())
	}

	// The ledger's external view agrees: heavy is the top spender at the
	// refusal level with a fully drained budget.
	top := ledger.TopSpenders(1)
	if len(top) != 1 || top[0].Client != "heavy" {
		t.Fatalf("top spender = %+v, want the heavy client", top)
	}
	if top[0].Drained != 1 || top[0].Refusals == 0 || top[0].Level != int(privacy.LevelRefused) {
		t.Errorf("heavy account = %+v, want fully drained, refused level, refusals recorded", top[0])
	}
}

// TestBudgetAccountIdentities pins how the ledger keys tenants across the
// three ways a peer can arrive: a v4 client with a declared ID gets its own
// account; an ID-less v4 client and a legacy gob client from the same host
// share one address-bucket account.
func TestBudgetAccountIdentities(t *testing.T) {
	const nBodies = 2
	ledger, err := privacy.NewLedger(privacy.LedgerConfig{BudgetEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := privacy.NewGuard(ledger, privacy.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := startBudgetServer(t, nBodies, guard)
	x := commtest.Input(tiny, 78, 2)

	infer := func(opts ...comm.DialOption) {
		t.Helper()
		client, err := comm.Dial(addr, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		commtest.Wire(client, tiny, nBodies)
		if _, _, err := client.Infer(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	infer(comm.WithClientID("did:ex:alice"))
	infer()                            // v4, no declared ID
	infer(comm.WithWire(comm.WireGob)) // legacy gob, no handshake at all

	snap := ledger.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ledger tracks %d accounts %+v, want 2 (declared ID + shared addr bucket)", len(snap), snap)
	}
	byClient := map[string]privacy.ClientBudget{}
	for _, c := range snap {
		byClient[c.Client] = c
	}
	alice, ok := byClient["did:ex:alice"]
	if !ok || alice.Rows != 2 {
		t.Errorf("declared-ID account = %+v, want 2 rows charged", alice)
	}
	bucket, ok := byClient["addr:127.0.0.1"]
	if !ok || bucket.Rows != 4 {
		t.Errorf("addr-bucket account = %+v, want the 4 rows of both anonymous peers", bucket)
	}
	if alice.SpentEps <= 0 || bucket.SpentEps <= alice.SpentEps {
		t.Errorf("spend ordering wrong: alice %v, bucket %v", alice.SpentEps, bucket.SpentEps)
	}
}
