// Package data synthesizes the image-classification workloads of the
// Ensembler evaluation. The paper trains on CIFAR-10, CIFAR-100 and a
// CelebA-HQ subset; shipping those datasets is not possible here, so this
// package generates procedural stand-ins with the two properties the
// experiments rely on: (1) class-conditional structure a small CNN can
// learn, and (2) spatial structure (shapes, gratings, faces) that makes
// SSIM/PSNR of a reconstruction meaningful. Pixels live in [0,1], NCHW.
//
// Every dataset is split three ways: Train (the private training set), Aux
// (the attacker's in-distribution auxiliary data — same generator, disjoint
// samples, per the paper's threat model), and Test.
package data

import (
	"fmt"
	"math"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Kind identifies which paper workload a generated dataset mimics.
type Kind int

const (
	// CIFAR10Like mimics CIFAR-10: 10 classes of textured objects.
	CIFAR10Like Kind = iota
	// CIFAR100Like mimics CIFAR-100 at coarse granularity: 20 classes with
	// finer-grained texture differences.
	CIFAR100Like
	// CelebALike mimics the CelebA-HQ identity subset: parametric face
	// sketches where the class is the identity.
	CelebALike
)

// String names the workload.
func (k Kind) String() string {
	switch k {
	case CIFAR10Like:
		return "cifar10-like"
	case CIFAR100Like:
		return "cifar100-like"
	case CelebALike:
		return "celeba-like"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Classes returns the number of classes the workload uses by default.
func (k Kind) Classes() int {
	switch k {
	case CIFAR10Like:
		return 10
	case CIFAR100Like:
		return 20
	case CelebALike:
		return 8
	default:
		return 10
	}
}

// Dataset is a labelled image set.
type Dataset struct {
	Name    string
	Images  *tensor.Tensor // [N, C, H, W], values in [0,1]
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.Images.Shape[0] }

// Image returns sample i as a view sharing the dataset's storage.
func (d *Dataset) Image(i int) *tensor.Tensor { return d.Images.SampleView(i) }

// Batch gathers the given sample indices into a fresh [B,C,H,W] tensor and
// label slice.
func (d *Dataset) Batch(idxs []int) (*tensor.Tensor, []int) {
	c, h, w := d.Images.Shape[1], d.Images.Shape[2], d.Images.Shape[3]
	x := tensor.New(len(idxs), c, h, w)
	labels := make([]int, len(idxs))
	per := c * h * w
	for bi, i := range idxs {
		copy(x.Data[bi*per:(bi+1)*per], d.Images.Data[i*per:(i+1)*per])
		labels[bi] = d.Labels[i]
	}
	return x, labels
}

// Batches partitions a shuffled index range into batches of size bs (last
// batch may be smaller) and returns the index slices.
func (d *Dataset) Batches(bs int, r *rng.RNG) [][]int {
	idxs := r.Perm(d.Len())
	var out [][]int
	for start := 0; start < len(idxs); start += bs {
		end := start + bs
		if end > len(idxs) {
			end = len(idxs)
		}
		out = append(out, idxs[start:end])
	}
	return out
}

// Config controls synthesis.
type Config struct {
	Kind       Kind
	H, W       int // spatial size (default 16)
	Train      int // private training samples
	Aux        int // attacker auxiliary samples
	Test       int
	PixelNoise float64 // per-pixel Gaussian noise std (default 0.02)
	Seed       int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.H == 0 {
		c.H = 16
	}
	if c.W == 0 {
		c.W = c.H
	}
	if c.Train == 0 {
		c.Train = 512
	}
	if c.Aux == 0 {
		c.Aux = 256
	}
	if c.Test == 0 {
		c.Test = 256
	}
	if c.PixelNoise == 0 {
		c.PixelNoise = 0.02
	}
	return c
}

// Splits bundles the three dataset roles.
type Splits struct {
	Train *Dataset
	Aux   *Dataset
	Test  *Dataset
}

// Generate synthesizes a workload. The three splits come from independent
// sub-streams of the seed, so the attacker's Aux split is in-distribution
// but sample-disjoint from Train, matching the paper's query-free threat
// model.
func Generate(cfg Config) *Splits {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	gen := func(role string, n int, r *rng.RNG) *Dataset {
		classes := cfg.Kind.Classes()
		ds := &Dataset{
			Name:    fmt.Sprintf("%s/%s", cfg.Kind, role),
			Images:  tensor.New(n, 3, cfg.H, cfg.W),
			Labels:  make([]int, n),
			Classes: classes,
		}
		for i := 0; i < n; i++ {
			label := i % classes // balanced classes
			ds.Labels[i] = label
			img := ds.Images.SampleView(i)
			switch cfg.Kind {
			case CelebALike:
				drawFace(img, label, classes, r)
			default:
				drawObject(img, label, classes, cfg.Kind == CIFAR100Like, r)
			}
			addPixelNoise(img, cfg.PixelNoise, r)
			clamp01(img)
		}
		return ds
	}
	return &Splits{
		Train: gen("train", cfg.Train, root.Split()),
		Aux:   gen("aux", cfg.Aux, root.Split()),
		Test:  gen("test", cfg.Test, root.Split()),
	}
}

// addPixelNoise perturbs every pixel with Gaussian noise.
func addPixelNoise(img *tensor.Tensor, std float64, r *rng.RNG) {
	if std == 0 {
		return
	}
	for i := range img.Data {
		img.Data[i] += r.Normal(0, std)
	}
}

// clamp01 clips pixels into [0,1].
func clamp01(img *tensor.Tensor) {
	for i, v := range img.Data {
		if v < 0 {
			img.Data[i] = 0
		} else if v > 1 {
			img.Data[i] = 1
		}
	}
}

// palette returns a deterministic RGB color for class k.
func palette(k, classes int) (float64, float64, float64) {
	t := float64(k) / float64(classes)
	// Three phase-shifted cosines give well-separated, saturated colors.
	r := 0.5 + 0.45*math.Cos(2*math.Pi*t)
	g := 0.5 + 0.45*math.Cos(2*math.Pi*t+2.1)
	b := 0.5 + 0.45*math.Cos(2*math.Pi*t+4.2)
	return r, g, b
}

// setPx adds color to pixel (y,x) with weight a.
func setPx(img *tensor.Tensor, y, x int, cr, cg, cb, a float64) {
	h, w := img.Shape[1], img.Shape[2]
	if y < 0 || y >= h || x < 0 || x >= w {
		return
	}
	img.Data[0*h*w+y*w+x] = (1-a)*img.Data[0*h*w+y*w+x] + a*cr
	img.Data[1*h*w+y*w+x] = (1-a)*img.Data[1*h*w+y*w+x] + a*cg
	img.Data[2*h*w+y*w+x] = (1-a)*img.Data[2*h*w+y*w+x] + a*cb
}

// drawObject renders a CIFAR-style sample. The class determines *what* is in
// the image (color palette, shape family, grating frequency band); everything
// about *where and how* it appears — position, scale, orientation, phase,
// background shade and gradient direction, per-sample color jitter — is
// random. High intra-class variation matters for the privacy evaluation:
// without it, an attacker scores SSIM by reconstructing the class prototype
// instead of the actual private input, masking the head-mismatch effect the
// defense produces (CIFAR has the same property).
func drawObject(img *tensor.Tensor, label, classes int, fineTexture bool, r *rng.RNG) {
	h, w := img.Shape[1], img.Shape[2]
	cr, cg, cb := palette(label, classes)
	// Per-sample color jitter on the class palette.
	jit := func(v float64) float64 { return clampA(v + r.Uniform(-0.15, 0.15)) }
	cr, cg, cb = jit(cr), jit(cg), jit(cb)

	// Background: gradient of the class color with random direction, base
	// level and span.
	base := r.Uniform(0.1, 0.45)
	span := r.Uniform(0.15, 0.5)
	gradAngle := r.Uniform(0, 2*math.Pi)
	gy, gx := math.Sin(gradAngle), math.Cos(gradAngle)
	diag := math.Hypot(float64(h-1), float64(w-1))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			proj := (gx*float64(x) + gy*float64(y)) / diag
			shade := base + span*(0.5+proj/2)
			setPx(img, y, x, cr*shade, cg*shade, cb*shade, 1)
		}
	}

	// Grating: the frequency band encodes the class; angle, phase, and
	// contrast are per-sample.
	freq := 2 * math.Pi / float64(w) * (2 + float64(label%3))
	if fineTexture {
		freq = 2 * math.Pi / float64(w) * (2 + 0.5*float64(label%7))
	}
	angle := r.Uniform(0, math.Pi)
	phase := r.Uniform(0, 2*math.Pi)
	contrast := r.Uniform(0.15, 0.35)
	dirY, dirX := math.Sin(angle), math.Cos(angle)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.5 + 0.5*math.Sin(freq*(dirX*float64(x)+dirY*float64(y))+phase)
			setPx(img, y, x, 1, 1, 1, contrast*s)
		}
	}

	// Foreground shape (class mod 4 selects the family) anywhere in frame,
	// wide scale range, jittered contrasting color.
	cx := r.Uniform(0.2, 0.8) * float64(w)
	cy := r.Uniform(0.2, 0.8) * float64(h)
	rad := float64(min(h, w)) * r.Uniform(0.12, 0.34)
	sr, sg, sb := palette((label+classes/2)%classes, classes)
	sr, sg, sb = jit(sr), jit(sg), jit(sb)
	switch label % 4 {
	case 0: // disc
		fillDisc(img, cx, cy, rad, sr, sg, sb)
	case 1: // square
		fillRect(img, cx-rad, cy-rad, cx+rad, cy+rad, sr, sg, sb)
	case 2: // cross
		t := rad * 0.45
		fillRect(img, cx-rad, cy-t, cx+rad, cy+t, sr, sg, sb)
		fillRect(img, cx-t, cy-rad, cx+t, cy+rad, sr, sg, sb)
	case 3: // ring
		fillDisc(img, cx, cy, rad, sr, sg, sb)
		br, bg, bb := cr*0.4, cg*0.4, cb*0.4
		fillDisc(img, cx, cy, rad*0.55, br, bg, bb)
	}
}

// drawFace renders a CelebA-style identity: skin-toned ellipse with eyes and
// mouth whose geometry is identity-specific, with per-sample jitter.
func drawFace(img *tensor.Tensor, id, ids int, r *rng.RNG) {
	h, w := img.Shape[1], img.Shape[2]

	// Background: dark, slightly tinted per sample.
	bg := r.Uniform(0.05, 0.2)
	for i := range img.Data {
		img.Data[i] = bg
	}

	t := float64(id) / float64(ids)
	skinR := 0.75 + 0.2*math.Cos(2*math.Pi*t)
	skinG := 0.55 + 0.15*math.Cos(2*math.Pi*t+1.3)
	skinB := 0.45 + 0.1*math.Cos(2*math.Pi*t+2.6)

	cx := float64(w)/2 + r.Uniform(-1.5, 1.5)
	cy := float64(h)/2 + r.Uniform(-1.5, 1.5)
	// Identity-specific aspect ratio.
	rx := float64(w) * (0.28 + 0.08*math.Sin(2*math.Pi*t))
	ry := float64(h) * (0.34 + 0.06*math.Cos(2*math.Pi*t))
	fillEllipse(img, cx, cy, rx, ry, skinR, skinG, skinB)

	// Eyes: spacing and height encode identity.
	eyeDX := rx * (0.4 + 0.15*math.Sin(4*math.Pi*t))
	eyeY := cy - ry*0.25
	eyeR := math.Max(0.8, float64(min(h, w))*0.05)
	fillDisc(img, cx-eyeDX, eyeY, eyeR, 0.05, 0.05, 0.1)
	fillDisc(img, cx+eyeDX, eyeY, eyeR, 0.05, 0.05, 0.1)

	// Mouth: width and vertical position encode identity.
	mouthW := rx * (0.5 + 0.3*math.Cos(6*math.Pi*t))
	mouthY := cy + ry*0.45
	fillRect(img, cx-mouthW/2, mouthY-0.7, cx+mouthW/2, mouthY+0.7, 0.55, 0.1, 0.15)

	// Hairline: identity-colored band across the top of the face.
	hr, hg, hb := palette(id, ids)
	fillEllipseBand(img, cx, cy-ry*0.75, rx*0.95, ry*0.45, hr*0.5, hg*0.5, hb*0.5)
}

// fillDisc paints a filled circle with soft edges.
func fillDisc(img *tensor.Tensor, cx, cy, rad, cr, cg, cb float64) {
	h, w := img.Shape[1], img.Shape[2]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			if d <= rad {
				a := 1.0
				if d > rad-1 {
					a = rad - d // 1-pixel soft edge
				}
				setPx(img, y, x, cr, cg, cb, clampA(a))
			}
		}
	}
}

// fillEllipse paints a filled axis-aligned ellipse.
func fillEllipse(img *tensor.Tensor, cx, cy, rx, ry, cr, cg, cb float64) {
	h, w := img.Shape[1], img.Shape[2]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			d := dx*dx + dy*dy
			if d <= 1 {
				setPx(img, y, x, cr, cg, cb, 1)
			}
		}
	}
}

// fillEllipseBand paints only the upper half of an ellipse (a hairline).
func fillEllipseBand(img *tensor.Tensor, cx, cy, rx, ry, cr, cg, cb float64) {
	h, w := img.Shape[1], img.Shape[2]
	for y := 0; y < h; y++ {
		if float64(y) > cy {
			continue
		}
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				setPx(img, y, x, cr, cg, cb, 1)
			}
		}
	}
}

// fillRect paints a filled axis-aligned rectangle given float bounds.
func fillRect(img *tensor.Tensor, x0, y0, x1, y1, cr, cg, cb float64) {
	h, w := img.Shape[1], img.Shape[2]
	for y := 0; y < h; y++ {
		if float64(y) < y0 || float64(y) > y1 {
			continue
		}
		for x := 0; x < w; x++ {
			if float64(x) < x0 || float64(x) > x1 {
				continue
			}
			setPx(img, y, x, cr, cg, cb, 1)
		}
	}
}

func clampA(a float64) float64 {
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}
