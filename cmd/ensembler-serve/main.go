// Command ensembler-serve hosts the server bodies of trained pipelines over
// TCP — the cloud half of the collaborative-inference deployment. The secret
// selector and the client tail stay with whoever holds the model artifacts;
// the server only ever sees intermediate features and returns the feature
// vectors of every body it hosts.
//
// Models come from either a single file (-model, the legacy path) or a
// versioned registry directory (-model-dir) written by ensembler-train or
// registry.Store.Publish. With a registry directory the server is
// hot-swappable with zero downtime: requests carry an optional
// (model, version) header resolved per request, SIGHUP re-scans the
// directory and swaps newly published versions in while in-flight requests
// finish on their old epoch, and -rotate-every re-draws the secret selector
// on a cadence (the switching-ensembles defense; the served bodies are
// unchanged, so rotation is invisible on the wire).
//
// -shard k/K turns the process into one member of a sharded fleet: it hosts
// only shard k's contiguous body subset of the ensemble (shard.Plan over
// the model's N), serving the identical wire protocol with fewer feature
// vectors per response. K such processes behind a shard.Client scatter-
// gather runtime replace one monolithic server; a compromised shard host
// then observes only its own bodies' traffic. Selector rotation is a
// client-side affair in a fleet, so -rotate-every is rejected with -shard.
//
// Requests from concurrent connections are served by a bounded worker pool;
// each worker owns private replicas of the bodies it has served, lazily
// re-cloned when a swap publishes a new epoch, and within one request the
// hosted body passes run in parallel. SIGINT/SIGTERM triggers a graceful
// shutdown: in-flight requests finish, their responses flush, and Serve
// returns.
//
//	ensembler-serve -model ensembler.gob -addr :7946 -workers 4 -max-batch 64
//	ensembler-serve -model-dir models/ -model-name cifar -rotate-every 10m
//	ensembler-serve -model-dir models/ -shard 2/3 -addr :7948
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-serve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it parses args, opens the model
// source, serves until ctx is cancelled (the signal path in main), and
// returns errors instead of exiting.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "trained pipeline file from ensembler-train (single-model mode)")
	modelDir := fs.String("model-dir", "", "versioned model registry directory (multi-model, hot-swappable)")
	modelName := fs.String("model-name", "", "default model name (registry mode; defaults to the first model found)")
	addr := fs.String("addr", "127.0.0.1:7946", "listen address (use :0 to pick a free port)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "compute worker pool size (each worker holds body replicas)")
	maxBatch := fs.Int("max-batch", comm.DefaultMaxBatch, "max inputs per batched request")
	rotateEvery := fs.Duration("rotate-every", 0, "selector rotation cadence (registry mode; 0 disables)")
	rotateSeed := fs.Int64("rotate-seed", 1, "seed stream for selector rotations")
	keepVersions := fs.Int("keep-versions", 64, "on-disk versions kept per model when rotating (0 keeps everything)")
	shardSpec := fs.String("shard", "", `host shard k of a K-shard fleet ("k/K"): only that shard's body subset`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *maxBatch <= 0 {
		*maxBatch = comm.DefaultMaxBatch // mirror the server's clamping in the banner
	}
	if *shardSpec != "" && *rotateEvery > 0 {
		return fmt.Errorf("-rotate-every and -shard are mutually exclusive: in a fleet the selector is rotated client-side (publish the rotated pipeline and SIGHUP the shards)")
	}

	reg, err := openRegistry(*modelPath, *modelDir, *modelName)
	if err != nil {
		return err
	}
	defaultModel := reg.Default()
	cur, err := reg.Current(defaultModel)
	if err != nil {
		return err
	}

	provider := comm.ModelProvider(reg)
	shardBanner := ""
	// checkShardLayout (set in shard mode) re-validates the fleet layout
	// against a given version of the default model; the SIGHUP reload path
	// runs it before swapping anything in, so a model republished for a
	// different fleet never gets served as the wrong subset.
	var checkShardLayout func(version int) error
	if *shardSpec != "" {
		k, total, err := shard.ParseSpec(*shardSpec)
		if err != nil {
			return err
		}
		n := cur.Pipeline().Cfg.N
		plan, err := shard.Plan(n, total)
		if err != nil {
			return fmt.Errorf("planning -shard %s over the %d bodies of %s: %w", *shardSpec, n, defaultModel, err)
		}
		r := plan[k-1]
		// A publisher that committed to a shard layout (-shards at train
		// time) recorded it in the manifest; a disagreeing fleet member
		// must fail loudly, not serve the wrong subset. The check also
		// guards N drift: even at the same K, a different N moves this
		// shard's planned range away from the one being served.
		checkShardLayout = func(version int) error {
			store := reg.Store()
			if store == nil {
				return nil
			}
			man, err := store.Manifest(defaultModel, version)
			if err != nil {
				return fmt.Errorf("verifying shard layout of %s v%d: %w", defaultModel, version, err)
			}
			if man.Shards > 0 {
				if man.Shards != total {
					return fmt.Errorf("model %s v%d was published for a %d-shard fleet; -shard %s disagrees",
						defaultModel, version, man.Shards, *shardSpec)
				}
				// The manifest's recorded ranges are the authoritative
				// commitment — not a fresh shard.Plan, whose algorithm
				// could change between the publishing and serving builds.
				rec := man.ShardRanges[k-1]
				if (shard.Range{Lo: rec.Lo, Hi: rec.Hi}) != r {
					return fmt.Errorf("model %s v%d records shard %d/%d as bodies %d..%d; this process serves %s — restart the fleet",
						defaultModel, version, k, total, rec.Lo, rec.Hi-1, r)
				}
				return nil
			}
			// No recorded commitment: derive the layout and guard N drift —
			// at the same K, a different N moves this shard's range.
			newPlan, err := shard.Plan(man.N, total)
			if err != nil {
				return fmt.Errorf("model %s v%d has %d bodies, unshardable as -shard %s: %w",
					defaultModel, version, man.N, *shardSpec, err)
			}
			if newPlan[k-1] != r {
				return fmt.Errorf("model %s v%d (N=%d) plans shard %d/%d as bodies %s; this process serves %s — restart the fleet",
					defaultModel, version, man.N, k, total, newPlan[k-1], r)
			}
			return nil
		}
		if err := checkShardLayout(cur.Version()); err != nil {
			return err
		}
		provider, err = comm.NewSubsetProvider(reg, r.Lo, r.Hi)
		if err != nil {
			return err
		}
		shardBanner = fmt.Sprintf("shard %d/%d hosting bodies %s of %d — ", k, total, r, n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	defer ln.Close()
	srv := comm.NewModelServer(provider,
		comm.WithWorkers(*workers),
		comm.WithMaxBatch(*maxBatch),
	)

	// The bound address line comes first and stands alone so scripts (and
	// tests using -addr :0) can scrape the actual port.
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	fmt.Fprintf(stdout, "%sserving %s v%d (%d bodies) as default — %d models total, %d workers, max batch %d; selector stays client-side\n",
		shardBanner, defaultModel, cur.Version(), cur.Pipeline().Cfg.N, len(reg.Models()), srv.Workers(), *maxBatch)

	// A shard that ends up serving a layout-divergent model must stop
	// serving — wrong-subset responses are shape-identical to right ones,
	// so fail-stop is the only loud failure available once a bad version
	// is live. serveCtx cancellation drains in-flight requests first.
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	var fatalMu sync.Mutex
	var fatalErr error
	failServe := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
			stopServe()
		}
		fatalMu.Unlock()
	}

	// SIGHUP: re-scan the registry directory and hot-swap anything newer.
	// Stop unregisters delivery before close, so the drained channel ends
	// the goroutine — run() must not leak one handler per invocation.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer func() {
		signal.Stop(hup)
		close(hup)
	}()
	go func() {
		for range hup {
			if *modelDir == "" {
				fmt.Fprintln(stdout, "reload: ignored (no -model-dir)")
				continue
			}
			// A shard refuses to swap in a model whose recorded fleet
			// layout disagrees with what this process serves: the check
			// runs against the store's latest version before LoadStore
			// installs anything.
			if checkShardLayout != nil {
				latest, err := reg.Store().Latest(defaultModel)
				if err != nil {
					fmt.Fprintf(stderr, "reload: %v\n", err)
					continue
				}
				if err := checkShardLayout(latest); err != nil {
					fmt.Fprintf(stderr, "reload: refused: %v\n", err)
					continue
				}
			}
			updated, err := reg.LoadStore()
			if err != nil {
				fmt.Fprintf(stderr, "reload: %v\n", err)
				continue
			}
			// Close the check-then-act window: a publish can land between
			// the pre-check above and LoadStore's own Latest read. If the
			// version now live disagrees with this shard's layout, stop
			// serving rather than serve the wrong body subset.
			if checkShardLayout != nil {
				cur, err := reg.Current(defaultModel)
				if err == nil {
					err = checkShardLayout(cur.Version())
				}
				if err != nil {
					failServe(fmt.Errorf("shard layout diverged after reload: %w", err))
					continue
				}
			}
			fmt.Fprintf(stdout, "reload: %d model(s) swapped in\n", updated)
		}
	}()

	// Selector rotation cadence: each tick re-draws the default model's
	// secret subset and publishes it as a new version (persisted when a
	// registry directory is attached). The swap is a pointer flip; workers
	// lazily re-clone between requests, so traffic never stalls.
	if *rotateEvery > 0 {
		go func() {
			ticker := time.NewTicker(*rotateEvery)
			defer ticker.Stop()
			seed := *rotateSeed
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					seed++
					start := time.Now()
					ep, err := reg.RotateSelector(defaultModel, ensemble.RotateOptions{Seed: seed})
					if err != nil {
						fmt.Fprintf(stderr, "rotate: %v\n", err)
						continue
					}
					fmt.Fprintf(stdout, "rotate: %s now v%d (selection re-drawn in %v; bodies unchanged)\n",
						ep.Name(), ep.Version(), time.Since(start).Round(time.Millisecond))
					// A rotation cadence writes a full pipeline per tick:
					// prune the store so disk (and the checksum-verifying
					// Open on restart) stays bounded.
					if store := reg.Store(); store != nil && *keepVersions > 0 {
						if pruned, err := store.Prune(ep.Name(), *keepVersions); err != nil {
							fmt.Fprintf(stderr, "prune: %v\n", err)
						} else if pruned > 0 {
							fmt.Fprintf(stdout, "prune: removed %d old version(s) of %s\n", pruned, ep.Name())
						}
					}
				}
			}
		}()
	}

	if err := srv.Serve(serveCtx, ln); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return nil
}

// openRegistry builds the registry the server reads through, from either a
// single model file or a registry directory, failing with a descriptive
// error (never a panic) when the artifact is missing or corrupt.
func openRegistry(modelPath, modelDir, modelName string) (*registry.Registry, error) {
	switch {
	case modelDir != "" && modelPath != "":
		return nil, fmt.Errorf("-model and -model-dir are mutually exclusive")
	case modelDir != "":
		if _, err := os.Stat(modelDir); err != nil {
			return nil, fmt.Errorf("model directory %s is missing (train with ensembler-train -model-dir %s first): %w", modelDir, modelDir, err)
		}
		reg, err := registry.OpenDir(modelDir)
		if err != nil {
			return nil, err
		}
		if len(reg.Models()) == 0 {
			return nil, fmt.Errorf("model directory %s holds no published models", modelDir)
		}
		if modelName != "" {
			if err := reg.SetDefault(modelName); err != nil {
				return nil, err
			}
		}
		return reg, nil
	default:
		if modelPath == "" {
			modelPath = "ensembler.gob"
		}
		if _, err := os.Stat(modelPath); err != nil {
			return nil, fmt.Errorf("model file %s is missing (train with ensembler-train -out %s first): %w", modelPath, modelPath, err)
		}
		e, err := ensemble.LoadFile(modelPath)
		if err != nil {
			return nil, fmt.Errorf("loading model %s: %w", modelPath, err)
		}
		name := modelName
		if name == "" {
			name = "default"
		}
		reg := registry.New(nil)
		if _, err := reg.Publish(name, e); err != nil {
			return nil, err
		}
		return reg, nil
	}
}
