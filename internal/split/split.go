// Package split implements collaborative inference model splitting: the
// head/body/tail decomposition M = {Mc,h, Ms, Mc,t} of the paper's threat
// model, builders for the scaled ResNet architecture used throughout the
// reproduction, and the plain (single-body) training loop. The paper's
// strictest setting is reproduced structurally: h=1 (the client head is a
// single 3×3 convolution) and t=1 (the client tail is the final fully
// connected layer).
package split

import (
	"fmt"
	"io"

	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Arch describes the split network family. The body is a scaled-down ResNet:
// batch norm + ReLU over the head's output, an optional max-pool (the paper
// keeps it for CIFAR-10 and removes it for CIFAR-100), a chain of stride-2
// residual blocks, and global average pooling producing the feature vector
// the server returns.
type Arch struct {
	InC, H, W   int   // input image shape
	HeadC       int   // channels produced by the client's single conv layer
	BlockWidths []int // output channels of each stride-2 residual block
	Classes     int
	UseMaxPool  bool
}

// DefaultArch returns the scaled configuration used by the experiments for a
// given workload kind.
func DefaultArch(kind data.Kind) Arch {
	a := Arch{InC: 3, H: 16, W: 16, HeadC: 8, BlockWidths: []int{16, 32}, Classes: kind.Classes()}
	// Mirror the paper's §IV-A architecture switch: MaxPool present for
	// CIFAR-10, removed for CIFAR-100 (larger intermediate feature map);
	// CelebA keeps it.
	switch kind {
	case data.CIFAR10Like, data.CelebALike:
		a.UseMaxPool = true
	case data.CIFAR100Like:
		a.UseMaxPool = false
	}
	return a
}

// FeatureDim returns the length of the feature vector one body produces.
func (a Arch) FeatureDim() int { return a.BlockWidths[len(a.BlockWidths)-1] }

// HeadOutShape returns the [C,H,W] shape of the client's intermediate output
// (the tensor transmitted to the server).
func (a Arch) HeadOutShape() (c, h, w int) { return a.HeadC, a.H, a.W }

// NewHead builds the client head Mc,h: a single 3×3 convolution (h=1).
func (a Arch) NewHead(name string, r *rng.RNG) *nn.Network {
	return nn.NewNetwork(name, nn.NewConv2D(name+".conv", a.InC, a.HeadC, 3, 1, 1, true, r))
}

// NewBody builds one server body Ms: BN + ReLU (+ MaxPool) + residual blocks
// + global average pooling, mapping the head's output to a FeatureDim vector.
func (a Arch) NewBody(name string, r *rng.RNG) *nn.Network {
	net := nn.NewNetwork(name,
		nn.NewBatchNorm2D(name+".bn0", a.HeadC),
		nn.NewReLU(),
	)
	if a.UseMaxPool {
		net.Append(nn.NewMaxPool2D(2, 2))
	}
	in := a.HeadC
	for i, w := range a.BlockWidths {
		net.Append(nn.NewBasicBlock(fmt.Sprintf("%s.block%d", name, i), in, w, 2, r))
		in = w
	}
	net.Append(nn.NewGlobalAvgPool())
	return net
}

// NewTail builds the client tail Mc,t: the final fully connected layer
// (t=1), taking p concatenated feature vectors. dropout > 0 inserts a
// dropout layer before the FC, which is the DR defense variant.
func (a Arch) NewTail(name string, p int, dropout float64, r *rng.RNG) *nn.Network {
	net := nn.NewNetwork(name)
	if dropout > 0 {
		net.Append(nn.NewDropout(dropout, r.Split()))
	}
	net.Append(nn.NewLinear(name+".fc", p*a.FeatureDim(), a.Classes, r))
	return net
}

// Model is a single collaborative-inference pipeline
// Mc,t(Ms(Mc,h(x)+noise)); Noise may be nil for the unprotected baseline.
type Model struct {
	Arch  Arch
	Head  *nn.Network
	Noise *nn.AdditiveNoise
	Body  *nn.Network
	Tail  *nn.Network
}

// NewModel builds a fresh single-body pipeline. sigma == 0 builds the
// unprotected baseline (no noise layer); noiseMode selects fixed (the paper's
// predefined N(0,σ)), resampled, or trainable (Shredder-style) noise; dropout
// is forwarded to the tail.
func NewModel(name string, a Arch, sigma float64, noiseMode nn.NoiseMode, dropout float64, r *rng.RNG) *Model {
	m := &Model{
		Arch: a,
		Head: a.NewHead(name+".head", r),
		Body: a.NewBody(name+".body", r),
		Tail: a.NewTail(name+".tail", 1, dropout, r),
	}
	if sigma > 0 {
		c, h, w := a.HeadOutShape()
		m.Noise = nn.NewAdditiveNoise(name+".noise", noiseMode, c, h, w, sigma, r.Split())
	}
	return m
}

// ClientFeatures computes the intermediate output the client transmits:
// Mc,h(x) plus the (possibly nil) noise. This is exactly what the
// adversarial server observes.
func (m *Model) ClientFeatures(x *tensor.Tensor, train bool) *tensor.Tensor {
	f := m.Head.Forward(x, train)
	if m.Noise != nil {
		f = m.Noise.Forward(f, train)
	}
	return f
}

// Forward runs the full pipeline to logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f := m.ClientFeatures(x, train)
	feat := m.Body.Forward(f, train)
	return m.Tail.Forward(feat, train)
}

// Backward propagates dL/d(logits) through the whole pipeline and returns
// dL/d(input image).
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := m.Tail.Backward(grad)
	g = m.Body.Backward(g)
	if m.Noise != nil {
		g = m.Noise.Backward(g)
	}
	return m.Head.Backward(g)
}

// Params returns every trainable parameter of the pipeline (including
// trainable noise, when present).
func (m *Model) Params() []*nn.Param {
	ps := append(m.Head.Params(), m.Body.Params()...)
	if m.Noise != nil {
		ps = append(ps, m.Noise.Params()...)
	}
	return append(ps, m.Tail.Params()...)
}

// TrainOptions configures a supervised training run.
type TrainOptions struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	Seed        int64
	Log         io.Writer // optional progress log
}

// withDefaults fills zero fields with sensible training defaults.
func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	return o
}

// Train fits the model's parameters to the dataset with SGD and a step
// decay schedule, returning the final-epoch mean training loss.
func Train(m *Model, ds *data.Dataset, opts TrainOptions) float64 {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed)
	opt := optim.NewSGD(m.Params(), opts.LR, opts.Momentum, opts.WeightDecay)
	sched := optim.StepDecay(opts.LR, 0.5, max(1, opts.Epochs/2))
	var last float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		opt.SetLR(sched(epoch))
		total, batches := 0.0, 0
		for _, idxs := range ds.Batches(opts.BatchSize, r) {
			x, labels := ds.Batch(idxs)
			logits := m.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			m.Backward(grad)
			opt.Step()
			total += loss
			batches++
		}
		last = total / float64(batches)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%s epoch %d/%d loss %.4f\n", m.Head.Name, epoch+1, opts.Epochs, last)
		}
	}
	return last
}

// Evaluate returns classification accuracy of the pipeline on ds (eval
// mode), processing in batches to bound memory.
func Evaluate(m *Model, ds *data.Dataset) float64 {
	return EvaluateFn(ds, func(x *tensor.Tensor) *tensor.Tensor { return m.Forward(x, false) })
}

// EvaluateFn measures accuracy of an arbitrary logits function over ds.
func EvaluateFn(ds *data.Dataset, logitsFn func(x *tensor.Tensor) *tensor.Tensor) float64 {
	const bs = 64
	correct, total := 0.0, 0
	for start := 0; start < ds.Len(); start += bs {
		end := start + bs
		if end > ds.Len() {
			end = ds.Len()
		}
		idxs := make([]int, end-start)
		for i := range idxs {
			idxs[i] = start + i
		}
		x, labels := ds.Batch(idxs)
		logits := logitsFn(x)
		correct += nn.Accuracy(logits, labels) * float64(len(idxs))
		total += len(idxs)
	}
	return correct / float64(total)
}
