// Package experiments regenerates every quantitative result in the paper's
// evaluation: Table I (defense quality across datasets), Table II (defense
// mechanisms on CIFAR-10), Table III (latency), and the §IV prose claims.
// Each table function returns structured rows; Render* helpers print them in
// the paper's layout. Scale selects how close to the paper's operating point
// the run sits (the full point needs ~N×10 network trainings; the small
// point finishes in minutes on a laptop CPU).
package experiments

import (
	"fmt"
	"io"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/defense"
	"ensembler/internal/ensemble"
	"ensembler/internal/latency"
	"ensembler/internal/split"
)

// Scale bundles every size knob of an experiment run.
type Scale struct {
	N, P          int
	Sigma, Lambda float64
	Stage1Epochs  int
	Stage3Epochs  int
	ShadowEpochs  int
	DecoderEpochs int
	Restarts      int // best-of-k attack restarts
	Train, Aux    int // dataset sizes
	Test          int
	EvalSamples   int // images reconstructed per attack
	BatchSize     int
}

// Small returns the fast operating point used by the benchmarks and CI:
// every mechanism exercised, minutes of CPU time. The attack budget
// (ShadowEpochs/Aux) matters: trimming it weakens the MIA against the
// Single baseline disproportionately and erases the defense contrast the
// tables exist to show, so treat these values as a floor.
func Small() Scale {
	return Scale{
		N: 3, P: 2, Sigma: 0.05, Lambda: 1.0,
		Stage1Epochs: 5, Stage3Epochs: 8,
		ShadowEpochs: 25, DecoderEpochs: 8, Restarts: 1,
		Train: 448, Aux: 224, Test: 128, EvalSamples: 48, BatchSize: 32,
	}
}

// Paper returns the paper-matched operating point (N=10; P set per dataset
// by TableI). Expect tens of minutes on a multicore CPU.
func Paper() Scale {
	s := Small()
	s.N, s.P = 10, 4
	s.Restarts = 2
	s.Train, s.Aux, s.Test = 1024, 512, 256
	s.EvalSamples = 64
	return s
}

// attackConfig builds the attack battery settings for a scale.
func (s Scale) attackConfig(arch split.Arch, seed int64) attack.Config {
	return attack.Config{
		Arch:             arch,
		ShadowEpochs:     s.ShadowEpochs,
		DecoderEpochs:    s.DecoderEpochs,
		BatchSize:        s.BatchSize,
		ShadowLR:         0.01,
		Seed:             seed,
		StructuredShadow: true,
		Restarts:         s.Restarts,
	}
}

// trainOptions builds member-training settings for a scale.
func (s Scale) trainOptions(epochs int) split.TrainOptions {
	return split.TrainOptions{Epochs: epochs, BatchSize: s.BatchSize, LR: 0.05}
}

// Row is one defense-quality table row: the paper reports the accuracy
// change versus the unprotected model and the reconstruction quality of the
// strongest applicable attack.
type Row struct {
	Name     string
	DeltaAcc float64 // accuracy minus the unprotected baseline's accuracy
	SSIM     float64
	PSNR     float64
}

// RenderRows prints rows in the paper's table layout.
func RenderRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %8s %8s %8s\n", "Name", "ΔAcc", "SSIM↓", "PSNR↓")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %7.2f%% %8.3f %8.2f\n", r.Name, 100*r.DeltaAcc, r.SSIM, r.PSNR)
	}
}

// TableIDataset holds one dataset's block of Table I.
type TableIDataset struct {
	Kind data.Kind
	P    int
	Rows []Row
}

// TableI regenerates the paper's Table I: Single vs Ours-{Adaptive, SSIM,
// PSNR} on the three workloads, with the paper's per-dataset P (the paper
// selects {4,3,5} of N=10; scaled runs clamp P to the scale's N).
func TableI(sc Scale, seed int64, log io.Writer) []TableIDataset {
	specs := []struct {
		kind data.Kind
		p    int
	}{
		{data.CIFAR10Like, 4},
		{data.CIFAR100Like, 3},
		{data.CelebALike, 5},
	}
	var out []TableIDataset
	for di, spec := range specs {
		p := spec.p
		if p > sc.N {
			p = sc.N
		}
		if p < 1 {
			p = 1
		}
		block := TableIDataset{Kind: spec.kind, P: p}
		block.Rows = datasetRows(sc, spec.kind, p, seed+int64(di)*1000, false, log)
		out = append(out, block)
	}
	return out
}

// datasetRows runs the Table I battery on one workload: baseline accuracy,
// the Single defense row, and the three Ours rows. fullBattery adds the
// Table II extra baselines.
func datasetRows(sc Scale, kind data.Kind, p int, seed int64, fullBattery bool, log io.Writer) []Row {
	sp := data.Generate(data.Config{Kind: kind, Train: sc.Train, Aux: sc.Aux, Test: sc.Test, Seed: seed})
	arch := split.DefaultArch(kind)
	opts := sc.trainOptions(sc.Stage1Epochs)
	acfg := sc.attackConfig(arch, seed+17)

	logf(log, "[%s] training unprotected baseline\n", kind)
	none := defense.TrainNone(arch, sp.Train, opts, seed+1)
	baseAcc := none.Accuracy(sp.Test)

	var rows []Row
	if fullBattery {
		oNone := attack.RunDecoderAttack(acfg, "none", none.Bodies(), false, none, sp.Aux, sp.Test, sc.EvalSamples)
		rows = append(rows, Row{Name: "None", DeltaAcc: 0, SSIM: oNone.SSIM, PSNR: oNone.PSNR})

		logf(log, "[%s] training Shredder baseline\n", kind)
		shred := defense.TrainShredder(arch, sc.Sigma, 1e-3, sp.Train, opts, seed+2, nil)
		oShred := attack.RunDecoderAttack(acfg, "shredder", shred.Bodies(), false, shred, sp.Aux, sp.Test, sc.EvalSamples)
		rows = append(rows, Row{Name: "Shredder", DeltaAcc: shred.Accuracy(sp.Test) - baseAcc, SSIM: oShred.SSIM, PSNR: oShred.PSNR})
	}

	logf(log, "[%s] training Single baseline\n", kind)
	single := defense.TrainSingle(arch, sc.Sigma, sp.Train, opts, seed+3)
	oSingle := attack.RunDecoderAttack(acfg, "single", single.Bodies(), false, single, sp.Aux, sp.Test, sc.EvalSamples)
	rows = append(rows, Row{Name: "Single", DeltaAcc: single.Accuracy(sp.Test) - baseAcc, SSIM: oSingle.SSIM, PSNR: oSingle.PSNR})

	if fullBattery {
		logf(log, "[%s] training DR-single baseline\n", kind)
		dr := defense.TrainDRSingle(arch, 0.3, sp.Train, opts, seed+4)
		oDR := attack.RunDecoderAttack(acfg, "dr-single", dr.Bodies(), false, dr, sp.Aux, sp.Test, sc.EvalSamples)
		rows = append(rows, Row{Name: "DR-single", DeltaAcc: dr.Accuracy(sp.Test) - baseAcc, SSIM: oDR.SSIM, PSNR: oDR.PSNR})

		logf(log, "[%s] training DR-%d ensemble\n", kind, sc.N)
		drn := defense.TrainDRN(drnConfig(sc, arch, p, seed+5), 0.3, sp.Train, nil)
		drnOuts := attack.SingleBodyAttacks(acfg, drn.Bodies(), drn, sp.Aux, sp.Test, sc.EvalSamples)
		drnAcc := drn.Accuracy(sp.Test) - baseAcc
		bs, bp := attack.BestBy(drnOuts, "ssim"), attack.BestBy(drnOuts, "psnr")
		rows = append(rows,
			Row{Name: fmt.Sprintf("DR-%d - SSIM", sc.N), DeltaAcc: drnAcc, SSIM: bs.SSIM, PSNR: bs.PSNR},
			Row{Name: fmt.Sprintf("DR-%d - PSNR", sc.N), DeltaAcc: drnAcc, SSIM: bp.SSIM, PSNR: bp.PSNR},
		)
	}

	logf(log, "[%s] training Ensembler (N=%d, P=%d)\n", kind, sc.N, p)
	ens := defense.TrainEnsembler(ensemblerConfig(sc, arch, p, seed+6), sp.Train, nil)
	ensAcc := ens.Accuracy(sp.Test) - baseAcc
	oAdaptive := attack.AdaptiveAttack(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples)
	singles := attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples)
	bs, bp := attack.BestBy(singles, "ssim"), attack.BestBy(singles, "psnr")
	rows = append(rows,
		Row{Name: "Ours - Adaptive", DeltaAcc: ensAcc, SSIM: oAdaptive.SSIM, PSNR: oAdaptive.PSNR},
		Row{Name: "Ours - SSIM", DeltaAcc: ensAcc, SSIM: bs.SSIM, PSNR: bs.PSNR},
		Row{Name: "Ours - PSNR", DeltaAcc: ensAcc, SSIM: bp.SSIM, PSNR: bp.PSNR},
	)
	return rows
}

// ensemblerConfig maps a Scale onto the ensemble trainer's configuration.
func ensemblerConfig(sc Scale, arch split.Arch, p int, seed int64) ensemble.Config {
	return ensemble.Config{
		Arch: arch, N: sc.N, P: p, Sigma: sc.Sigma, Lambda: sc.Lambda, Seed: seed,
		Stage1:      sc.trainOptions(sc.Stage1Epochs),
		Stage3:      sc.trainOptions(sc.Stage3Epochs),
		Stage1Noise: true,
	}
}

// drnConfig is ensemblerConfig for the DR-N ablation (TrainDRN overrides the
// noise/regularizer fields itself).
func drnConfig(sc Scale, arch split.Arch, p int, seed int64) ensemble.Config {
	return ensemblerConfig(sc, arch, p, seed)
}

// TableII regenerates the paper's Table II: the full defense battery on the
// CIFAR-10-like workload.
func TableII(sc Scale, seed int64, log io.Writer) []Row {
	p := 4
	if p > sc.N {
		p = sc.N
	}
	return datasetRows(sc, data.CIFAR10Like, p, seed, true, log)
}

// TableIII regenerates the paper's latency table via the analytic cost
// model (batch 128, full ResNet-18, N server bodies).
func TableIII(n int) []latency.Breakdown {
	return latency.TableIII(n)
}

// RenderTableIII prints the latency rows in the paper's layout.
func RenderTableIII(w io.Writer, rows []latency.Breakdown) {
	fmt.Fprintf(w, "Table III — time (s) for a batch of 128 images\n")
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s\n", "Name", "Client", "Server", "Comm", "Total")
	for _, b := range rows {
		fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f %8.2f\n", b.Name, b.Client, b.Server, b.Communication, b.Total())
	}
}

// Claims reports the paper's §IV headline numbers computed from table rows.
type ClaimReport struct {
	SSIMDropVsSingle float64 // paper: up to 43.5%
	PSNRDropVsSingle float64 // paper: up to 40.5%
	LatencyOverhead  float64 // paper: 4.8%
}

// ComputeClaims derives the headline percentages from a Table I dataset
// block (the best Ours row against Single) and the latency model.
func ComputeClaims(rows []Row, n int) ClaimReport {
	var single, bestOurs *Row
	for i := range rows {
		r := &rows[i]
		switch {
		case r.Name == "Single":
			single = r
		case len(r.Name) >= 4 && r.Name[:4] == "Ours":
			if bestOurs == nil || r.SSIM < bestOurs.SSIM {
				bestOurs = r
			}
		}
	}
	rep := ClaimReport{LatencyOverhead: latency.OverheadPercent(n)}
	if single != nil && bestOurs != nil {
		if single.SSIM > 0 {
			rep.SSIMDropVsSingle = 100 * (single.SSIM - bestOurs.SSIM) / single.SSIM
		}
		if single.PSNR > 0 {
			rep.PSNRDropVsSingle = 100 * (single.PSNR - bestOurs.PSNR) / single.PSNR
		}
	}
	return rep
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
