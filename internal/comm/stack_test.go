package comm

import (
	"testing"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// TestStackSplitRoundTrip pins the batch stacking/splitting helpers.
func TestStackSplitRoundTrip(t *testing.T) {
	mk := func(seed int64, rows int) *tensor.Tensor {
		x := tensor.New(rows, 4, 8, 8)
		rng.New(seed).FillNormal(x.Data, 0, 1)
		return x
	}
	a, b := mk(56, 2), mk(57, 3)
	stacked, rows, err := stackInputs([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if stacked.Shape[0] != 5 {
		t.Fatalf("stacked rows = %d, want 5", stacked.Shape[0])
	}
	parts := splitRows(stacked, rows)
	if !parts[0].AllClose(a, 0) || !parts[1].AllClose(b, 0) {
		t.Error("stack→split must round-trip exactly")
	}
}

// TestValidateFeaturesRejectsHostileTensors covers the wire-trust boundary:
// tensors straight off the network can lie about their shape.
func TestValidateFeaturesRejectsHostileTensors(t *testing.T) {
	cases := []struct {
		name string
		f    *tensor.Tensor
	}{
		{"nil", nil},
		{"wrong rank", &tensor.Tensor{Shape: []int{2, 2}, Data: make([]float64, 4)}},
		{"zero dim", &tensor.Tensor{Shape: []int{0, 3, 8, 8}}},
		{"negative dim", &tensor.Tensor{Shape: []int{1, -3, 8, 8}, Data: nil}},
		{"shape/data mismatch", &tensor.Tensor{Shape: []int{1, 4, 8, 8}, Data: make([]float64, 5)}},
	}
	for _, tc := range cases {
		if err := validateFeatures(tc.f); err == nil {
			t.Errorf("%s: must be rejected", tc.name)
		}
	}
}
