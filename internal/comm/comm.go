// Package comm implements collaborative inference over a real network: a
// server that hosts the N ensemble bodies behind a gob-encoded TCP protocol,
// and a client that transmits its head's output, receives all N feature
// vectors, and applies its secret Selector and tail locally. This is the
// deployment form of Fig. 1/Fig. 2: the selection indices never appear on
// the wire, which is precisely what the defense relies on.
package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// Request is the client→server message: the intermediate features
// Mc,h(x)+noise for a batch.
type Request struct {
	Features *tensor.Tensor
}

// Response is the server→client message: one feature matrix per hosted body
// (the server cannot know which the client will use).
type Response struct {
	Features []*tensor.Tensor
	Err      string
}

// Server hosts ensemble bodies for remote clients.
type Server struct {
	bodies []*nn.Network
	mu     sync.Mutex // bodies cache per-forward state; serialize passes
}

// NewServer creates a server over the given bodies.
func NewServer(bodies []*nn.Network) *Server {
	if len(bodies) == 0 {
		panic("comm: server needs at least one body")
	}
	return &Server{bodies: bodies}
}

// Serve accepts connections until the listener closes, handling each client
// in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// handle processes one client connection until it closes.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // client closed or protocol error
		}
		resp := s.process(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// process runs every body over the transmitted features.
func (s *Server) process(req *Request) *Response {
	if req.Features == nil || len(req.Features.Shape) != 4 {
		return &Response{Err: "comm: request must carry [N,C,H,W] features"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*tensor.Tensor, len(s.bodies))
	for i, b := range s.bodies {
		out[i] = b.Forward(req.Features, false)
	}
	return &Response{Features: out}
}

// Timing breaks down one remote inference round trip as measured at the
// client — the empirical analogue of a Table III row.
type Timing struct {
	Client    time.Duration // head + selector + tail compute
	RoundTrip time.Duration // upload + server compute + download
	BytesUp   int
	BytesDown int
}

// countingConn wraps a net.Conn tallying payload bytes in each direction.
type countingConn struct {
	net.Conn
	up, down int
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.down += n
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.up += n
	return n, err
}

// Client performs remote ensemble inference: local head+noise, remote
// bodies, local secret selection and tail.
type Client struct {
	conn *countingConn
	enc  *gob.Encoder
	dec  *gob.Decoder

	// ComputeFeatures produces the transmitted features for an image batch
	// (head + noise).
	ComputeFeatures func(x *tensor.Tensor) *tensor.Tensor
	// Select applies the secret selector to the N returned feature
	// matrices, producing the tail input.
	Select func(features []*tensor.Tensor) *tensor.Tensor
	// Tail maps the selected features to logits.
	Tail *nn.Network
}

// Dial connects a client to a comm.Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dialing %s: %w", addr, err)
	}
	cc := &countingConn{Conn: conn}
	return &Client{conn: cc, enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}, nil
}

// NewLocalClient wraps an existing connection (for tests over net.Pipe).
func NewLocalClient(conn net.Conn) *Client {
	cc := &countingConn{Conn: conn}
	return &Client{conn: cc, enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Infer runs the full collaborative pipeline for an image batch and returns
// logits plus the measured timing breakdown.
func (c *Client) Infer(x *tensor.Tensor) (*tensor.Tensor, Timing, error) {
	var t Timing
	upBefore, downBefore := c.conn.up, c.conn.down

	start := time.Now()
	features := c.ComputeFeatures(x)
	t.Client += time.Since(start)

	netStart := time.Now()
	if err := c.enc.Encode(&Request{Features: features}); err != nil {
		return nil, t, fmt.Errorf("comm: sending features: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, t, fmt.Errorf("comm: receiving features: %w", err)
	}
	t.RoundTrip = time.Since(netStart)
	if resp.Err != "" {
		return nil, t, fmt.Errorf("comm: server error: %s", resp.Err)
	}

	start = time.Now()
	selected := c.Select(resp.Features)
	logits := c.Tail.Forward(selected, false)
	t.Client += time.Since(start)
	t.BytesUp = c.conn.up - upBefore
	t.BytesDown = c.conn.down - downBefore
	return logits, t, nil
}
