package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-scale", "huge"}, "unknown scale"},
		{[]string{"-table", "9"}, "unknown table"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunTableIII(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "3", "-n", "10"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Standard CI", "Ensembler", "STAMP", "overhead vs Standard CI"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("Table III output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunServingBench(t *testing.T) {
	if testing.Short() {
		t.Skip("serving bench smoke test")
	}
	var out bytes.Buffer
	err := run([]string{"-serving", "-n", "2", "-clients", "2", "-workers", "2", "-duration", "150ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving bench", "1 connection", "analytic model"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serving bench output missing %q:\n%s", want, out.String())
		}
	}
}
