package comm

import (
	"fmt"

	"ensembler/internal/nn"
)

// This file is the server half of sharded serving: a provider wrapper that
// restricts every resolved model to a contiguous body subset [lo, hi). A
// shard server is an ordinary comm.Server constructed over a subset
// provider — the wire protocol is unchanged, the response simply carries
// hi−lo feature tensors instead of N. The client-side scatter-gather
// runtime (package shard) reassembles the full body order across shards and
// applies the secret selector locally, so a compromised shard host observes
// only its own bodies' traffic and, as ever, no selection indices.

// RangeReplicator is an optional ServedModel refinement: models that can
// clone just a body subrange directly (registry epochs do, via
// ensemble.CloneBodyRange) avoid cloning all N bodies only to discard most
// of them. Models without it are sliced after a full replica build.
type RangeReplicator interface {
	NewReplicaRange(lo, hi int) []*nn.Network
}

// BodyCounter is an optional ServedModel refinement reporting how many
// bodies the model has, letting a subset provider reject an out-of-range
// restriction at resolve time (a shard launched with the wrong -shard k/K
// against a smaller model) instead of serving garbage.
type BodyCounter interface {
	NumBodies() int
}

// subsetProvider restricts every model resolved through the inner provider
// to the body range [lo, hi).
type subsetProvider struct {
	inner  ModelProvider
	lo, hi int
}

// NewSubsetProvider wraps a provider so every resolved model serves only
// bodies [lo, hi) of the underlying ensemble — the restriction behind
// ensembler-serve's -shard k/K flag. The subset keeps the underlying
// model's name, version, and epoch sequence, so hot swaps and rotations
// propagate to shard servers exactly as they do to a monolith.
func NewSubsetProvider(p ModelProvider, lo, hi int) (ModelProvider, error) {
	if p == nil {
		return nil, fmt.Errorf("comm: subset provider needs an inner provider")
	}
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("comm: invalid body subset [%d,%d)", lo, hi)
	}
	return &subsetProvider{inner: p, lo: lo, hi: hi}, nil
}

func (sp *subsetProvider) Resolve(model string, version int) (ServedModel, error) {
	m, err := sp.inner.Resolve(model, version)
	if err != nil {
		return nil, err
	}
	if bc, ok := m.(BodyCounter); ok && sp.hi > bc.NumBodies() {
		return nil, fmt.Errorf("comm: model %q v%d has %d bodies, shard wants [%d,%d) — was the fleet planned for a different N?",
			m.Name(), m.Version(), bc.NumBodies(), sp.lo, sp.hi)
	}
	return &subsetModel{ServedModel: m, lo: sp.lo, hi: sp.hi}, nil
}

// subsetModel narrows one resolved model to the shard's body range. Name,
// Version, and Seq pass through unchanged: a shard server's replica cache
// keys on the same epoch identity as a monolith's, so a registry publish
// invalidates shard replicas on exactly the same trigger.
type subsetModel struct {
	ServedModel
	lo, hi int
}

func (m *subsetModel) NewReplica() []*nn.Network {
	if rr, ok := m.ServedModel.(RangeReplicator); ok {
		return rr.NewReplicaRange(m.lo, m.hi)
	}
	full := m.ServedModel.NewReplica()
	if m.hi > len(full) {
		panic(fmt.Sprintf("comm: model %q v%d replica has %d bodies, shard wants [%d,%d)",
			m.Name(), m.Version(), len(full), m.lo, m.hi))
	}
	return full[m.lo:m.hi]
}
