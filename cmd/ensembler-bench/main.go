// Command ensembler-bench regenerates the paper's evaluation tables from
// the command line and measures the serving subsystem:
//
//	ensembler-bench -table 1              # Table I (defense quality, 3 datasets)
//	ensembler-bench -table 2              # Table II (defense battery, CIFAR-10-like)
//	ensembler-bench -table 3              # Table III (latency model)
//	ensembler-bench -table all -scale paper
//	ensembler-bench -claims               # §IV headline percentages
//	ensembler-bench -serving -clients 8   # throughput under concurrency
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/experiments"
	"ensembler/internal/latency"
	"ensembler/internal/nn"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-bench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse, regenerate the requested
// tables (or measure serving throughput), returning errors instead of
// exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
	scaleName := fs.String("scale", "small", "experiment scale: small or paper")
	seed := fs.Int64("seed", 42, "experiment seed")
	n := fs.Int("n", 10, "ensemble size for the latency model and serving bench")
	claims := fs.Bool("claims", false, "also print the paper's §IV headline claims")
	verbose := fs.Bool("v", false, "log training progress")
	serving := fs.Bool("serving", false, "measure concurrent serving throughput over loopback instead of regenerating tables")
	clients := fs.Int("clients", 8, "concurrent client connections for -serving")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "server worker replicas for -serving")
	reqBatch := fs.Int("req-batch", 1, "images per request for -serving")
	duration := fs.Duration("duration", 2*time.Second, "measurement window per -serving regime")
	jsonPath := fs.String("json", "", "write machine-readable -serving results to this path (the BENCH_*.json perf trajectory)")
	wireName := fs.String("wire", "binary", "client wire protocol for -serving: binary, f32 (half the bytes, ~1e-7 relative feature rounding), or gob (legacy)")
	precisionName := fs.String("precision", "f64", "server compute precision for -serving: f64 (reference kernels) or f32 (vectorized backend)")
	comparePath := fs.String("compare", "", "compare the -serving run against this baseline BENCH_*.json and fail on regression")
	tolerance := fs.Float64("tolerance", 0.2, "relative regression band for -compare and the queueing-model p99 gate (0.2 = fail beyond 20%)")
	batchWindow := fs.Duration("batch-window", 0, "also measure a continuous-batching regime with this dispatcher window, gated against the queueing model's p99 (0 skips)")
	maxQueue := fs.Int("max-queue", 0, "intake-queue bound for the -batch-window regime (0 = server default)")
	arrivalRate := fs.Float64("arrival-rate", 0, "open-loop Poisson arrivals/sec for the -batch-window regime (0 = closed loop)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *jsonPath != "" && !*serving {
		return fmt.Errorf("-json records serving measurements; combine it with -serving")
	}
	if *comparePath != "" && !*serving {
		return fmt.Errorf("-compare gates serving measurements; combine it with -serving")
	}

	if *serving {
		var wire comm.WireFormat
		switch *wireName {
		case "binary":
			wire = comm.WireBinary
		case "f32":
			wire = comm.WireBinaryF32
		case "gob":
			wire = comm.WireGob
		default:
			return fmt.Errorf("unknown -wire %q (want binary, f32, or gob)", *wireName)
		}
		precision, err := comm.ParsePrecision(*precisionName)
		if err != nil {
			return err
		}
		report, err := runServingBench(stdout, stderr, *n, *clients, *workers, *reqBatch, *duration, wire, precision, *jsonPath,
			*batchWindow, *maxQueue, *arrivalRate, *tolerance)
		if err != nil {
			return err
		}
		if *comparePath != "" {
			return compareReports(stdout, *comparePath, report, *tolerance)
		}
		return nil
	}

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scaleName)
	}
	var log io.Writer
	if *verbose {
		log = stderr
	}

	runI := *table == "1" || *table == "all"
	runII := *table == "2" || *table == "all" || *claims
	runIII := *table == "3" || *table == "all"
	if !runI && !runII && !runIII {
		return fmt.Errorf("unknown table %q (want 1, 2, 3, or all)", *table)
	}

	if runI {
		for _, blk := range experiments.TableI(sc, *seed, log) {
			experiments.RenderRows(stdout,
				fmt.Sprintf("\nTable I — %s (N=%d, P=%d)", blk.Kind, sc.N, blk.P), blk.Rows)
		}
	}
	if runII {
		rows := experiments.TableII(sc, *seed+1, log)
		experiments.RenderRows(stdout, "\nTable II — defense mechanisms, cifar10-like", rows)
		if *claims {
			rep := experiments.ComputeClaims(rows, sc.N)
			fmt.Fprintf(stdout, "\n§IV claims (paper → measured):\n")
			fmt.Fprintf(stdout, "  SSIM decrease vs Single:  43.5%% → %.1f%%\n", rep.SSIMDropVsSingle)
			fmt.Fprintf(stdout, "  PSNR decrease vs Single:  40.5%% → %.1f%%\n", rep.PSNRDropVsSingle)
			fmt.Fprintf(stdout, "  latency overhead:          4.8%% → %.1f%%\n", rep.LatencyOverhead)
		}
	}
	if runIII {
		fmt.Fprintln(stdout)
		experiments.RenderTableIII(stdout, experiments.TableIII(*n))
		fmt.Fprintf(stdout, "Ensembler overhead vs Standard CI: %.1f%% (paper: 4.8%%)\n", latency.OverheadPercent(*n))
	}
	return nil
}

// benchArch is the serving-bench operating point: the default CIFAR-10-like
// split architecture with untrained weights (inference cost is identical to
// a trained pipeline's); bodies and wiring come from the shared commtest
// harness.
func benchArch() split.Arch { return split.DefaultArch(data.CIFAR10Like) }

// BenchReport is the machine-readable form of one -serving run — the unit
// of the repo's BENCH_*.json perf trajectory. Fields are stable: tooling
// diffs consecutive reports for regressions.
type BenchReport struct {
	Timestamp  string            `json:"timestamp"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Config     BenchConfig       `json:"config"`
	Results    []BenchResult     `json:"results"`
	Extra      map[string]string `json:"extra,omitempty"`
}

// BenchConfig records the measured operating point. EffectiveParallelism is
// min(workers, GOMAXPROCS) — the parallelism the host actually granted, and
// what the analytic model is clamped to (the BENCH_2026-07-30 report
// predicted 4.5× for a pool its single-core host could never run).
type BenchConfig struct {
	Bodies               int     `json:"bodies"`
	Clients              int     `json:"clients"`
	Workers              int     `json:"workers"`
	ReqBatch             int     `json:"req_batch"`
	WindowSeconds        float64 `json:"window_seconds"`
	EffectiveParallelism int     `json:"effective_parallelism"`
	Wire                 string  `json:"wire"`
	// Precision is the server compute precision the regimes ran at ("f64"
	// or "f32"); wire precision is recorded separately in Wire. Empty in
	// reports predating the float32 backend, which compareReports treats
	// as f64.
	Precision string `json:"precision,omitempty"`
	// BatchWindowSeconds/MaxQueue/ArrivalRPS record the continuous-batching
	// regime, when one was measured (-batch-window); all zero otherwise.
	BatchWindowSeconds float64 `json:"batch_window_seconds,omitempty"`
	MaxQueue           int     `json:"max_queue,omitempty"`
	ArrivalRPS         float64 `json:"arrival_rps,omitempty"`
}

// BenchResult is one measured (or model-predicted) regime.
type BenchResult struct {
	Name      string  `json:"name"`
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	ImgPerSec float64 `json:"img_per_sec,omitempty"`
	NsPerOp   float64 `json:"ns_per_op,omitempty"`
	Value     float64 `json:"value,omitempty"`
}

// throughputResult converts a measured rate into the result row shape.
func throughputResult(name string, reqPerSec float64, reqBatch int) BenchResult {
	r := BenchResult{Name: name, ReqPerSec: reqPerSec, ImgPerSec: reqPerSec * float64(reqBatch)}
	if reqPerSec > 0 {
		r.NsPerOp = 1e9 / reqPerSec
	}
	return r
}

// measured is one throughput regime's full measurement.
type measured struct {
	reqPerSec   float64
	allocsPerOp float64 // whole-process heap allocations per request (client side included)
	bytesUp     int     // wire bytes client→server for one request
	bytesDown   int     // wire bytes server→client for one request
	gcCount     uint32
	gcPauseMs   float64
	gcMaxMs     float64
}

// runServingBench measures sustained request throughput over loopback TCP
// for a single connection and for the requested concurrency, then prints
// the analytic model's prediction for the same regimes — clamped to the
// parallelism this host can actually deliver. jsonPath, when set,
// additionally writes the measurements as a BenchReport.
func runServingBench(stdout, stderr io.Writer, n, clients, workers, reqBatch int, window time.Duration, wire comm.WireFormat, precision comm.Precision, jsonPath string,
	batchWindow time.Duration, maxQueue int, arrivalRate, tolerance float64) (*BenchReport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	defer ln.Close()
	// The tracer feeds per-stage latency histograms on every request; tail
	// retention is fully off (negative rate AND negative slowest-N — zero
	// values would mean the defaults) so retention can't perturb the
	// measurement. Shared with the batched regime's server so its queue and
	// batch-window stages land in the same attribution table.
	tracer := trace.New(trace.Config{SampleRate: -1, SlowestN: -1})
	srv := comm.NewServer(commtest.Bodies(benchArch(), n),
		comm.WithWorkers(workers),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(benchArch(), n) }),
		comm.WithTracer(tracer),
		comm.WithPrecision(precision),
	)
	comm.PinKernelParallelism(srv.Workers())
	defer tensor.SetKernelParallelism(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	effective := min(srv.Workers(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(stdout, "serving bench: N=%d bodies, %d workers, %d images/request, %v per regime, %s wire, %s compute, GOMAXPROCS=%d (effective parallelism %d)\n",
		n, srv.Workers(), reqBatch, window, wire, precision, runtime.GOMAXPROCS(0), effective)

	single := measureThroughput(stderr, ln.Addr().String(), n, 1, reqBatch, window, wire)
	many := measureThroughput(stderr, ln.Addr().String(), n, clients, reqBatch, window, wire)
	fmt.Fprintf(stdout, "  1 connection:   %7.2f req/s  (%.2f img/s, %.1f allocs/req, %d B up + %d B down per req)\n",
		single.reqPerSec, single.reqPerSec*float64(reqBatch), single.allocsPerOp, single.bytesUp, single.bytesDown)
	fmt.Fprintf(stdout, "  %d connections: %7.2f req/s  (%.2f img/s, %.1f allocs/req, %d GC pauses totalling %.2f ms, max %.3f ms)\n",
		clients, many.reqPerSec, many.reqPerSec*float64(reqBatch), many.allocsPerOp, many.gcCount, many.gcPauseMs, many.gcMaxMs)
	if single.reqPerSec > 0 {
		fmt.Fprintf(stdout, "  speedup: %.2f×\n", many.reqPerSec/single.reqPerSec)
	}

	wireFactor := latency.WireFactorBinary
	switch wire {
	case comm.WireBinaryF32:
		wireFactor = latency.WireFactorBinaryF32
	case comm.WireGob:
		wireFactor = latency.WireFactorGob
	}
	computeFactor := latency.ComputeFactorF64
	if precision == comm.PrecisionF32 {
		computeFactor = latency.ComputeFactorF32
	}
	// The prediction comparable to this measurement is the loopback-bench
	// scenario clamped to the host's effective parallelism and the chosen
	// wire — not the paper's Pi+LAN deployment, whose round trip is
	// link-dominated (the mistake behind BENCH_2026-07-30's 4.5×-vs-0.94×
	// "gap": two different experiments).
	predictedOne := latency.EstimateServing(latency.ServingScenario{
		Base: latency.LoopbackBench(n), Workers: workers, Clients: 1, Batch: reqBatch,
		EffectiveParallel: effective, WireFactor: wireFactor, ComputeFactor: computeFactor})
	predictedMany := latency.EstimateServing(latency.ServingScenario{
		Base: latency.LoopbackBench(n), Workers: workers, Clients: clients, Batch: reqBatch,
		EffectiveParallel: effective, WireFactor: wireFactor, ComputeFactor: computeFactor})
	predicted := predictedMany.ThroughputRPS / predictedOne.ThroughputRPS
	fmt.Fprintf(stdout, "\nanalytic model, loopback-bench scenario (pool clamped to %d-way parallelism, %s wire, %s compute):\n", effective, wire, precision)
	for _, est := range latency.ConcurrencySweep(latency.LoopbackBench(n), workers, effective, reqBatch, []int{1, 2, 4, clients}) {
		fmt.Fprintf(stdout, "  %s\n", est)
	}
	fmt.Fprintf(stdout, "  predicted speedup at %d clients: %.2f× (unclamped pool would predict %.2f×)\n",
		clients, predicted, latency.ConcurrencySpeedup(latency.LoopbackBench(n), workers, 0, reqBatch, clients))
	fmt.Fprintf(stdout, "\npaper-device model for reference (Pi client, A6000 server, wired LAN — NOT this host):\n")
	for _, est := range latency.ConcurrencySweep(latency.Ensembler(n), workers, effective, reqBatch, []int{1, clients}) {
		fmt.Fprintf(stdout, "  %s\n", est)
	}

	// The continuous-batching regime runs on its own dispatcher-enabled
	// server, calibrated against the unbatched measurement above and gated
	// against the queueing model.
	var batched *batchedRun
	if batchWindow > 0 {
		batched, err = runBatchedRegime(stdout, stderr, n, clients, workers, reqBatch,
			window, wire, precision, batchWindow, maxQueue, arrivalRate, effective, many.reqPerSec, tracer)
		if err != nil {
			return nil, err
		}
	}

	// Per-stage latency attribution: where server-side time actually went,
	// from the tracer's histograms (every request observes; the gob regime
	// lacks decode/encode stages because its codec predates the timing hooks).
	stageStats := tracer.StageStats()
	if len(stageStats) > 0 {
		fmt.Fprintf(stdout, "\nstage attribution (all regimes):\n")
		fmt.Fprintf(stdout, "  %-12s %10s %12s %12s\n", "stage", "count", "mean", "p99")
		for _, s := range stageStats {
			fmt.Fprintf(stdout, "  %-12s %10d %12s %12s\n", s.Stage, s.Count,
				s.Mean.Round(time.Microsecond), s.P99.Round(time.Microsecond))
		}
	}

	report := &BenchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config: BenchConfig{
			Bodies: n, Clients: clients, Workers: srv.Workers(),
			ReqBatch: reqBatch, WindowSeconds: window.Seconds(),
			EffectiveParallelism: effective, Wire: wire.String(), Precision: precision.String(),
			BatchWindowSeconds: batchWindow.Seconds(), MaxQueue: maxQueue, ArrivalRPS: arrivalRate,
		},
		Results: []BenchResult{
			throughputResult("serve_single_connection", single.reqPerSec, reqBatch),
			throughputResult(fmt.Sprintf("serve_concurrent_%d", clients), many.reqPerSec, reqBatch),
		},
	}
	if single.reqPerSec > 0 {
		report.Results = append(report.Results, BenchResult{Name: "speedup", Value: many.reqPerSec / single.reqPerSec})
	}
	report.Results = append(report.Results,
		BenchResult{Name: "predicted_speedup", Value: predicted},
		BenchResult{Name: "allocs_per_req", Value: many.allocsPerOp},
		BenchResult{Name: "bytes_up_per_req", Value: float64(single.bytesUp)},
		BenchResult{Name: "bytes_down_per_req", Value: float64(single.bytesDown)},
		BenchResult{Name: "gc_count", Value: float64(many.gcCount)},
		BenchResult{Name: "gc_pause_total_ms", Value: many.gcPauseMs},
		BenchResult{Name: "gc_pause_max_ms", Value: many.gcMaxMs},
	)
	if batched != nil {
		report.Results = append(report.Results,
			throughputResult("serve_batched", batched.m.reqPerSec, reqBatch),
			BenchResult{Name: "serve_batched_p50_ms", Value: 1e3 * batched.p50.Seconds()},
			BenchResult{Name: "serve_batched_p99_ms", Value: 1e3 * batched.p99.Seconds()},
			BenchResult{Name: "queueing_predicted_p99_ms", Value: 1e3 * batched.pred.P99Seconds},
			BenchResult{Name: "batch_occupancy_max", Value: float64(batched.stats.MaxCoalesced)},
			BenchResult{Name: "shed_total", Value: float64(batched.stats.Sheds)},
		)
	}
	for _, s := range stageStats {
		report.Results = append(report.Results,
			BenchResult{Name: "stage_" + s.Stage + "_mean_ms", Value: 1e3 * s.Mean.Seconds()},
			BenchResult{Name: "stage_" + s.Stage + "_p99_ms", Value: 1e3 * s.P99.Seconds()},
		)
	}
	if jsonPath != "" {
		if err := writeBenchReport(jsonPath, *report); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", jsonPath)
	}

	cancel()
	<-served
	if batched != nil && batched.p99 > 0 {
		ratio := batched.pred.P99Seconds / batched.p99.Seconds()
		if ratio < 1-tolerance || ratio > 1+tolerance {
			return report, fmt.Errorf("queueing model gate: predicted p99 %.1fms vs measured %.1fms (ratio %.2f) outside ±%.0f%%",
				1e3*batched.pred.P99Seconds, 1e3*batched.p99.Seconds(), ratio, 100*tolerance)
		}
	}
	return report, nil
}

// batchedRun is the continuous-batching regime's measurement plus the
// queueing model's matching prediction.
type batchedRun struct {
	m        measured
	p50, p99 time.Duration
	stats    comm.DispatcherStats
	pred     latency.QueueingEstimate
}

// runBatchedRegime measures throughput and latency quantiles against a
// dispatcher-enabled server, prints the queueing model's planning sweep, and
// returns the measurement alongside the model's prediction for the measured
// operating point. unbatchedRPS — the saturated throughput of the plain
// server — calibrates the per-request service time the model runs on, so the
// prediction shares this host's hardware reality.
func runBatchedRegime(stdout, stderr io.Writer, n, clients, workers, reqBatch int,
	window time.Duration, wire comm.WireFormat, precision comm.Precision, batchWindow time.Duration, maxQueue int,
	arrivalRate float64, effective int, unbatchedRPS float64, tracer *trace.Tracer) (*batchedRun, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	defer ln.Close()
	opts := []comm.ServerOption{
		comm.WithWorkers(workers),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(benchArch(), n) }),
		comm.WithBatchWindow(batchWindow),
		comm.WithTracer(tracer),
		comm.WithPrecision(precision),
	}
	if maxQueue > 0 {
		opts = append(opts, comm.WithMaxQueue(maxQueue))
	}
	srv := comm.NewServer(commtest.Bodies(benchArch(), n), opts...)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	mode := "closed loop"
	if arrivalRate > 0 {
		mode = fmt.Sprintf("open loop, Poisson λ=%.0f/s", arrivalRate)
	}
	fmt.Fprintf(stdout, "\ncontinuous batching: window %v, %d connections (%s)\n", batchWindow, clients, mode)
	m, lats := measureLatencies(stderr, ln.Addr().String(), n, clients, reqBatch, window, wire, arrivalRate)
	stats := srv.DispatcherStats()
	cancel()
	<-served
	if len(lats) == 0 {
		return nil, fmt.Errorf("continuous-batching regime completed no requests")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p99 := lats[(len(lats)*99)/100]
	fmt.Fprintf(stdout, "  batched:        %7.2f req/s  (p50 %.1fms, p99 %.1fms, max batch %d, %d sheds, queue peak %d/%d)\n",
		m.reqPerSec, 1e3*p50.Seconds(), 1e3*p99.Seconds(), stats.MaxCoalesced, stats.Sheds, stats.PeakDepth, stats.MaxQueue)

	// Calibrated service time: the saturated unbatched pool completes
	// unbatchedRPS requests/sec over `effective` parallel workers.
	serviceSec := 0.0
	if unbatchedRPS > 0 {
		serviceSec = float64(effective) / unbatchedRPS
	}
	base := latency.QueueingScenario{
		Workers: workers, EffectiveParallel: effective, ServiceSeconds: serviceSec,
	}
	pt := base
	pt.ArrivalRPS = m.reqPerSec
	pt.WindowSeconds = batchWindow.Seconds()
	pred := latency.EstimateContinuousBatching(pt)
	fmt.Fprintf(stdout, "  queueing model: predicted p99 %.1fms (mean batch %.1f, util %.0f%%) vs measured %.1fms\n",
		1e3*pred.P99Seconds, pred.MeanBatch, 100*pred.Utilization, 1e3*p99.Seconds())

	fmt.Fprintf(stdout, "\nqueueing sweep (calibrated service %.2fms/request):\n", 1e3*serviceSec)
	rates := []float64{m.reqPerSec / 2, m.reqPerSec, 2 * m.reqPerSec}
	windows := []float64{0, batchWindow.Seconds() / 2, batchWindow.Seconds(), 2 * batchWindow.Seconds()}
	for _, row := range latency.QueueingSweep(base, rates, windows) {
		fmt.Fprintf(stdout, "  %s\n", row)
	}
	return &batchedRun{m: m, p50: p50, p99: p99, stats: stats, pred: pred}, nil
}

// measureLatencies drives the measurement loop like measureThroughput while
// recording every per-request latency. arrivalRate > 0 switches each
// connection from closed-loop hammering to an open-loop Poisson process of
// rate arrivalRate/conns (independent Poisson streams superpose to the
// aggregate rate).
func measureLatencies(stderr io.Writer, addr string, nBodies, conns, reqBatch int,
	window time.Duration, wire comm.WireFormat, arrivalRate float64) (measured, []time.Duration) {
	var completed atomic.Int64
	var mu sync.Mutex
	var lats []time.Duration
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := comm.Dial(addr, comm.WithWire(wire))
			if err != nil {
				fmt.Fprintf(stderr, "dial: %v\n", err)
				return
			}
			defer client.Close()
			commtest.Wire(client, benchArch(), nBodies)
			x := commtest.Input(benchArch(), 7, reqBatch)
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			mine := make([]time.Duration, 0, 1024)
			for time.Now().Before(deadline) {
				if arrivalRate > 0 {
					gap := time.Duration(rng.ExpFloat64() / (arrivalRate / float64(conns)) * float64(time.Second))
					time.Sleep(gap)
					if !time.Now().Before(deadline) {
						break
					}
				}
				t0 := time.Now()
				_, _, err := client.Infer(ctx, x)
				if err != nil {
					if errors.Is(err, comm.ErrOverloaded) {
						continue // shed: admission control working as designed
					}
					fmt.Fprintf(stderr, "infer: %v\n", err)
					return
				}
				mine = append(mine, time.Since(t0))
				completed.Add(1)
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return measured{reqPerSec: float64(completed.Load()) / window.Seconds()}, lats
}

// writeBenchReport writes one report as indented JSON.
func writeBenchReport(path string, report BenchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	return nil
}

// measureThroughput counts completed requests across `conns` connections
// hammering the server for the window, with whole-process allocation and GC
// pause accounting (the allocs/req figure includes the in-process clients —
// an upper bound on the server's own allocations, which the alloc-pin tests
// hold at zero for the compute+codec loop).
func measureThroughput(stderr io.Writer, addr string, nBodies, conns, reqBatch int, window time.Duration, wire comm.WireFormat) measured {
	var completed atomic.Int64
	var bytesUp, bytesDown atomic.Int64
	deadline := time.Now().Add(window)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := comm.Dial(addr, comm.WithWire(wire))
			if err != nil {
				fmt.Fprintf(stderr, "dial: %v\n", err)
				return
			}
			defer client.Close()
			commtest.Wire(client, benchArch(), nBodies)
			x := commtest.Input(benchArch(), 7, reqBatch)
			ctx := context.Background()
			for time.Now().Before(deadline) {
				_, timing, err := client.Infer(ctx, x)
				if err != nil {
					fmt.Fprintf(stderr, "infer: %v\n", err)
					return
				}
				completed.Add(1)
				bytesUp.Store(int64(timing.BytesUp))
				bytesDown.Store(int64(timing.BytesDown))
			}
		}()
	}
	wg.Wait()
	runtime.ReadMemStats(&after)
	m := measured{
		reqPerSec: float64(completed.Load()) / window.Seconds(),
		bytesUp:   int(bytesUp.Load()),
		bytesDown: int(bytesDown.Load()),
		gcCount:   after.NumGC - before.NumGC,
		gcPauseMs: float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
	}
	if n := completed.Load(); n > 0 {
		m.allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	for i := before.NumGC; i < after.NumGC; i++ {
		if p := float64(after.PauseNs[i%uint32(len(after.PauseNs))]) / 1e6; p > m.gcMaxMs {
			m.gcMaxMs = p
		}
	}
	return m
}

// compareReports gates the current serving run against a committed baseline
// report. allocs/req is host-independent and gates unconditionally (with a
// small absolute slack for GC accounting noise). The concurrency speedup
// and raw req/s gate only when the baseline ran at the same effective
// parallelism: absolute throughput obviously measures the hardware, and
// the speedup is itself a function of min(workers, GOMAXPROCS) — a
// baseline regenerated on a multi-core host predicts >2× where a
// single-core runner can only measure ≈1× (the very lesson of the
// BENCH_2026-07-30 post-mortem).
func compareReports(stdout io.Writer, baselinePath string, current *BenchReport, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline BenchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	find := func(r *BenchReport, name string) (BenchResult, bool) {
		for _, res := range r.Results {
			if res.Name == name {
				return res, true
			}
		}
		return BenchResult{}, false
	}
	var failures []string
	check := func(metric string, baseVal, curVal float64, lowerIsBetter bool, slack float64) {
		var regressed bool
		if lowerIsBetter {
			regressed = curVal > baseVal*(1+tolerance)+slack
		} else {
			regressed = curVal < baseVal*(1-tolerance)-slack
		}
		verdict := "ok"
		if regressed {
			verdict = "REGRESSED"
			failures = append(failures, metric)
		}
		fmt.Fprintf(stdout, "  %-22s baseline %10.2f  current %10.2f  (±%.0f%%)  %s\n",
			metric, baseVal, curVal, 100*tolerance, verdict)
	}
	fmt.Fprintf(stdout, "\nperf gate against %s:\n", baselinePath)
	if base, ok := find(&baseline, "allocs_per_req"); ok {
		if cur, ok2 := find(current, "allocs_per_req"); ok2 {
			check("allocs_per_req", base.Value, cur.Value, true, 8)
		}
	}
	// A report predating the float32 backend recorded no compute precision;
	// everything it measured ran the f64 reference kernels.
	precisionOf := func(c *BenchConfig) string {
		if c.Precision == "" {
			return "f64"
		}
		return c.Precision
	}
	samePrecision := precisionOf(&baseline.Config) == precisionOf(&current.Config)
	sameHostShape := baseline.Config.EffectiveParallelism == current.Config.EffectiveParallelism &&
		baseline.Config.EffectiveParallelism > 0 && samePrecision
	skip := func(metric string, baseVal, curVal float64) {
		reason := fmt.Sprintf("baseline ran at parallelism %d, this host %d",
			baseline.Config.EffectiveParallelism, current.Config.EffectiveParallelism)
		if !samePrecision {
			reason = fmt.Sprintf("baseline measured %s compute, this run %s",
				precisionOf(&baseline.Config), precisionOf(&current.Config))
		}
		fmt.Fprintf(stdout, "  %-22s baseline %10.2f  current %10.2f  skipped (%s)\n",
			metric, baseVal, curVal, reason)
	}
	if base, ok := find(&baseline, "speedup"); ok {
		if cur, ok2 := find(current, "speedup"); ok2 {
			if sameHostShape {
				check("speedup", base.Value, cur.Value, false, 0)
			} else {
				skip("speedup", base.Value, cur.Value)
			}
		}
	}
	// serve_batched only exists in reports measured with -batch-window;
	// baselines predating the dispatcher (or runs without the flag) simply
	// skip the series rather than failing the gate.
	for _, name := range []string{"serve_single_connection", fmt.Sprintf("serve_concurrent_%d", current.Config.Clients), "serve_batched"} {
		base, ok := find(&baseline, name)
		cur, ok2 := find(current, name)
		if !ok || !ok2 {
			continue
		}
		if sameHostShape {
			check(name+" req/s", base.ReqPerSec, cur.ReqPerSec, false, 0)
		} else {
			skip(name+" req/s", base.ReqPerSec, cur.ReqPerSec)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate failed: %v regressed beyond %.0f%%", failures, 100*tolerance)
	}
	fmt.Fprintf(stdout, "  perf gate passed\n")
	return nil
}
