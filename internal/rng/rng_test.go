package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams of different seeds collided %d times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 30 {
		t.Error("zero seed stream looks degenerate")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(7)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormalShiftScale(t *testing.T) {
	r := New(9)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Normal(3, 0.5)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
}

// Property: Perm returns a permutation — every index exactly once.
func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Choose returns k distinct in-range indices.
func TestChooseDistinct(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%20) + 1
		k := int(kRaw) % (n + 1)
		c := New(seed).Choose(n, k)
		if len(c) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range c {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChoosePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Choose(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits should differ")
	}
	// Splitting must be deterministic given the parent state.
	p2 := New(5)
	d1 := p2.Split()
	d2 := p2.Split()
	e1, f1 := New(5).Split(), d1
	if e1.Uint64() != f1.Uint64() {
		t.Error("split streams must be reproducible")
	}
	_ = d2
}

func TestShuffleKeepsMultiset(t *testing.T) {
	vals := []int{1, 2, 3, 4, 5, 6}
	want := map[int]int{}
	for _, v := range vals {
		want[v]++
	}
	New(3).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := map[int]int{}
	for _, v := range vals {
		got[v]++
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("shuffle changed multiset: %v", vals)
		}
	}
}

func TestFillers(t *testing.T) {
	r := New(4)
	buf := make([]float64, 1000)
	r.FillUniform(buf, -2, 2)
	for _, v := range buf {
		if v < -2 || v >= 2 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	r.FillNormal(buf, 0, 0.1)
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	if math.Abs(sum/1000) > 0.05 {
		t.Errorf("normal fill mean too far from 0: %v", sum/1000)
	}
}
