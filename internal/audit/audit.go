package audit

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/metrics"
	"ensembler/internal/privacy"
	"ensembler/internal/registry"
	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
)

// RotateFunc performs one selector rotation on the policy's behalf; cause is
// the human-readable evidence string to record in the registry's rotation
// history (registry.RotateSelectorCause). It runs on the auditor goroutine
// and may take seconds (a rotation can fine-tune); the auditor simply skips
// ticks that arrive while one runs.
type RotateFunc func(cause string) error

// Scorer measures the leakage of one epoch: it mounts an inversion attack
// against the published pipeline and returns the reconstruction quality
// (SSIM, PSNR) on the calibration set. observed carries the mirrored live
// features (nil when sampling is disabled); production uses the built-in
// attack-replay scorer, tests substitute deterministic ones.
type Scorer func(ep *registry.Epoch, observed *tensor.Tensor) (ssim, psnr float64, err error)

// Config parameterizes the audit engine.
type Config struct {
	// Registry resolves the audited model; Model names it ("" = default).
	Registry *registry.Registry
	Model    string

	// Sampler supplies mirrored live features. Optional: without one the
	// auditor still replays attacks on the calibration set alone, but
	// MinSamples gating and the alignment term are lost.
	Sampler *Sampler
	// MinSamples gates each audit on evidence of live traffic: fewer
	// mirrored tensors than this in the reservoir and the tick is skipped
	// (ignored when Sampler is nil).
	MinSamples int
	// MaxObserved caps the rows stacked into the attack's alignment tensor
	// (default 256) — the audit must hold bounded memory no matter how large
	// the mirrored batches are.
	MaxObserved int

	// Interval is the audit cadence for Run (default 1m).
	Interval time.Duration

	// Attack configures the replayed inversion (epochs, batch, seed…); its
	// Arch is overwritten from the audited pipeline. Small values keep the
	// audit cheap — it shares the box with serving.
	Attack attack.Config
	// Aux and Eval are the calibration datasets: Aux plays the attacker's
	// auxiliary data, Eval the victim inputs whose reconstructions are
	// scored. EvalSamples bounds how many eval images are scored (0 = all).
	Aux, Eval   *data.Dataset
	EvalSamples int
	// Oracle selects the worst-case audit: the decoder trains directly on
	// the pipeline's true transmitted features (attack.OracleDecoderAttack),
	// an upper bound no query-free attacker reaches but the right
	// conservative posture for triggering a defense. False replays the
	// query-free shadow attack, with the mirrored live features feeding its
	// feature-statistics alignment term — the realistic bound.
	Oracle bool

	// Threshold is the SSIM above which the rolling leakage counts as a
	// breach. Pick it above the calibration floor (Floor / CalibrationFloor)
	// by a margin that reflects how much reconstruction quality the
	// deployment tolerates.
	Threshold float64
	// Hysteresis re-arms the trigger only after the rolling leakage falls
	// below Threshold-Hysteresis (default 0.05): one rotation per excursion
	// above the threshold, not one per audit tick spent above it.
	Hysteresis float64
	// Alpha is the EWMA weight of the newest score (default 0.5).
	Alpha float64
	// Breaches is how many consecutive breaching audits arm a rotation
	// (default 2) — a single noisy attack run can't thrash the fleet.
	Breaches int
	// MinRotateInterval is the floor between automatic rotations
	// (default 10m). Audits continue in between; only the action is held.
	MinRotateInterval time.Duration

	// Rotate performs the rotation. nil puts the auditor in report-only
	// mode: leakage is measured and exported, nothing is ever rotated.
	Rotate RotateFunc

	// Ledger, when non-nil, is the serving layer's per-client privacy-budget
	// ledger. Each State snapshot then reports the most drained client
	// account, so /leakage shows the worst-case adversary (the replayed
	// attack's reconstruction quality) next to the worst-drained tenant (the
	// Rényi accounting view) — the two bounds the paper's defense reasons
	// about.
	Ledger *privacy.Ledger

	// Scorer overrides the attack replay (tests). nil uses the real one.
	Scorer Scorer
	// Log receives one line per audit (optional).
	Log io.Writer
	// Now overrides the clock (tests). nil uses time.Now.
	Now func() time.Time
}

// State is one snapshot of the audit engine, shaped for the /leakage
// endpoint.
type State struct {
	Model     string  `json:"model"`
	Enabled   bool    `json:"enabled"`
	Oracle    bool    `json:"oracle"`
	Threshold float64 `json:"threshold"`
	Floor     float64 `json:"floor"`

	Audits   uint64    `json:"audits"`
	Failures uint64    `json:"failures"`
	Skipped  uint64    `json:"skipped"`
	LastRun  time.Time `json:"last_run"`
	LastErr  string    `json:"last_error,omitempty"`

	LastSSIM float64 `json:"last_ssim"`
	LastPSNR float64 `json:"last_psnr"`
	Leakage  float64 `json:"leakage"` // rolling EWMA of SSIM

	Breaches  int       `json:"breaches"` // consecutive breaching audits
	Armed     bool      `json:"armed"`
	Rotations uint64    `json:"rotations"` // auditor-triggered rotations
	LastCause string    `json:"last_cause,omitempty"`
	LastRotat time.Time `json:"last_rotation"`

	FeaturesSeen    uint64 `json:"features_seen"`
	FeaturesSampled uint64 `json:"features_sampled"`

	// Privacy-budget view, populated only when a ledger is attached: the
	// most drained client account at snapshot time. The attack replay above
	// bounds what any adversary could reconstruct; this bounds what the
	// thirstiest identified client has actually been allowed to consume.
	BudgetClients      int     `json:"budget_clients,omitempty"`
	WorstClient        string  `json:"worst_client,omitempty"`
	WorstClientSpent   float64 `json:"worst_client_spent_eps,omitempty"`
	WorstClientDrained float64 `json:"worst_client_drained,omitempty"`
	WorstClientLevel   int     `json:"worst_client_level,omitempty"`
}

// Auditor runs the leakage audit loop. Construct with New; drive with Run
// (background cadence) or RunOnce (one audit, synchronous — tests and the
// example use this for determinism).
type Auditor struct {
	cfg   Config
	now   func() time.Time
	score Scorer

	mu    sync.Mutex
	state State
}

// New validates the configuration and computes the calibration floor.
func New(cfg Config) (*Auditor, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("audit: config needs a registry")
	}
	if cfg.Eval == nil || cfg.Aux == nil {
		return nil, fmt.Errorf("audit: config needs calibration datasets (Aux and Eval)")
	}
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("audit: leakage threshold must be positive, got %v", cfg.Threshold)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.5
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.05
	}
	if cfg.Breaches <= 0 {
		cfg.Breaches = 2
	}
	if cfg.MinRotateInterval <= 0 {
		cfg.MinRotateInterval = 10 * time.Minute
	}
	if cfg.MaxObserved <= 0 {
		cfg.MaxObserved = 256
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 1
	}
	a := &Auditor{cfg: cfg, now: cfg.Now, score: cfg.Scorer}
	if a.now == nil {
		a.now = time.Now
	}
	if a.score == nil {
		a.score = a.attackScore
	}
	a.state = State{
		Model:     cfg.Model,
		Enabled:   true,
		Oracle:    cfg.Oracle,
		Threshold: cfg.Threshold,
		Floor:     CalibrationFloor(cfg.Eval, cfg.EvalSamples),
		Armed:     true,
	}
	return a, nil
}

// State returns a snapshot of the audit engine.
func (a *Auditor) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state
	st.FeaturesSeen, st.FeaturesSampled = a.cfg.Sampler.Counts()
	if l := a.cfg.Ledger; l != nil {
		st.BudgetClients = l.Stats().Clients
		if top := l.TopSpenders(1); len(top) == 1 {
			st.WorstClient = top[0].Client
			st.WorstClientSpent = top[0].SpentEps
			st.WorstClientDrained = top[0].Drained
			st.WorstClientLevel = top[0].Level
		}
	}
	return st
}

// Run audits on the configured cadence until ctx is cancelled. Each tick is
// synchronous — a slow attack replay simply delays the next audit rather
// than stacking up.
func (a *Auditor) Run(ctx context.Context) {
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.RunOnce()
		}
	}
}

// RunOnce performs one audit: snapshot the mirrored features, replay the
// attack against the current epoch, fold the score into the rolling leakage
// gauge, and let the policy act on it. It returns the post-audit state; an
// audit that was skipped (not enough sampled traffic) or failed (attack
// error) is reported in the state rather than returned as an error — the
// loop must keep running either way.
func (a *Auditor) RunOnce() State {
	now := a.now()
	samples := a.cfg.Sampler.Snapshot()
	if a.cfg.Sampler.Enabled() && len(samples) < a.cfg.MinSamples {
		a.mu.Lock()
		a.state.Skipped++
		a.state.LastRun = now
		a.mu.Unlock()
		a.logf("audit: skipped (%d/%d sampled features)", len(samples), a.cfg.MinSamples)
		return a.State()
	}
	ep, err := a.cfg.Registry.Epoch(a.cfg.Model, 0)
	if err != nil {
		return a.fail(now, fmt.Errorf("resolving audited model: %w", err))
	}
	observed := stackObserved(samples, ep.Name(), a.cfg.MaxObserved)
	ssim, psnr, err := a.safeScore(ep, observed)
	if err != nil {
		return a.fail(now, err)
	}
	a.cfg.Sampler.Reset()

	a.mu.Lock()
	st := &a.state
	st.Audits++
	st.LastRun = now
	st.LastErr = ""
	st.LastSSIM, st.LastPSNR = ssim, psnr
	if st.Audits == 1 {
		st.Leakage = ssim
	} else {
		st.Leakage = a.cfg.Alpha*ssim + (1-a.cfg.Alpha)*st.Leakage
	}

	// Policy: consecutive breaches arm a rotation; hysteresis re-arms only
	// after the rolling leakage dips well below the threshold; a minimum
	// interval spaces automatic rotations out no matter what the audit says.
	var rotate bool
	var cause string
	switch {
	case st.Leakage > a.cfg.Threshold:
		if st.Armed {
			st.Breaches++
			if st.Breaches >= a.cfg.Breaches &&
				(st.LastRotat.IsZero() || now.Sub(st.LastRotat) >= a.cfg.MinRotateInterval) &&
				a.cfg.Rotate != nil {
				rotate = true
				cause = fmt.Sprintf("leakage %.3f > %.3f (%d consecutive audits, floor %.3f)",
					st.Leakage, a.cfg.Threshold, st.Breaches, st.Floor)
			}
		}
	case st.Leakage <= a.cfg.Threshold-a.cfg.Hysteresis:
		st.Armed = true
		st.Breaches = 0
	default:
		// Inside the hysteresis band: breaches stop accumulating but the
		// armed state holds, so a brief dip can't reset the evidence.
		st.Breaches = 0
	}
	leak := st.Leakage
	a.mu.Unlock()

	a.logf("audit: ssim %.3f psnr %.2f leakage %.3f (floor %.3f, threshold %.3f)",
		ssim, psnr, leak, a.state.Floor, a.cfg.Threshold)

	if rotate {
		err := a.cfg.Rotate(cause)
		a.mu.Lock()
		if err != nil {
			a.state.LastErr = fmt.Sprintf("rotation failed: %v", err)
		} else {
			a.state.Rotations++
			a.state.LastCause = cause
			a.state.LastRotat = now
			a.state.Armed = false
			a.state.Breaches = 0
			// The rolling gauge measured the rotated-away selector; restart
			// the estimate so the next breach needs fresh post-rotation
			// evidence.
			a.state.Audits = 0
		}
		a.mu.Unlock()
		if err != nil {
			a.logf("audit: rotation failed: %v", err)
		} else {
			a.logf("audit: rotated — %s", cause)
		}
	}
	return a.State()
}

// fail records a failed audit.
func (a *Auditor) fail(now time.Time, err error) State {
	a.cfg.Sampler.Reset()
	a.mu.Lock()
	a.state.Failures++
	a.state.LastRun = now
	a.state.LastErr = err.Error()
	a.mu.Unlock()
	a.logf("audit: failed: %v", err)
	return a.State()
}

func (a *Auditor) logf(format string, args ...any) {
	if a.cfg.Log != nil {
		fmt.Fprintf(a.cfg.Log, format+"\n", args...)
	}
}

// safeScore runs the scorer, converting a panic (the attack stack panics on
// shape surprises) into a failed audit instead of a dead serving process.
func (a *Auditor) safeScore(ep *registry.Epoch, observed *tensor.Tensor) (ssim, psnr float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			ssim, psnr, err = 0, 0, fmt.Errorf("audit: attack replay panicked: %v", r)
		}
	}()
	return a.score(ep, observed)
}

// runtimeVictim adapts a cloned client runtime to attack.Victim. The clone
// matters: the epoch's own head/noise networks cache forward state and are
// shared with anything else reading the pipeline, while the clone is private
// to this audit run.
type runtimeVictim struct {
	features func(x *tensor.Tensor) *tensor.Tensor
}

func (v runtimeVictim) ClientFeatures(x *tensor.Tensor) *tensor.Tensor { return v.features(x) }

// attackScore is the production scorer: replay the decoder attack against
// the epoch and score reconstructions on the calibration eval set.
func (a *Auditor) attackScore(ep *registry.Epoch, observed *tensor.Tensor) (float64, float64, error) {
	pipe := ep.Pipeline()
	victim := runtimeVictim{features: pipe.NewClientRuntime().Features}
	cfg := a.cfg.Attack
	cfg.Arch = pipe.Cfg.Arch
	var out attack.Outcome
	if a.cfg.Oracle {
		out = attack.OracleDecoderAttack(cfg, victim, a.cfg.Aux, a.cfg.Eval, a.cfg.EvalSamples)
	} else {
		if observed != nil && cfg.AlignWeight == 0 {
			cfg.AlignWeight = 1
		}
		cfg.Observed = observed
		// NewReplica clones the bodies: the shadow attack runs forward
		// passes over them, and the epoch's primary bodies are shared.
		out = attack.RunDecoderAttack(cfg, "audit", ep.NewReplica(), false, victim, a.cfg.Aux, a.cfg.Eval, a.cfg.EvalSamples)
	}
	return out.SSIM, out.PSNR, nil
}

// stackObserved concatenates mirrored samples of the audited model into one
// [ΣB,C,H,W] tensor for the attack's alignment term, keeping only the
// majority feature shape (a multi-model server mirrors every model's
// traffic through one sampler) and at most maxRows rows. Returns nil when
// nothing usable was mirrored.
func stackObserved(samples []Sample, model string, maxRows int) *tensor.Tensor {
	type key [3]int
	groups := map[key][]*tensor.Tensor{}
	rows := map[key]int{}
	for _, s := range samples {
		if s.Model != model && s.Model != "" {
			continue
		}
		f := s.Features
		if f == nil || len(f.Shape) != 4 {
			continue
		}
		k := key{f.Shape[1], f.Shape[2], f.Shape[3]}
		groups[k] = append(groups[k], f)
		rows[k] += f.Shape[0]
	}
	var best key
	bestRows := 0
	for k, n := range rows {
		if n > bestRows {
			best, bestRows = k, n
		}
	}
	if bestRows == 0 {
		return nil
	}
	if bestRows > maxRows {
		bestRows = maxRows
	}
	out := tensor.New(bestRows, best[0], best[1], best[2])
	per := best[0] * best[1] * best[2]
	off := 0
	for _, f := range groups[best] {
		n := copy(out.Data[off:], f.Data)
		off += n
		if off >= bestRows*per {
			break
		}
	}
	return out
}

// CalibrationFloor is the SSIM of the best input-independent reconstruction
// of the eval set: every image "reconstructed" as the set's mean image. An
// attack scoring at or below this floor has extracted nothing from the
// transmitted features; thresholds should sit above it by a deliberate
// margin. n bounds how many eval images enter the floor (0 = all),
// mirroring the EvalSamples bound of the scored attack.
func CalibrationFloor(eval *data.Dataset, n int) float64 {
	if n <= 0 || n > eval.Len() {
		n = eval.Len()
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	x, _ := eval.Batch(idxs)
	mean := attack.MeanFeatureMap(x)
	recon := tensor.New(x.Shape...)
	per := mean.Size()
	for i := 0; i < n; i++ {
		copy(recon.Data[i*per:(i+1)*per], mean.Data)
	}
	return metrics.BatchSSIM(recon, x)
}

// RegisterMetrics exports the audit engine into a telemetry registry under
// the ensembler_audit_* namespace; everything is computed at scrape time
// from the state snapshot.
func (a *Auditor) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("ensembler_audit_leakage",
		"Rolling (EWMA) SSIM of the audit's attack reconstructions.",
		nil, func() float64 { return a.State().Leakage })
	reg.GaugeFunc("ensembler_audit_last_ssim",
		"SSIM of the most recent audit's reconstruction.",
		nil, func() float64 { return a.State().LastSSIM })
	reg.GaugeFunc("ensembler_audit_floor",
		"Calibration floor: SSIM of the best input-independent reconstruction.",
		nil, func() float64 { return a.State().Floor })
	reg.GaugeFunc("ensembler_audit_threshold",
		"Leakage threshold that arms a selector rotation.",
		nil, func() float64 { return a.State().Threshold })
	reg.GaugeFunc("ensembler_audit_armed",
		"1 while the rotation trigger is armed (hysteresis re-arm pending otherwise).",
		nil, func() float64 {
			if a.State().Armed {
				return 1
			}
			return 0
		})
	reg.CounterFunc("ensembler_audit_runs_total",
		"Completed audits since the current leakage estimate started.",
		nil, func() float64 { return float64(a.State().Audits) })
	reg.CounterFunc("ensembler_audit_failures_total",
		"Audits that failed (attack error or unresolvable model).",
		nil, func() float64 { return float64(a.State().Failures) })
	reg.CounterFunc("ensembler_audit_rotations_total",
		"Rotations this auditor triggered on leakage evidence.",
		nil, func() float64 { return float64(a.State().Rotations) })
	reg.CounterFunc("ensembler_audit_features_seen_total",
		"Feature tensors observed by the sampler on the serving path.",
		nil, func() float64 { seen, _ := a.cfg.Sampler.Counts(); return float64(seen) })
	reg.CounterFunc("ensembler_audit_features_sampled_total",
		"Feature tensors mirrored into the audit reservoir.",
		nil, func() float64 { _, sampled := a.cfg.Sampler.Counts(); return float64(sampled) })
	if a.cfg.Ledger != nil {
		reg.GaugeFunc("ensembler_audit_worst_client_drained",
			"Drained budget fraction of the ledger's most spent client account.",
			nil, func() float64 { return a.State().WorstClientDrained })
	}
}
