// Command ensembler-attack mounts the paper's model inversion attacks
// against a pipeline saved by ensembler-train, playing the adversarial
// server: it gets the N body networks and the observed client features,
// trains shadow networks and decoders on in-distribution auxiliary data, and
// reports reconstruction quality.
//
//	ensembler-attack -model ensembler.gob -kind cifar10
package main

import (
	"flag"
	"fmt"
	"os"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
)

func main() {
	modelPath := flag.String("model", "ensembler.gob", "trained pipeline from ensembler-train")
	kindName := flag.String("kind", "cifar10", "workload the pipeline was trained on")
	auxN := flag.Int("aux", 224, "attacker auxiliary samples")
	evalN := flag.Int("eval", 48, "victim images to reconstruct")
	shadowEpochs := flag.Int("shadow-epochs", 25, "shadow training epochs")
	seed := flag.Int64("seed", 7, "attack seed")
	flag.Parse()

	var kind data.Kind
	switch *kindName {
	case "cifar10":
		kind = data.CIFAR10Like
	case "cifar100":
		kind = data.CIFAR100Like
	case "celeba":
		kind = data.CelebALike
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *kindName)
		os.Exit(2)
	}

	e, err := ensemble.LoadFile(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loading model: %v\n", err)
		os.Exit(1)
	}
	// The attacker's data is in-distribution but disjoint from training: a
	// different generator stream.
	sp := data.Generate(data.Config{Kind: kind, Train: 1, Aux: *auxN, Test: *evalN, Seed: *seed + 1000})

	cfg := attack.Config{
		Arch: e.Cfg.Arch, ShadowEpochs: *shadowEpochs, DecoderEpochs: 8,
		BatchSize: 32, ShadowLR: 0.01, Seed: *seed, StructuredShadow: true,
	}
	fmt.Printf("attacking %s (N=%d bodies)...\n", *modelPath, e.Cfg.N)
	singles := attack.SingleBodyAttacks(cfg, e.Bodies(), e, sp.Aux, sp.Test, *evalN)
	for _, o := range singles {
		fmt.Printf("  %s\n", o)
	}
	fmt.Printf("strongest single-body (by SSIM): %s\n", attack.BestBy(singles, "ssim"))
	fmt.Printf("strongest single-body (by PSNR): %s\n", attack.BestBy(singles, "psnr"))
	fmt.Printf("adaptive (all %d bodies + learned gates): %s\n",
		e.Cfg.N, attack.AdaptiveAttack(cfg, e.Bodies(), e, sp.Aux, sp.Test, *evalN))
	fmt.Printf("brute-force subset space: %.0f candidates (O(2^N), §III-D)\n",
		ensemble.SubsetCount(e.Cfg.N))
}
