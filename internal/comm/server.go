package comm

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// DefaultMaxBatch caps how many inputs one batched request may carry unless
// overridden with WithMaxBatch.
const DefaultMaxBatch = 64

// DefaultDrainTimeout bounds how long a graceful shutdown waits for
// in-flight responses to flush before force-closing connections.
const DefaultDrainTimeout = 5 * time.Second

// ServerOption configures a Server at construction time.
type ServerOption func(*serverOptions)

type serverOptions struct {
	workers   int
	maxBatch  int
	drain     time.Duration
	replicate func() []*nn.Network
}

// WithWorkers bounds the compute worker pool. Values above 1 only take
// effect together with WithReplicas: without independent body replicas the
// layer caches make concurrent passes over one body unsafe, so the pool is
// clamped to a single worker.
func WithWorkers(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithMaxBatch caps the number of inputs a single batched request may carry.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithDrainTimeout bounds how long a graceful shutdown waits for in-flight
// responses to flush before force-closing connections (a client that stops
// reading its responses must not be able to hold Serve open forever).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// WithReplicas supplies a factory producing an independent replica of the N
// hosted bodies (identical weights, private forward caches). Each worker
// beyond the first owns one replica set, which is what lets requests from
// different connections run truly in parallel.
func WithReplicas(f func() []*nn.Network) ServerOption {
	return func(o *serverOptions) { o.replicate = f }
}

// Server hosts ensemble bodies for remote clients behind a bounded worker
// pool. Construct with NewServer, then call Serve; Serve may be called at
// most once per Server.
type Server struct {
	bodies []*nn.Network
	opts   serverOptions

	jobs chan *job

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// job is one decoded request awaiting a pool worker; reply receives exactly
// one response.
type job struct {
	req   *Request
	reply chan *Response
}

// NewServer creates a server over the given bodies. Without options it
// behaves like a single-worker pool: one request computes at a time, with
// the per-body passes still fanned out across goroutines.
func NewServer(bodies []*nn.Network, opts ...ServerOption) *Server {
	if len(bodies) == 0 {
		panic("comm: server needs at least one body")
	}
	o := serverOptions{workers: runtime.GOMAXPROCS(0), maxBatch: DefaultMaxBatch, drain: DefaultDrainTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicate == nil {
		o.workers = 1
	}
	return &Server{bodies: bodies, opts: o, jobs: make(chan *job), conns: map[net.Conn]struct{}{}}
}

// Workers reports the effective size of the compute pool.
func (s *Server) Workers() int { return s.opts.workers }

// Serve accepts connections until ctx is cancelled or the listener fails,
// handling each client in its own goroutine. On cancellation it stops
// accepting, lets requests already decoded finish, flushes their responses,
// closes every connection, and returns nil. Clients that stop reading their
// responses are force-closed after the drain timeout (WithDrainTimeout) so
// shutdown always completes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for i := 0; i < s.opts.workers; i++ {
		bodies := s.bodies
		if i > 0 {
			bodies = s.opts.replicate()
			if len(bodies) != len(s.bodies) {
				panic(fmt.Sprintf("comm: replica factory returned %d bodies, want %d", len(bodies), len(s.bodies)))
			}
		}
		workers.Add(1)
		go func() {
			defer workers.Done()
			s.worker(bodies, stop)
		}()
	}

	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-watchDone:
		}
	}()

	var handlers sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		s.track(conn)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
	close(watchDone)

	// Unblock every reader: requests already decoded still reach the pool
	// and their responses still flush, but no new requests are read. If a
	// client refuses to drain its responses, force-close it after the
	// timeout rather than hanging shutdown on its full send buffer.
	s.interruptReads()
	drained := make(chan struct{})
	go func() {
		handlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.opts.drain):
		s.forceCloseConns()
		<-drained
	}
	close(stop)
	workers.Wait()

	if ctx.Err() != nil {
		return nil // graceful shutdown
	}
	return acceptErr
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// interruptReads expires the read deadline on every live connection so
// blocked decoders return; writes are unaffected, letting in-flight replies
// drain.
func (s *Server) interruptReads() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Unix(1, 0))
	}
}

// forceCloseConns tears down every connection still open after the drain
// timeout, failing any write its handler is blocked on.
func (s *Server) forceCloseConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetDeadline(time.Unix(1, 0))
		conn.Close()
	}
}

// handle processes one client connection until it closes or the server
// shuts down. Requests pipeline: a reader decodes and submits to the worker
// pool while a writer flushes responses in request order.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	// pending preserves request order across the concurrent pool: the writer
	// awaits each reply channel in FIFO order.
	pending := make(chan chan *Response, 32)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		failed := false
		for ch := range pending {
			resp := <-ch
			if failed {
				continue
			}
			if err := enc.Encode(resp); err != nil {
				// The client is gone; closing the conn unblocks the reader,
				// and draining keeps submitted jobs from leaking.
				failed = true
				conn.Close()
			}
		}
	}()

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			break // client closed, protocol error, or shutdown deadline
		}
		ch := make(chan *Response, 1)
		pending <- ch
		// The pool outlives every handler (Serve joins handlers before
		// stopping workers), so an unconditional send cannot deadlock and a
		// request that was decoded always computes — even mid-shutdown,
		// honoring the drain guarantee without racing ctx.Done against a
		// free worker.
		s.jobs <- &job{req: &req, reply: ch}
	}
	close(pending)
	writer.Wait()
}

// worker serves pool jobs with its private replica of the bodies.
func (s *Server) worker(bodies []*nn.Network, stop <-chan struct{}) {
	for {
		select {
		case j := <-s.jobs:
			j.reply <- s.processWith(j.req, bodies)
		case <-stop:
			return
		}
	}
}

// process runs a request over the server's primary bodies — the synchronous
// entry point used by tests and by callers that manage their own
// concurrency.
func (s *Server) process(req *Request) *Response {
	return s.processWith(req, s.bodies)
}

// processWith validates a request and runs it over one replica set. The
// per-body passes fan out across goroutines — each body is a distinct
// network, so its forward cache is touched by one goroutine only. A panic
// anywhere in the pass (validation can't anticipate every shape the hosted
// bodies reject) becomes an error response instead of killing the server.
func (s *Server) processWith(req *Request, bodies []*nn.Network) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Err: fmt.Sprintf("comm: request failed: %v", r)}
		}
	}()
	return s.processUnguarded(req, bodies)
}

func (s *Server) processUnguarded(req *Request, bodies []*nn.Network) *Response {
	switch {
	case req.Inputs != nil:
		if len(req.Inputs) == 0 {
			return &Response{Err: "comm: batched request carries no inputs"}
		}
		if len(req.Inputs) > s.opts.maxBatch {
			return &Response{Err: fmt.Sprintf("comm: batch of %d exceeds server cap %d", len(req.Inputs), s.opts.maxBatch)}
		}
		stacked, rows, err := stackInputs(req.Inputs)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := forwardAll(bodies, stacked)
		// Transpose [body][input] into the wire layout [input][body].
		outputs := make([][]*tensor.Tensor, len(rows))
		for i := range outputs {
			outputs[i] = make([]*tensor.Tensor, len(bodies))
		}
		for b, out := range perBody {
			for i, part := range splitRows(out, rows) {
				outputs[i][b] = part
			}
		}
		return &Response{Outputs: outputs}
	default:
		if err := validateFeatures(req.Features); err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Features: forwardAll(bodies, req.Features)}
	}
}

// forwardAll runs every body over x concurrently and joins the results in
// body order. A panic in any body's goroutine is re-raised on the calling
// goroutine (where processWith's recover can turn it into an error
// response); left alone it would kill the process.
func forwardAll(bodies []*nn.Network, x *tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(bodies))
	panics := make(chan any, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b *nn.Network) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			out[i] = b.Forward(x, false)
		}(i, b)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	return out
}
