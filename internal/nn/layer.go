// Package nn implements the neural-network substrate of the Ensembler
// reproduction: layers with explicit Forward/Backward passes, parameter
// management, losses, and (de)serialization. The design is layer-wise
// backpropagation rather than a tape-based autograd: every layer caches what
// its backward pass needs, and Backward both accumulates parameter gradients
// and returns the gradient with respect to its input. Returning input
// gradients all the way to the image is what lets the attack package run
// optimization-based model inversion.
package nn

import (
	"fmt"

	"ensembler/internal/tensor"
)

// Param is a trainable tensor with its accumulated gradient. Optimizers
// update Value from Grad; Backward passes accumulate (+=) into Grad so
// multi-branch architectures combine naturally.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward computes outputs, caching
// whatever Backward needs; train selects training-time behaviour (batch-norm
// statistics, dropout masks). Backward consumes dL/d(output) and returns
// dL/d(input), accumulating parameter gradients as a side effect. A Backward
// call must follow the Forward call whose cache it consumes.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Network is an ordered stack of layers with a name, usable both as a whole
// model and as one segment (head/body/tail) of a split pipeline.
type Network struct {
	Name   string
	Layers []Layer
}

// NewNetwork builds a network from the given layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{Name: name, Layers: layers}
}

// Forward runs the stack in order.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the stack in reverse, returning dL/d(input).
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// Append adds layers to the end of the network and returns it.
func (n *Network) Append(layers ...Layer) *Network {
	n.Layers = append(n.Layers, layers...)
	return n
}

// Var n implements Layer itself so networks nest as blocks.
var _ Layer = (*Network)(nil)

// String summarizes the network for logs.
func (n *Network) String() string {
	return fmt.Sprintf("Network(%s, %d layers, %d params)", n.Name, len(n.Layers), n.NumParams())
}
