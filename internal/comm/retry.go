package comm

// Overload retry: the client-side half of admission control. A shed request
// (ErrOverloaded) is explicitly safe to retry — the server did no work and
// the stream stayed synchronized — but retrying immediately re-joins the
// same congested batch cycle. RetryPolicy spaces the attempts with capped
// exponential backoff plus jitter (decorrelating the retry storm a shed
// burst would otherwise synchronize), floored by the batch window the
// server advertised in its hello ack. Every other error remains terminal:
// before this policy existed, Pool treated a shed exactly like a real
// failure, surfacing transient overload to callers as hard errors.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy governs how Pool operations respond to ErrOverloaded. The
// zero value disables retries (one attempt, no backoff); DefaultRetryPolicy
// is what NewPool installs.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, the first included. Values below 1
	// behave as 1 — the request is never retried.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means no cap.
	MaxDelay time.Duration
	// Jitter in [0,1] scales each delay by a uniform factor from
	// [1-Jitter, 1]: 0 is a deterministic schedule, 1 lets a delay shrink
	// to anywhere above zero. Backoff without jitter synchronizes the very
	// retry storm it is meant to disperse.
	Jitter float64
}

// DefaultRetryPolicy is the Pool default: four attempts spaced 2ms → 4ms →
// 8ms (pre-jitter, and floored by the server's advertised batch window),
// absorbing a transient shed burst without stretching a genuinely
// overloaded call past ~15ms of waiting.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.5}
}

// Delay returns the pause before the next try after `failures` shed
// attempts (1-based: the first retry passes 1), with u — uniform in [0,1)
// — supplying the jitter draw. Pure function of its arguments so backoff
// schedules are unit-testable without sleeping or seeding.
func (p RetryPolicy) Delay(failures int, u float64) time.Duration {
	if failures < 1 || p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < failures; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		f := 1 - j*u
		// A full-jitter draw (Jitter 1, u→1) must not collapse the delay to
		// zero: a server running greedy batching advertises window 0, so
		// retryOverload has no outer floor, and a zero delay hot-spins the
		// retry loop against the very server that just shed for overload.
		// Keep at least a quarter of the pre-jitter backoff.
		if f < 0.25 {
			f = 0.25
		}
		d = time.Duration(float64(d) * f)
	}
	return d
}

// retryOverload runs op on pooled clients until it succeeds, fails
// terminally, exhausts the policy's attempts, or ctx fires. Only
// ErrOverloaded re-tries; the backoff before each retry is the policy delay
// floored by the server's advertised batch window (retrying inside the
// window would land in the same congested cycle the shed came from).
func (p *Pool) retryOverload(ctx context.Context, op func(*Client) error) error {
	attempts := p.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		c, err := p.get(ctx)
		if err != nil {
			return err
		}
		err = op(c)
		window := c.ServerBatchWindow()
		p.put(c)
		if err == nil || attempt >= attempts || !errors.Is(err, ErrOverloaded) {
			return err
		}
		delay := p.Retry.Delay(attempt, rand.Float64())
		if delay < window {
			delay = window
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return fmt.Errorf("comm: backing off after overloaded server: %w", ctx.Err())
			case <-timer.C:
			}
		}
	}
}
