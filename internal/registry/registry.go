package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
)

// Epoch is one immutable published version of a model held live in memory.
// Immutability is the whole concurrency story: nothing ever mutates an
// epoch's pipeline after Publish, so any number of serving workers may clone
// replicas from it while a new epoch is being prepared, and in-flight
// requests simply finish on whichever epoch they resolved.
type Epoch struct {
	name     string
	version  int
	seq      uint64
	pipeline *ensemble.Ensembler
}

// Name returns the model name this epoch belongs to.
func (ep *Epoch) Name() string { return ep.name }

// Version returns the store-assigned (or in-memory sequential) version.
func (ep *Epoch) Version() int { return ep.version }

// Seq returns a registry-unique epoch number. Serving workers use it as
// their replica cache key: a changed Seq (publish, rotation, or reload)
// tells the worker its body replicas are stale and must be re-cloned.
func (ep *Epoch) Seq() uint64 { return ep.seq }

// Pipeline returns the published pipeline. Treat it as read-only.
func (ep *Epoch) Pipeline() *ensemble.Ensembler { return ep.pipeline }

// NewReplica builds an independent replica of the epoch's server bodies
// (identical weights, private forward caches) for one serving worker. Safe
// to call from any number of goroutines: the source is immutable and the
// clone is freshly allocated.
func (ep *Epoch) NewReplica() []*nn.Network { return ep.pipeline.CloneBodies() }

// NewReplicaRange builds a replica of only the bodies in [lo, hi) — the
// comm.RangeReplicator refinement a shard server's subset provider uses so
// each shard clones exactly the bodies it hosts.
func (ep *Epoch) NewReplicaRange(lo, hi int) []*nn.Network { return ep.pipeline.CloneBodyRange(lo, hi) }

// NumBodies reports the ensemble size N of the published pipeline — the
// comm.BodyCounter refinement that lets a subset provider reject a shard
// range planned for a different N.
func (ep *Epoch) NumBodies() int { return ep.pipeline.Cfg.N }

// maxRetainedEpochs bounds how many epochs of one model stay in memory.
// Under a rotation cadence (-rotate-every) versions accumulate indefinitely;
// without a bound a long-lived server would hold every superseded pipeline
// forever and eventually OOM. Evicted versions remain resolvable for pinned
// clients through the store (lazily re-loaded); on a storeless registry they
// become unknown-version errors, which is the honest answer.
const maxRetainedEpochs = 8

// RotationRecord is one entry of a model's rotation audit trail: which
// version a selector rotation published, when, and why. The cause is what
// turns a rotation log into evidence — "schedule" and "leakage 0.41 > 0.30"
// answer very different operational questions.
type RotationRecord struct {
	Version int
	At      time.Time
	Cause   string
}

// maxRotationHistory bounds the per-model rotation trail. Under an
// aggressive cadence the history would otherwise grow without limit; the
// most recent records are the operationally interesting ones.
const maxRotationHistory = 64

// modelState is the live state of one model name: the current epoch behind
// an atomic pointer (the serving hot path reads only this), the retained
// map of published versions for pinned resolution, and the rotation trail.
type modelState struct {
	current atomic.Pointer[Epoch]
	mu      sync.Mutex
	epochs  map[int]*Epoch

	rotMu     sync.Mutex
	rotations []RotationRecord
	rotCount  atomic.Uint64
}

// recordRotation appends to the bounded rotation trail.
func (ms *modelState) recordRotation(rec RotationRecord) {
	ms.rotMu.Lock()
	ms.rotations = append(ms.rotations, rec)
	if len(ms.rotations) > maxRotationHistory {
		ms.rotations = ms.rotations[len(ms.rotations)-maxRotationHistory:]
	}
	ms.rotMu.Unlock()
	ms.rotCount.Add(1)
}

// retain inserts an epoch and evicts the oldest retained versions (never the
// current one) beyond maxRetainedEpochs. Caller holds ms.mu.
func (ms *modelState) retain(ep *Epoch) {
	ms.epochs[ep.version] = ep
	for len(ms.epochs) > maxRetainedEpochs {
		cur := ms.current.Load()
		oldest := -1
		for v := range ms.epochs {
			if cur != nil && v == cur.version {
				continue
			}
			if oldest < 0 || v < oldest {
				oldest = v
			}
		}
		if oldest < 0 {
			return
		}
		delete(ms.epochs, oldest)
	}
}

// Registry is the in-memory view the serving stack reads through. It
// implements comm.ModelProvider: the server resolves (model, version) per
// request, with "" meaning the default model and version 0 meaning current.
// Publish and RotateSelector swap the current epoch with a single atomic
// pointer store — no lock is ever taken on the request path for the current
// version.
type Registry struct {
	store *Store // optional write-through persistence; may be nil

	seq     atomic.Uint64
	mu      sync.Mutex // serializes publishes and default changes
	models  sync.Map   // model name → *modelState
	defName atomic.Pointer[string]
}

// Compile-time check: the serving stack reads through a Registry.
var _ comm.ModelProvider = (*Registry)(nil)

// New creates a registry. A non-nil store makes every Publish (and
// RotateSelector) write through to disk; a nil store keeps everything
// in-memory, which tests and single-file deployments use.
func New(store *Store) *Registry {
	return &Registry{store: store}
}

// OpenDir opens the store at dir, loads the latest version of every model it
// holds into a fresh registry, and returns both. The first model (sorted by
// name) becomes the default unless SetDefault changes it.
func OpenDir(dir string) (*Registry, error) {
	store, err := Open(dir)
	if err != nil {
		return nil, err
	}
	r := New(store)
	if _, err := r.LoadStore(); err != nil {
		return nil, err
	}
	return r, nil
}

// state returns (creating if needed) the live state for one model name.
func (r *Registry) state(name string) *modelState {
	if ms, ok := r.models.Load(name); ok {
		return ms.(*modelState)
	}
	ms, _ := r.models.LoadOrStore(name, &modelState{epochs: map[int]*Epoch{}})
	return ms.(*modelState)
}

// install registers a pipeline as the given version and makes it current if
// it is newer than what is live. It does not touch the store.
func (r *Registry) install(name string, version int, e *ensemble.Ensembler) *Epoch {
	ep := &Epoch{name: name, version: version, seq: r.seq.Add(1), pipeline: e}
	ms := r.state(name)
	ms.mu.Lock()
	if cur := ms.current.Load(); cur == nil || cur.version <= version {
		ms.current.Store(ep)
	}
	ms.retain(ep)
	ms.mu.Unlock()
	r.defName.CompareAndSwap(nil, &name)
	return ep
}

// Publish makes the pipeline the next version of the named model: persisted
// to the store (when one is attached), installed in memory, and swapped in
// as the current epoch. Serving continues across the swap — workers finish
// in-flight requests on the old epoch and lazily re-clone replicas on their
// next request against this model.
func (r *Registry) Publish(name string, e *ensemble.Ensembler) (*Epoch, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(name, e)
}

// publishLocked is Publish with r.mu already held.
func (r *Registry) publishLocked(name string, e *ensemble.Ensembler) (*Epoch, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	var version int
	if r.store != nil {
		v, err := r.store.Publish(name, e)
		if err != nil {
			return nil, err
		}
		version = v
	} else {
		ms := r.state(name)
		ms.mu.Lock()
		if cur := ms.current.Load(); cur != nil {
			version = cur.version
		}
		ms.mu.Unlock()
		version++
	}
	return r.install(name, version, e), nil
}

// RotateSelector re-draws the secret P-of-N subset of the named model (""
// for the default) on a copy of its current pipeline and publishes the
// result as a new version — the switching-ensembles defense cadence. The
// server bodies are unchanged, so the swap is invisible on the wire; only
// the client-side secret (and, with opts.Tune, the stage-3 head/noise/tail)
// moves. The rotation is recorded with cause "manual"; callers that rotate
// on a schedule or on audit evidence should use RotateSelectorCause so the
// trail says why.
func (r *Registry) RotateSelector(name string, opts ensemble.RotateOptions) (*Epoch, error) {
	return r.RotateSelectorCause(name, "manual", opts)
}

// RotateSelectorCause is RotateSelector with an explicit cause recorded in
// the model's rotation history — the audit trail the control plane reads
// back through RotationHistory and exports as the rotation counter.
// Rotation runs outside the publish lock (a fine-tune can take seconds), so
// a Publish or LoadStore may land mid-rotation; publishing the rotation of a
// stale pipeline would silently revert the newer model. The rotation
// therefore re-checks the current epoch under the lock before publishing and
// starts over on the fresh pipeline when it moved.
func (r *Registry) RotateSelectorCause(name, cause string, opts ensemble.RotateOptions) (*Epoch, error) {
	const maxAttempts = 3
	for attempt := 0; ; attempt++ {
		cur, err := r.Epoch(name, 0)
		if err != nil {
			return nil, err
		}
		rotated, err := cur.pipeline.Rotate(opts)
		if err != nil {
			return nil, fmt.Errorf("registry: rotating %q: %w", cur.name, err)
		}
		r.mu.Lock()
		if latest := r.state(cur.name).current.Load(); latest != nil && latest.seq != cur.seq {
			r.mu.Unlock()
			if attempt+1 >= maxAttempts {
				return nil, fmt.Errorf("registry: rotating %q: current version kept moving (%d publishes raced the rotation)", cur.name, maxAttempts)
			}
			continue // a publish landed mid-rotation; rotate the newer pipeline
		}
		ep, err := r.publishLocked(cur.name, rotated)
		r.mu.Unlock()
		if err == nil {
			r.state(ep.name).recordRotation(RotationRecord{Version: ep.version, At: time.Now(), Cause: cause})
		}
		return ep, err
	}
}

// RotationHistory returns a copy of the named model's rotation trail ("" for
// the default model), oldest first, bounded to the most recent
// maxRotationHistory entries. An unknown model has an empty history.
func (r *Registry) RotationHistory(name string) []RotationRecord {
	ms := r.lookupState(name)
	if ms == nil {
		return nil
	}
	ms.rotMu.Lock()
	defer ms.rotMu.Unlock()
	return append([]RotationRecord(nil), ms.rotations...)
}

// RotationCount reports how many selector rotations the named model has
// undergone since this registry was opened — the cheap form the telemetry
// counter scrapes without copying history.
func (r *Registry) RotationCount(name string) uint64 {
	ms := r.lookupState(name)
	if ms == nil {
		return 0
	}
	return ms.rotCount.Load()
}

// lookupState resolves a model name ("" for default) to its live state
// without creating one, returning nil when unknown.
func (r *Registry) lookupState(name string) *modelState {
	if name == "" {
		def := r.defName.Load()
		if def == nil {
			return nil
		}
		name = *def
	}
	ms, ok := r.models.Load(name)
	if !ok {
		return nil
	}
	return ms.(*modelState)
}

// Epoch resolves a model name and version to a live epoch. name "" means the
// default model; version 0 means the current epoch. A pinned version is
// served from memory when retained, else lazily loaded (and verified) from
// the store.
func (r *Registry) Epoch(name string, version int) (*Epoch, error) {
	if name == "" {
		def := r.defName.Load()
		if def == nil {
			return nil, fmt.Errorf("registry: no models published")
		}
		name = *def
	}
	ms, ok := r.models.Load(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown model %q", name)
	}
	state := ms.(*modelState)
	if version == 0 {
		cur := state.current.Load()
		if cur == nil {
			return nil, fmt.Errorf("registry: model %q has no current version", name)
		}
		return cur, nil
	}
	if version < 0 {
		return nil, fmt.Errorf("registry: model %q: invalid version %d", name, version)
	}
	state.mu.Lock()
	ep := state.epochs[version]
	state.mu.Unlock()
	if ep != nil {
		return ep, nil
	}
	if r.store == nil {
		return nil, fmt.Errorf("registry: model %q has no version %d", name, version)
	}
	e, v, err := r.store.Load(name, version)
	if err != nil {
		return nil, err
	}
	ep = &Epoch{name: name, version: v, seq: r.seq.Add(1), pipeline: e}
	state.mu.Lock()
	if cached := state.epochs[v]; cached != nil {
		ep = cached // another resolver won the race; keep one epoch per version
	} else {
		state.retain(ep)
	}
	state.mu.Unlock()
	return ep, nil
}

// Resolve implements comm.ModelProvider over Epoch.
func (r *Registry) Resolve(model string, version int) (comm.ServedModel, error) {
	ep, err := r.Epoch(model, version)
	if err != nil {
		return nil, err
	}
	return ep, nil
}

// Current returns the live epoch of the named model ("" for default).
func (r *Registry) Current(name string) (*Epoch, error) { return r.Epoch(name, 0) }

// Store returns the attached write-through store (nil for an in-memory-only
// registry) — callers use it for maintenance such as pruning old versions.
func (r *Registry) Store() *Store { return r.store }

// Models lists the model names live in this registry, sorted.
func (r *Registry) Models() []string {
	var out []string
	r.models.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// SetDefault names the model that resolves for requests carrying no model
// header (pre-registry clients and clients that don't care).
func (r *Registry) SetDefault(name string) error {
	if _, ok := r.models.Load(name); !ok {
		return fmt.Errorf("registry: cannot default to unknown model %q", name)
	}
	r.defName.Store(&name)
	return nil
}

// Default returns the default model name ("" when nothing is published).
func (r *Registry) Default() string {
	if def := r.defName.Load(); def != nil {
		return *def
	}
	return ""
}

// LoadStore loads the latest version of every model in the attached store
// into memory, skipping models whose live version is already current or
// newer. It returns how many models were installed or updated — the SIGHUP
// reload path: publish out-of-process, signal the server, zero downtime.
func (r *Registry) LoadStore() (int, error) {
	if r.store == nil {
		return 0, fmt.Errorf("registry: no store attached")
	}
	names, err := r.store.Models()
	if err != nil {
		return 0, err
	}
	updated := 0
	for _, name := range names {
		latest, err := r.store.Latest(name)
		if err != nil {
			return updated, err
		}
		if cur, err := r.Current(name); err == nil && cur.version >= latest {
			continue
		}
		e, v, err := r.store.Load(name, latest)
		if err != nil {
			return updated, err
		}
		r.mu.Lock()
		r.install(name, v, e)
		r.mu.Unlock()
		updated++
	}
	return updated, nil
}
