//go:build race

package comm_test

// p99Tolerance under the race detector: -race inflates and jitters compute
// by 5-10×, which moves the measured service time between the calibration
// run and the gated run, so the predicted-vs-measured p99 gate runs with a
// wider band than the ±20% of an instrumented-free build.
const p99Tolerance = 0.35
