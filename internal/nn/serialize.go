package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ensembler/internal/tensor"
)

// netState is the on-disk representation of a network's learnable and
// running state: parameter tensors by name plus batch-norm running
// statistics in layer order.
type netState struct {
	Name    string
	Params  map[string]*tensor.Tensor
	RunMean []*tensor.Tensor
	RunVar  []*tensor.Tensor
}

// collectBatchNorms walks the layer tree gathering BatchNorm2D layers in
// deterministic order, including those nested in residual blocks and
// sub-networks.
func collectBatchNorms(layers []Layer) []*BatchNorm2D {
	var bns []*BatchNorm2D
	for _, l := range layers {
		switch v := l.(type) {
		case *BatchNorm2D:
			bns = append(bns, v)
		case *BasicBlock:
			bns = append(bns, v.BN1, v.BN2)
			if v.ShortBN != nil {
				bns = append(bns, v.ShortBN)
			}
		case *Network:
			bns = append(bns, collectBatchNorms(v.Layers)...)
		}
	}
	return bns
}

// Save writes the network's parameters and running statistics to w.
func (n *Network) Save(w io.Writer) error {
	st := netState{Name: n.Name, Params: map[string]*tensor.Tensor{}}
	for _, p := range n.Params() {
		if _, dup := st.Params[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q in %s", p.Name, n.Name)
		}
		st.Params[p.Name] = p.Value
	}
	for _, bn := range collectBatchNorms(n.Layers) {
		st.RunMean = append(st.RunMean, bn.RunMean)
		st.RunVar = append(st.RunVar, bn.RunVar)
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Load restores parameters and running statistics previously written by Save
// into an identically structured network. The bytes are a decode boundary:
// gob happily materializes nil tensor pointers and shape/data disagreements
// a forged or corrupted file carries, so every restored tensor is checked
// before any copy — a bare copy would silently truncate into half-restored
// weights.
func (n *Network) Load(r io.Reader) error {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decoding network state: %w", err)
	}
	for _, p := range n.Params() {
		v, ok := st.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: saved state missing parameter %q", p.Name)
		}
		if v == nil || !v.SameShape(p.Value) || len(v.Data) != len(p.Value.Data) {
			return fmt.Errorf("nn: parameter %q does not match saved tensor", p.Name)
		}
		copy(p.Value.Data, v.Data)
	}
	bns := collectBatchNorms(n.Layers)
	if len(bns) != len(st.RunMean) || len(bns) != len(st.RunVar) {
		return fmt.Errorf("nn: %d batch norms vs %d/%d saved running stats", len(bns), len(st.RunMean), len(st.RunVar))
	}
	for i, bn := range bns {
		mean, vr := st.RunMean[i], st.RunVar[i]
		if mean == nil || vr == nil ||
			len(mean.Data) != len(bn.RunMean.Data) || len(vr.Data) != len(bn.RunVar.Data) {
			return fmt.Errorf("nn: batch norm %d running stats do not match saved tensors", i)
		}
		copy(bn.RunMean.Data, mean.Data)
		copy(bn.RunVar.Data, vr.Data)
	}
	return nil
}

// SaveFile writes the network state to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores the network state from path.
func (n *Network) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Load(f)
}

// CopyStateFrom copies parameter values and running statistics from src into
// n; both networks must share the same structure (it matches by position,
// not by name, so renamed clones work).
func (n *Network) CopyStateFrom(src *Network) error {
	dst, sp := n.Params(), src.Params()
	if len(dst) != len(sp) {
		return fmt.Errorf("nn: CopyStateFrom param count %d vs %d", len(dst), len(sp))
	}
	for i := range dst {
		if !dst[i].Value.SameShape(sp[i].Value) {
			return fmt.Errorf("nn: CopyStateFrom shape %v vs %v at %d", dst[i].Value.Shape, sp[i].Value.Shape, i)
		}
		copy(dst[i].Value.Data, sp[i].Value.Data)
	}
	db, sb := collectBatchNorms(n.Layers), collectBatchNorms(src.Layers)
	if len(db) != len(sb) {
		return fmt.Errorf("nn: CopyStateFrom batchnorm count %d vs %d", len(db), len(sb))
	}
	for i := range db {
		copy(db[i].RunMean.Data, sb[i].RunMean.Data)
		copy(db[i].RunVar.Data, sb[i].RunVar.Data)
	}
	return nil
}
