package comm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// startTracedServer runs a server with the given tracer attached and returns
// its address plus a shutdown func.
func startTracedServer(t *testing.T, tr *trace.Tracer, extra ...ServerOption) (string, func()) {
	t.Helper()
	opts := append([]ServerOption{WithTracer(tr)}, extra...)
	srv := NewServer(instrumentBodies(2), opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		ln.Close()
		<-served
	}
}

func wireTracedClient(t *testing.T, c *Client) {
	t.Helper()
	c.ComputeFeatures = func(x *tensor.Tensor) *tensor.Tensor { return x }
	c.Select = nn.ConcatFeatures
	c.Tail = nn.NewNetwork("t", nn.NewLinear("fc", 2*4*8*8, 3, rng.New(5)))
}

// waitForTrace polls until the tracer retains at least want legs of id.
func waitForTrace(t *testing.T, tr *trace.Tracer, id uint64, want int) []trace.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if legs := tr.TraceByID(id); len(legs) >= want {
			return legs
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace %016x never reached %d retained legs", id, want)
	return nil
}

// TestTracedRoundTripEchoesIDAndRetainsLeg is the wire half of the tentpole:
// a client-supplied trace context rides a v3 binary connection, the server
// echoes the ID on the response, and the server's leg — with its decode,
// queue, forward, and encode spans — lands in the tracer's ring because the
// upstream Sampled flag forces retention.
func TestTracedRoundTripEchoesIDAndRetainsLeg(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: -1, SlowestN: -1})
	addr, shutdown := startTracedServer(t, tr)
	defer shutdown()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wireTracedClient(t, client)

	ctx := context.Background()
	x := instrumentInput(1)

	// Untraced request first: no context set, so the response must not echo.
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	if got := client.LastTraceID(); got != 0 {
		t.Fatalf("untraced request echoed trace ID %016x", got)
	}

	tc := trace.Context{ID: tr.NewID(), Sampled: true}
	client.Trace = tc
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	if got := client.LastTraceID(); got != tc.ID {
		t.Fatalf("echoed trace ID = %016x, want %016x", got, tc.ID)
	}

	legs := waitForTrace(t, tr, tc.ID, 1)
	leg := legs[0]
	if !leg.Forced {
		t.Fatal("upstream-sampled leg not marked forced")
	}
	if leg.Err || leg.Shed {
		t.Fatalf("healthy leg flags err=%v shed=%v", leg.Err, leg.Shed)
	}
	for _, s := range []trace.Stage{trace.StageQueue, trace.StageForward, trace.StageEncode} {
		found := false
		for i := 0; i < leg.N; i++ {
			if leg.Spans[i].Stage == s {
				found = true
			}
		}
		if !found {
			t.Errorf("server leg missing %s span (has %d spans)", s, leg.N)
		}
	}
	// The stage spans must fit inside the leg: attribution that exceeds the
	// measured total is double-counting.
	var sum int64
	for i := 0; i < leg.N; i++ {
		sum += leg.Spans[i].Dur
	}
	if sum > leg.Dur*11/10 {
		t.Errorf("span durations sum to %v, exceeding leg total %v", time.Duration(sum), time.Duration(leg.Dur))
	}

	// A failed request retains with the error flag even without Sampled.
	client.Trace = trace.Context{ID: tr.NewID()}
	if _, _, err := client.Infer(ctx, tensor.New(4, 8, 8)); err == nil {
		t.Fatal("rank-3 features must be rejected")
	}
	failedLegs := waitForTrace(t, tr, client.Trace.ID, 1)
	if !failedLegs[0].Err {
		t.Fatal("failed request's leg not marked as error")
	}
}

// TestGobWireBytesUnchangedByTraceContext pins the legacy-compat guarantee:
// the trace context travels outside the Request struct, so a gob client's
// byte stream is identical whether or not a context is set — the gob type
// descriptor never changed.
func TestGobWireBytesUnchangedByTraceContext(t *testing.T) {
	encode := func(tc trace.Context) []byte {
		var buf bytes.Buffer
		codec := &gobClientCodec{enc: gob.NewEncoder(&buf), dec: gob.NewDecoder(&buf)}
		req := &Request{Model: "m", Version: 3, Features: wireTensor(77, 1, 2, 4, 4)}
		if err := codec.writeRequest(req, tc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := encode(trace.Context{})
	traced := encode(trace.Context{ID: 0xDEADBEEF, Sampled: true})
	if !bytes.Equal(plain, traced) {
		t.Fatalf("gob wire bytes changed when a trace context was set:\nplain:  %x\ntraced: %x", plain, traced)
	}
}

// TestPreV3ConnectionDropsTracedFrames pins tolerate-and-drop: a peer that
// negotiated v2 but sends a 0x03 traced frame anyway (hostile or buggy) is
// served normally, with an untraced 0x02 response — the negotiated dialect
// never widens retroactively.
func TestPreV3ConnectionDropsTracedFrames(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: -1, SlowestN: -1})
	addr, shutdown := startTracedServer(t, tr)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := helloBytes(2, 0) // deliberately negotiate v2
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var ack [8]byte
	if _, err := readFull(br, ack[:]); err != nil {
		t.Fatal(err)
	}
	if ack[4] != 2 {
		t.Fatalf("server acked version %d for a v2 hello", ack[4])
	}

	// A codec wired as if v3 had been negotiated: it will emit 0x03 frames.
	codec := &binClientCodec{binFramer: binFramer{w: conn, r: br, code: true}, traceOK: true}
	req := &Request{Features: instrumentInput(1)}
	if err := codec.writeRequest(req, trace.Context{ID: 0xFEED, Sampled: true}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	echo, err := codec.readResponse(&resp)
	if err != nil {
		t.Fatalf("v2 connection failed to serve a stray traced frame: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("response error: %s", resp.Err)
	}
	if echo != 0 {
		t.Fatalf("v2 connection echoed trace ID %016x; the context must be dropped", echo)
	}
	// The dropped context must not have forced retention either.
	if legs := tr.TraceByID(0xFEED); len(legs) != 0 {
		t.Fatalf("dropped context still retained %d legs", len(legs))
	}
}

// readFull is io.ReadFull without importing io just for the test.
func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestShedRequestProducesCompleteTrace floods a one-slot intake queue and
// asserts the tail-sampling promise that motivates it: every shed request's
// trace is retained, carrying the terminal shed span, even though the
// probabilistic coin is off — overload is exactly when you need to see who
// was turned away.
func TestShedRequestProducesCompleteTrace(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: -1, SlowestN: -1, Capacity: 512})
	addr, shutdown := startTracedServer(t, tr,
		WithBatchWindow(10*time.Millisecond), WithMaxQueue(1), WithWorkers(1))
	defer shutdown()

	const clients = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	sheds := 0
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				return
			}
			defer client.Close()
			wireTracedClient(t, client)
			x := instrumentInput(1)
			for i := 0; i < 20; i++ {
				client.Trace = trace.Context{ID: tr.NewID()}
				_, _, err := client.Infer(context.Background(), x)
				if errors.Is(err, ErrOverloaded) {
					mu.Lock()
					sheds++
					mu.Unlock()
				} else if err != nil {
					return // transport failure under the flood: other clients carry on
				}
			}
		}(id)
	}
	wg.Wait()
	if sheds == 0 {
		t.Skip("flood produced no sheds on this host; nothing to assert")
	}
	// Every shed must be a retained record with the terminal shed span.
	deadline := time.Now().Add(5 * time.Second)
	var shedRecs []trace.Record
	for time.Now().Before(deadline) {
		shedRecs = shedRecs[:0]
		for _, r := range tr.Snapshot() {
			if r.Shed {
				shedRecs = append(shedRecs, r)
			}
		}
		if len(shedRecs) >= sheds {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(shedRecs) < sheds {
		t.Fatalf("%d sheds observed by clients but only %d shed traces retained", sheds, len(shedRecs))
	}
	for _, r := range shedRecs {
		if r.StageDur(trace.StageShed) < 0 {
			t.Fatal("negative shed span")
		}
		found := false
		for i := 0; i < r.N; i++ {
			if r.Spans[i].Stage == trace.StageShed {
				found = true
			}
		}
		if !found {
			t.Fatalf("shed trace %016x has no terminal shed span (%d spans)", r.ID, r.N)
		}
	}
}

// BenchmarkServeRequestLoopTraced is BenchmarkServeRequestLoopBatched with a
// rate-1 tracer attached — every request records spans AND retains into the
// ring. The allocation report is the acceptance gate: tracing must add zero
// allocations to the batched serving loop even in this worst case (CI greps
// for 0 allocs/op).
func BenchmarkServeRequestLoopTraced(b *testing.B) {
	benchTracedLoop(b, trace.New(trace.Config{SampleRate: 1, SlowestN: 4, Capacity: 256}))
}

// BenchmarkServeRequestLoopTracedDefault is the same loop at the default 1%
// sample rate — the production configuration. CI holds its ns/op to within
// 5% of the untraced BenchmarkServeRequestLoopBatched.
func BenchmarkServeRequestLoopTracedDefault(b *testing.B) {
	benchTracedLoop(b, trace.New(trace.Config{Capacity: 256}))
}

func benchTracedLoop(b *testing.B, tr *trace.Tracer) {
	const (
		nBodies = 4
		K       = 4
	)
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }),
		WithTracer(tr))
	body, err := appendRequest(nil, &Request{Features: wireTensor(330, 1, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]*job, K)
	for i := range jobs {
		jobs[i] = newJob()
	}
	batch := &dispatchBatch{}
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<20)
	cycle := func() {
		for _, j := range jobs {
			if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, &j.wireTrace); err != nil {
				b.Fatal(err)
			}
			// What the reader goroutine does when a tracer is attached.
			tr.Begin(&j.tr, j.wireTrace)
			j.queuedAt = time.Now()
			batch.jobs = append(batch.jobs, j)
		}
		srv.serveBatch(batch, replicas)
		for _, j := range jobs {
			resp := <-j.reply
			if resp.Err != "" {
				b.Fatal(resp.Err)
			}
			var e error
			encStart := time.Now()
			encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, j.wireTrace.ID)
			if e != nil {
				b.Fatal(e)
			}
			// What the writer goroutine does: encode span, then Finish.
			tr.Span(&j.tr, trace.StageEncode, encStart, time.Since(encStart))
			tr.Finish(&j.tr, false)
			j.reset()
		}
		batch.reset()
	}
	cycle()
	cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
