package nn

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions, with learnable scale (gamma) and shift (beta) and
// running statistics for evaluation mode. The backward pass supports both
// modes: training mode differentiates through the batch statistics, while
// eval mode treats the running statistics as constants — the latter is what
// the attack package relies on when backpropagating through the server's
// frozen bodies.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // fraction of the old running statistic kept per step
	Gamma    *Param
	Beta     *Param
	RunMean  *tensor.Tensor
	RunVar   *tensor.Tensor

	// caches for Backward
	trainMode bool
	xhat      *tensor.Tensor
	invStd    []float64
}

// NewBatchNorm2D creates a batch-norm layer for c channels with gamma=1,
// beta=0, running mean 0 and running variance 1.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	return &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.9,
		Gamma:   NewParam(name+".gamma", tensor.Full(1, c)),
		Beta:    NewParam(name+".beta", tensor.New(c)),
		RunMean: tensor.New(c),
		RunVar:  tensor.Full(1, c),
	}
}

// Forward normalizes x; in training mode it also updates running statistics.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D %s expects [N,%d,H,W], got %v", b.Gamma.Name, b.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	m := float64(n * hw)
	out := tensor.New(x.Shape...)
	b.trainMode = train
	if cap(b.invStd) < c {
		b.invStd = make([]float64, c)
	}
	b.invStd = b.invStd[:c]

	if train {
		b.xhat = tensor.New(x.Shape...)
		for ci := 0; ci < c; ci++ {
			sum := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					sum += x.Data[base+j]
				}
			}
			mean := sum / m
			vsum := 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					d := x.Data[base+j] - mean
					vsum += d * d
				}
			}
			variance := vsum / m
			inv := 1 / math.Sqrt(variance+b.Eps)
			b.invStd[ci] = inv
			g, bt := b.Gamma.Value.Data[ci], b.Beta.Value.Data[ci]
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					xh := (x.Data[base+j] - mean) * inv
					b.xhat.Data[base+j] = xh
					out.Data[base+j] = g*xh + bt
				}
			}
			b.RunMean.Data[ci] = b.Momentum*b.RunMean.Data[ci] + (1-b.Momentum)*mean
			b.RunVar.Data[ci] = b.Momentum*b.RunVar.Data[ci] + (1-b.Momentum)*variance
		}
		return out
	}

	// Eval mode: normalize with running statistics. xhat is still cached so
	// Backward can produce gamma/beta gradients (needed when an attacker
	// fine-tunes a network that stays in eval mode).
	b.xhat = tensor.New(x.Shape...)
	for ci := 0; ci < c; ci++ {
		inv := 1 / math.Sqrt(b.RunVar.Data[ci]+b.Eps)
		b.invStd[ci] = inv
		mean := b.RunMean.Data[ci]
		g, bt := b.Gamma.Value.Data[ci], b.Beta.Value.Data[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			for j := 0; j < hw; j++ {
				xh := (x.Data[base+j] - mean) * inv
				b.xhat.Data[base+j] = xh
				out.Data[base+j] = g*xh + bt
			}
		}
	}
	return out
}

// Backward returns dL/dx and accumulates gamma/beta gradients.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	hw := grad.Shape[2] * grad.Shape[3]
	m := float64(n * hw)
	out := tensor.New(grad.Shape...)

	if !b.trainMode {
		// Running stats are constants: dx = dy * gamma * invStd, and the
		// affine parameters still receive their usual gradients.
		for ci := 0; ci < c; ci++ {
			k := b.Gamma.Value.Data[ci] * b.invStd[ci]
			sumDy, sumDyXhat := 0.0, 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * hw
				for j := 0; j < hw; j++ {
					dy := grad.Data[base+j]
					sumDy += dy
					sumDyXhat += dy * b.xhat.Data[base+j]
					out.Data[base+j] = dy * k
				}
			}
			b.Beta.Grad.Data[ci] += sumDy
			b.Gamma.Grad.Data[ci] += sumDyXhat
		}
		return out
	}

	if b.xhat == nil {
		panic("nn: BatchNorm2D Backward before Forward")
	}
	for ci := 0; ci < c; ci++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			for j := 0; j < hw; j++ {
				dy := grad.Data[base+j]
				sumDy += dy
				sumDyXhat += dy * b.xhat.Data[base+j]
			}
		}
		b.Beta.Grad.Data[ci] += sumDy
		b.Gamma.Grad.Data[ci] += sumDyXhat
		g := b.Gamma.Value.Data[ci]
		inv := b.invStd[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			for j := 0; j < hw; j++ {
				dy := grad.Data[base+j]
				xh := b.xhat.Data[base+j]
				out.Data[base+j] = g * inv / m * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return out
}

// Params returns gamma and beta.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
