// Package optim provides the gradient-descent optimizers used throughout the
// Ensembler reproduction: SGD with momentum and weight decay (for the split
// classifiers) and Adam (for the attacker's decoder and optimization-based
// inversion). Optimizers operate on nn.Param slices; parameter freezing is
// expressed by simply not handing a parameter to the optimizer, which is how
// Stage 3 keeps the selected server bodies fixed.
package optim

import (
	"math"

	"ensembler/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients afterwards.
type Optimizer interface {
	// Step applies one update from the accumulated gradients, then zeroes
	// them.
	Step()
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	params   []*nn.Param
	lr       float64
	momentum float64
	decay    float64
	velocity [][]float64
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	s.velocity = make([][]float64, len(params))
	for i, p := range params {
		s.velocity[i] = make([]float64, p.Value.Size())
	}
	return s
}

// Step applies v ← m·v + g + wd·w ; w ← w − lr·v, then zeroes gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j] + s.decay*p.Value.Data[j]
			v[j] = s.momentum*v[j] + g
			p.Value.Data[j] -= s.lr * v[j]
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*nn.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

// NewAdam creates an Adam optimizer with the standard (0.9, 0.999, 1e-8)
// moment settings.
func NewAdam(params []*nn.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Value.Size())
		a.v[i] = make([]float64, p.Value.Size())
	}
	return a
}

// Step applies one Adam update, then zeroes gradients.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j]
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.Value.Data[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. Stage-3 training clips to keep the
// cosine-similarity regularizer from destabilizing early epochs.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}

// StepDecay returns a learning-rate schedule that multiplies base by factor
// every period epochs (epoch counting from 0).
func StepDecay(base, factor float64, period int) func(epoch int) float64 {
	return func(epoch int) float64 {
		return base * math.Pow(factor, float64(epoch/period))
	}
}

// CosineDecay returns a cosine annealing schedule from base to floor over
// total epochs.
func CosineDecay(base, floor float64, total int) func(epoch int) float64 {
	return func(epoch int) float64 {
		if epoch >= total {
			return floor
		}
		return floor + 0.5*(base-floor)*(1+math.Cos(math.Pi*float64(epoch)/float64(total)))
	}
}
