package latency

import "fmt"

// This file models the sharded serving regime of the shard subsystem: K
// independent server processes each hosting a disjoint contiguous subset of
// the N ensemble bodies, with the client scatter-gathering every request
// across all K shards concurrently. The monolithic serving model charges
// the server with all N bodies (waves over its parallelism); here the
// fleet's server time is the *max over shards* — the slowest shard gates
// the gather — at the price of uploading the transmitted features K times
// (every shard needs the full head output) through the client's single
// uplink. Downloads are unchanged in total: the N feature vectors are
// merely split across shards.

// ShardedScenario describes one operating point of a K-shard fleet.
type ShardedScenario struct {
	Base    Scenario // device/link/model parameters; Base.N is the ensemble size
	Shards  int      // K server processes, disjoint body subsets (shard.Plan)
	Workers int      // worker replicas per shard
	Clients int      // concurrent client connections, one request in flight each
	Batch   int      // images per request
}

// shardedTimes evaluates the component times of one sharded request:
// client compute, the slowest shard's per-request server time, and the
// scatter-gather communication time.
func shardedTimes(sc *ShardedScenario) (client, maxServer, comm float64) {
	base := &sc.Base
	if sc.Batch <= 0 {
		sc.Batch = 1
	}
	if sc.Workers <= 0 {
		sc.Workers = 1
	}
	if sc.Clients <= 0 {
		sc.Clients = 1
	}
	n := base.N
	if n <= 0 {
		n = 1
	}
	k := sc.Shards
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n // a shard cannot host less than one body
	}
	b := float64(sc.Batch)

	// Client work is independent of both N and K (§III-D): one head pass
	// and one tail pass per image, computed once and fanned out.
	client = b * (base.Spec.HeadFLOPs() + base.Spec.TailFLOPs()) / base.Client.EffectiveFLOPS

	// The slowest shard hosts ceil(N/K) bodies (shard.Plan gives the first
	// N mod K shards one extra). Each shard is its own process on its own
	// device: waves over its local parallelism, contention only among the
	// bodies it actually hosts — sharding shrinks the contention term too.
	maxBodies := (n + k - 1) / k
	waves := (maxBodies + base.Server.Parallelism - 1) / base.Server.Parallelism
	maxServer = b * base.Spec.BodyFLOPs() * float64(waves) / base.Server.EffectiveFLOPS
	if maxBodies > 1 {
		maxServer *= 1 + 0.004*float64(maxBodies)
	}

	// Upload: the identical feature tensor goes to all K shards, sharing
	// the client's uplink — K× the payload, one round-trip latency charge
	// (the sends overlap). Download: the N return vectors are split across
	// shards but share the downlink, so total bytes are unchanged.
	up := float64(k)*b*base.Spec.FeatureBytes()/base.Link.UpBps + base.Link.RTTSeconds/2
	down := b*float64(n)*base.Spec.ServerReturnBytes()/base.Link.DownBps + base.Link.RTTSeconds/2
	comm = up + down
	// Mirror Run's encrypted-inference reference point: a uniform slowdown
	// over every component, so K=1 stays exactly EstimateServing for
	// encrypted scenarios too.
	if base.EncryptedFactor > 0 {
		client *= base.EncryptedFactor
		maxServer *= base.EncryptedFactor
		comm *= base.EncryptedFactor
	}
	return client, maxServer, comm
}

// EstimateShardedServing evaluates the closed-system model for a K-shard
// fleet: each request occupies one worker at every shard for that shard's
// service time, so the fleet's service rate is gated by its slowest shard
// (Workers / max-shard-time), while the clients' issue rate is bounded by
// the scatter-gather round trip. With Shards == 1 this reduces exactly to
// EstimateServing.
func EstimateShardedServing(sc ShardedScenario) ServingEstimate {
	client, maxServer, comm := shardedTimes(&sc)
	request := client + maxServer + comm
	clientBound := float64(sc.Clients) / request
	serverBound := float64(sc.Workers) / maxServer // +Inf when maxServer is 0: never binding
	x := clientBound
	if serverBound < x {
		x = serverBound
	}
	return ServingEstimate{
		Name:           fmt.Sprintf("c=%d w=%d b=%d K=%d", sc.Clients, sc.Workers, sc.Batch, sc.Shards),
		RequestSeconds: request,
		ThroughputRPS:  x,
		ThroughputIPS:  x * float64(sc.Batch),
		Utilization:    x * maxServer / float64(sc.Workers),
	}
}

// ShardSweep evaluates the scenario across fleet sizes — the capacity-
// planning question the -shard flag asks: how many shards before the
// gather is client- or uplink-bound rather than server-bound?
func ShardSweep(base Scenario, workers, clients, batch int, shards []int) []ServingEstimate {
	out := make([]ServingEstimate, len(shards))
	for i, k := range shards {
		out[i] = EstimateShardedServing(ShardedScenario{
			Base: base, Shards: k, Workers: workers, Clients: clients, Batch: batch,
		})
	}
	return out
}

// ShardedSpeedup returns the predicted throughput ratio of a K-shard fleet
// over the monolithic single-server deployment at the same per-process
// worker count, client count, and batch size.
func ShardedSpeedup(base Scenario, workers, clients, batch, k int) float64 {
	mono := EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: batch})
	fleet := EstimateShardedServing(ShardedScenario{Base: base, Shards: k, Workers: workers, Clients: clients, Batch: batch})
	return fleet.ThroughputRPS / mono.ThroughputRPS
}
