// Benchmarks regenerating the paper's evaluation. One benchmark exists per
// table of the paper (Tables I-III) plus ablation benches for the §III-D
// claims and serving benches for the concurrent deployment path; the
// architecture-diagram figures (Figs. 1-2) are reproduced functionally by
// the examples (see DESIGN.md §4).
//
// The table benches print the regenerated rows to stdout; each iteration
// performs the full experiment, so Go's default -benchtime runs them exactly
// once. Set ENSEMBLER_BENCH_SCALE=paper for the paper-matched operating
// point (N=10; expect tens of minutes).
package ensembler_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/attack"
	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/defense"
	"ensembler/internal/ensemble"
	"ensembler/internal/experiments"
	"ensembler/internal/flops"
	"ensembler/internal/latency"
	"ensembler/internal/nn"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// benchScale picks the experiment operating point.
func benchScale() experiments.Scale {
	if os.Getenv("ENSEMBLER_BENCH_SCALE") == "paper" {
		return experiments.Paper()
	}
	return experiments.Small()
}

// BenchmarkTableI regenerates Table I: defense quality of Single vs
// Ours-{Adaptive, SSIM, PSNR} across the three workloads.
func BenchmarkTableI(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		blocks := experiments.TableI(sc, 42, nil)
		for _, blk := range blocks {
			experiments.RenderRows(os.Stdout,
				fmt.Sprintf("\nTable I — %s (N=%d, P=%d)", blk.Kind, sc.N, blk.P), blk.Rows)
		}
	}
}

// BenchmarkTableII lives in internal/experiments/bench_test.go: Table I and
// Table II together exceed go test's default 10-minute per-package timeout,
// so the two heavyweight regenerators are split across packages. Both still
// run under `go test -bench=. ./...`.

// BenchmarkTableIII regenerates Table III: the latency cost model for
// Standard CI, Ensembler (N=10), and the STAMP reference.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIII(10)
		if i == 0 {
			experiments.RenderTableIII(os.Stdout, rows)
			fmt.Printf("Ensembler overhead vs Standard CI: %.1f%% (paper: 4.8%%)\n",
				latency.OverheadPercent(10))
		}
	}
}

// BenchmarkParallelServers reproduces the §III-D claim that the O(N) server
// cost parallelizes: Ensembler total latency versus server parallelism.
func BenchmarkParallelServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := latency.ParallelismSweep(10, []int{1, 2, 5, 10})
		if i == 0 {
			for _, r := range rows {
				fmt.Println(r)
			}
		}
	}
}

// BenchmarkBruteForceCost reproduces the §III-D claim that a brute-force
// MIA must search O(2^N) subsets.
func BenchmarkBruteForceCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			for _, n := range []int{5, 10, 20} {
				fmt.Printf("N=%2d: %.0f candidate subsets\n", n, ensemble.SubsetCount(n))
			}
		} else {
			ensemble.SubsetCount(10)
		}
	}
}

// --- Microbenchmarks of the substrate hot paths ---

func benchArch() split.Arch {
	return split.DefaultArch(data.CIFAR10Like)
}

// BenchmarkConvForward measures the im2col convolution kernel (the dominant
// cost of every training and attack loop).
func BenchmarkConvForward(b *testing.B) {
	r := rng.New(1)
	x := tensor.New(32, 8, 16, 16)
	r.FillNormal(x.Data, 0, 1)
	w := tensor.New(16, 8*9)
	r.FillNormal(w.Data, 0, 0.1)
	bias := tensor.New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.ConvForward(x, w, bias, 3, 3, 1, 1)
	}
}

// BenchmarkHeadForward measures one client-head pass (what an edge device
// computes per batch).
func BenchmarkHeadForward(b *testing.B) {
	head := benchArch().NewHead("h", rng.New(2))
	x := tensor.New(16, 3, 16, 16)
	rng.New(3).FillNormal(x.Data, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		head.Forward(x, false)
	}
}

// BenchmarkBodyForward measures one server-body pass.
func BenchmarkBodyForward(b *testing.B) {
	arch := benchArch()
	body := arch.NewBody("b", rng.New(4))
	x := tensor.New(16, arch.HeadC, 16, 16)
	rng.New(5).FillNormal(x.Data, 0, 1)
	body.Forward(x, true) // populate batch-norm running stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Forward(x, false)
	}
}

// BenchmarkDecoderReconstruct measures the attacker's inversion throughput.
func BenchmarkDecoderReconstruct(b *testing.B) {
	arch := benchArch()
	dec := attack.NewDecoder(arch, rng.New(6))
	f := tensor.New(16, arch.HeadC, 16, 16)
	rng.New(7).FillNormal(f.Data, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reconstruct(f)
	}
}

// BenchmarkSelectorApply measures the client's secret selection + concat.
func BenchmarkSelectorApply(b *testing.B) {
	sel := ensemble.FixedSelector(10, []int{1, 3, 5, 7})
	feats := make([]*tensor.Tensor, 10)
	r := rng.New(8)
	for i := range feats {
		feats[i] = tensor.New(32, 32)
		r.FillNormal(feats[i].Data, 0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Apply(feats)
	}
}

// BenchmarkTrainingStep measures one SGD step of the single-pipeline
// training loop (forward + backward + update).
func BenchmarkTrainingStep(b *testing.B) {
	arch := benchArch()
	m := split.NewModel("m", arch, 0.05, nn.NoiseFixed, 0, rng.New(9))
	x := tensor.New(16, 3, 16, 16)
	rng.New(10).FillNormal(x.Data, 0, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % arch.Classes
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		m.Backward(grad)
		m.Head.ZeroGrad()
		m.Body.ZeroGrad()
		m.Tail.ZeroGrad()
	}
}

// BenchmarkOracleAttack measures the diagnostic upper-bound attack on a
// pretrained tiny pipeline (shadow-free decoder training excluded).
func BenchmarkOracleAttack(b *testing.B) {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 64, Aux: 32, Test: 16, Seed: 11})
	arch := split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 10, UseMaxPool: true}
	none := defense.TrainNone(arch, sp.Train, split.TrainOptions{Epochs: 1, BatchSize: 16, LR: 0.05}, 12)
	cfg := attack.Config{Arch: arch, DecoderEpochs: 1, BatchSize: 16, Seed: 13}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.OracleDecoderAttack(cfg, none, sp.Aux, sp.Test, 8)
	}
}

// BenchmarkFLOPsSpec measures building the full ResNet-18 cost spec.
func BenchmarkFLOPsSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flops.ResNet18(32, 10, true)
	}
}

// --- Serving throughput under concurrency ---
//
// The pair below demonstrates the concurrent serving subsystem: the same
// loopback server measured from one connection and from eight simultaneous
// connections. On a multi-core host the replicated worker pool turns the
// extra connections into parallel body computation, so the concurrent
// variant's ns/op (time per request) drops well below the single-connection
// number — the >2× throughput regime modeled by latency.ConcurrencySweep.
// Compare with:
//
//	go test -bench 'BenchmarkServe' -run '^$' .

const servingConns = 8

// startServingBench boots a replicated worker-pool server over the shared
// commtest harness on loopback and returns its address plus a shutdown
// function. Kernel-level parallelism is pinned to 1 for the bench's
// lifetime: the worker pool is the serving path's one level of parallelism,
// and nested kernel goroutines only oversubscribe the cores it already owns.
func startServingBench(b *testing.B, nBodies int) (string, func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	arch := benchArch()
	srv := comm.NewServer(commtest.Bodies(arch, nBodies),
		comm.WithWorkers(runtime.GOMAXPROCS(0)),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(arch, nBodies) }),
	)
	comm.PinKernelParallelism(srv.Workers())
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		ln.Close()
		<-served
		tensor.SetKernelParallelism(0)
	}
}

// servingClient dials and wires one raw-protocol client (identity head,
// concat-all selector, private tail).
func servingClient(b *testing.B, addr string, nBodies int) *comm.Client {
	b.Helper()
	client, err := comm.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	commtest.Wire(client, benchArch(), nBodies)
	return client
}

// servingInput builds the fixed per-request feature batch.
func servingInput() *tensor.Tensor {
	return commtest.Input(benchArch(), 7, 4)
}

// BenchmarkServeSingleConnection measures request latency (= 1/throughput)
// over one connection. The reported allocs/op are the CLIENT side of the
// round trip (response decode and tail forward — tensors that escape to the
// caller by design); the server's per-request compute+codec loop is pinned
// at 0 allocs/op by internal/comm's BenchmarkServeRequestLoop and
// TestServerComputeLoopZeroAllocs.
func BenchmarkServeSingleConnection(b *testing.B) {
	const nBodies = 4
	addr, shutdown := startServingBench(b, nBodies)
	defer shutdown()
	client := servingClient(b, addr, nBodies)
	defer client.Close()
	x := servingInput()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Infer(ctx, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeConcurrentConnections distributes b.N requests over eight
// simultaneous connections; per-request ns/op directly compares against
// BenchmarkServeSingleConnection.
func BenchmarkServeConcurrentConnections(b *testing.B) {
	const nBodies = 4
	addr, shutdown := startServingBench(b, nBodies)
	defer shutdown()
	clients := make([]*comm.Client, servingConns)
	for i := range clients {
		clients[i] = servingClient(b, addr, nBodies)
		defer clients[i].Close()
	}
	x := servingInput()
	ctx := context.Background()
	requests := make(chan struct{})
	var failed atomic.Bool
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, client := range clients {
		wg.Add(1)
		go func(client *comm.Client) {
			defer wg.Done()
			// Keep draining after a failure so the b.N send loop below never
			// deadlocks on a channel with no receivers.
			for range requests {
				if failed.Load() {
					continue
				}
				if _, _, err := client.Infer(ctx, x); err != nil {
					b.Error(err)
					failed.Store(true)
				}
			}
		}(client)
	}
	for i := 0; i < b.N; i++ {
		requests <- struct{}{}
	}
	close(requests)
	wg.Wait()
}

// BenchmarkServeBatchedRequests carries the same four-image payload as the
// single-connection bench but packs four payloads per round trip; ns/op is
// per request of four inputs.
func BenchmarkServeBatchedRequests(b *testing.B) {
	const nBodies = 4
	addr, shutdown := startServingBench(b, nBodies)
	defer shutdown()
	client := servingClient(b, addr, nBodies)
	defer client.Close()
	x := servingInput()
	batch := []*tensor.Tensor{x, x, x, x}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.InferBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotSwap measures the registry's zero-downtime swap: eight
// clients hammer a registry-backed server while each iteration publishes a
// new model version (even iterations) or rotates the secret selector (odd
// iterations) and waits until a response is actually served from the new
// epoch. ns/op is therefore the end-to-end swap propagation latency under
// load; the reported dropped-request count must be zero — the hot-swap
// guarantee this subsystem exists for.
func BenchmarkHotSwap(b *testing.B) {
	const (
		nBodies = 4
		conns   = 8
	)
	arch := benchArch()
	reg := registry.New(nil)
	if _, err := reg.Publish("bench", commtest.Pipeline(arch, nBodies, 2, 1)); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := comm.NewModelServer(reg, comm.WithWorkers(runtime.GOMAXPROCS(0)))
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		ln.Close()
		<-served
	}()

	x := servingInput()
	var (
		dropped  atomic.Int64
		maxSeen  atomic.Int64
		load     sync.WaitGroup
		stopLoad = make(chan struct{})
	)
	maxSeen.Store(1)
	for i := 0; i < conns; i++ {
		client := servingClient(b, ln.Addr().String(), nBodies)
		defer client.Close()
		load.Add(1)
		go func(client *comm.Client) {
			defer load.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				if _, _, err := client.Infer(ctx, x); err != nil {
					dropped.Add(1)
					continue
				}
				_, v := client.Served()
				for {
					seen := maxSeen.Load()
					if int64(v) <= seen || maxSeen.CompareAndSwap(seen, int64(v)) {
						break
					}
				}
			}
		}(client)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var target int
		if i%2 == 0 {
			b.StopTimer()
			next := commtest.Pipeline(arch, nBodies, 2, int64(i+2)) // build off the clock
			b.StartTimer()
			ep, err := reg.Publish("bench", next)
			if err != nil {
				b.Fatal(err)
			}
			target = ep.Version()
		} else {
			ep, err := reg.RotateSelector("bench", ensemble.RotateOptions{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			target = ep.Version()
		}
		// The swap counts only once a response actually arrives from the new
		// epoch at some client; a propagation regression must fail loudly,
		// not hang the harness.
		deadline := time.Now().Add(30 * time.Second)
		for maxSeen.Load() < int64(target) {
			if time.Now().After(deadline) {
				b.Fatalf("no client observed v%d within 30s (%d requests dropped so far)", target, dropped.Load())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	b.StopTimer()
	close(stopLoad)
	load.Wait()
	b.ReportMetric(float64(dropped.Load()), "dropped")
	if n := dropped.Load(); n != 0 {
		b.Fatalf("hot swap dropped %d requests, want 0", n)
	}
}

// BenchmarkServingModel evaluates the analytic concurrency/batching model
// (the planning-time counterpart of the live benches above).
func BenchmarkServingModel(b *testing.B) {
	base := latency.Ensembler(10)
	maxPar := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		rows := latency.ConcurrencySweep(base, 4, maxPar, 1, []int{1, 2, 4, 8, 16})
		if i == 0 {
			for _, r := range rows {
				fmt.Println(r)
			}
			fmt.Printf("predicted speedup, 8 clients vs 1 (host parallelism %d): %.2f×\n",
				maxPar, latency.ConcurrencySpeedup(base, 4, maxPar, 1, 8))
		}
	}
}
