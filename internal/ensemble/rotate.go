package ensemble

import (
	"bytes"
	"fmt"
	"io"

	"ensembler/internal/data"
	"ensembler/internal/rng"
	"ensembler/internal/split"
)

// Selector rotation: a long-lived deployment serving every request under the
// same secret subset leaks more to an honest-but-curious server with every
// round trip (and a static ensemble is eventually invertible — see
// PAPERS.md on switching ensembles). Rotate bounds that exposure by
// re-drawing the secret P-subset on a fresh pipeline copy, leaving the
// original untouched so a server can keep answering in-flight requests on
// the old epoch while the new one is published. The N server bodies are
// deliberately NOT retrained: rotation must be invisible on the wire, and a
// body-weight change would be observable (and expensive). Only the
// client-side secret — selector, and optionally the stage-3 head/noise/tail
// tuned to the new subset — changes.

// RotateOptions configures one selector rotation.
type RotateOptions struct {
	// Seed drives the fresh secret subset draw (and the fine-tune shuffle).
	Seed int64
	// Tune, when non-nil, re-runs stage-3 fine-tuning of the head/noise/tail
	// against the newly selected frozen bodies on this dataset. Without it
	// the stage-3 networks are kept as-is, which preserves the wire protocol
	// but costs accuracy: the tail was trained for the previous subset.
	Tune *data.Dataset
	// TuneOpts overrides Cfg.Stage3 for the fine-tune when any field is set
	// (a rotation typically runs far fewer epochs than initial training).
	TuneOpts split.TrainOptions
	// Log receives progress lines (optional).
	Log io.Writer
}

// Clone returns a deep copy of the pipeline — independent networks, noise
// tensors, and selector — by round-tripping through the persistence format.
// The copy is what rotation mutates, so the original stays safe for
// concurrent readers throughout.
func (e *Ensembler) Clone() (*Ensembler, error) {
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return nil, fmt.Errorf("ensemble: cloning pipeline: %w", err)
	}
	c, err := Load(&buf)
	if err != nil {
		return nil, fmt.Errorf("ensemble: cloning pipeline: %w", err)
	}
	return c, nil
}

// Rotate returns a copy of the pipeline with a freshly drawn secret selector
// (guaranteed to differ from the current one whenever N and P allow more
// than one subset) and, if opts.Tune is set, stage-3 head/noise/tail
// fine-tuned to the new subset. The receiver is not modified.
func (e *Ensembler) Rotate(opts RotateOptions) (*Ensembler, error) {
	c, err := e.Clone()
	if err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	c.Selector = NewSelector(c.Cfg.N, c.Cfg.P, r)
	// A rotation that lands on the same subset rotates nothing; redraw until
	// it moves (possible unless the subset space is a single point).
	if sameIndices(c.Selector.Indices, e.Selector.Indices) && !singleSubset(c.Cfg.N, c.Cfg.P) {
		for sameIndices(c.Selector.Indices, e.Selector.Indices) {
			c.Selector = NewSelector(c.Cfg.N, c.Cfg.P, r.Split())
		}
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "rotate: selection %v -> %v\n", e.Selector.Indices, c.Selector.Indices)
	}
	if opts.Tune != nil {
		if anyTrainOption(opts.TuneOpts) {
			c.Cfg.Stage3 = opts.TuneOpts
		}
		c.trainStage3(opts.Tune, opts.Log)
	}
	return c, nil
}

// sameIndices reports whether two ascending index lists are identical.
func sameIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// singleSubset reports whether choosing P of N admits exactly one subset.
func singleSubset(n, p int) bool { return p == n || p == 0 }

// anyTrainOption reports whether the caller set any override field. Checked
// field by field because TrainOptions carries an io.Writer, which a struct
// equality test could panic on.
func anyTrainOption(o split.TrainOptions) bool {
	return o.Epochs != 0 || o.BatchSize != 0 || o.LR != 0 ||
		o.Momentum != 0 || o.WeightDecay != 0 || o.Seed != 0 || o.Log != nil
}
