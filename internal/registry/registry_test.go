package registry_test

import (
	"strings"
	"testing"
	"time"

	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
)

func TestRegistryPublishAndResolve(t *testing.T) {
	r := registry.New(nil)
	e := pipeline(10)
	ep, err := r.Publish("cifar", e)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Version() != 1 || ep.Name() != "cifar" {
		t.Fatalf("first publish → %s v%d", ep.Name(), ep.Version())
	}

	// The first published model becomes the default; "" and version 0
	// resolve to it — the pre-registry fallback.
	got, err := r.Epoch("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != ep {
		t.Error("default resolution did not return the published epoch")
	}
	if m, err := r.Resolve("", 0); err != nil || m.Seq() != ep.Seq() {
		t.Errorf("ModelProvider resolution mismatch: %v", err)
	}

	if _, err := r.Epoch("nope", 0); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model: %v", err)
	}
	if _, err := r.Epoch("cifar", 9); err == nil {
		t.Error("unknown version must fail on a storeless registry")
	}
}

func TestRegistryHotPublishSwapsCurrent(t *testing.T) {
	r := registry.New(nil)
	ep1, err := r.Publish("m", pipeline(11))
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := r.Publish("m", pipeline(12))
	if err != nil {
		t.Fatal(err)
	}
	if ep2.Version() != 2 {
		t.Fatalf("second publish version %d", ep2.Version())
	}
	if ep1.Seq() == ep2.Seq() {
		t.Error("epochs must have distinct sequence numbers")
	}
	cur, err := r.Current("m")
	if err != nil || cur != ep2 {
		t.Error("current must be the newest publish")
	}
	// The old epoch stays resolvable for pinned clients.
	old, err := r.Epoch("m", 1)
	if err != nil || old != ep1 {
		t.Error("pinned resolution of the superseded version failed")
	}
	// Both stay independently servable.
	x := images(13, 2)
	if old.Pipeline().Predict(x).AllClose(cur.Pipeline().Predict(x), 1e-12) {
		t.Error("distinct seeds should give distinguishable versions")
	}
}

func TestRegistryRotateSelector(t *testing.T) {
	r := registry.New(nil)
	ep1, err := r.Publish("m", pipeline(14))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), ep1.Pipeline().Selector.Indices...)

	ep2, err := r.RotateSelector("", ensemble.RotateOptions{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if ep2.Version() != 2 {
		t.Fatalf("rotation published version %d, want 2", ep2.Version())
	}
	same := len(before) == len(ep2.Pipeline().Selector.Indices)
	if same {
		for i := range before {
			if before[i] != ep2.Pipeline().Selector.Indices[i] {
				same = false
			}
		}
	}
	if same {
		t.Error("rotation kept the secret subset")
	}
	// Rotation is invisible on the wire: same bodies, so a header-less
	// client's features produce bit-identical server outputs across epochs.
	x := images(16, 2)
	f := ep1.Pipeline().ClientFeatures(x)
	a := ep1.Pipeline().ServerCompute(f)
	b := ep2.Pipeline().ServerCompute(f)
	for i := range a {
		if !a[i].AllClose(b[i], 1e-12) {
			t.Fatalf("body %d output changed across rotation", i)
		}
	}
}

func TestRegistrySetDefaultRoutesHeaderless(t *testing.T) {
	r := registry.New(nil)
	if _, err := r.Publish("a", pipeline(17)); err != nil {
		t.Fatal(err)
	}
	epB, err := r.Publish("b", pipeline(18))
	if err != nil {
		t.Fatal(err)
	}
	if r.Default() != "a" {
		t.Fatalf("default = %q, want first-published", r.Default())
	}
	if err := r.SetDefault("b"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Epoch("", 0)
	if err != nil || got != epB {
		t.Error("header-less resolution must follow the new default")
	}
	if err := r.SetDefault("nope"); err == nil {
		t.Error("defaulting to an unknown model must fail")
	}
	if models := r.Models(); len(models) != 2 || models[0] != "a" || models[1] != "b" {
		t.Errorf("models = %v", models)
	}
}

func TestRegistryWriteThroughAndReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := registry.New(store)
	if _, err := r.Publish("m", pipeline(19)); err != nil {
		t.Fatal(err)
	}
	ep2, err := r.RotateSelector("m", ensemble.RotateOptions{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh process opens the same directory and resumes at the rotated
	// version, same secret subset.
	r2, err := registry.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := r2.Current("m")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version() != 2 {
		t.Fatalf("reopened current version %d, want 2", cur.Version())
	}
	a, b := ep2.Pipeline().Selector.Indices, cur.Pipeline().Selector.Indices
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rotated selection not persisted")
		}
	}
	// Version pinning works across the restart by lazily loading from disk.
	old, err := r2.Epoch("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Version() != 1 {
		t.Errorf("pinned version = %d", old.Version())
	}
}

func TestRegistryLoadStorePicksUpOutOfProcessPublish(t *testing.T) {
	dir := t.TempDir()
	store, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := registry.New(store)
	if _, err := r.Publish("m", pipeline(21)); err != nil {
		t.Fatal(err)
	}

	// Another process publishes v2 directly to disk.
	store2, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Publish("m", pipeline(22)); err != nil {
		t.Fatal(err)
	}

	// The serving registry reloads (the SIGHUP path) and swaps to v2.
	updated, err := r.LoadStore()
	if err != nil {
		t.Fatal(err)
	}
	if updated != 1 {
		t.Errorf("LoadStore updated %d models, want 1", updated)
	}
	cur, err := r.Current("m")
	if err != nil || cur.Version() != 2 {
		t.Errorf("current after reload = v%d, want v2", cur.Version())
	}
	// Reloading again is a no-op.
	if updated, _ := r.LoadStore(); updated != 0 {
		t.Errorf("idempotent reload updated %d models", updated)
	}
}

func TestRotateSelectorRefusesToRevertRacingPublish(t *testing.T) {
	// A publish that lands while a rotation is in flight must not be
	// overwritten by the rotation of the stale pipeline. The rotation retries
	// on the fresh current instead.
	r := registry.New(nil)
	if _, err := r.Publish("m", pipeline(90)); err != nil {
		t.Fatal(err)
	}
	fresh := pipeline(91)
	x := commtest.Input(tiny, 92, 1)
	wantBody := fresh.Bodies()[0].Forward(x, false)

	// Simulate the race deterministically: Rotate reads current v1, then v2
	// lands before it publishes. The retry path rotates v2's pipeline, so the
	// final current must carry v2's bodies, not v1's.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(10 * time.Millisecond)
		if _, err := r.Publish("m", fresh); err != nil {
			t.Error(err)
		}
	}()
	// Tune=nil rotation is fast; loop a few to overlap with the publish.
	for i := 0; i < 20; i++ {
		if _, err := r.RotateSelector("m", ensemble.RotateOptions{Seed: int64(93 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	cur, err := r.Current("m")
	if err != nil {
		t.Fatal(err)
	}
	got := cur.Pipeline().Bodies()[0].Forward(x, false)
	if !got.AllClose(wantBody, 1e-12) {
		t.Error("rotation reverted the current pipeline to pre-publish bodies")
	}
}

func TestRegistryBoundsRetainedEpochs(t *testing.T) {
	// A rotation cadence publishes forever; memory must not grow with it.
	// Superseded epochs beyond the retention bound are evicted — resolvable
	// again through a store, gone for good without one.
	dir := t.TempDir()
	store, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := registry.New(store)
	if _, err := r.Publish("m", pipeline(30)); err != nil {
		t.Fatal(err)
	}
	const publishes = 12
	for i := 0; i < publishes; i++ {
		if _, err := r.RotateSelector("m", ensemble.RotateOptions{Seed: int64(31 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := r.Current("m")
	if err != nil || cur.Version() != publishes+1 {
		t.Fatalf("current = v%d, %v", cur.Version(), err)
	}
	// v1 was evicted from memory but lazily reloads from the store.
	old, err := r.Epoch("m", 1)
	if err != nil {
		t.Fatalf("evicted version must reload from the store: %v", err)
	}
	if old.Version() != 1 {
		t.Errorf("reloaded version = %d", old.Version())
	}

	// Storeless: the same churn makes old versions genuinely unknown.
	r2 := registry.New(nil)
	if _, err := r2.Publish("m", pipeline(50)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < publishes; i++ {
		if _, err := r2.RotateSelector("m", ensemble.RotateOptions{Seed: int64(51 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r2.Epoch("m", 1); err == nil {
		t.Error("storeless registry must not retain unboundedly many epochs")
	}
	if cur, err := r2.Current("m"); err != nil || cur.Version() != publishes+1 {
		t.Errorf("current survived eviction wrong: v%d, %v", cur.Version(), err)
	}
}

func TestEpochReplicasAreIndependent(t *testing.T) {
	r := registry.New(nil)
	ep, err := r.Publish("m", pipeline(23))
	if err != nil {
		t.Fatal(err)
	}
	a, b := ep.NewReplica(), ep.NewReplica()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("replica sizes %d, %d", len(a), len(b))
	}
	x := commtest.Input(tiny, 24, 2) // body-shaped features, not images
	// Same weights...
	for i := range a {
		if !a[i].Forward(x, false).AllClose(b[i].Forward(x, false), 1e-12) {
			t.Fatalf("replica body %d diverges", i)
		}
	}
	// ...but distinct objects (private forward caches).
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("replica body %d shared between calls", i)
		}
	}
}

func TestRotationHistoryRecordsCause(t *testing.T) {
	r := registry.New(nil)
	if _, err := r.Publish("m", pipeline(31)); err != nil {
		t.Fatal(err)
	}
	if got := r.RotationHistory("m"); len(got) != 0 {
		t.Fatalf("fresh model has %d rotation records, want 0", len(got))
	}
	if got := r.RotationCount("m"); got != 0 {
		t.Fatalf("fresh model rotation count %d, want 0", got)
	}

	before := time.Now()
	ep2, err := r.RotateSelectorCause("m", "leakage 0.41 > 0.30", ensemble.RotateOptions{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RotateSelector("", ensemble.RotateOptions{Seed: 33}); err != nil {
		t.Fatal(err)
	}

	// "" resolves the default model's history, like every other lookup.
	hist := r.RotationHistory("")
	if len(hist) != 2 {
		t.Fatalf("history has %d records, want 2", len(hist))
	}
	if hist[0].Version != ep2.Version() || hist[0].Cause != "leakage 0.41 > 0.30" {
		t.Errorf("first record = %+v", hist[0])
	}
	if hist[1].Cause != "manual" {
		t.Errorf("RotateSelector must record cause %q, got %q", "manual", hist[1].Cause)
	}
	if hist[0].At.Before(before) || hist[0].At.After(time.Now()) {
		t.Errorf("rotation timestamp %v outside the test window", hist[0].At)
	}
	if got := r.RotationCount("m"); got != 2 {
		t.Errorf("rotation count %d, want 2", got)
	}

	// Publishes are not rotations: the trail must not grow.
	if _, err := r.Publish("m", pipeline(34)); err != nil {
		t.Fatal(err)
	}
	if got := len(r.RotationHistory("m")); got != 2 {
		t.Errorf("publish grew the rotation history to %d records", got)
	}
	// Unknown models answer empty, not panic.
	if got := r.RotationHistory("nope"); got != nil {
		t.Errorf("unknown model history = %v, want nil", got)
	}
}
