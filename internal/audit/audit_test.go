package audit

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ensembler/internal/attack"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/privacy"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/telemetry"
	"ensembler/internal/tensor"
)

func feat(rows int, seed int64) *tensor.Tensor {
	x := tensor.New(rows, 4, 8, 8)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

func TestSamplerReservoirBoundedAndCounted(t *testing.T) {
	s := NewSampler(2, 4, 1)
	for i := 0; i < 100; i++ {
		s.ObserveFeatures("m", 1, feat(1, int64(i)))
	}
	seen, sampled := s.Counts()
	if seen != 100 || sampled != 50 {
		t.Errorf("counts = (%d, %d), want (100, 50)", seen, sampled)
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Errorf("reservoir holds %d, want cap 4", len(snap))
	}
	for _, smp := range snap {
		if smp.Model != "m" || smp.Version != 1 || smp.Features == nil {
			t.Errorf("bad sample %+v", smp)
		}
	}
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Error("reset must empty the reservoir")
	}
	// Counts survive a reset (they are lifetime telemetry).
	if seen, _ := s.Counts(); seen != 100 {
		t.Errorf("seen = %d after reset, want 100", seen)
	}
}

func TestSamplerCopiesTensors(t *testing.T) {
	s := NewSampler(1, 2, 1)
	x := feat(1, 7)
	s.ObserveFeatures("m", 1, x)
	x.Data[0] = 12345 // the request mutating its tensor later must not leak in
	if got := s.Snapshot()[0].Features.Data[0]; got == 12345 {
		t.Error("sampler retained the request's tensor instead of a copy")
	}
}

// TestDisabledSamplerDoesNotAllocate pins the serving-path contract: a
// disabled sampler costs nothing, and an enabled sampler costs nothing on
// the observations it skips.
func TestDisabledSamplerDoesNotAllocate(t *testing.T) {
	x := feat(1, 3)
	disabled := NewSampler(0, 8, 1)
	if n := testing.AllocsPerRun(200, func() { disabled.ObserveFeatures("m", 1, x) }); n != 0 {
		t.Errorf("disabled sampler allocates %.1f objects per observation, want 0", n)
	}
	var nilSampler *Sampler
	if n := testing.AllocsPerRun(200, func() { nilSampler.ObserveFeatures("m", 1, x) }); n != 0 {
		t.Errorf("nil sampler allocates %.1f objects per observation, want 0", n)
	}
	skipping := NewSampler(1<<30, 8, 1)
	if n := testing.AllocsPerRun(200, func() { skipping.ObserveFeatures("m", 1, x) }); n != 0 {
		t.Errorf("skip path allocates %.1f objects per observation, want 0", n)
	}
}

// TestSamplerConcurrent exercises the reservoir under 8 concurrent
// observers with -race.
func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(1, 16, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.ObserveFeatures("m", 1, feat(1, int64(w*1000+i)))
				if i%50 == 0 {
					s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	seen, sampled := s.Counts()
	if seen != 1600 || sampled != 1600 {
		t.Errorf("counts = (%d, %d), want (1600, 1600)", seen, sampled)
	}
	if len(s.Snapshot()) != 16 {
		t.Errorf("reservoir holds %d, want 16", len(s.Snapshot()))
	}
}

func TestStackObserved(t *testing.T) {
	samples := []Sample{
		{Model: "m", Features: feat(2, 1)},
		{Model: "m", Features: feat(3, 2)},
		{Model: "other", Features: feat(8, 3)},             // different model: dropped
		{Model: "m", Features: tensor.New(1, 2, 2, 2)},     // minority shape: dropped
		{Model: "", Features: feat(1, 4)},                  // single-model server: kept
		{Model: "m", Features: nil},                        // defensive
		{Model: "m", Features: &tensor.Tensor{Shape: nil}}, // defensive
	}
	out := stackObserved(samples, "m", 100)
	if out == nil || out.Shape[0] != 6 {
		t.Fatalf("stacked shape = %v, want [6 4 8 8]", out)
	}
	capped := stackObserved(samples, "m", 4)
	if capped.Shape[0] != 4 {
		t.Errorf("cap ignored: %v rows", capped.Shape[0])
	}
	if stackObserved(nil, "m", 10) != nil {
		t.Error("empty sample set must stack to nil")
	}
}

func TestCalibrationFloor(t *testing.T) {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 8, Test: 32, Seed: 5})
	floor := CalibrationFloor(sp.Test, 16)
	if floor <= -1 || floor >= 0.9 {
		t.Errorf("floor = %.3f, want a value clearly below perfect reconstruction", floor)
	}
	// A constant dataset's mean image is a perfect reconstruction: floor 1.
	one := sp.Test.Image(0)
	flat := tensor.New(4, one.Shape[0], one.Shape[1], one.Shape[2])
	for i := 0; i < 4; i++ {
		copy(flat.Data[i*one.Size():], one.Data)
	}
	constant := &data.Dataset{Name: "const", Images: flat, Labels: []int{0, 0, 0, 0}, Classes: 1}
	if got := CalibrationFloor(constant, 0); got < 0.999 {
		t.Errorf("constant-set floor = %.3f, want 1", got)
	}
}

// auditFixture wires an auditor over a published tiny pipeline with a stub
// scorer the test scripts, returning the auditor and a rotation counter.
func auditFixture(t *testing.T, cfg Config, scores *[]float64) (*Auditor, *int) {
	t.Helper()
	reg := registry.New(nil)
	if _, err := reg.Publish("m", commtest.Pipeline(commtest.TinyArch(), 4, 2, 21)); err != nil {
		t.Fatal(err)
	}
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 16, Test: 16, Seed: 6})
	rotations := 0
	cfg.Registry = reg
	cfg.Model = "m"
	cfg.Aux, cfg.Eval = sp.Aux, sp.Test
	cfg.EvalSamples = 8
	if cfg.Rotate == nil {
		cfg.Rotate = func(cause string) error {
			rotations++
			if !strings.Contains(cause, "leakage") {
				t.Errorf("cause %q does not cite leakage evidence", cause)
			}
			return nil
		}
	}
	if cfg.Scorer == nil {
		cfg.Scorer = func(*registry.Epoch, *tensor.Tensor) (float64, float64, error) {
			s := (*scores)[0]
			if len(*scores) > 1 {
				*scores = (*scores)[1:]
			}
			return s, 10, nil
		}
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, &rotations
}

// TestRotationExactlyOnceUnderHysteresis is the policy's central promise: a
// leakage excursion above the threshold rotates exactly once, no matter how
// many audits keep reporting high leakage, until the gauge has dipped below
// the hysteresis band and breached again.
func TestRotationExactlyOnceUnderHysteresis(t *testing.T) {
	scores := []float64{0.9}
	a, rotations := auditFixture(t, Config{
		Threshold:         0.3,
		Hysteresis:        0.1,
		Breaches:          2,
		Alpha:             1, // no smoothing: the stub score is the gauge
		MinRotateInterval: time.Nanosecond,
	}, &scores)

	// Six consecutive breaching audits: rotation fires on the second breach
	// and never again while the trigger stays disarmed.
	for i := 0; i < 6; i++ {
		a.RunOnce()
	}
	if *rotations != 1 {
		t.Fatalf("rotations = %d after 6 breaching audits, want exactly 1", *rotations)
	}
	st := a.State()
	if st.Armed {
		t.Error("trigger must disarm after rotating")
	}

	// Leakage inside the hysteresis band (0.25 ∈ (0.2, 0.3]) must NOT
	// re-arm; breaching again afterwards must not rotate.
	scores = []float64{0.25}
	a.RunOnce()
	scores = []float64{0.9}
	a.RunOnce()
	a.RunOnce()
	if *rotations != 1 {
		t.Fatalf("rotations = %d after an in-band dip, want still 1", *rotations)
	}

	// A dip below threshold−hysteresis re-arms; two fresh breaches rotate a
	// second time.
	scores = []float64{0.1}
	a.RunOnce()
	if st := a.State(); !st.Armed {
		t.Fatal("trigger must re-arm below the hysteresis band")
	}
	scores = []float64{0.9}
	a.RunOnce()
	a.RunOnce()
	if *rotations != 2 {
		t.Fatalf("rotations = %d after re-arm and two breaches, want 2", *rotations)
	}
}

// TestMinRotateIntervalHoldsTheFleet: even armed and breaching, rotations
// are spaced by MinRotateInterval.
func TestMinRotateIntervalHoldsTheFleet(t *testing.T) {
	now := time.Unix(1000, 0)
	scores := []float64{0.9}
	a, rotations := auditFixture(t, Config{
		Threshold:         0.3,
		Breaches:          1,
		Alpha:             1,
		Hysteresis:        0.1,
		MinRotateInterval: time.Hour,
		Now:               func() time.Time { return now },
	}, &scores)

	a.RunOnce()
	if *rotations != 1 {
		t.Fatalf("first breach must rotate, got %d", *rotations)
	}
	// Re-arm, breach again 30 minutes later: held by the interval.
	scores = []float64{0.1}
	a.RunOnce()
	now = now.Add(30 * time.Minute)
	scores = []float64{0.9}
	a.RunOnce()
	if *rotations != 1 {
		t.Fatalf("rotation inside MinRotateInterval: %d", *rotations)
	}
	// Past the interval it fires.
	now = now.Add(31 * time.Minute)
	a.RunOnce()
	if *rotations != 2 {
		t.Fatalf("rotation past MinRotateInterval must fire, got %d", *rotations)
	}
}

func TestAuditSkipsWithoutTraffic(t *testing.T) {
	scores := []float64{0.9}
	s := NewSampler(1, 8, 1)
	a, rotations := auditFixture(t, Config{
		Threshold:  0.3,
		Sampler:    s,
		MinSamples: 4,
		Breaches:   1,
		Alpha:      1,
	}, &scores)
	st := a.RunOnce()
	if st.Skipped != 1 || st.Audits != 0 {
		t.Fatalf("audit without traffic: %+v, want skipped", st)
	}
	for i := 0; i < 4; i++ {
		s.ObserveFeatures("m", 1, feat(1, int64(i)))
	}
	st = a.RunOnce()
	if st.Audits != 0 || *rotations != 1 {
		// Audits resets to 0 after a rotation; the rotation itself proves
		// the audit ran.
		t.Fatalf("audit with traffic must run and rotate: %+v, rotations %d", st, *rotations)
	}
	// The reservoir was consumed: the next tick skips again.
	if st := a.RunOnce(); st.Skipped != 2 {
		t.Fatalf("reservoir must be consumed by the audit: %+v", st)
	}
}

func TestAuditFailureIsReportedNotFatal(t *testing.T) {
	scores := []float64{0.9}
	a, _ := auditFixture(t, Config{
		Threshold: 0.3,
		Alpha:     1,
		Scorer: func(*registry.Epoch, *tensor.Tensor) (float64, float64, error) {
			panic("shape surprise")
		},
	}, &scores)
	st := a.RunOnce()
	if st.Failures != 1 || !strings.Contains(st.LastErr, "shape surprise") {
		t.Fatalf("panicking scorer must fail the audit: %+v", st)
	}
}

// TestOracleAttackScoreEndToEnd runs the real scorer (oracle mode) against
// a published pipeline: the audit must complete, score within SSIM range,
// and land above the nothing-extracted floor minus noise.
func TestOracleAttackScoreEndToEnd(t *testing.T) {
	reg := registry.New(nil)
	if _, err := reg.Publish("m", commtest.Pipeline(commtest.TinyArch(), 4, 2, 23)); err != nil {
		t.Fatal(err)
	}
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 32, Test: 16, Seed: 8})
	a, err := New(Config{
		Registry:    reg,
		Model:       "m",
		Aux:         sp.Aux,
		Eval:        sp.Test,
		EvalSamples: 8,
		Oracle:      true,
		Attack:      attackConfigTiny(),
		Threshold:   0.99, // never rotate here; this test is about scoring
	})
	if err != nil {
		t.Fatal(err)
	}
	st := a.RunOnce()
	if st.LastErr != "" {
		t.Fatalf("oracle audit failed: %s", st.LastErr)
	}
	if st.Audits != 1 {
		t.Fatalf("audits = %d, want 1", st.Audits)
	}
	if st.LastSSIM < -1 || st.LastSSIM > 1 {
		t.Fatalf("SSIM %v out of range", st.LastSSIM)
	}
	if st.Leakage != st.LastSSIM {
		t.Errorf("first audit must seed the EWMA: leakage %v vs ssim %v", st.Leakage, st.LastSSIM)
	}
}

// TestShadowAttackScoreUsesObserved runs the real query-free scorer with
// mirrored features feeding the alignment term.
func TestShadowAttackScoreUsesObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a shadow network")
	}
	reg := registry.New(nil)
	pipe := commtest.Pipeline(commtest.TinyArch(), 2, 1, 29)
	if _, err := reg.Publish("m", pipe); err != nil {
		t.Fatal(err)
	}
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 8, Aux: 24, Test: 8, Seed: 9})
	// TinyArch classifies 4 ways; fold the 10-class labels into range so the
	// shadow's classification loss is well-formed.
	for _, ds := range []*data.Dataset{sp.Aux, sp.Test} {
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	s := NewSampler(1, 8, 1)
	// Mirror what a client would really transmit.
	rt := pipe.NewClientRuntime()
	for i := 0; i < 4; i++ {
		x, _ := sp.Test.Batch([]int{i})
		s.ObserveFeatures("m", 1, rt.Features(x))
	}
	a, err := New(Config{
		Registry:    reg,
		Model:       "m",
		Sampler:     s,
		MinSamples:  2,
		Aux:         sp.Aux,
		Eval:        sp.Test,
		EvalSamples: 4,
		Attack:      attackConfigTiny(),
		Threshold:   0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := a.RunOnce()
	if st.LastErr != "" {
		t.Fatalf("shadow audit failed: %s", st.LastErr)
	}
	if st.Audits != 1 {
		t.Fatalf("audits = %d, want 1", st.Audits)
	}
}

func TestRegisterMetricsExportsLeakage(t *testing.T) {
	scores := []float64{0.42}
	s := NewSampler(1, 8, 1)
	a, _ := auditFixture(t, Config{Threshold: 0.99, Alpha: 1, Sampler: s}, &scores)
	s.ObserveFeatures("m", 1, feat(1, 1))
	a.RunOnce()
	treg := telemetry.NewRegistry()
	a.RegisterMetrics(treg)
	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ensembler_audit_leakage 0.42",
		"ensembler_audit_runs_total 1",
		"ensembler_audit_rotations_total 0",
		"ensembler_audit_armed 1",
		"ensembler_audit_features_sampled_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, Train: 4, Aux: 4, Test: 4, Seed: 4})
	reg := registry.New(nil)
	cases := []Config{
		{},                           // no registry
		{Registry: reg},              // no datasets
		{Registry: reg, Aux: sp.Aux}, // no eval
		{Registry: reg, Aux: sp.Aux, Eval: sp.Test}, // no threshold
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted an invalid config", i, cfg)
		}
	}
}

func attackConfigTiny() attack.Config {
	return attack.Config{ShadowEpochs: 1, DecoderEpochs: 1, BatchSize: 8, Seed: 99}
}

// TestAuditorReportsWorstDrainedClient pins the ledger integration: a
// /leakage snapshot reports the most drained client account next to the
// attack-replay bound, and RegisterMetrics exports the drained fraction.
func TestAuditorReportsWorstDrainedClient(t *testing.T) {
	ledger, err := privacy.NewLedger(privacy.LedgerConfig{BudgetEps: 1, QueryEps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := privacy.NewGuard(ledger, privacy.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	guard.Charge(guard.AccountFor("light"), 1)
	heavy := guard.AccountFor("did:ex:heavy")
	for i := 0; i < 7; i++ {
		guard.Charge(heavy, 1)
	}

	scores := []float64{0.1}
	a, _ := auditFixture(t, Config{Threshold: 0.3, Ledger: ledger}, &scores)
	st := a.State()
	if st.BudgetClients != 2 {
		t.Errorf("budget clients = %d, want 2", st.BudgetClients)
	}
	if st.WorstClient != "did:ex:heavy" {
		t.Errorf("worst client = %q, want the heavy account", st.WorstClient)
	}
	if st.WorstClientDrained < 0.69 || st.WorstClientDrained > 0.71 {
		t.Errorf("worst drained = %v, want 0.7", st.WorstClientDrained)
	}
	if st.WorstClientLevel != privacy.LevelNoise {
		t.Errorf("worst level = %d, want LevelNoise", st.WorstClientLevel)
	}

	treg := telemetry.NewRegistry()
	a.RegisterMetrics(treg)
	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ensembler_audit_worst_client_drained 0.7") {
		t.Errorf("metrics lack the worst-drained gauge:\n%s", b.String())
	}

	// Without a ledger the budget fields stay zero and the gauge is absent.
	scores = []float64{0.1}
	plain, _ := auditFixture(t, Config{Threshold: 0.3}, &scores)
	if st := plain.State(); st.WorstClient != "" || st.BudgetClients != 0 {
		t.Errorf("ledger-less state carries budget fields: %+v", st)
	}
}
