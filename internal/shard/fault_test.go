package shard_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ensembler/internal/commtest"
	"ensembler/internal/faultpoint"
	"ensembler/internal/shard"
)

// TestHedgeLegSuccessResetsBreaker pins the hedge-leg accounting: when the
// primary leg stalls and the HEDGE leg wins the exchange, that success must
// clear the shard's failure streak and close its circuit exactly like a
// primary-leg success — a shard that only ever answers via hedges is a slow
// shard, not a dead one.
func TestHedgeLegSuccessResetsBreaker(t *testing.T) {
	defer faultpoint.DisableAll()
	f := commtest.StartShards(t, 2, 4, 2, 61)
	cfg := f.ClientConfig()
	cfg.HedgeAfter = 10 * time.Millisecond
	cfg.Retries = -1 // one attempt per request: the streak accumulates 1:1
	cfg.DownAfter = 3
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(1, 62)
	want := f.Pipeline.Predict(x)

	// Prime shard 0 with two consecutive failures — one short of the
	// breaker threshold.
	faultpoint.Enable("shard/exchange/0", faultpoint.Policy{Kind: faultpoint.Error, Count: 2})
	for i := 0; i < 2; i++ {
		c.Infer(ctx, x) // may fail if shard 0 hosts selected bodies; the streak is the point
	}
	if h := c.Health()[0]; h.ConsecutiveFailures != 2 || h.Breaker != shard.BreakerClosed {
		t.Fatalf("priming: health %+v, want 2 consecutive failures with a closed breaker", h)
	}

	// Now stall only the primary leg: the delay policy triggers once, so
	// the hedge leg (second hit on the site) runs clean and wins.
	faultpoint.Enable("shard/exchange/0", faultpoint.Policy{
		Kind: faultpoint.Delay, Delay: 300 * time.Millisecond, Count: 1,
	})
	logits, _, err := c.Infer(ctx, x)
	if err != nil {
		t.Fatalf("hedged inference failed: %v", err)
	}
	if !logits.AllClose(want, 1e-9) {
		t.Fatal("hedged inference returned wrong logits")
	}
	h := c.Health()[0]
	if h.Hedged == 0 {
		t.Fatalf("hedge never fired: %+v", h)
	}
	if h.ConsecutiveFailures != 0 || h.Breaker != shard.BreakerClosed {
		t.Fatalf("hedge-leg success did not reset the breaker: %+v", h)
	}
}

// TestBreakerShortCircuitsAndRecovers drives the circuit end to end over a
// live fleet: injected exchange faults on an unselected shard open its
// circuit, further requests short-circuit without wire traffic (and still
// succeed — graceful degradation), and once the fault clears, the half-open
// probe closes the circuit again.
func TestBreakerShortCircuitsAndRecovers(t *testing.T) {
	defer faultpoint.DisableAll()
	f := commtest.StartShards(t, 3, 4, 2, 63)
	cfg := f.ClientConfig()
	cfg.Retries = -1
	cfg.DownAfter = 2
	cfg.BreakerBackoff = 50 * time.Millisecond
	cfg.BreakerMaxBackoff = 50 * time.Millisecond
	cfg.BreakerJitter = -1 // exact schedule
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(1, 64)
	want := f.Pipeline.Predict(x)
	_, unsel := shardHosting(t, f)
	site := fmt.Sprintf("shard/exchange/%d", unsel)

	faultpoint.Enable(site, faultpoint.Policy{Kind: faultpoint.Error})
	for i := 0; i < 2; i++ {
		logits, _, err := c.Infer(ctx, x)
		if err != nil {
			t.Fatalf("request %d: unselected shard fault must be survivable: %v", i, err)
		}
		if !logits.AllClose(want, 1e-9) {
			t.Fatalf("request %d returned wrong logits", i)
		}
	}
	h := c.Health()[unsel]
	if h.Breaker != shard.BreakerOpen || h.BreakerOpens != 1 {
		t.Fatalf("after %d failures: %+v, want an open circuit", cfg.DownAfter, h)
	}

	// Open circuit: requests short-circuit — no wire attempts accumulate —
	// and inference still succeeds because the shard is unselected.
	wireRequests := h.Requests
	for i := 0; i < 3; i++ {
		if _, _, err := c.Infer(ctx, x); err != nil {
			t.Fatalf("short-circuited request failed: %v", err)
		}
	}
	h = c.Health()[unsel]
	if h.Requests != wireRequests {
		t.Fatalf("open circuit still produced wire traffic: %d → %d requests", wireRequests, h.Requests)
	}
	if h.ShortCircuits < 3 {
		t.Fatalf("short circuits not counted: %+v", h)
	}
	if h.LastErr == "" {
		// LastErr still names the priming fault; the short-circuit error is
		// returned to Infer, not recorded as a wire failure.
		t.Fatalf("health lost its last wire error: %+v", h)
	}

	// Fault cleared: after the reopen backoff, one probe is admitted and
	// its success closes the circuit.
	faultpoint.Disable(site)
	time.Sleep(60 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := c.Infer(ctx, x); err != nil {
			t.Fatalf("recovery inference failed: %v", err)
		}
		if h = c.Health()[unsel]; h.Breaker == shard.BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("circuit never closed after fault cleared: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.ConsecutiveFailures != 0 {
		t.Fatalf("recovered circuit kept a failure streak: %+v", h)
	}
}

// TestBreakerOpenOnSelectedShardFailsFast: a request that needs an
// open-circuit shard fails with ErrBreakerOpen without touching the wire —
// the caller sees the refusal in microseconds, not a connect timeout.
func TestBreakerOpenOnSelectedShardFailsFast(t *testing.T) {
	defer faultpoint.DisableAll()
	f := commtest.StartShards(t, 3, 4, 2, 63)
	cfg := f.ClientConfig()
	cfg.Retries = -1
	cfg.DownAfter = 1
	cfg.BreakerBackoff = time.Hour // stays open for the whole test
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(1, 66)
	sel, _ := shardHosting(t, f)

	faultpoint.Enable(fmt.Sprintf("shard/exchange/%d", sel), faultpoint.Policy{Kind: faultpoint.Error, Count: 1})
	if _, _, err := c.Infer(ctx, x); err == nil {
		t.Fatal("selected-shard fault did not fail the request")
	}
	start := time.Now()
	_, _, err = c.Infer(ctx, x)
	if !errors.Is(err, shard.ErrBreakerOpen) {
		t.Fatalf("open selected shard returned %v, want ErrBreakerOpen", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("short-circuit took %v — it must not touch the wire", elapsed)
	}
}
