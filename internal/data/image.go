package data

import (
	"fmt"
	"io"
	"os"

	"ensembler/internal/tensor"
)

// EncodePPM writes an image tensor [3,H,W] (values clamped to [0,1]) as a
// binary PPM (P6) stream — the simplest way to eyeball attack
// reconstructions without imaging dependencies.
func EncodePPM(w io.Writer, img *tensor.Tensor) error {
	if len(img.Shape) != 3 || img.Shape[0] != 3 {
		return fmt.Errorf("data: EncodePPM expects [3,H,W], got %v", img.Shape)
	}
	h, wd := img.Shape[1], img.Shape[2]
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", wd, h); err != nil {
		return err
	}
	buf := make([]byte, 0, 3*h*wd)
	for y := 0; y < h; y++ {
		for x := 0; x < wd; x++ {
			for c := 0; c < 3; c++ {
				v := img.At(c, y, x)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				buf = append(buf, byte(v*255+0.5))
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

// SavePPM writes an image tensor to a .ppm file.
func SavePPM(path string, img *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := EncodePPM(f, img); err != nil {
		return err
	}
	return f.Close()
}

// SaveGrid writes a batch [N,3,H,W] as one PPM contact sheet with cols
// images per row — ground truth on top of reconstructions is the usual
// layout for attack inspection.
func SaveGrid(path string, batch *tensor.Tensor, cols int) error {
	if len(batch.Shape) != 4 || batch.Shape[1] != 3 {
		return fmt.Errorf("data: SaveGrid expects [N,3,H,W], got %v", batch.Shape)
	}
	n, h, w := batch.Shape[0], batch.Shape[2], batch.Shape[3]
	if cols <= 0 {
		cols = n
	}
	rows := (n + cols - 1) / cols
	grid := tensor.New(3, rows*h, cols*w)
	for i := 0; i < n; i++ {
		ry, rx := (i/cols)*h, (i%cols)*w
		img := batch.SampleView(i)
		for c := 0; c < 3; c++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					grid.Set(img.At(c, y, x), c, ry+y, rx+x)
				}
			}
		}
	}
	return SavePPM(path, grid)
}
