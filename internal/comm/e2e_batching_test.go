package comm_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/latency"
	"ensembler/internal/nn"
)

// This file is the acceptance test for the continuous-batching dispatcher:
// one end-to-end pass over the exported API proving, in order, that the
// dispatcher coalesces requests from different connections, that greedy
// batching does not tax throughput, that admission control sheds honestly
// under a full intake queue without hanging anybody, and that the latency
// package's queueing model predicts the measured windowed p99 within the
// gate tolerance (see tolerance_*.go for the race-build band).

// startDispatchServer runs a batching server and returns it alongside its
// address and Serve result channel.
func startDispatchServer(t *testing.T, ctx context.Context, nBodies int, opts ...comm.ServerOption) (*comm.Server, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	opts = append([]comm.ServerOption{
		comm.WithWorkers(1),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(tiny, nBodies) }),
	}, opts...)
	srv := comm.NewServer(commtest.Bodies(tiny, nBodies), opts...)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, ln) }()
	return srv, ln.Addr().String(), errCh
}

// closedLoopRun drives `clients` connections for `rounds` synchronous
// requests each, verifying every result bit-for-bit, and returns the wall
// time plus every per-request latency.
func closedLoopRun(t *testing.T, addr string, nBodies, clients, rounds int) (time.Duration, []time.Duration) {
	t.Helper()
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := comm.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			// Distinct inputs and row counts per client: coalescing must
			// stack heterogeneous row counts and still split exactly.
			x := commtest.Input(tiny, int64(100+id), 1+id%2)
			want := commtest.Reference(tiny, nBodies, x)
			mine := make([]time.Duration, 0, rounds)
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				t0 := time.Now()
				got, _, err := client.Infer(ctx, x)
				mine = append(mine, time.Since(t0))
				cancel()
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", id, r, err)
					return
				}
				if !got.AllClose(want, 1e-12) {
					errs <- fmt.Errorf("client %d round %d: result diverged from reference", id, r)
					return
				}
			}
			mu.Lock()
			latencies = append(latencies, mine...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return elapsed, latencies
}

// p99 returns the 99th-percentile latency of the sample set.
func p99(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

// TestServingEndToEndContinuousBatching is the acceptance run described in
// the issue: M connections against one serial worker, measured unbatched,
// greedily batched, and window-batched, with the windowed p99 gated against
// the queueing model's prediction.
func TestServingEndToEndContinuousBatching(t *testing.T) {
	const (
		nBodies = 3
		clients = 6
		rounds  = 30
		window  = 25 * time.Millisecond
	)
	total := float64(clients * rounds)

	// Phase 1 — unbatched baseline: per-job dispatch, no intake queue. With
	// one worker and six closed-loop clients the server is saturated, so
	// wall time / requests calibrates the per-request service time that the
	// queueing model's prediction is anchored to.
	ctx1, cancel1 := context.WithCancel(context.Background())
	_, addr, errCh1 := startDispatchServer(t, ctx1, nBodies)
	elapsed0, _ := closedLoopRun(t, addr, nBodies, clients, rounds)
	cancel1()
	if err := <-errCh1; err != nil {
		t.Fatalf("unbatched Serve: %v", err)
	}
	baselineRPS := total / elapsed0.Seconds()
	serviceSec := elapsed0.Seconds() / total

	// Phase 2 — greedy batching (window 0): the dispatcher coalesces only
	// what has already queued up behind the worker. Throughput must hold
	// against the unbatched baseline; the margin absorbs scheduler noise on
	// a shared single-core CI host, not a real regression budget.
	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2, addr2, errCh2 := startDispatchServer(t, ctx2, nBodies, comm.WithMaxQueue(64))
	elapsed1, _ := closedLoopRun(t, addr2, nBodies, clients, rounds)
	cancel2()
	if err := <-errCh2; err != nil {
		t.Fatalf("greedy-batched Serve: %v", err)
	}
	greedyRPS := total / elapsed1.Seconds()
	if greedyRPS < 0.7*baselineRPS {
		t.Errorf("greedy batching throughput %.1f req/s fell below unbatched %.1f req/s", greedyRPS, baselineRPS)
	}
	st2 := srv2.DispatcherStats()
	if !st2.Enabled || st2.Batches == 0 {
		t.Errorf("greedy dispatcher stats %+v: dispatcher did not carry the traffic", st2)
	}

	// Phase 3 — windowed batching, gated against the model. One retry is
	// allowed: a single GC or scheduler stall on the CI box inflates the
	// p99 of a 1.5-second run beyond anything a queueing model should be
	// blamed for.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		ctx3, cancel3 := context.WithCancel(context.Background())
		srv3, addr3, errCh3 := startDispatchServer(t, ctx3, nBodies,
			comm.WithBatchWindow(window), comm.WithMaxQueue(64))
		elapsed2, lats := closedLoopRun(t, addr3, nBodies, clients, rounds)
		cancel3()
		if err := <-errCh3; err != nil {
			t.Fatalf("windowed Serve: %v", err)
		}
		st := srv3.DispatcherStats()
		if st.MaxCoalesced < 2 {
			t.Fatalf("windowed run never coalesced across connections: stats %+v", st)
		}
		if st.Sheds != 0 {
			t.Fatalf("windowed run shed %d requests with a roomy queue", st.Sheds)
		}
		if st.PeakDepth > st.MaxQueue {
			t.Fatalf("peak depth %d exceeded the %d-job intake bound", st.PeakDepth, st.MaxQueue)
		}

		measured := p99(lats).Seconds()
		pred := latency.EstimateContinuousBatching(latency.QueueingScenario{
			Workers:        1,
			ServiceSeconds: serviceSec,
			ArrivalRPS:     total / elapsed2.Seconds(),
			WindowSeconds:  window.Seconds(),
		})
		ratio := pred.P99Seconds / measured
		if ratio >= 1-p99Tolerance && ratio <= 1+p99Tolerance {
			lastErr = nil
			break
		}
		lastErr = fmt.Errorf("predicted p99 %.1fms vs measured %.1fms (ratio %.2f) outside ±%.0f%% (batch %.1f, λ=%.0f/s)",
			1e3*pred.P99Seconds, 1e3*measured, ratio, 100*p99Tolerance, pred.MeanBatch, total/elapsed2.Seconds())
	}
	if lastErr != nil {
		t.Error(lastErr)
	}
}

// TestServingOverloadShedsHonestly is the admission-control half of the
// acceptance run: more closed-loop clients than a two-slot intake queue can
// hold must produce ErrOverloaded sheds — never hangs, never corrupted
// results, never a queue past its bound — while every client still gets
// served eventually.
func TestServingOverloadShedsHonestly(t *testing.T) {
	const (
		nBodies   = 3
		clients   = 8
		successes = 3
		maxQueue  = 4
	)
	ctx, cancel := context.WithCancel(context.Background())
	srv, addr, errCh := startDispatchServer(t, ctx, nBodies,
		comm.WithBatchWindow(20*time.Millisecond), comm.WithMaxQueue(maxQueue))

	var (
		mu    sync.Mutex
		sheds int
	)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := comm.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			x := commtest.Input(tiny, int64(300+id), 1)
			want := commtest.Reference(tiny, nBodies, x)
			ok := 0
			for attempt := 0; ok < successes && attempt < 400; attempt++ {
				rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
				got, _, err := client.Infer(rctx, x)
				rcancel()
				switch {
				case err == nil:
					if !got.AllClose(want, 1e-12) {
						errs <- fmt.Errorf("client %d: admitted result diverged", id)
						return
					}
					ok++
				case errors.Is(err, comm.ErrOverloaded):
					mu.Lock()
					sheds++
					mu.Unlock()
					// Back off before retrying, desynchronized per client —
					// a tight shed-retry loop burns the attempt budget
					// inside a single batch window and starves itself.
					time.Sleep(time.Duration(2+(id+attempt)%5) * time.Millisecond)
				default:
					errs <- fmt.Errorf("client %d: non-shed failure %w", id, err)
					return
				}
			}
			if ok < successes {
				errs <- fmt.Errorf("client %d: only %d/%d successes in 200 attempts", id, ok, successes)
			}
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("overload run hung: a shed or shutdown path lost a reply")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.DispatcherStats()
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("overloaded Serve: %v", err)
	}
	if sheds == 0 || st.Sheds == 0 {
		t.Errorf("overload run produced no sheds (client-side %d, server-side %d): admission control never engaged", sheds, st.Sheds)
	}
	if st.PeakDepth > maxQueue {
		t.Errorf("peak depth %d exceeded the %d-job bound under overload", st.PeakDepth, maxQueue)
	}
}
