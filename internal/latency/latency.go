// Package latency implements the analytic cost model behind Table III: the
// wall-clock time to push a batch of 128 images through Standard CI,
// Ensembler (N server bodies, parallel execution), and an encrypted-
// inference reference point (STAMP). Compute times derive from the flops
// package's ResNet-18 spec and per-device effective throughput; transfer
// times from a bandwidth+latency link model. Device and link parameters are
// calibrated so Standard CI reproduces the paper's measured operating point
// (Raspberry Pi client, A6000 server, wired LAN); see DESIGN.md for the
// substitution rationale.
package latency

import (
	"fmt"

	"ensembler/internal/flops"
)

// Device models a compute endpoint by its effective (sustained, not peak)
// throughput in FLOP/s and the number of independent executors available for
// running ensemble bodies concurrently.
type Device struct {
	Name string
	// EffectiveFLOPS is sustained fp32 throughput for this workload.
	EffectiveFLOPS float64
	// Parallelism is how many server bodies can run concurrently without
	// slowdown (GPU streams / multi-GPU); 1 serializes the ensemble.
	Parallelism int
}

// Link models the client-server network path with asymmetric effective
// throughput (the edge client's send path is the bottleneck; the server's
// return path runs much closer to line rate).
type Link struct {
	Name string
	// UpBps is effective client→server payload bandwidth, bytes/second.
	UpBps float64
	// DownBps is effective server→client payload bandwidth, bytes/second.
	DownBps float64
	// RTTSeconds is the per-round-trip latency overhead.
	RTTSeconds float64
}

// Upload returns the time to move bytes client→server.
func (l Link) Upload(bytes float64) float64 { return bytes/l.UpBps + l.RTTSeconds/2 }

// Download returns the time to move bytes server→client.
func (l Link) Download(bytes float64) float64 { return bytes/l.DownBps + l.RTTSeconds/2 }

// RaspberryPi4 approximates a Raspberry Pi-class edge client. The value is
// calibrated so the ResNet-18 head+tail on a batch of 128 costs ≈0.66 s as
// the paper measures, rather than taken from a peak-GFLOPS datasheet.
func RaspberryPi4() Device {
	return Device{Name: "raspberry-pi-4", EffectiveFLOPS: 0.71e9, Parallelism: 1}
}

// A6000 approximates an NVIDIA A6000 server at the modest utilization a
// batch-128 CIFAR ResNet-18 achieves (small kernels leave most of the GPU
// idle); calibrated so the body costs ≈0.98 s per batch as the paper
// measures. Parallelism 10 reflects concurrent streams for ensemble bodies.
func A6000() Device {
	return Device{Name: "a6000", EffectiveFLOPS: 36.2e9, Parallelism: 10}
}

// WiredLAN approximates the paper's wired client-server network, calibrated
// so Standard CI's communication totals ≈2.30 s for the batch of [64,16,16]
// features; the downlink runs faster than the Pi's constrained send path.
func WiredLAN() Link {
	return Link{Name: "wired-lan", UpBps: 3.69e6, DownBps: 17e6, RTTSeconds: 0.004}
}

// Scenario describes one deployment to cost out.
type Scenario struct {
	Name   string
	Spec   *flops.Spec
	Batch  int
	N      int // server bodies (1 = standard CI)
	Client Device
	Server Device
	Link   Link
	// EncryptedFactor, when > 0, multiplies every cost component to model
	// encrypted inference (the STAMP reference row); 0 disables.
	EncryptedFactor float64
}

// Breakdown is one row of Table III.
type Breakdown struct {
	Name          string
	Client        float64
	Server        float64
	Communication float64
}

// Total returns the end-to-end batch time.
func (b Breakdown) Total() float64 { return b.Client + b.Server + b.Communication }

// String formats the row like the paper's table.
func (b Breakdown) String() string {
	return fmt.Sprintf("%-12s client %.2fs server %.2fs comm %.2fs total %.2fs",
		b.Name, b.Client, b.Server, b.Communication, b.Total())
}

// Run evaluates the scenario.
//
// Client time: head + tail compute for the batch (the client's work is
// identical in Standard CI and Ensembler — §III-D).
// Server time: N body passes, divided by the server's parallelism (§III-D:
// the O(N) cost parallelizes because the bodies are independent).
// Communication: upload of the intermediate features plus download of N
// feature vectors per image.
func Run(sc Scenario) Breakdown {
	b := float64(sc.Batch)
	n := sc.N
	if n <= 0 {
		n = 1
	}
	// The client's work — head plus tail — is independent of N (§III-D);
	// the tail's FC grows with P but is negligible at 512·P inputs.
	client := b * (sc.Spec.HeadFLOPs() + sc.Spec.TailFLOPs()) / sc.Client.EffectiveFLOPS
	waves := (n + sc.Server.Parallelism - 1) / sc.Server.Parallelism
	server := b * sc.Spec.BodyFLOPs() * float64(waves) / sc.Server.EffectiveFLOPS
	// Ensemble bodies contend for memory bandwidth even across streams;
	// charge a 0.4% per-body contention overhead (calibrated to the paper's
	// +0.04 s server delta at N=10).
	if n > 1 {
		server *= 1 + 0.004*float64(n)
	}
	up := sc.Link.Upload(b * sc.Spec.FeatureBytes())
	down := sc.Link.Download(b * float64(n) * sc.Spec.ServerReturnBytes())
	comm := up + down
	out := Breakdown{Name: sc.Name, Client: client, Server: server, Communication: comm}
	if sc.EncryptedFactor > 0 {
		out.Client *= sc.EncryptedFactor
		out.Server *= sc.EncryptedFactor
		out.Communication *= sc.EncryptedFactor
	}
	return out
}

// StandardCI builds the paper's baseline scenario: ResNet-18, batch 128,
// one server body.
func StandardCI() Scenario {
	return Scenario{
		Name:   "Standard CI",
		Spec:   flops.ResNet18(32, 10, true),
		Batch:  128,
		N:      1,
		Client: RaspberryPi4(),
		Server: A6000(),
		Link:   WiredLAN(),
	}
}

// Ensembler builds the paper's defended scenario: N=10 server bodies.
func Ensembler(n int) Scenario {
	sc := StandardCI()
	sc.Name = "Ensembler"
	sc.N = n
	return sc
}

// LoopbackBench builds the scenario the ensembler-bench serving harness
// actually measures, as opposed to the paper's Pi+LAN deployment: both ends
// on one host over loopback (microseconds of RTT, gigabytes per second),
// an identity client head (the harness transmits raw features), and serial
// per-request body execution (the serving pool is the one level of
// parallelism). Predictions from this scenario are the ones comparable to a
// BENCH_*.json measurement; the original BENCH_2026-07-30 compared a
// loopback measurement against a Pi+LAN prediction and concluded 0.94×
// against 4.5× — two different experiments, not a regression.
func LoopbackBench(n int) Scenario {
	return Scenario{
		Name:  "loopback-bench",
		Spec:  flops.ResNet18(32, 10, true),
		Batch: 1,
		N:     n,
		// One host: a single general-purpose core on each side of the pipe.
		Client: Device{Name: "bench-host", EffectiveFLOPS: 40e9, Parallelism: 1},
		Server: Device{Name: "bench-host", EffectiveFLOPS: 5e9, Parallelism: 1},
		Link:   Link{Name: "loopback", UpBps: 4e9, DownBps: 4e9, RTTSeconds: 60e-6},
	}
}

// STAMP builds the encrypted-inference reference row. The paper quotes
// STAMP's reported LAN-GPU number (309.7 s for the same batch) rather than
// measuring it; we model it as a uniform slowdown factor over Standard CI
// calibrated to that figure (~78.6×).
func STAMP() Scenario {
	sc := StandardCI()
	sc.Name = "STAMP"
	sc.EncryptedFactor = 78.6
	return sc
}

// TableIII produces the three rows of the paper's latency table for the
// given ensemble size (the paper uses N=10).
func TableIII(n int) []Breakdown {
	return []Breakdown{Run(StandardCI()), Run(Ensembler(n)), Run(STAMP())}
}

// OverheadPercent returns Ensembler's total-time overhead over Standard CI
// (the paper reports 4.8%).
func OverheadPercent(n int) float64 {
	std := Run(StandardCI()).Total()
	ens := Run(Ensembler(n)).Total()
	return 100 * (ens - std) / std
}

// ParallelismSweep reports Ensembler total latency as server parallelism
// varies — the §III-D claim that the O(N) server cost parallelizes away.
func ParallelismSweep(n int, parallelisms []int) []Breakdown {
	var out []Breakdown
	for _, p := range parallelisms {
		sc := Ensembler(n)
		sc.Server.Parallelism = p
		sc.Name = fmt.Sprintf("Ensembler/p=%d", p)
		out = append(out, Run(sc))
	}
	return out
}
