//go:build !race

package comm_test

// p99Tolerance is the relative band the predicted-vs-measured p99 gate of
// the end-to-end serving test allows — the same ±20% the ensembler-bench
// -serving gate uses for its throughput prediction.
const p99Tolerance = 0.20
