package attack

import (
	"fmt"

	"ensembler/internal/data"
	"ensembler/internal/metrics"
	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// Victim exposes what the adversarial server passively observes: the
// intermediate features the client transmits for an input. Implementations
// wrap the defended pipelines; the attack never touches the client's private
// weights directly (query-free threat model).
type Victim interface {
	ClientFeatures(x *tensor.Tensor) *tensor.Tensor
}

// Outcome reports reconstruction quality of one attack run. Higher SSIM and
// PSNR mean better reconstruction, i.e. worse defense.
type Outcome struct {
	Name  string
	SSIM  float64
	PSNR  float64
	Recon *tensor.Tensor // reconstructed images, for inspection
}

// String renders the outcome as a table-style row fragment.
func (o Outcome) String() string {
	return fmt.Sprintf("%s: SSIM %.3f PSNR %.2f", o.Name, o.SSIM, o.PSNR)
}

// evalBatch gathers the first n test images (or all, if fewer) as the
// victim inputs whose transmitted features the attacker inverts.
func evalBatch(eval *data.Dataset, n int) *tensor.Tensor {
	if n <= 0 || n > eval.Len() {
		n = eval.Len()
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	x, _ := eval.Batch(idxs)
	return x
}

// RunDecoderAttack executes the full decoder-based MIA of the paper: train a
// shadow network against the given frozen bodies on aux data, train a
// decoder inverting the shadow head, then reconstruct the victim's private
// eval images from their observed transmitted features.
//
// evalSamples bounds how many eval images are reconstructed (0 = all).
func RunDecoderAttack(cfg Config, name string, bodies []*nn.Network, adaptive bool, victim Victim, aux, eval *data.Dataset, evalSamples int) Outcome {
	x := evalBatch(eval, evalSamples)
	observed := victim.ClientFeatures(x)
	if cfg.AlignWeight > 0 && cfg.Observed == nil {
		// The transmitted features of real victim traffic are exactly what
		// the semi-honest server records; alignment uses their statistics.
		cfg.Observed = observed
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	var best Outcome
	for r := 0; r < restarts; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*7919
		shadow := TrainShadow(c, bodies, adaptive, aux)
		dec := TrainDecoder(c, shadow.HeadFeatures, aux)
		recon := dec.Reconstruct(observed)
		o := Outcome{
			Name:  name,
			SSIM:  metrics.BatchSSIM(recon, x),
			PSNR:  metrics.BatchPSNR(recon, x),
			Recon: recon,
		}
		if r == 0 || o.SSIM > best.SSIM {
			best = o
		}
	}
	return best
}

// SingleBodyAttacks runs one decoder MIA per server body — the attacker who
// guesses that a single network carries the signal — and returns all
// outcomes. Table I's "Ours - SSIM" and "Ours - PSNR" rows report the
// strongest of these (see BestBy).
func SingleBodyAttacks(cfg Config, bodies []*nn.Network, victim Victim, aux, eval *data.Dataset, evalSamples int) []Outcome {
	outs := make([]Outcome, len(bodies))
	for i, b := range bodies {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*101
		outs[i] = RunDecoderAttack(c, fmt.Sprintf("single-body[%d]", i), []*nn.Network{b}, false, victim, aux, eval, evalSamples)
	}
	return outs
}

// AdaptiveAttack runs the paper's adaptive MIA: a shadow network over all N
// bodies with a learnable activation imitating the selector.
func AdaptiveAttack(cfg Config, bodies []*nn.Network, victim Victim, aux, eval *data.Dataset, evalSamples int) Outcome {
	o := RunDecoderAttack(cfg, "adaptive", bodies, true, victim, aux, eval, evalSamples)
	return o
}

// OracleDecoderAttack trains the decoder directly on the victim's true
// transmitted features for aux images — an upper bound that assumes query
// access, which the threat model forbids. It exists as a diagnostic: the gap
// between the oracle and the query-free decoder attack is the protection
// the defense derives from hiding the head, as opposed to from noise alone.
func OracleDecoderAttack(cfg Config, victim Victim, aux, eval *data.Dataset, evalSamples int) Outcome {
	dec := TrainDecoder(cfg, victim.ClientFeatures, aux)
	x := evalBatch(eval, evalSamples)
	recon := dec.Reconstruct(victim.ClientFeatures(x))
	return Outcome{
		Name:  "oracle",
		SSIM:  metrics.BatchSSIM(recon, x),
		PSNR:  metrics.BatchPSNR(recon, x),
		Recon: recon,
	}
}

// BestBy returns the outcome maximizing the chosen metric — the strongest
// reconstruction, i.e. the least favorable case for the defense, which is
// what the paper reports.
func BestBy(outs []Outcome, metric string) Outcome {
	if len(outs) == 0 {
		panic("attack: BestBy on empty outcomes")
	}
	best := outs[0]
	for _, o := range outs[1:] {
		switch metric {
		case "ssim":
			if o.SSIM > best.SSIM {
				best = o
			}
		case "psnr":
			if o.PSNR > best.PSNR {
				best = o
			}
		default:
			panic(fmt.Sprintf("attack: unknown metric %q", metric))
		}
	}
	return best
}
