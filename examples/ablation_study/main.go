// Ablation study: the design-choice sweeps DESIGN.md calls out, at a small
// scale — subset size P, regularizer strength λ, Stage-1 noise on/off, and
// the latency cost of growing N. Also demonstrates a stronger-than-paper
// "traffic-aligned" attacker that trains its shadow on observed traffic.
//
//	go run ./examples/ablation_study        (several minutes of CPU)
package main

import (
	"fmt"
	"os"

	"ensembler/internal/experiments"
)

func main() {
	sc := experiments.Small()
	// Trim the scale so the four sweeps stay in the minutes range.
	sc.N, sc.P = 3, 2
	sc.Train, sc.Aux, sc.EvalSamples = 320, 160, 32
	sc.ShadowEpochs = 15

	fmt.Println("== subset size P (privacy vs accuracy) ==")
	experiments.RenderAblation(os.Stdout, "", experiments.SweepP(sc, []int{1, 2, 3}, 41))

	fmt.Println("\n== Eq. 3 regularizer strength λ ==")
	experiments.RenderAblation(os.Stdout, "", experiments.SweepLambda(sc, []float64{0, 0.5, 2}, 42))

	fmt.Println("\n== Stage-1 per-member noise (what makes the N heads distinct) ==")
	experiments.RenderAblation(os.Stdout, "", experiments.SweepStage1Noise(sc, 43))

	fmt.Println("\n== latency vs ensemble size (cost model) ==")
	for _, row := range experiments.LatencySweepN([]int{1, 5, 10, 20}) {
		fmt.Println(row)
	}

	fmt.Println("\n== stronger-than-paper attacker: traffic-statistics alignment ==")
	plain, aligned := experiments.AlignedAttackStudy(sc, 44)
	fmt.Printf("  %s\n  %s\n", plain, aligned)
	fmt.Println("  (see EXPERIMENTS.md — alignment partially defeats the defense when the")
	fmt.Println("   attacked body is one of the secretly selected ones)")
}
