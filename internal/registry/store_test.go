package registry_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

var tiny = commtest.TinyArch()

// pipeline builds a cheap untrained pipeline; distinct seeds give
// bit-distinguishable versions.
func pipeline(seed int64) *ensemble.Ensembler {
	return commtest.Pipeline(tiny, 3, 2, seed)
}

// images builds a deterministic input batch for prediction comparisons.
func images(seed int64, n int) *tensor.Tensor {
	x := tensor.New(n, tiny.InC, tiny.H, tiny.W)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

func TestStorePublishLoadRoundTrip(t *testing.T) {
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := pipeline(1)
	v, err := s.Publish("cifar", e)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first publish got version %d, want 1", v)
	}

	loaded, lv, err := s.Load("cifar", 0)
	if err != nil {
		t.Fatal(err)
	}
	if lv != 1 {
		t.Fatalf("latest load got version %d, want 1", lv)
	}
	x := images(2, 3)
	if !loaded.Predict(x).AllClose(e.Predict(x), 1e-12) {
		t.Error("stored pipeline predicts differently after load")
	}

	man, err := s.Manifest("cifar", 1)
	if err != nil {
		t.Fatal(err)
	}
	if man.N != 3 || man.P != 2 || man.PipelineFormat != ensemble.FormatVersion {
		t.Errorf("manifest records N=%d P=%d fmt=%d", man.N, man.P, man.PipelineFormat)
	}
	if man.SHA256 == "" || man.SizeBytes <= 0 {
		t.Error("manifest missing checksum or size")
	}
}

func TestStoreVersionsAreSequential(t *testing.T) {
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 3; want++ {
		v, err := s.Publish("m", pipeline(int64(want)))
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("publish %d assigned version %d", want, v)
		}
	}
	versions, err := s.Versions("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 || versions[0] != 1 || versions[2] != 3 {
		t.Errorf("versions = %v", versions)
	}
	latest, err := s.Latest("m")
	if err != nil || latest != 3 {
		t.Errorf("latest = %d, %v", latest, err)
	}
	// No publish temp residue.
	entries, _ := os.ReadDir(filepath.Join(s.Dir(), "m"))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("leftover temp entry %s", e.Name())
		}
	}
}

func TestStoreMultipleModels(t *testing.T) {
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"beta", "alpha"} {
		if _, err := s.Publish(name, pipeline(7)); err != nil {
			t.Fatal(err)
		}
	}
	models, err := s.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0] != "alpha" || models[1] != "beta" {
		t.Errorf("models = %v", models)
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "..", "a/b", ".hidden", "sp ace"} {
		if _, err := s.Publish(name, pipeline(1)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

// corrupt flips one byte in the middle of a stored model file.
func corrupt(t *testing.T, dir, name string, version int) {
	t.Helper()
	path := filepath.Join(dir, name, "v0001", "model.gob")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruptedModel(t *testing.T) {
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("cifar", pipeline(3)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, dir, "cifar", 1)

	_, err = registry.Open(dir)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("Open on a corrupted store: want checksum error, got %v", err)
	}
	if !strings.Contains(err.Error(), "cifar") {
		t.Errorf("error should name the model: %v", err)
	}
	// Load through the already-open handle fails the same way.
	if _, _, err := s.Load("cifar", 1); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("Load of a corrupted version: want checksum error, got %v", err)
	}
}

func TestOpenRejectsTruncatedModel(t *testing.T) {
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("cifar", pipeline(4)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cifar", "v0001", "model.gob")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = registry.Open(dir)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("Open on a truncated store: want truncation error, got %v", err)
	}
}

func TestOpenRejectsForeignManifestFormat(t *testing.T) {
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("cifar", pipeline(5)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cifar", "v0001", "manifest.json")
	if err := os.WriteFile(path, []byte(`{"format": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Open(dir); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("want manifest-format error, got %v", err)
	}
}

func TestStorePublishPrecisionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublishPrecision("m", pipeline(8), "f32"); err != nil {
		t.Fatal(err)
	}
	man, err := s.Manifest("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if man.Precision != "f32" {
		t.Errorf("manifest precision = %q, want f32", man.Precision)
	}
	// Plain Publish records no commitment.
	if _, err := s.Publish("m", pipeline(9)); err != nil {
		t.Fatal(err)
	}
	if man, err = s.Manifest("m", 2); err != nil || man.Precision != "" {
		t.Errorf("uncommitted manifest precision = %q (err %v), want empty", man.Precision, err)
	}
	// Unknown precisions are rejected at publish time...
	if _, err := s.PublishPrecision("m", pipeline(10), "f16"); err == nil || !strings.Contains(err.Error(), "precision") {
		t.Errorf("PublishPrecision(f16): want precision error, got %v", err)
	}
	// ...and again on read, so a hand-edited manifest cannot smuggle one in
	// and steer a serve flag the kernels don't implement.
	path := filepath.Join(dir, "m", "v0001", "manifest.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `"f32"`, `"f16"`, 1)
	if tampered == string(b) {
		t.Fatal("manifest does not contain the published precision string")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Manifest("m", 1); err == nil || !strings.Contains(err.Error(), "precision") {
		t.Errorf("tampered manifest: want precision error, got %v", err)
	}
}

func TestStoreIgnoresStrayVersionLikeEntries(t *testing.T) {
	// An operator's `cp -r v0001 v0001-backup` must not make the store
	// unopenable or miscount versions.
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("m", pipeline(40)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "m", "v0001")
	for _, stray := range []string{"v0001-backup", "v2x", "vv3", "notes"} {
		if err := os.CopyFS(filepath.Join(dir, "m", stray), os.DirFS(src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := registry.Open(dir); err != nil {
		t.Fatalf("stray sibling directories broke Open: %v", err)
	}
	versions, err := s.Versions("m")
	if err != nil || len(versions) != 1 || versions[0] != 1 {
		t.Errorf("versions = %v, %v (stray entries parsed as versions)", versions, err)
	}
}

func TestStorePruneKeepsNewest(t *testing.T) {
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Publish("m", pipeline(int64(60+i))); err != nil {
			t.Fatal(err)
		}
	}
	pruned, err := s.Prune("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 4 {
		t.Errorf("pruned %d versions, want 4", pruned)
	}
	versions, err := s.Versions("m")
	if err != nil || len(versions) != 2 || versions[0] != 5 || versions[1] != 6 {
		t.Errorf("versions after prune = %v, %v", versions, err)
	}
	// The latest survives even a degenerate keep.
	if _, err := s.Prune("m", 0); err != nil {
		t.Fatal(err)
	}
	if latest, err := s.Latest("m"); err != nil || latest != 6 {
		t.Errorf("latest after keep-0 prune = %d, %v", latest, err)
	}
}

func TestOpenMissingDirFails(t *testing.T) {
	if _, err := registry.Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open of a missing directory must fail")
	}
}
