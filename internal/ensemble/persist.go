package ensemble

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// FormatVersion identifies the on-disk encoding of a saved pipeline. Version
// 1 was the bare gob of savedState; version 2 wraps it in an envelope
// carrying the format number and a content checksum, so a reader can tell
// "newer/older format" apart from "corrupted file" and registry manifests
// can record what they point at.
const FormatVersion = 2

// savedFile is the outermost on-disk structure: the format version, the
// SHA-256 of Payload, and the gob-encoded savedState itself. Decoding
// verifies the checksum before touching the payload, so truncation or bit
// rot surfaces as a descriptive error instead of a garbled network.
type savedFile struct {
	Format   int
	Checksum [sha256.Size]byte
	Payload  []byte
}

// savedState is the inner form of a trained Ensembler: the configuration
// (enough to rebuild identically shaped networks), the secret selection, all
// parameter tensors keyed by network role, and the fixed noise tensors.
type savedState struct {
	Cfg       Config
	Selection []int
	// Nets maps role keys ("member3.body", "final.head", ...) to the gob
	// bytes produced by nn.Network.Save.
	Nets map[string][]byte
	// Noises maps role keys ("member3.noise", "final.noise") to the fixed
	// noise tensors, which live outside the parameter lists.
	Noises map[string]*tensor.Tensor
}

// saveNet serializes one network into the state map.
func (st *savedState) saveNet(key string, n *nn.Network) error {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		return fmt.Errorf("ensemble: saving %s: %w", key, err)
	}
	st.Nets[key] = buf.Bytes()
	return nil
}

// loadNet restores one network from the state map.
func (st *savedState) loadNet(key string, n *nn.Network) error {
	b, ok := st.Nets[key]
	if !ok {
		return fmt.Errorf("ensemble: saved state missing network %q", key)
	}
	return n.Load(bytes.NewReader(b))
}

// Save writes the full trained pipeline to w in the current FormatVersion.
func (e *Ensembler) Save(w io.Writer) error {
	st := savedState{
		Cfg:       e.Cfg,
		Selection: e.Selector.Indices,
		Nets:      map[string][]byte{},
		Noises:    map[string]*tensor.Tensor{},
	}
	for i, m := range e.Members {
		if err := st.saveNet(fmt.Sprintf("member%d.head", i), m.Head); err != nil {
			return err
		}
		if err := st.saveNet(fmt.Sprintf("member%d.body", i), m.Body); err != nil {
			return err
		}
		if err := st.saveNet(fmt.Sprintf("member%d.tail", i), m.Tail); err != nil {
			return err
		}
		if m.Noise != nil {
			st.Noises[fmt.Sprintf("member%d.noise", i)] = m.Noise.Noise.Value
		}
	}
	if err := st.saveNet("final.head", e.Head); err != nil {
		return err
	}
	if err := st.saveNet("final.tail", e.Tail); err != nil {
		return err
	}
	if e.Noise != nil {
		st.Noises["final.noise"] = e.Noise.Noise.Value
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		return fmt.Errorf("ensemble: encoding saved state: %w", err)
	}
	env := savedFile{
		Format:   FormatVersion,
		Checksum: sha256.Sum256(payload.Bytes()),
		Payload:  payload.Bytes(),
	}
	return gob.NewEncoder(w).Encode(&env)
}

// validateSavedState rejects saved states whose configuration or selection
// could not have been produced by Save: the payload is untrusted input (a
// corrupted file, or one forged to pass the checksum), and every field below
// is fed to constructors that panic on nonsense rather than returning errors.
func validateSavedState(st *savedState) error {
	cfg := st.Cfg
	if cfg.N <= 0 || cfg.P <= 0 || cfg.P > cfg.N {
		return fmt.Errorf("ensemble: saved state has invalid ensemble shape N=%d P=%d", cfg.N, cfg.P)
	}
	a := cfg.Arch
	if a.InC <= 0 || a.H <= 0 || a.W <= 0 || a.HeadC <= 0 || a.Classes <= 0 || len(a.BlockWidths) == 0 {
		return fmt.Errorf("ensemble: saved state has invalid architecture %+v", a)
	}
	for _, w := range a.BlockWidths {
		if w <= 0 {
			return fmt.Errorf("ensemble: saved state has invalid block widths %v", a.BlockWidths)
		}
	}
	if cfg.Sigma < 0 || cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return fmt.Errorf("ensemble: saved state has invalid sigma=%v dropout=%v", cfg.Sigma, cfg.Dropout)
	}
	if len(st.Selection) != cfg.P {
		return fmt.Errorf("ensemble: saved state selects %d bodies, config says P=%d", len(st.Selection), cfg.P)
	}
	seen := map[int]bool{}
	for _, i := range st.Selection {
		if i < 0 || i >= cfg.N || seen[i] {
			return fmt.Errorf("ensemble: saved state has invalid selection %v for N=%d", st.Selection, cfg.N)
		}
		seen[i] = true
	}
	return nil
}

// Load reconstructs a trained pipeline from r, verifying the envelope's
// format version and content checksum before decoding the payload. The
// stored Config rebuilds the network skeletons (via New); saved parameters
// then overwrite the fresh initialization. The training-time RNG stream is
// irrelevant here because every tensor is restored explicitly.
//
// Load never panics on malformed input: the payload is validated before any
// constructor sees it, and a residual panic in the network substrate (a
// tensor whose recorded shape disagrees with its data in a way the layer
// code trips over) is converted to an error. A model file is a trust
// boundary — registry stores and operators hand them around.
func Load(r io.Reader) (e *Ensembler, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			e, err = nil, fmt.Errorf("ensemble: rejecting malformed saved state: %v", rec)
		}
	}()
	var env savedFile
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		// A pre-envelope (format 1) file is a bare savedState gob: none of
		// its fields match the envelope, which gob reports as a type
		// mismatch. Name the likely cause instead of implying corruption.
		return nil, fmt.Errorf("ensemble: decoding saved state (corrupted, or a pre-format-%d file from an older build — retrain or republish it): %w", FormatVersion, err)
	}
	if env.Format != FormatVersion {
		return nil, fmt.Errorf("ensemble: saved pipeline has format version %d, this build reads %d", env.Format, FormatVersion)
	}
	if sum := sha256.Sum256(env.Payload); sum != env.Checksum {
		return nil, fmt.Errorf("ensemble: saved pipeline fails its checksum (truncated or corrupted file)")
	}
	var st savedState
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("ensemble: decoding saved state payload: %w", err)
	}
	if err := validateSavedState(&st); err != nil {
		return nil, err
	}
	e = New(st.Cfg)
	for i, m := range e.Members {
		if err := st.loadNet(fmt.Sprintf("member%d.head", i), m.Head); err != nil {
			return nil, err
		}
		if err := st.loadNet(fmt.Sprintf("member%d.body", i), m.Body); err != nil {
			return nil, err
		}
		if err := st.loadNet(fmt.Sprintf("member%d.tail", i), m.Tail); err != nil {
			return nil, err
		}
		if m.Noise != nil {
			saved, ok := st.Noises[fmt.Sprintf("member%d.noise", i)]
			if !ok {
				return nil, fmt.Errorf("ensemble: saved state missing member %d noise", i)
			}
			if err := restoreNoise(m.Noise.Noise.Value.Data, saved, fmt.Sprintf("member %d", i)); err != nil {
				return nil, err
			}
		}
	}
	e.Selector = FixedSelector(st.Cfg.N, st.Selection)
	if err := st.loadNet("final.head", e.Head); err != nil {
		return nil, err
	}
	if err := st.loadNet("final.tail", e.Tail); err != nil {
		return nil, err
	}
	if saved, ok := st.Noises["final.noise"]; ok {
		if e.Noise == nil {
			c, h, w := st.Cfg.Arch.HeadOutShape()
			// Initialization is immediately overwritten by the saved tensor.
			e.Noise = nn.NewAdditiveNoise("final.noise", nn.NoiseFixed, c, h, w, st.Cfg.Sigma, rng.New(0))
		}
		if err := restoreNoise(e.Noise.Noise.Value.Data, saved, "final"); err != nil {
			return nil, err
		}
	} else {
		e.Noise = nil
	}
	return e, nil
}

// restoreNoise copies a saved fixed-noise tensor over a freshly built one,
// rejecting nil or wrongly sized tensors — a bare copy would silently
// truncate a corrupted tensor into a half-restored noise pattern.
func restoreNoise(dst []float64, saved *tensor.Tensor, role string) error {
	if saved == nil || len(saved.Data) != len(dst) {
		return fmt.Errorf("ensemble: saved state has malformed %s noise tensor", role)
	}
	copy(dst, saved.Data)
	return nil
}

// SaveFile writes the pipeline to path.
func (e *Ensembler) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a pipeline from path.
func LoadFile(path string) (*Ensembler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
