package tensor

import (
	"fmt"
	"sync/atomic"
)

// This file holds the allocation-free serving kernels: cache-blocked matrix
// multiplication writing into caller-owned buffers, the *Into variants of
// the elementwise and im2col transforms, and the process-wide kernel
// parallelism knob. The legacy allocating kernels (MatMul, Im2Col, …) remain
// for the training and attack paths; the *Into family is what the inference
// hot path (nn.ForwardInfer, comm serving workers) runs on. All *Into
// kernels are strictly serial — a serving process parallelizes at exactly
// one level, its worker pool, never inside a kernel.

// kernelWorkers caps how many goroutines parallelFor may use; 0 means
// GOMAXPROCS (the historical behavior).
var kernelWorkers atomic.Int32

// SetKernelParallelism bounds the goroutines the allocating kernels (MatMul,
// ConvForward, …) may fan out across; n <= 0 restores the GOMAXPROCS
// default. Serving processes whose comm worker pool already saturates the
// cores set this to 1 so kernels never nest a second level of parallelism
// under the pool — the oversubscription behind the measured 0.94× concurrent
// "speedup" of BENCH_2026-07-30. The *Into kernels are always serial and
// ignore this knob.
func SetKernelParallelism(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int32(n))
}

// KernelParallelism reports the current cap (0 = GOMAXPROCS).
func KernelParallelism() int { return int(kernelWorkers.Load()) }

// Blocking factors for the tiled matmul: the [blockK × blockJ] panel of b
// (64 KiB of float64) stays cache-resident while every output row of the
// row-block consumes it.
const (
	matmulBlockK = 64
	matmulBlockJ = 128
)

// matmulRows computes out[i0:i1) += a[i0:i1)×b for row-major a:[m,k],
// b:[k,n], out:[m,n], tiled over (k, j). Output rows are zeroed first.
// Accumulation order per output element is ascending p, matching the naive
// kernel bit for bit — parallel and serial callers agree exactly.
func matmulRows(out, a, b []float64, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		row := out[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	for kb := 0; kb < k; kb += matmulBlockK {
		kend := min(kb+matmulBlockK, k)
		for jb := 0; jb < n; jb += matmulBlockJ {
			jend := min(jb+matmulBlockJ, n)
			for i := i0; i < i1; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n+jb : i*n+jend]
				for p := kb; p < kend; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b[p*n+jb : p*n+jend]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// checkMatMulShapes validates a 2-D matmul triple and returns (m, k, n).
func checkMatMulShapes(dst, a, b *Tensor, op string) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors", op))
	}
	m, k = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dims %d vs %d", op, k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
	return m, k, n
}

// MatMulInto computes dst = a×b for 2-D tensors [m,k]·[k,n] → [m,n] into the
// caller-owned dst, serially, with the cache-blocked kernel. dst must not
// alias a or b. Results are bit-identical to MatMul.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := checkMatMulShapes(dst, a, b, "MatMulInto")
	_ = m
	matmulRows(dst.Data, a.Data, b.Data, 0, a.Shape[0], k, n)
	return dst
}

// MatMulTransBInto computes dst = a×bᵀ for a:[m,k], b:[n,k] → [m,n] into the
// caller-owned dst, serially.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransBInto requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBInto inner dims %d vs %d", k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return dst
}

// MatMulTransAInto computes dst = aᵀ×b for a:[k,m], b:[k,n] → [m,n] into the
// caller-owned dst, serially.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransAInto requires 2-D tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAInto inner dims %d vs %d", k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for p := 0; p < k; p++ {
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			orow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// AddInto computes dst = a + b elementwise into the caller-owned dst. dst
// may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor {
	dst.checkSame(a, "AddInto")
	dst.checkSame(b, "AddInto")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// ScaleInto computes dst = s*a elementwise into the caller-owned dst.
func ScaleInto(dst, a *Tensor, s float64) *Tensor {
	dst.checkSame(a, "ScaleInto")
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// Im2ColInto expands one [C,H,W] image into the caller-owned patch matrix
// dst of shape [C*KH*KW, OH*OW] (see Im2Col). dst is fully overwritten,
// zero-padding included.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.Shape) != 3 {
		panic("tensor: Im2ColInto expects [C,H,W]")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if len(dst.Shape) != 2 || dst.Shape[0] != c*kh*kw || dst.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want [%d %d]", dst.Shape, c*kh*kw, oh*ow))
	}
	im2colSlice(dst.Data, x.Data, c, h, w, kh, kw, stride, pad, oh, ow)
	return dst
}

// im2colSlice is the raw-slice im2col used by the serving conv kernel; dst
// is fully overwritten.
func im2colSlice(dst, src []float64, c, h, w, kh, kw, stride, pad, oh, ow int) {
	for i := range dst {
		dst[i] = 0
	}
	colStride := oh * ow
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ci*kh+ky)*kw + kx) * colStride
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := chanBase + iy*w
					dstRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[dstRow+ox] = src[srcRow+ix]
					}
				}
			}
		}
	}
}

// ConvForwardInto computes the batched convolution of ConvForward into the
// caller-owned output y:[N,OC,OH,OW], using cols (shape [C*KH*KW, OH*OW]) as
// the per-sample im2col scratch. Samples run serially — the serving path's
// one-level-of-parallelism rule — and no im2col matrices are retained, so
// the kernel performs zero allocations. Results are bit-identical to
// ConvForward.
func ConvForwardInto(y, x, weight, bias, cols *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc := weight.Shape[0]
	if weight.Shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: ConvForwardInto weight %v vs c*kh*kw=%d", weight.Shape, c*kh*kw))
	}
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if len(y.Shape) != 4 || y.Shape[0] != n || y.Shape[1] != oc || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: ConvForwardInto y shape %v, want [%d %d %d %d]", y.Shape, n, oc, oh, ow))
	}
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: ConvForwardInto cols shape %v, want [%d %d]", cols.Shape, c*kh*kw, oh*ow))
	}
	hw := oh * ow
	per := c * h * w
	for i := 0; i < n; i++ {
		im2colSlice(cols.Data, x.Data[i*per:(i+1)*per], c, h, w, kh, kw, stride, pad, oh, ow)
		dst := y.Data[i*oc*hw : (i+1)*oc*hw]
		matmulRows(dst, weight.Data, cols.Data, 0, oc, c*kh*kw, hw)
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.Data[o]
				row := dst[o*hw : (o+1)*hw]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return y
}
