// Package registry is the layer between training and serving: a versioned
// on-disk model store plus an in-memory registry the serving stack reads
// through. Training publishes a pipeline under a model name; the store
// assigns it the next version, writes it atomically (temp dir + rename), and
// records a manifest with the persistence format version and a content
// checksum. The Registry holds the published epochs in memory behind atomic
// pointers so a comm server can resolve (model, version) per request and a
// Publish or RotateSelector swaps the live epoch between requests with zero
// downtime — in-flight requests finish on the old epoch, and each serving
// worker lazily re-clones its body replicas when it first sees the new one.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ensembler/internal/ensemble"
	"ensembler/internal/faultpoint"
	"ensembler/internal/shard"
)

// Fault-injection sites at the store's durability boundaries (see
// internal/faultpoint; disarmed sites cost one atomic load). The
// publish-rename and manifest-fsync sites simulate a crash, not a clean
// failure: a trigger returns an error AND leaves the publish temp dir on
// disk, exactly what a process death between MkdirTemp and the final rename
// leaves behind — the state the Open-time sweep must recover from.
var (
	fpPublishRename = faultpoint.New("registry/publish-rename")
	fpManifestFsync = faultpoint.New("registry/manifest-fsync")
	fpEpochLoad     = faultpoint.New("registry/epoch-load")
)

// ManifestFormat identifies the manifest.json schema.
const ManifestFormat = 1

const (
	modelFile    = "model.gob"
	manifestFile = "manifest.json"
)

// ShardRange is one shard's body assignment as recorded in a manifest —
// the on-disk mirror of shard.Plan's layout, kept as its own type so the
// manifest schema owns its JSON form.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Manifest describes one published model version: enough to verify the
// artifact (format + checksum + size) and to route without loading it (N, P).
type Manifest struct {
	Format         int    `json:"format"`          // manifest schema version
	Model          string `json:"model"`           // model name
	Version        int    `json:"version"`         // store-assigned version
	SHA256         string `json:"sha256"`          // hex checksum of model.gob
	SizeBytes      int64  `json:"size_bytes"`      // size of model.gob
	PipelineFormat int    `json:"pipeline_format"` // ensemble.FormatVersion written
	N              int    `json:"n"`               // ensemble size
	P              int    `json:"p"`               // secret subset size
	CreatedUnix    int64  `json:"created_unix"`    // publish time

	// Precision records the compute precision this version was published
	// for ("f64" or "f32"). Empty means no commitment: either backend may
	// serve it. When set, ensembler-serve defaults its -precision to it and
	// refuses a contradicting flag, so a version validated against one
	// kernel backend is never silently served by the other.
	Precision string `json:"precision,omitempty"`

	// Shards and ShardRanges record the fleet layout the version was
	// published for (ensembler-train -shards): K shard servers and each
	// one's body range. Zero/absent means the publisher made no sharding
	// commitment; ensembler-serve -shard validates its k/K against these
	// when present, so a fleet member launched with a stale plan fails
	// loudly instead of serving the wrong body subset.
	Shards      int          `json:"shards,omitempty"`
	ShardRanges []ShardRange `json:"shard_ranges,omitempty"`
}

// Store is a versioned on-disk model store with the layout
//
//	<dir>/<model-name>/v0001/{model.gob, manifest.json}
//
// Publishes are atomic: the version directory appears via rename only after
// its contents are fully written, so a concurrent reader never observes a
// half-written version. One Store serializes its own publishes; concurrent
// publishers from separate processes are out of scope.
type Store struct {
	dir string
	mu  sync.Mutex

	// quarantined lists the torn publishes (stale ".publish-*" temp dirs
	// from a crashed publisher) the Open-time sweep moved into the
	// quarantine area, as "model/entry" strings — the operator's evidence
	// that a prior process died mid-publish.
	quarantined []string
}

// quarantineDir is the store-internal area torn publishes are moved into.
// It is dot-prefixed, so Models() never lists it and no artifact inside it
// can ever be resolved or served.
const quarantineDir = ".quarantine"

// maxQuarantined bounds the quarantine area per model: evidence of the most
// recent crashes is what an operator needs; an unbounded graveyard is not.
const maxQuarantined = 8

// Open opens an existing store rooted at dir and verifies every version it
// finds: manifest readable and well-formed, model file present, size and
// checksum matching. A corrupted or truncated artifact fails Open with an
// error naming the model, version, and defect.
func Open(dir string) (*Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: opening store %s: %w", dir, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("registry: store path %s is not a directory", dir)
	}
	s := &Store{dir: dir}
	// Crash recovery before verification: a publisher that died between
	// MkdirTemp and the final rename leaves a ".publish-*" temp dir in the
	// model directory. Rename is atomic, so such a dir is by construction an
	// incomplete artifact — quarantine it (for postmortem, bounded) rather
	// than leaving it on disk forever or failing the open.
	if err := s.sweepTornPublishes(); err != nil {
		return nil, err
	}
	models, err := s.Models()
	if err != nil {
		return nil, err
	}
	for _, name := range models {
		versions, err := s.Versions(name)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			if _, err := s.verify(name, v); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Create makes the store directory (if needed) and opens it.
func Create(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating store %s: %w", dir, err)
	}
	return Open(dir)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Quarantined lists the torn publishes the opening sweep moved into the
// quarantine area, as "model/entry" strings. Non-empty means a prior
// process crashed mid-publish; the published versions themselves are
// unaffected (rename is atomic), which is exactly why the leftovers are
// safe to sweep.
func (s *Store) Quarantined() []string { return s.quarantined }

// sweepTornPublishes moves every stale ".publish-*" temp dir out of the
// model directories into <dir>/.quarantine/<model>/, keeping at most
// maxQuarantined entries per model (oldest evicted).
func (s *Store) sweepTornPublishes() error {
	models, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("registry: sweeping store %s: %w", s.dir, err)
	}
	for _, m := range models {
		if !m.IsDir() || strings.HasPrefix(m.Name(), ".") {
			continue
		}
		modelDir := filepath.Join(s.dir, m.Name())
		entries, err := os.ReadDir(modelDir)
		if err != nil {
			return fmt.Errorf("registry: sweeping model %q: %w", m.Name(), err)
		}
		swept := false
		for _, e := range entries {
			if !e.IsDir() || !strings.HasPrefix(e.Name(), ".publish-") {
				continue
			}
			qdir := filepath.Join(s.dir, quarantineDir, m.Name())
			if err := os.MkdirAll(qdir, 0o755); err != nil {
				return fmt.Errorf("registry: quarantining torn publish %s/%s: %w", m.Name(), e.Name(), err)
			}
			if err := os.Rename(filepath.Join(modelDir, e.Name()), filepath.Join(qdir, e.Name())); err != nil {
				return fmt.Errorf("registry: quarantining torn publish %s/%s: %w", m.Name(), e.Name(), err)
			}
			s.quarantined = append(s.quarantined, m.Name()+"/"+e.Name())
			swept = true
		}
		if swept {
			if err := pruneQuarantine(filepath.Join(s.dir, quarantineDir, m.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// pruneQuarantine keeps the newest maxQuarantined entries (by mod time) of
// one model's quarantine directory.
func pruneQuarantine(qdir string) error {
	entries, err := os.ReadDir(qdir)
	if err != nil {
		return fmt.Errorf("registry: pruning quarantine %s: %w", qdir, err)
	}
	if len(entries) <= maxQuarantined {
		return nil
	}
	type aged struct {
		name string
		mod  time.Time
	}
	all := make([]aged, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent cleanup; nothing to prune
		}
		all = append(all, aged{name: e.Name(), mod: info.ModTime()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod.Before(all[j].mod) })
	for _, a := range all[:max(0, len(all)-maxQuarantined)] {
		if err := os.RemoveAll(filepath.Join(qdir, a.name)); err != nil {
			return fmt.Errorf("registry: pruning quarantine %s: %w", qdir, err)
		}
	}
	return nil
}

// validName rejects model names that could escape the store layout or
// collide with its internal entries.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty model name")
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("registry: model name %q must not start with a dot", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("registry: model name %q contains %q (want letters, digits, '-', '_', '.')", name, r)
		}
	}
	return nil
}

// validPrecision accepts the precision commitments a manifest may record:
// empty (no commitment), "f64", or "f32". The string form matches
// comm.ParsePrecision and the ensembler-serve -precision flag.
func validPrecision(p string) error {
	switch p {
	case "", "f64", "f32":
		return nil
	}
	return fmt.Errorf("registry: unknown precision %q (want \"f64\", \"f32\", or empty)", p)
}

// versionDir formats a version directory name; parseVersion inverts it.
func versionDir(v int) string { return fmt.Sprintf("v%04d", v) }

// parseVersion accepts only a 'v' followed entirely by digits — a stray
// sibling like "v0002-backup" must be ignored, not half-parsed as version 2
// and then fail verification.
func parseVersion(entry string) (int, bool) {
	if !strings.HasPrefix(entry, "v") || len(entry) == 1 {
		return 0, false
	}
	v, err := strconv.Atoi(entry[1:])
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// Models lists the model names present on disk, sorted.
func (s *Store) Models() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("registry: listing store %s: %w", s.dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Versions lists the published versions of one model, ascending.
func (s *Store) Versions(name string) ([]int, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("registry: listing model %q: %w", name, err)
	}
	var out []int
	for _, e := range entries {
		if v, ok := parseVersion(e.Name()); ok && e.IsDir() {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Latest returns the highest published version of a model.
func (s *Store) Latest(name string) (int, error) {
	versions, err := s.Versions(name)
	if err != nil {
		return 0, err
	}
	if len(versions) == 0 {
		return 0, fmt.Errorf("registry: model %q has no published versions", name)
	}
	return versions[len(versions)-1], nil
}

// Publish writes the pipeline as the next version of the named model and
// returns that version. The artifact is written to a temp directory and
// renamed into place, so readers only ever see complete versions; on any
// failure the temp directory is removed and the store is unchanged.
func (s *Store) Publish(name string, e *ensemble.Ensembler) (int, error) {
	return s.publish(name, e, 0, "")
}

// PublishSharded is Publish with a sharding commitment: the manifest
// records the K-shard layout (shard.Plan over the pipeline's N) so every
// fleet member can validate its -shard k/K against what training intended.
func (s *Store) PublishSharded(name string, e *ensemble.Ensembler, shards int) (int, error) {
	return s.publish(name, e, shards, "")
}

// PublishPrecision is Publish with a compute-precision commitment ("f64" or
// "f32") recorded in the manifest: ensembler-serve defaults its -precision
// to the commitment and refuses a flag that contradicts it.
func (s *Store) PublishPrecision(name string, e *ensemble.Ensembler, precision string) (int, error) {
	return s.publish(name, e, 0, precision)
}

func (s *Store) publish(name string, e *ensemble.Ensembler, shards int, precision string) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	if err := validPrecision(precision); err != nil {
		return 0, err
	}
	var shardRanges []ShardRange
	if shards > 0 {
		plan, err := shard.Plan(e.Cfg.N, shards)
		if err != nil {
			return 0, fmt.Errorf("registry: publishing %q: %w", name, err)
		}
		for _, r := range plan {
			shardRanges = append(shardRanges, ShardRange{Lo: r.Lo, Hi: r.Hi})
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	modelDir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(modelDir, 0o755); err != nil {
		return 0, fmt.Errorf("registry: publishing %q: %w", name, err)
	}
	version := 1
	if versions, err := s.Versions(name); err == nil && len(versions) > 0 {
		version = versions[len(versions)-1] + 1
	}

	tmp, err := os.MkdirTemp(modelDir, ".publish-*")
	if err != nil {
		return 0, fmt.Errorf("registry: publishing %q: %w", name, err)
	}
	// A clean failure removes the temp dir; an injected crash (the
	// publish-rename / manifest-fsync fault sites) leaves it behind, like a
	// process death would — the torn state the Open-time sweep recovers.
	crashed := false
	defer func() {
		if !crashed {
			os.RemoveAll(tmp) // no-op after a successful rename
		}
	}()

	sum, size, err := writeModel(filepath.Join(tmp, modelFile), e)
	if err != nil {
		return 0, fmt.Errorf("registry: publishing %q v%d: %w", name, version, err)
	}
	man := Manifest{
		Format:         ManifestFormat,
		Model:          name,
		Version:        version,
		SHA256:         sum,
		SizeBytes:      size,
		PipelineFormat: ensemble.FormatVersion,
		N:              e.Cfg.N,
		P:              e.Cfg.P,
		CreatedUnix:    time.Now().Unix(),
		Precision:      precision,
		Shards:         shards,
		ShardRanges:    shardRanges,
	}
	if err := writeManifest(filepath.Join(tmp, manifestFile), man); err != nil {
		crashed = errors.Is(err, faultpoint.ErrInjected)
		return 0, fmt.Errorf("registry: publishing %q v%d: %w", name, version, err)
	}
	if err := fpPublishRename.Inject(); err != nil {
		crashed = true
		return 0, fmt.Errorf("registry: publishing %q v%d: %w", name, version, err)
	}
	if err := os.Rename(tmp, filepath.Join(modelDir, versionDir(version))); err != nil {
		return 0, fmt.Errorf("registry: publishing %q v%d: %w", name, version, err)
	}
	return version, nil
}

// writeModel saves the pipeline to path, hashing the bytes as they are
// written, and returns the hex checksum and size.
func writeModel(path string, e *ensemble.Ensembler) (string, int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n := &countingWriter{}
	if err := e.Save(io.MultiWriter(f, h, n)); err != nil {
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n.n, nil
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// writeManifest writes and fsyncs the manifest: the manifest is the version's
// integrity commitment (checksum, size, shape), so it must be durable before
// the rename publishes the directory — a post-rename crash must never leave a
// visible version whose manifest is a hole in the page cache.
func writeManifest(path string, man Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := fpManifestFsync.Inject(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Manifest reads and validates one version's manifest (without hashing the
// model file; use verify or Load for that).
func (s *Store) Manifest(name string, version int) (*Manifest, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, name, versionDir(version), manifestFile)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: model %q v%d: reading manifest: %w", name, version, err)
	}
	man, err := parseManifest(b, name, version)
	if err != nil {
		return nil, fmt.Errorf("registry: model %q v%d: %w", name, version, err)
	}
	return man, nil
}

// parseManifest decodes and validates manifest bytes against the model name
// and version the caller expects from the store layout. It is the whole
// decode boundary for manifests — a file anyone can edit on disk — so every
// field that later code relies on is checked here, and malformed input is
// always an error, never a panic (FuzzManifestRead holds it to that).
func parseManifest(b []byte, name string, version int) (*Manifest, error) {
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("malformed manifest: %w", err)
	}
	if man.Format != ManifestFormat {
		return nil, fmt.Errorf("manifest format %d, this build reads %d", man.Format, ManifestFormat)
	}
	if man.Model != name || man.Version != version {
		return nil, fmt.Errorf("manifest claims to be %q v%d", man.Model, man.Version)
	}
	if err := validName(man.Model); err != nil {
		return nil, err
	}
	if man.Version <= 0 {
		return nil, fmt.Errorf("manifest has non-positive version %d", man.Version)
	}
	if len(man.SHA256) != hex.EncodedLen(sha256.Size) {
		return nil, fmt.Errorf("manifest checksum %q is not a sha256 hex digest", man.SHA256)
	}
	if _, err := hex.DecodeString(man.SHA256); err != nil {
		return nil, fmt.Errorf("manifest checksum %q is not a sha256 hex digest", man.SHA256)
	}
	if man.SizeBytes < 0 {
		return nil, fmt.Errorf("manifest has negative artifact size %d", man.SizeBytes)
	}
	if man.N <= 0 || man.P <= 0 || man.P > man.N {
		return nil, fmt.Errorf("manifest has invalid ensemble shape N=%d P=%d", man.N, man.P)
	}
	if err := validPrecision(man.Precision); err != nil {
		return nil, err
	}
	if man.Shards < 0 || man.Shards > man.N {
		return nil, fmt.Errorf("manifest has invalid shard count %d for N=%d", man.Shards, man.N)
	}
	if man.Shards == 0 && len(man.ShardRanges) != 0 {
		return nil, fmt.Errorf("manifest has %d shard ranges but no shard count", len(man.ShardRanges))
	}
	if man.Shards > 0 {
		if len(man.ShardRanges) != man.Shards {
			return nil, fmt.Errorf("manifest records %d shard ranges for %d shards", len(man.ShardRanges), man.Shards)
		}
		lo := 0
		for i, r := range man.ShardRanges {
			if r.Lo != lo || r.Hi <= r.Lo {
				return nil, fmt.Errorf("manifest shard range %d (%+v) does not tile [0,%d)", i, r, man.N)
			}
			lo = r.Hi
		}
		if lo != man.N {
			return nil, fmt.Errorf("manifest shard ranges cover %d bodies, N=%d", lo, man.N)
		}
	}
	return &man, nil
}

// verify checks one version end to end: manifest well-formed, model file
// present, and size and checksum matching the manifest.
func (s *Store) verify(name string, version int) (*Manifest, error) {
	man, err := s.Manifest(name, version)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, name, versionDir(version), modelFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("registry: model %q v%d: missing model file: %w", name, version, err)
	}
	defer f.Close()
	h := sha256.New()
	size, err := io.Copy(h, f)
	if err != nil {
		return nil, fmt.Errorf("registry: model %q v%d: reading model file: %w", name, version, err)
	}
	if size != man.SizeBytes {
		return nil, fmt.Errorf("registry: model %q v%d: model file is %d bytes, manifest says %d (truncated?)", name, version, size, man.SizeBytes)
	}
	if sum := hex.EncodeToString(h.Sum(nil)); sum != man.SHA256 {
		return nil, fmt.Errorf("registry: model %q v%d: model file checksum %s does not match manifest %s (corrupted)", name, version, sum, man.SHA256)
	}
	return man, nil
}

// Prune deletes the oldest published versions of a model beyond the newest
// keep, returning how many were removed. The disk-side counterpart of the
// registry's in-memory retention bound: a rotation cadence publishes a full
// pipeline copy per tick, and without pruning the store (and every
// checksum-verifying Open) grows linearly forever.
func (s *Store) Prune(name string, keep int) (int, error) {
	if keep < 1 {
		keep = 1 // never delete the latest version
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	versions, err := s.Versions(name)
	if err != nil {
		return 0, err
	}
	pruned := 0
	for _, v := range versions[:max(0, len(versions)-keep)] {
		if err := os.RemoveAll(filepath.Join(s.dir, name, versionDir(v))); err != nil {
			return pruned, fmt.Errorf("registry: pruning %q v%d: %w", name, v, err)
		}
		pruned++
	}
	return pruned, nil
}

// Load verifies and loads one version of a model; version <= 0 means latest.
func (s *Store) Load(name string, version int) (*ensemble.Ensembler, int, error) {
	if err := fpEpochLoad.Inject(); err != nil {
		return nil, 0, fmt.Errorf("registry: model %q: loading epoch: %w", name, err)
	}
	if version <= 0 {
		latest, err := s.Latest(name)
		if err != nil {
			return nil, 0, err
		}
		version = latest
	}
	if _, err := s.verify(name, version); err != nil {
		return nil, 0, err
	}
	e, err := ensemble.LoadFile(filepath.Join(s.dir, name, versionDir(version), modelFile))
	if err != nil {
		return nil, 0, fmt.Errorf("registry: model %q v%d: %w", name, version, err)
	}
	return e, version, nil
}
