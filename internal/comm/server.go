package comm

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// DefaultMaxBatch caps how many inputs one batched request may carry unless
// overridden with WithMaxBatch.
const DefaultMaxBatch = 64

// DefaultDrainTimeout bounds how long a graceful shutdown waits for
// in-flight responses to flush before force-closing connections.
const DefaultDrainTimeout = 5 * time.Second

// ServedModel is one immutable published version of a model, as the server
// sees it. Seq must change whenever the underlying weights or identity
// change (a publish, rotation, or reload): it is the workers' replica cache
// key, so a stale Seq means a worker keeps serving old weights. NewReplica
// must be safe to call concurrently and return bodies no other goroutine
// touches.
type ServedModel interface {
	Name() string
	Version() int
	Seq() uint64
	NewReplica() []*nn.Network
}

// ModelProvider resolves the (model, version) pair a request carries to a
// live model. model "" asks for the provider's default and version 0 for the
// current version — the fallback that keeps header-less (pre-registry)
// clients working. Resolve sits on the hot path: it runs once per request
// and must not block on locks held across slow work.
type ModelProvider interface {
	Resolve(model string, version int) (ServedModel, error)
}

// ServerOption configures a Server at construction time.
type ServerOption func(*serverOptions)

type serverOptions struct {
	workers   int
	maxBatch  int
	drain     time.Duration
	replicate func() []*nn.Network
	metrics   *ServerMetrics  // nil: no telemetry, zero hot-path cost
	observer  FeatureObserver // nil: no feature mirroring, zero hot-path cost
}

// WithWorkers bounds the compute worker pool. For a single-model server
// (NewServer) values above 1 only take effect together with WithReplicas:
// without independent body replicas the layer caches make concurrent passes
// over one body unsafe, so the pool is clamped to a single worker. A
// provider-backed server (NewModelServer) replicates through the provider
// and takes the value as given.
func WithWorkers(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithMaxBatch caps the number of inputs a single batched request may carry.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithDrainTimeout bounds how long a graceful shutdown waits for in-flight
// responses to flush before force-closing connections (a client that stops
// reading its responses must not be able to hold Serve open forever).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// WithReplicas supplies a factory producing an independent replica of the N
// hosted bodies (identical weights, private forward caches) for a
// single-model server. Each worker beyond the first owns one replica set,
// which is what lets requests from different connections run truly in
// parallel. Ignored by NewModelServer, whose provider replicates per model.
func WithReplicas(f func() []*nn.Network) ServerOption {
	return func(o *serverOptions) { o.replicate = f }
}

// Server hosts ensemble bodies for remote clients behind a bounded worker
// pool, resolving every request through a ModelProvider. Construct with
// NewServer (fixed bodies) or NewModelServer (registry-backed, hot-swap
// capable), then call Serve; Serve may be called at most once per Server.
type Server struct {
	provider ModelProvider
	opts     serverOptions

	jobs chan *job

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// syncMu guards syncReplicas, the replica cache of the synchronous
	// process entry point (tests and embedding callers); pool workers each
	// own a private cache instead.
	syncMu       sync.Mutex
	syncReplicas *replicaCache
}

// job is one decoded request awaiting a pool worker; reply receives exactly
// one response.
type job struct {
	req   *Request
	reply chan *Response
}

// staticModel adapts a fixed body slice to the ModelProvider contract: one
// unnamed model, version 0, epoch never changing. The first replica claim
// hands out the primary bodies (matching the pre-provider behavior where
// worker zero served the bodies the server was constructed with); later
// claims go through the replicate factory.
type staticModel struct {
	bodies    []*nn.Network
	replicate func() []*nn.Network
	claimed   atomic.Bool
}

func (m *staticModel) Resolve(model string, version int) (ServedModel, error) {
	if model != "" {
		return nil, fmt.Errorf("comm: unknown model %q (this server hosts a single unnamed model)", model)
	}
	if version != 0 {
		return nil, fmt.Errorf("comm: version pinning (v%d requested) requires a registry-backed server", version)
	}
	return m, nil
}

func (m *staticModel) Name() string   { return "" }
func (m *staticModel) Version() int   { return 0 }
func (m *staticModel) Seq() uint64    { return 0 }
func (m *staticModel) NumBodies() int { return len(m.bodies) }

func (m *staticModel) NewReplica() []*nn.Network {
	if m.replicate == nil || m.claimed.CompareAndSwap(false, true) {
		// Single-worker servers (replicate == nil clamps the pool to one
		// worker) and the first claimer share the primary bodies.
		return m.bodies
	}
	bodies := m.replicate()
	if len(bodies) != len(m.bodies) {
		panic(fmt.Sprintf("comm: replica factory returned %d bodies, want %d", len(bodies), len(m.bodies)))
	}
	return bodies
}

// NewServer creates a single-model server over the given bodies. Without
// options it behaves like a single-worker pool: one request computes at a
// time, with the per-body passes still fanned out across goroutines.
func NewServer(bodies []*nn.Network, opts ...ServerOption) *Server {
	if len(bodies) == 0 {
		panic("comm: server needs at least one body")
	}
	o := serverOptions{workers: runtime.GOMAXPROCS(0), maxBatch: DefaultMaxBatch, drain: DefaultDrainTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicate == nil {
		o.workers = 1
	}
	return newServer(&staticModel{bodies: bodies, replicate: o.replicate}, o)
}

// NewModelServer creates a server that resolves every request's
// (model, version) header through the provider — typically a
// registry.Registry. Publishing a new version or rotating a selector in the
// provider swaps what subsequent requests compute against with zero
// downtime: in-flight requests finish on the epoch they resolved, and each
// worker re-clones its replicas the first time it sees a new epoch.
func NewModelServer(p ModelProvider, opts ...ServerOption) *Server {
	if p == nil {
		panic("comm: server needs a model provider")
	}
	o := serverOptions{workers: runtime.GOMAXPROCS(0), maxBatch: DefaultMaxBatch, drain: DefaultDrainTimeout}
	for _, opt := range opts {
		opt(&o)
	}
	return newServer(p, o)
}

func newServer(p ModelProvider, o serverOptions) *Server {
	return &Server{
		provider:     p,
		opts:         o,
		jobs:         make(chan *job),
		conns:        map[net.Conn]struct{}{},
		syncReplicas: newReplicaCache(),
	}
}

// Workers reports the effective size of the compute pool.
func (s *Server) Workers() int { return s.opts.workers }

// Serve accepts connections until ctx is cancelled or the listener fails,
// handling each client in its own goroutine. On cancellation it stops
// accepting, lets requests already decoded finish, flushes their responses,
// closes every connection, and returns nil. Clients that stop reading their
// responses are force-closed after the drain timeout (WithDrainTimeout) so
// shutdown always completes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for i := 0; i < s.opts.workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			s.worker(stop)
		}()
	}

	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-watchDone:
		}
	}()

	var handlers sync.WaitGroup
	var acceptErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			acceptErr = err
			break
		}
		s.track(conn)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
	close(watchDone)

	// Unblock every reader: requests already decoded still reach the pool
	// and their responses still flush, but no new requests are read. If a
	// client refuses to drain its responses, force-close it after the
	// timeout rather than hanging shutdown on its full send buffer.
	s.interruptReads()
	drained := make(chan struct{})
	go func() {
		handlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.opts.drain):
		s.forceCloseConns()
		<-drained
	}
	close(stop)
	workers.Wait()

	if ctx.Err() != nil {
		return nil // graceful shutdown
	}
	return acceptErr
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// interruptReads expires the read deadline on every live connection so
// blocked decoders return; writes are unaffected, letting in-flight replies
// drain.
func (s *Server) interruptReads() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Unix(1, 0))
	}
}

// forceCloseConns tears down every connection still open after the drain
// timeout, failing any write its handler is blocked on.
func (s *Server) forceCloseConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.SetDeadline(time.Unix(1, 0))
		conn.Close()
	}
}

// handle processes one client connection until it closes or the server
// shuts down. Requests pipeline: a reader decodes and submits to the worker
// pool while a writer flushes responses in request order.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	// pending preserves request order across the concurrent pool: the writer
	// awaits each reply channel in FIFO order.
	pending := make(chan chan *Response, 32)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		failed := false
		for ch := range pending {
			resp := <-ch
			if failed {
				continue
			}
			if err := enc.Encode(resp); err != nil {
				// The client is gone; closing the conn unblocks the reader,
				// and draining keeps submitted jobs from leaking.
				failed = true
				conn.Close()
			}
		}
	}()

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			break // client closed, protocol error, or shutdown deadline
		}
		ch := make(chan *Response, 1)
		pending <- ch
		// The pool outlives every handler (Serve joins handlers before
		// stopping workers), so an unconditional send cannot deadlock and a
		// request that was decoded always computes — even mid-shutdown,
		// honoring the drain guarantee without racing ctx.Done against a
		// free worker.
		s.jobs <- &job{req: &req, reply: ch}
	}
	close(pending)
	writer.Wait()
}

// maxWorkerReplicas bounds one worker's replica cache. Each live epoch a
// worker serves costs one entry, so the bound is hit only when many models
// (or pinned versions) rotate through a single worker; eviction then retires
// the least-recently-used replica and the next request for it re-clones.
const maxWorkerReplicas = 16

// workerReplica is one worker's private replica of one model epoch.
type workerReplica struct {
	seq      uint64
	bodies   []*nn.Network
	lastUsed uint64 // worker-local request counter for LRU eviction
}

// replicaCache is one worker's private replicas, keyed by epoch (name, seq)
// so mixed pinned-version and current-version traffic on one model each
// keep their own replica instead of thrashing a shared slot with full
// re-clones per request.
type replicaCache struct {
	entries map[string]*workerReplica
	tick    uint64
}

func newReplicaCache() *replicaCache {
	return &replicaCache{entries: map[string]*workerReplica{}}
}

// replicaFor returns the cached replica for the epoch, cloning (and evicting
// the least recently used entry past the cap) on first sight.
func (rc *replicaCache) replicaFor(m ServedModel) (*workerReplica, error) {
	rc.tick++
	key := fmt.Sprintf("%s@%d", m.Name(), m.Seq())
	if wr := rc.entries[key]; wr != nil {
		wr.lastUsed = rc.tick
		return wr, nil
	}
	bodies, err := cloneReplica(m)
	if err != nil {
		return nil, err
	}
	wr := &workerReplica{seq: m.Seq(), bodies: bodies, lastUsed: rc.tick}
	rc.entries[key] = wr
	for len(rc.entries) > maxWorkerReplicas {
		lruKey, lru := "", uint64(0)
		for k, e := range rc.entries {
			if k != key && (lruKey == "" || e.lastUsed < lru) {
				lruKey, lru = k, e.lastUsed
			}
		}
		delete(rc.entries, lruKey)
	}
	return wr, nil
}

// worker serves pool jobs. Each worker owns a private replica cache keyed by
// model epoch: resolving a request whose epoch is not yet cached (a publish,
// rotation, or reload happened) lazily re-clones the bodies. The swap
// therefore costs each worker one clone per epoch change, spread across the
// pool as requests arrive — never a lock shared between workers.
func (s *Server) worker(stop <-chan struct{}) {
	replicas := newReplicaCache()
	for {
		select {
		case j := <-s.jobs:
			j.reply <- s.serve(j.req, replicas)
		case <-stop:
			return
		}
	}
}

// serve resolves one request against the provider and runs it over the
// caller's replica cache, feeding the optional telemetry and audit hooks.
// Both hooks cost one nil check when disabled — the serving benchmarks hold
// this path to within measurement noise of the uninstrumented server.
func (s *Server) serve(req *Request, replicas *replicaCache) *Response {
	var start time.Time
	if s.opts.metrics != nil {
		start = time.Now()
	}
	resp := s.serveResolved(req, replicas)
	if s.opts.metrics != nil {
		s.opts.metrics.record(req, resp, time.Since(start))
	}
	return resp
}

func (s *Server) serveResolved(req *Request, replicas *replicaCache) *Response {
	m, err := s.provider.Resolve(req.Model, req.Version)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if s.opts.observer != nil {
		observeRequest(s.opts.observer, m.Name(), m.Version(), req)
	}
	wr, err := replicas.replicaFor(m)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := s.processWith(req, wr.bodies)
	resp.Model, resp.Version = m.Name(), m.Version()
	return resp
}

// cloneReplica builds a worker's private replica, converting a panicking
// factory (the historical contract of WithReplicas) into an error response
// so a bad publish degrades to failed requests instead of a dead server.
func cloneReplica(m ServedModel) (bodies []*nn.Network, err error) {
	defer func() {
		if r := recover(); r != nil {
			bodies, err = nil, fmt.Errorf("comm: building model replica: %v", r)
		}
	}()
	bodies = m.NewReplica()
	if len(bodies) == 0 {
		return nil, fmt.Errorf("comm: model %q v%d has no bodies", m.Name(), m.Version())
	}
	return bodies, nil
}

// process runs a request synchronously outside the worker pool — the entry
// point used by tests and by callers that manage their own concurrency. It
// keeps its own replica cache (shared by all process callers, guarded by a
// mutex), so it must not be mixed with concurrent Serve traffic on a
// single-model server without replicas.
func (s *Server) process(req *Request) *Response {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	return s.serve(req, s.syncReplicas)
}

// processWith validates a request and runs it over one replica set. The
// per-body passes fan out across goroutines — each body is a distinct
// network, so its forward cache is touched by one goroutine only. A panic
// anywhere in the pass (validation can't anticipate every shape the hosted
// bodies reject) becomes an error response instead of killing the server.
func (s *Server) processWith(req *Request, bodies []*nn.Network) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Err: fmt.Sprintf("comm: request failed: %v", r)}
		}
	}()
	return s.processUnguarded(req, bodies)
}

func (s *Server) processUnguarded(req *Request, bodies []*nn.Network) *Response {
	switch {
	case req.Inputs != nil:
		if len(req.Inputs) == 0 {
			return &Response{Err: "comm: batched request carries no inputs"}
		}
		if len(req.Inputs) > s.opts.maxBatch {
			return &Response{Err: fmt.Sprintf("comm: batch of %d exceeds server cap %d", len(req.Inputs), s.opts.maxBatch)}
		}
		stacked, rows, err := stackInputs(req.Inputs)
		if err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := forwardAll(bodies, stacked)
		// Transpose [body][input] into the wire layout [input][body].
		outputs := make([][]*tensor.Tensor, len(rows))
		for i := range outputs {
			outputs[i] = make([]*tensor.Tensor, len(bodies))
		}
		for b, out := range perBody {
			for i, part := range splitRows(out, rows) {
				outputs[i][b] = part
			}
		}
		return &Response{Outputs: outputs}
	default:
		if err := validateFeatures(req.Features); err != nil {
			return &Response{Err: err.Error()}
		}
		return &Response{Features: forwardAll(bodies, req.Features)}
	}
}

// forwardAll runs every body over x concurrently and joins the results in
// body order. A panic in any body's goroutine is re-raised on the calling
// goroutine (where processWith's recover can turn it into an error
// response); left alone it would kill the process.
func forwardAll(bodies []*nn.Network, x *tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(bodies))
	panics := make(chan any, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b *nn.Network) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			out[i] = b.Forward(x, false)
		}(i, b)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	return out
}
