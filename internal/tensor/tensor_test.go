package tensor

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
	"testing/quick"

	"ensembler/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v", got)
	}
	x.Set(42, 1, 0)
	if got := x.At(1, 0); got != 42 {
		t.Errorf("after Set, At(1,0) = %v", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 9
	if x.At(0, 0) != 9 {
		t.Error("Reshape should share backing data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b); !got.AllClose(FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Errorf("Add = %v", got.Data)
	}
	if got := b.Sub(a); !got.AllClose(FromSlice([]float64{3, 3, 3}, 3), 0) {
		t.Errorf("Sub = %v", got.Data)
	}
	if got := a.Mul(b); !got.AllClose(FromSlice([]float64{4, 10, 18}, 3), 0) {
		t.Errorf("Mul = %v", got.Data)
	}
	if got := a.Scale(2); !got.AllClose(FromSlice([]float64{2, 4, 6}, 3), 0) {
		t.Errorf("Scale = %v", got.Data)
	}
	if got := a.Clone().AddScaledInPlace(b, 0.5); !got.AllClose(FromSlice([]float64{3, 4.5, 6}, 3), 1e-12) {
		t.Errorf("AddScaled = %v", got.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 3, 2, 0}, 4)
	if x.Sum() != 4 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1 {
		t.Errorf("Mean = %v", x.Mean())
	}
	if x.Max() != 3 || x.Min() != -1 {
		t.Errorf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if x.ArgMax() != 1 {
		t.Errorf("ArgMax = %d", x.ArgMax())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(5, 5)
	r.FillNormal(a.Data, 0, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AllClose(a, 1e-12) {
		t.Error("A × I != A")
	}
	if got := MatMul(id, a); !got.AllClose(a, 1e-12) {
		t.Error("I × A != A")
	}
}

// randomMat builds a deterministic pseudo-random matrix from a seed.
func randomMat(seed int64, m, n int) *Tensor {
	r := rng.New(seed)
	t := New(m, n)
	r.FillNormal(t.Data, 0, 1)
	return t
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	a := randomMat(2, 4, 6)
	b := randomMat(3, 6, 5)
	want := MatMul(a, b)
	if got := MatMulTransB(a, b.Transpose2D()); !got.AllClose(want, 1e-9) {
		t.Error("MatMulTransB(a, bT) != a×b")
	}
	if got := MatMulTransA(a.Transpose2D(), b); !got.AllClose(want, 1e-9) {
		t.Error("MatMulTransA(aT, b) != a×b")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := randomMat(4, 3, 7)
	if !a.Transpose2D().Transpose2D().AllClose(a, 0) {
		t.Error("transpose twice should be identity")
	}
}

// Property: MatMul distributes over addition, (a+b)×c == a×c + b×c.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMat(seed, 3, 4)
		b := randomMat(seed+1, 3, 4)
		c := randomMat(seed+2, 4, 2)
		lhs := MatMul(a.Add(b), c)
		rhs := MatMul(a, c).Add(MatMul(b, c))
		return lhs.AllClose(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: matmul associativity (a×b)×c ≈ a×(b×c).
func TestMatMulAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMat(seed, 2, 3)
		b := randomMat(seed+10, 3, 4)
		c := randomMat(seed+20, 4, 2)
		return MatMul(MatMul(a, b), c).AllClose(MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and ||x||² == Dot(x, x) >= 0.
func TestDotProperties(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMat(seed, 1, 16)
		b := randomMat(seed+5, 1, 16)
		if math.Abs(a.Dot(b)-b.Dot(a)) > 1e-9 {
			return false
		}
		n := a.L2Norm()
		return n >= 0 && math.Abs(n*n-a.Dot(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(16, 3, 1, 1); got != 16 {
		t.Errorf("same conv out = %d", got)
	}
	if got := ConvOutSize(16, 3, 2, 1); got != 8 {
		t.Errorf("stride-2 out = %d", got)
	}
	if got := ConvOutSize(4, 4, 4, 0); got != 1 {
		t.Errorf("full window out = %d", got)
	}
}

// naiveConv is a direct reference convolution used to validate the
// im2col-based kernel on one sample.
func naiveConv(x, w, b *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, ww := x.Shape[0], x.Shape[1], x.Shape[2]
	oc := w.Shape[0]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(ww, kw, stride, pad)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*stride + ky - pad
							ix := ox*stride + kx - pad
							if iy < 0 || iy >= h || ix < 0 || ix >= ww {
								continue
							}
							s += x.At(ci, iy, ix) * w.At(o, (ci*kh+ky)*kw+kx)
						}
					}
				}
				if b != nil {
					s += b.Data[o]
				}
				out.Set(s, o, oy, ox)
			}
		}
	}
	return out
}

func TestConvForwardMatchesNaive(t *testing.T) {
	r := rng.New(7)
	x := New(2, 3, 8, 8)
	r.FillNormal(x.Data, 0, 1)
	w := New(5, 3*3*3)
	r.FillNormal(w.Data, 0, 0.5)
	b := New(5)
	r.FillNormal(b.Data, 0, 0.5)
	for _, cfg := range []struct{ stride, pad int }{{1, 1}, {2, 1}, {1, 0}} {
		y, _ := ConvForward(x, w, b, 3, 3, cfg.stride, cfg.pad)
		for i := 0; i < 2; i++ {
			want := naiveConv(x.SampleView(i), w, b, 3, 3, cfg.stride, cfg.pad)
			got := y.SampleView(i)
			if !got.AllClose(want, 1e-9) {
				t.Errorf("stride=%d pad=%d sample %d: conv mismatch", cfg.stride, cfg.pad, i)
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col — for any x, g:
// <Im2Col(x), g> == <x, Col2Im(g)>. This is exactly the identity that makes
// the convolution backward pass correct.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		c, h, w := 2, 6, 5
		kh, kw, stride, pad := 3, 3, 2, 1
		x := New(c, h, w)
		r.FillNormal(x.Data, 0, 1)
		cols := Im2Col(x, kh, kw, stride, pad)
		g := New(cols.Shape[0], cols.Shape[1])
		r.FillNormal(g.Data, 0, 1)
		lhs := cols.Dot(g)
		rhs := x.Dot(Col2Im(g, c, h, w, kh, kw, stride, pad))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConvBackwardNumericGradient(t *testing.T) {
	r := rng.New(11)
	n, c, h, w := 2, 2, 5, 5
	kh, kw, stride, pad := 3, 3, 1, 1
	x := New(n, c, h, w)
	r.FillNormal(x.Data, 0, 1)
	wt := New(3, c*kh*kw)
	r.FillNormal(wt.Data, 0, 0.5)
	b := New(3)

	// Scalar loss L = sum(conv(x)); analytic gradient via ConvBackward with
	// gradY = ones.
	y, cols := ConvForward(x, wt, b, kh, kw, stride, pad)
	gy := Full(1, y.Shape...)
	gx, gw, gb := ConvBackward(gy, wt, cols, c, h, w, kh, kw, stride, pad)

	loss := func() float64 {
		y, _ := ConvForward(x, wt, b, kh, kw, stride, pad)
		return y.Sum()
	}
	const eps = 1e-6
	check := func(name string, param *Tensor, grad *Tensor, idx int) {
		old := param.Data[idx]
		param.Data[idx] = old + eps
		lp := loss()
		param.Data[idx] = old - eps
		lm := loss()
		param.Data[idx] = old
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("%s[%d]: numeric %v vs analytic %v", name, idx, num, grad.Data[idx])
		}
	}
	for _, idx := range []int{0, 7, 20} {
		check("x", x, gx, idx)
		check("w", wt, gw, idx%wt.Size())
	}
	check("b", b, gb, 1)
}

func TestGobRoundTrip(t *testing.T) {
	x := randomMat(99, 3, 4)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if err := gob.NewDecoder(&buf).Decode(&y); err != nil {
		t.Fatal(err)
	}
	if !x.AllClose(&y, 0) {
		t.Error("gob round trip changed values")
	}
}

func TestSampleViewSharesData(t *testing.T) {
	x := New(2, 3, 2, 2)
	v := x.SampleView(1)
	v.Data[0] = 5
	if x.At(1, 0, 0, 0) != 5 {
		t.Error("SampleView must alias the parent tensor")
	}
	if len(v.Shape) != 3 || v.Shape[0] != 3 {
		t.Errorf("SampleView shape = %v", v.Shape)
	}
}

func TestRowCopies(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := x.Row(1)
	r.Data[0] = 9
	if x.At(1, 0) == 9 {
		t.Error("Row should copy")
	}
	if r.Data[1] != 4 {
		t.Errorf("Row values = %v", r.Data)
	}
}
