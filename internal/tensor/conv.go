package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k applied with the given stride and symmetric zero padding
// to an input of size in.
func ConvOutSize(in, k, stride, pad int) int {
	out := (in+2*pad-k)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d for in=%d k=%d stride=%d pad=%d", out, in, k, stride, pad))
	}
	return out
}

// Im2Col expands one image x of shape [C,H,W] into a patch matrix of shape
// [C*KH*KW, OH*OW], where column (oy*OW+ox) holds the receptive field of
// output position (oy,ox). Out-of-bounds taps (from zero padding) read 0.
// A convolution then reduces to W[outC, C*KH*KW] × cols.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.Shape) != 3 {
		panic("tensor: Im2Col expects [C,H,W]")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	cols := New(c*kh*kw, oh*ow)
	colStride := oh * ow
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ci*kh+ky)*kw + kx) * colStride
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := chanBase + iy*w
					dstRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						cols.Data[dstRow+ox] = x.Data[srcRow+ix]
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatter-adds a patch matrix of shape [C*KH*KW, OH*OW] (as produced
// by Im2Col) back into an image of shape [C,H,W]. Overlapping taps
// accumulate, which is exactly the adjoint of Im2Col and therefore the
// gradient path of a convolution's input.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with c=%d h=%d w=%d kh=%d kw=%d", cols.Shape, c, h, w, kh, kw))
	}
	img := New(c, h, w)
	colStride := oh * ow
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ci*kh+ky)*kw + kx) * colStride
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := chanBase + iy*w
					srcRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						img.Data[dstRow+ix] += cols.Data[srcRow+ox]
					}
				}
			}
		}
	}
	return img
}

// SampleView returns sample n of a batched [N, ...] tensor as a tensor that
// shares t's backing array (writes are visible in both).
func (t *Tensor) SampleView(n int) *Tensor {
	if len(t.Shape) < 2 {
		panic("tensor: SampleView on rank < 2")
	}
	per := len(t.Data) / t.Shape[0]
	return &Tensor{Shape: append([]int(nil), t.Shape[1:]...), Data: t.Data[n*per : (n+1)*per]}
}

// ConvForward computes a batched 2-D convolution.
//
//	x: [N, C, H, W], weight: [OC, C*KH*KW], bias: [OC] (may be nil)
//	returns y: [N, OC, OH, OW] and the per-sample im2col matrices (cached for
//	the backward pass; callers not training may discard them).
//
// Samples are processed in parallel.
func ConvForward(x, weight, bias *Tensor, kh, kw, stride, pad int) (*Tensor, []*Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc := weight.Shape[0]
	if weight.Shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: ConvForward weight %v vs c*kh*kw=%d", weight.Shape, c*kh*kw))
	}
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	y := New(n, oc, oh, ow)
	cols := make([]*Tensor, n)
	parallelFor(n, func(i int) {
		ci := Im2Col(x.SampleView(i), kh, kw, stride, pad)
		cols[i] = ci
		yi := MatMul(weight, ci) // [OC, OH*OW]
		dst := y.Data[i*oc*oh*ow : (i+1)*oc*oh*ow]
		copy(dst, yi.Data)
		if bias != nil {
			hw := oh * ow
			for o := 0; o < oc; o++ {
				b := bias.Data[o]
				row := dst[o*hw : (o+1)*hw]
				for j := range row {
					row[j] += b
				}
			}
		}
	})
	return y, cols
}

// ConvBackward computes gradients of a batched convolution given the cached
// im2col matrices from ConvForward.
//
//	gradY: [N, OC, OH, OW]
//	returns gradX: [N, C, H, W], gradW: [OC, C*KH*KW], gradB: [OC].
func ConvBackward(gradY, weight *Tensor, cols []*Tensor, c, h, w, kh, kw, stride, pad int) (gradX, gradW, gradB *Tensor) {
	n, oc := gradY.Shape[0], gradY.Shape[1]
	oh, ow := gradY.Shape[2], gradY.Shape[3]
	gradX = New(n, c, h, w)
	gradB = New(oc)
	// Per-sample weight gradients accumulate into per-worker buffers to stay
	// deterministic; with modest N it is simplest to serialize the reduction.
	gws := make([]*Tensor, n)
	parallelFor(n, func(i int) {
		gy := &Tensor{Shape: []int{oc, oh * ow}, Data: gradY.Data[i*oc*oh*ow : (i+1)*oc*oh*ow]}
		// gradW_i = gy × cols_iᵀ : [OC, C*KH*KW]
		gws[i] = MatMulTransB(gy, cols[i])
		// grad cols = Wᵀ × gy : [C*KH*KW, OH*OW]
		gc := MatMulTransA(weight, gy)
		gx := Col2Im(gc, c, h, w, kh, kw, stride, pad)
		copy(gradX.Data[i*c*h*w:(i+1)*c*h*w], gx.Data)
	})
	gradW = New(oc, c*kh*kw)
	for i := 0; i < n; i++ {
		gradW.AddInPlace(gws[i])
	}
	hw := oh * ow
	for i := 0; i < n; i++ {
		base := i * oc * hw
		for o := 0; o < oc; o++ {
			s := 0.0
			row := gradY.Data[base+o*hw : base+(o+1)*hw]
			for _, v := range row {
				s += v
			}
			gradB.Data[o] += s
		}
	}
	return gradX, gradW, gradB
}
