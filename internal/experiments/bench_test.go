package experiments_test

import (
	"fmt"
	"os"
	"testing"

	"ensembler/internal/experiments"
)

// benchScale picks the experiment operating point (see bench_test.go at the
// repository root for the Table I/III counterparts; Table II lives here so
// that no single package exceeds go test's default 10-minute timeout).
func benchScale() experiments.Scale {
	if os.Getenv("ENSEMBLER_BENCH_SCALE") == "paper" {
		return experiments.Paper()
	}
	return experiments.Small()
}

// BenchmarkTableII regenerates Table II: the full defense battery on the
// CIFAR-10-like workload, plus the §IV claim percentages derived from it.
func BenchmarkTableII(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableII(sc, 43, nil)
		experiments.RenderRows(os.Stdout, "\nTable II — defense mechanisms, cifar10-like", rows)
		claims := experiments.ComputeClaims(rows, sc.N)
		fmt.Printf("claims: SSIM drop vs Single %.1f%%, PSNR drop vs Single %.1f%%, latency overhead %.1f%%\n",
			claims.SSIMDropVsSingle, claims.PSNRDropVsSingle, claims.LatencyOverhead)
	}
}
