// Command ensembler-train runs the full three-stage Ensembler training
// pipeline on a synthetic workload and saves the trained pipeline (all N
// member networks, the secret selection, and the final head/noise/tail) to
// a file consumable by ensembler-attack and ensembler-serve.
//
//	ensembler-train -kind cifar10 -n 10 -p 4 -out model.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/split"
)

// kindFromName maps the CLI workload name to a data.Kind.
func kindFromName(name string) (data.Kind, error) {
	switch name {
	case "cifar10":
		return data.CIFAR10Like, nil
	case "cifar100":
		return data.CIFAR100Like, nil
	case "celeba":
		return data.CelebALike, nil
	}
	return 0, fmt.Errorf("unknown workload %q (want cifar10, cifar100, or celeba)", name)
}

func main() {
	kindName := flag.String("kind", "cifar10", "workload: cifar10, cifar100, celeba")
	n := flag.Int("n", 5, "ensemble size N")
	p := flag.Int("p", 2, "secretly selected subset size P")
	sigma := flag.Float64("sigma", 0.05, "fixed noise std σ")
	lambda := flag.Float64("lambda", 1.0, "Eq. 3 regularizer strength λ")
	trainN := flag.Int("train", 448, "private training samples")
	epochs1 := flag.Int("stage1-epochs", 5, "Stage 1 epochs per member")
	epochs3 := flag.Int("stage3-epochs", 8, "Stage 3 epochs")
	seed := flag.Int64("seed", 1, "training seed")
	out := flag.String("out", "ensembler.gob", "output model path (single-file mode)")
	modelDir := flag.String("model-dir", "", "publish into a versioned model registry directory instead of -out")
	modelName := flag.String("model-name", "", "model name inside -model-dir (default: the workload kind)")
	flag.Parse()

	kind, err := kindFromName(*kindName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sp := data.Generate(data.Config{Kind: kind, Train: *trainN, Aux: 1, Test: 256, Seed: *seed})
	cfg := ensemble.Config{
		Arch: split.DefaultArch(kind), N: *n, P: *p, Sigma: *sigma, Lambda: *lambda, Seed: *seed,
		Stage1:      split.TrainOptions{Epochs: *epochs1, BatchSize: 32, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: *epochs3, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Printf("training Ensembler on %s (N=%d, P=%d, σ=%.2f, λ=%.1f)...\n", kind, *n, *p, *sigma, *lambda)
	e := ensemble.Train(cfg, sp.Train, os.Stdout)
	fmt.Printf("test accuracy: %.3f\n", e.Accuracy(sp.Test))
	if *modelDir != "" {
		// Registry mode: the store assigns the next version and writes the
		// artifact atomically, so a serving ensembler-serve -model-dir picks
		// it up on its next SIGHUP with zero downtime.
		store, err := registry.Create(*modelDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening model dir: %v\n", err)
			os.Exit(1)
		}
		name := *modelName
		if name == "" {
			name = *kindName
		}
		v, err := store.Publish(name, e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "publishing: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("published %s v%d to %s (selection stays inside the artifact — guard it)\n", name, v, *modelDir)
		return
	}
	if err := e.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "saving: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved pipeline to %s (selection stays inside the file — guard it)\n", *out)
}
