package latency

import (
	"math"
	"testing"
)

func servingBase() Scenario {
	sc := Ensembler(10)
	return sc
}

func TestSingleClientMatchesRoundTrip(t *testing.T) {
	est := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 1, Batch: 1})
	want := 1 / est.RequestSeconds
	if math.Abs(est.ThroughputRPS-want)/want > 1e-12 {
		t.Errorf("single client throughput %.6f, want 1/rtt = %.6f", est.ThroughputRPS, want)
	}
}

func TestConcurrencyRaisesThroughputUntilSaturation(t *testing.T) {
	const workers = 4
	sweep := ConcurrencySweep(servingBase(), workers, 0, 1, []int{1, 2, 4, 8, 16, 64})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ThroughputRPS < sweep[i-1].ThroughputRPS-1e-12 {
			t.Errorf("throughput decreased from %v to %v", sweep[i-1], sweep[i])
		}
	}
	// At saturation the pool bound is active: X = workers / serverTime.
	last := sweep[len(sweep)-1]
	base := servingBase()
	base.Batch = 1
	serverBound := float64(workers) / Run(base).Server
	if math.Abs(last.ThroughputRPS-serverBound)/serverBound > 1e-9 {
		t.Errorf("saturated throughput %.4f, want worker bound %.4f", last.ThroughputRPS, serverBound)
	}
	if math.Abs(last.Utilization-1) > 1e-9 {
		t.Errorf("saturated utilization %.4f, want 1", last.Utilization)
	}
}

func TestConcurrencySpeedupExceedsTwo(t *testing.T) {
	// The acceptance regime of the serving subsystem: 8 concurrent clients
	// against a 4-worker replicated pool must be predicted at >2× a single
	// connection.
	s := ConcurrencySpeedup(servingBase(), 4, 0, 1, 8)
	if s <= 2 {
		t.Errorf("predicted concurrency speedup %.2f, want > 2", s)
	}
}

func TestEffectiveParallelismClampsPredictions(t *testing.T) {
	// The BENCH_2026-07-30 lesson: an 8-worker pool on a single usable core
	// serves like one worker, so the predicted concurrency speedup must
	// collapse toward 1×, not promise 4.5×.
	clamped := ConcurrencySpeedup(servingBase(), 8, 1, 1, 8)
	unclamped := ConcurrencySpeedup(servingBase(), 8, 0, 1, 8)
	if clamped >= unclamped {
		t.Errorf("clamp to 1 core did not reduce the prediction: %.2f vs %.2f", clamped, unclamped)
	}
	one := EstimateServing(ServingScenario{Base: servingBase(), Workers: 8, Clients: 64, Batch: 1, EffectiveParallel: 1})
	wOne := EstimateServing(ServingScenario{Base: servingBase(), Workers: 1, Clients: 64, Batch: 1})
	if math.Abs(one.ThroughputRPS-wOne.ThroughputRPS)/wOne.ThroughputRPS > 1e-12 {
		t.Errorf("8 workers clamped to 1 core must serve like 1 worker: %.4f vs %.4f", one.ThroughputRPS, wOne.ThroughputRPS)
	}
	// A clamp at or above the pool size is a no-op.
	loose := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 64, Batch: 1, EffectiveParallel: 16})
	plain := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 64, Batch: 1})
	if loose.ThroughputRPS != plain.ThroughputRPS {
		t.Error("clamp above the pool size changed the estimate")
	}
}

func TestWireFactorScalesCommunication(t *testing.T) {
	slim := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 1, Batch: 1, WireFactor: WireFactorBinaryF32})
	fat := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 1, Batch: 1, WireFactor: WireFactorGob})
	if fat.RequestSeconds <= slim.RequestSeconds {
		t.Errorf("gob wire round trip %.4fs not slower than f32 wire %.4fs", fat.RequestSeconds, slim.RequestSeconds)
	}
	// The delta is exactly the extra communication time.
	base := servingBase()
	base.Batch = 1
	comm := Run(base).Communication
	want := (WireFactorGob - WireFactorBinaryF32) * comm
	if got := fat.RequestSeconds - slim.RequestSeconds; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("wire factor delta %.6fs, want %.6fs", got, want)
	}
}

func TestBatchingRaisesImageThroughput(t *testing.T) {
	sweep := BatchingSweep(servingBase(), 4, 8, []int{1, 4, 16, 64})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ThroughputIPS < sweep[i-1].ThroughputIPS-1e-12 {
			t.Errorf("image throughput decreased from %v to %v", sweep[i-1], sweep[i])
		}
	}
	if sweep[len(sweep)-1].ThroughputIPS <= sweep[0].ThroughputIPS {
		t.Error("batching must raise image throughput over single-image requests")
	}
}

func TestEstimateServingDefaults(t *testing.T) {
	est := EstimateServing(ServingScenario{Base: servingBase()})
	if est.ThroughputRPS <= 0 || est.RequestSeconds <= 0 {
		t.Errorf("defaulted estimate degenerate: %+v", est)
	}
}

func TestRotationOverheadFraction(t *testing.T) {
	cases := []struct {
		rot  Rotation
		want float64
	}{
		{Rotation{}, 0},                  // no rotation
		{Rotation{PeriodSeconds: 60}, 0}, // free clones
		{Rotation{PeriodSeconds: 60, CloneSeconds: 0.6}, 0.01},
		{Rotation{PeriodSeconds: 1, CloneSeconds: 5}, 1}, // clamp: rotating faster than cloning
		{Rotation{PeriodSeconds: -1, CloneSeconds: 5}, 0},
	}
	for _, c := range cases {
		if got := c.rot.OverheadFraction(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("OverheadFraction(%+v) = %v, want %v", c.rot, got, c.want)
		}
	}
}

func TestRotationCostsOnlySaturatedThroughput(t *testing.T) {
	sc := ServingScenario{Base: servingBase(), Workers: 4, Clients: 64, Batch: 1}
	plain := EstimateServing(sc)
	rotated := EstimateServingRotated(sc, Rotation{PeriodSeconds: 10, CloneSeconds: 1})
	// At saturation, a 10% capacity tax shows up as exactly 10% throughput.
	want := plain.ThroughputRPS * 0.9
	if math.Abs(rotated.ThroughputRPS-want)/want > 1e-9 {
		t.Errorf("rotated throughput %.4f, want %.4f", rotated.ThroughputRPS, want)
	}
	if rotated.RequestSeconds != plain.RequestSeconds {
		t.Error("rotation must not change the unloaded round-trip time")
	}

	// An unsaturated pool hides the rotation cost entirely: the client bound
	// is still the binding constraint.
	light := ServingScenario{Base: servingBase(), Workers: 4, Clients: 1, Batch: 1}
	if a, b := EstimateServing(light), EstimateServingRotated(light, Rotation{PeriodSeconds: 10, CloneSeconds: 1}); a.ThroughputRPS != b.ThroughputRPS {
		t.Errorf("unsaturated throughput moved under rotation: %v vs %v", a.ThroughputRPS, b.ThroughputRPS)
	}
}

func TestRotationSweepMonotonic(t *testing.T) {
	// Longer periods amortize the clone better: throughput must be
	// non-decreasing in the rotation period, and approach the un-rotated
	// estimate as the period grows.
	sweep := RotationSweep(servingBase(), 4, 64, 1, 0.5, []float64{1, 5, 30, 300, 3600})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ThroughputRPS < sweep[i-1].ThroughputRPS-1e-12 {
			t.Errorf("throughput decreased with a longer period: %v to %v", sweep[i-1], sweep[i])
		}
	}
	plain := EstimateServing(ServingScenario{Base: servingBase(), Workers: 4, Clients: 64, Batch: 1})
	last := sweep[len(sweep)-1]
	if (plain.ThroughputRPS-last.ThroughputRPS)/plain.ThroughputRPS > 0.001 {
		t.Errorf("hourly rotation should cost <0.1%%: %v vs %v", last.ThroughputRPS, plain.ThroughputRPS)
	}
}
