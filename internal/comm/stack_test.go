package comm

import (
	"testing"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// TestStackSplitRoundTrip pins the batch stacking on the serving job: the
// inputs concatenate along the batch axis into the job arena, row counts
// land in j.rows, and mismatched trailing shapes are rejected.
func TestStackSplitRoundTrip(t *testing.T) {
	mk := func(seed int64, rows int) *tensor.Tensor {
		x := tensor.New(rows, 4, 8, 8)
		rng.New(seed).FillNormal(x.Data, 0, 1)
		return x
	}
	a, b := mk(56, 2), mk(57, 3)
	j := newJob()
	j.req = Request{Inputs: []*tensor.Tensor{a, b}}
	stacked, err := j.stackInputs()
	if err != nil {
		t.Fatal(err)
	}
	if stacked.Shape[0] != 5 {
		t.Fatalf("stacked rows = %d, want 5", stacked.Shape[0])
	}
	if len(j.rows) != 2 || j.rows[0] != 2 || j.rows[1] != 3 {
		t.Fatalf("row counts %v, want [2 3]", j.rows)
	}
	per := 4 * 8 * 8
	for i, in := range []*tensor.Tensor{a, b} {
		off := 0
		if i == 1 {
			off = 2 * per
		}
		for k, v := range in.Data {
			if stacked.Data[off+k] != v {
				t.Fatalf("stacked data diverges for input %d at %d", i, k)
			}
		}
	}

	// Mismatched trailing shape within one batch is a protocol error.
	c := mk(58, 1)
	c.Shape[2] = 4
	c.Data = c.Data[:1*4*4*8]
	j.reset()
	j.req = Request{Inputs: []*tensor.Tensor{a, c}}
	if _, err := j.stackInputs(); err == nil {
		t.Error("shape-mismatched batch must be rejected")
	}
}

// TestValidateFeaturesRejectsHostileTensors covers the wire-trust boundary:
// tensors straight off the network can lie about their shape.
func TestValidateFeaturesRejectsHostileTensors(t *testing.T) {
	cases := []struct {
		name string
		f    *tensor.Tensor
	}{
		{"nil", nil},
		{"wrong rank", &tensor.Tensor{Shape: []int{2, 2}, Data: make([]float64, 4)}},
		{"zero dim", &tensor.Tensor{Shape: []int{0, 3, 8, 8}}},
		{"negative dim", &tensor.Tensor{Shape: []int{1, -3, 8, 8}, Data: nil}},
		{"shape/data mismatch", &tensor.Tensor{Shape: []int{1, 4, 8, 8}, Data: make([]float64, 5)}},
	}
	for _, tc := range cases {
		if err := validateFeatures(tc.f); err == nil {
			t.Errorf("%s: must be rejected", tc.name)
		}
	}
}
