package privacy

import (
	"math"
	"testing"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

// TestRenyiDivHandComputed pins the divergence against hand-computed values
// for P = (3/4, 1/4) vs Q = (1/2, 1/2) — the worked example mirroring the
// pMixed renyiDiv reference.
func TestRenyiDivHandComputed(t *testing.T) {
	p := []float64{0.75, 0.25}
	q := []float64{0.5, 0.5}
	// α=2: log(p₀²/q₀ + p₁²/q₁) = log(1.125 + 0.125) = log 1.25.
	near(t, RenyiDiv(p, q, 2), math.Log(1.25), 1e-12, "D_2")
	// α=1 is KL: 0.75·log 1.5 + 0.25·log 0.5.
	near(t, RenyiDiv(p, q, 1), 0.75*math.Log(1.5)+0.25*math.Log(0.5), 1e-12, "D_1")
	// α=∞ is the max log-ratio: log 1.5.
	near(t, RenyiDiv(p, q, math.Inf(1)), math.Log(1.5), 1e-12, "D_inf")
	// α=3 at a finite non-special order.
	want3 := math.Log(math.Pow(0.75, 3)/0.25+math.Pow(0.25, 3)/0.25) / 2
	near(t, RenyiDiv(p, q, 3), want3, 1e-12, "D_3")
}

func TestRenyiDivIdenticalDistributionsIsZero(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	for _, alpha := range []float64{1, 2, 5, math.Inf(1)} {
		near(t, RenyiDiv(p, p, alpha), 0, 1e-12, "D(P||P)")
	}
}

func TestRenyiDivDisjointSupportIsInfinite(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	for _, alpha := range []float64{1, 2, math.Inf(1)} {
		if got := RenyiDiv(p, q, alpha); !math.IsInf(got, 1) {
			t.Fatalf("D_%v over disjoint support = %v, want +Inf", alpha, got)
		}
	}
}

// TestSubsampleEpsHandComputed pins the amplification bound against the
// closed form expanded by hand at small orders.
func TestSubsampleEpsHandComputed(t *testing.T) {
	// α=2, ε=1, p=1/2: log((1-p)(1+p) + p²e^ε) = log(3/4 + e/4).
	near(t, SubsampleEps(1, 0.5, 2), math.Log(0.75+math.E/4), 1e-12, "SubsampleEps(1, 0.5, 2)")
	// α=3, ε=1/2, p=1/4:
	//   (3/4)²(3/2) + 3(3/4)(1/4)²e^{1/2} + (1/4)³e, all under log(·)/2.
	want := math.Log(0.5625*1.5+3*0.75*0.0625*math.Exp(0.5)+math.Pow(0.25, 3)*math.E) / 2
	near(t, SubsampleEps(0.5, 0.25, 3), want, 1e-12, "SubsampleEps(0.5, 0.25, 3)")
	// No subsampling (p=1) is the unamplified loss; p=0 never answers.
	near(t, SubsampleEps(2, 1, 4), 2, 0, "SubsampleEps at p=1")
	near(t, SubsampleEps(2, 0, 4), 0, 0, "SubsampleEps at p=0")
}

// TestSubsampleEpsMonotoneAndBounded is the satellite property test: the
// amplified loss is monotone in the secret fraction p and never exceeds the
// unamplified bound (privacy amplification can only help).
func TestSubsampleEpsMonotoneAndBounded(t *testing.T) {
	for _, alpha := range []int{2, 3, 4, 8, 16} {
		for _, eps := range []float64{0.01, 0.1, 1, 5} {
			prev := 0.0
			for p := 0.0; p <= 1.0001; p += 0.01 {
				got := SubsampleEps(eps, p, alpha)
				if got < prev-1e-12 {
					t.Fatalf("SubsampleEps(%v, %v, %d) = %v < %v at smaller p: not monotone", eps, p, alpha, got, prev)
				}
				if got > eps+1e-12 {
					t.Fatalf("SubsampleEps(%v, %v, %d) = %v exceeds unamplified bound %v", eps, p, alpha, got, eps)
				}
				prev = got
			}
		}
	}
}

// TestCompositionAdditive is the satellite property test: Rényi composition
// is additive per order, so spending in one lump equals spending in pieces.
func TestCompositionAdditive(t *testing.T) {
	a, err := NewAccountant(2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAccountant(2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	y := []float64{0.05, 0.15, 0.25}
	a.Spend(x)
	a.Spend(y)
	b.Spend([]float64{x[0] + y[0], x[1] + y[1], x[2] + y[2]})
	as, bs := a.Spent(), b.Spent()
	for i := range as {
		near(t, as[i], bs[i], 1e-12, "composed loss")
	}

	// Subsampled composition: q identical queries cost exactly q times one.
	c, _ := NewAccountant(2, 8)
	const q = 100
	for i := 0; i < q; i++ {
		c.SpendSubsampled(0.05, 0.25)
	}
	near(t, c.Spent()[0], q*SubsampleEps(0.05, 0.25, 2), 1e-9, "q-fold subsampled composition at order 2")
	near(t, c.Spent()[1], q*SubsampleEps(0.05, 0.25, 8), 1e-9, "q-fold subsampled composition at order 8")
}

// TestEpsDeltaClosedForm is the satellite property test: the RDP→(ε,δ)
// conversion matches the closed form ε + log(1/δ)/(α-1) from the pMixed
// reference.
func TestEpsDeltaClosedForm(t *testing.T) {
	near(t, EpsDelta(1.5, 8, 1e-5), 1.5+math.Log(1e5)/7, 1e-12, "EpsDelta(1.5, 8, 1e-5)")
	near(t, EpsDelta(0, 2, 1e-5), math.Log(1e5), 1e-12, "EpsDelta at zero RDP")
	// BestEpsDelta picks the minimizing order.
	a, _ := NewAccountant(2, 32)
	a.Spend([]float64{0.01, 0.01})
	eps, order := a.BestEpsDelta(1e-5)
	if order != 32 {
		t.Fatalf("BestEpsDelta picked order %d, want 32 (log(1/δ)/(α-1) dominates at tiny RDP)", order)
	}
	near(t, eps, 0.01+math.Log(1e5)/31, 1e-12, "best converted eps")
}

// TestTargetMirrorsPMixed pins the per-query target against the pMixed
// formula: with p·n = 1 it reduces to eps/(4·qBudget) exactly.
func TestTargetMirrorsPMixed(t *testing.T) {
	near(t, Target(0.25, 4, 2, 1024, 2), 2.0/(4*1024), 1e-12, "Target at pn=1")
	// General case, written out by hand: α=2, eps=2, q=1024, p=0.5, n=4.
	want := math.Log(2*math.Exp(2.0/1024)+1-2) / 4
	near(t, Target(0.5, 4, 2, 1024, 2), want, 1e-12, "Target at pn=2")
}

func TestAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(); err == nil {
		t.Fatal("accountant with no orders must fail")
	}
	if _, err := NewAccountant(1); err == nil {
		t.Fatal("accountant with order < 2 must fail")
	}
	a, _ := NewAccountant(2, 4)
	if got := a.Orders(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Orders() = %v", got)
	}
	mustPanic(t, func() { a.Spend([]float64{1}) })
	mustPanic(t, func() { RenyiDiv([]float64{1}, []float64{0.5, 0.5}, 2) })
	mustPanic(t, func() { RenyiDiv([]float64{1}, []float64{1}, -1) })
	mustPanic(t, func() { SubsampleEps(1, 0.5, 1) })
	mustPanic(t, func() { EpsDelta(1, 1, 1e-5) })
	mustPanic(t, func() { EpsDelta(1, 2, 0) })
	mustPanic(t, func() { Target(0.5, 4, 1, 0, 2) })
	mustPanic(t, func() { Target(0.5, 4, 1, 1024, 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
