// Package flops provides analytic cost accounting for the latency study
// (Table III): per-layer floating-point operation counts and activation
// sizes for the full ResNet-18 the paper benchmarks. The training substrate
// uses scaled-down networks, but the latency model runs on the real
// ResNet-18 shape so the compute/communication split matches the paper's
// setting (batch of 128 images, h=1/t=1 split).
package flops

import "fmt"

// LayerCost is the analytic cost of one layer at a given input size.
type LayerCost struct {
	Name     string
	FLOPs    float64 // multiply-accumulates counted as 2 ops
	OutBytes float64 // activation size, 4-byte floats
	OutC     int
	OutH     int
	OutW     int
}

// Spec is an ordered list of layer costs with a recorded split point.
type Spec struct {
	Name   string
	Layers []LayerCost
	// HeadEnd and TailStart delimit the client/server split: layers
	// [0,HeadEnd) run on the client (Mc,h), [HeadEnd,TailStart) on the
	// server (Ms), [TailStart,len) back on the client (Mc,t).
	HeadEnd   int
	TailStart int
}

// conv appends a convolution cost: FLOPs = 2·K²·Cin·Cout·Hout·Wout (+bias).
func (s *Spec) conv(name string, inC, outC, k, stride, pad, inH, inW int, bias bool) (int, int) {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	fl := 2 * float64(k*k*inC) * float64(outC) * float64(outH*outW)
	if bias {
		fl += float64(outC * outH * outW)
	}
	s.Layers = append(s.Layers, LayerCost{
		Name: name, FLOPs: fl, OutBytes: 4 * float64(outC*outH*outW),
		OutC: outC, OutH: outH, OutW: outW,
	})
	return outH, outW
}

// simple appends an elementwise/normalization layer costing opsPerElem per
// output element.
func (s *Spec) simple(name string, c, h, w int, opsPerElem float64) {
	n := float64(c * h * w)
	s.Layers = append(s.Layers, LayerCost{
		Name: name, FLOPs: opsPerElem * n, OutBytes: 4 * n, OutC: c, OutH: h, OutW: w,
	})
}

// linear appends a fully connected layer.
func (s *Spec) linear(name string, in, out int) {
	s.Layers = append(s.Layers, LayerCost{
		Name: name, FLOPs: 2*float64(in)*float64(out) + float64(out),
		OutBytes: 4 * float64(out), OutC: out, OutH: 1, OutW: 1,
	})
}

// basicBlock appends a ResNet BasicBlock (two 3×3 convs + BNs + ReLUs and a
// projection shortcut when shape changes), returning the output spatial size.
func (s *Spec) basicBlock(name string, inC, outC, stride, h, w int) (int, int) {
	oh, ow := s.conv(name+".conv1", inC, outC, 3, stride, 1, h, w, false)
	s.simple(name+".bn1", outC, oh, ow, 2)
	s.simple(name+".relu1", outC, oh, ow, 1)
	s.conv(name+".conv2", outC, outC, 3, 1, 1, oh, ow, false)
	s.simple(name+".bn2", outC, oh, ow, 2)
	if stride != 1 || inC != outC {
		s.conv(name+".short", inC, outC, 1, stride, 0, h, w, false)
		s.simple(name+".shortbn", outC, oh, ow, 2)
	}
	s.simple(name+".add+relu", outC, oh, ow, 2)
	return oh, ow
}

// ResNet18 builds the full ResNet-18 cost spec for inputSize×inputSize RGB
// images with the paper's split (client: first conv; server: everything up
// to global average pooling; client: final FC). useMaxPool mirrors the
// paper's §IV-A: present for CIFAR-10/CelebA, removed for CIFAR-100.
func ResNet18(inputSize, classes int, useMaxPool bool) *Spec {
	s := &Spec{Name: fmt.Sprintf("resnet18-%dpx", inputSize)}
	h, w := inputSize, inputSize

	// Client head Mc,h: one 3×3/stride-1 convolution, 64 channels, plus the
	// parameter-free max pool when present — the paper reports the CIFAR-10
	// transmitted feature as [64,16,16], i.e. post-pool, so the pool sits on
	// the client side of the wire in the cost model.
	h, w = s.conv("head.conv1", 3, 64, 3, 1, 1, h, w, true)
	if useMaxPool {
		h, w = h/2, w/2
		s.simple("head.maxpool", 64, h, w, 1)
	}
	s.HeadEnd = len(s.Layers)

	// Server body Ms.
	s.simple("body.bn1", 64, h, w, 2)
	s.simple("body.relu1", 64, h, w, 1)
	widths := []int{64, 64, 128, 128, 256, 256, 512, 512}
	in := 64
	for i, outC := range widths {
		stride := 1
		if i > 0 && outC != in {
			stride = 2
		}
		h, w = s.basicBlock(fmt.Sprintf("body.block%d", i), in, outC, stride, h, w)
		in = outC
	}
	s.simple("body.gap", 512, 1, 1, float64(h*w))
	s.TailStart = len(s.Layers)

	// Client tail Mc,t: the final FC.
	s.linear("tail.fc", 512, classes)
	return s
}

// segment sums FLOPs over layer range [lo, hi).
func (s *Spec) segment(lo, hi int) float64 {
	total := 0.0
	for _, l := range s.Layers[lo:hi] {
		total += l.FLOPs
	}
	return total
}

// HeadFLOPs returns client-head compute per image.
func (s *Spec) HeadFLOPs() float64 { return s.segment(0, s.HeadEnd) }

// BodyFLOPs returns server compute per image for one body.
func (s *Spec) BodyFLOPs() float64 { return s.segment(s.HeadEnd, s.TailStart) }

// TailFLOPs returns client-tail compute per image.
func (s *Spec) TailFLOPs() float64 { return s.segment(s.TailStart, len(s.Layers)) }

// TotalFLOPs returns the whole network's compute per image.
func (s *Spec) TotalFLOPs() float64 { return s.segment(0, len(s.Layers)) }

// FeatureBytes returns the size of the transmitted intermediate activation
// (the head's output) per image.
func (s *Spec) FeatureBytes() float64 { return s.Layers[s.HeadEnd-1].OutBytes }

// ServerReturnBytes returns the per-image size of what one server body sends
// back to the client (the 512-float penultimate feature vector).
func (s *Spec) ServerReturnBytes() float64 { return 4 * 512 }
