package main

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ensembler/internal/faultpoint"
	"ensembler/internal/shard"
	"ensembler/internal/telemetry"
)

// TestRunRefusesFaultpointsWithoutFlag: ENSEMBLER_FAULTPOINTS in the
// environment must hard-fail startup unless the operator passed
// -allow-faultpoints — a chaos harness's env var must never ride silently
// into a production restart.
func TestRunRefusesFaultpointsWithoutFlag(t *testing.T) {
	defer faultpoint.DisableAll()
	dir, _ := publishTiny(t, 0)
	t.Setenv(faultpoint.EnvVar, "comm/frame-read=error:p=0.5")
	err := run(context.Background(), []string{"-model-dir", dir, "-addr", "127.0.0.1:0"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("run served with ENSEMBLER_FAULTPOINTS set and no -allow-faultpoints")
	}
	if !strings.Contains(err.Error(), "-allow-faultpoints") {
		t.Fatalf("refusal does not name the override flag: %v", err)
	}
	// A malformed spec must also fail loudly when the flag IS passed.
	t.Setenv(faultpoint.EnvVar, "comm/frame-read=no-such-kind")
	err = run(context.Background(), []string{"-model-dir", dir, "-addr", "127.0.0.1:0", "-allow-faultpoints"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no-such-kind") {
		t.Fatalf("malformed spec: err = %v, want a parse failure", err)
	}
}

// TestRunArmsFaultpointsWithFlag: with the override flag the env spec arms,
// the armed sites surface on /healthz, and the server still serves.
func TestRunArmsFaultpointsWithFlag(t *testing.T) {
	defer faultpoint.DisableAll()
	dir, _ := publishTiny(t, 0)
	// Probability 0 arms the site without ever firing — the test wants the
	// visibility plumbing, not actual faults in the round trip.
	t.Setenv(faultpoint.EnvVar, "comm/frame-read=error:p=0.0")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-workers", "2", "-allow-faultpoints",
	})
	scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	armed := faultpoint.Active()
	found := false
	for _, name := range armed {
		found = found || name == "comm/frame-read"
	}
	if !found {
		t.Errorf("env spec did not arm comm/frame-read (armed: %v)", armed)
	}
	if code, body := adminGet(t, admin+"/healthz"); code != 200 ||
		!strings.Contains(body, `"faultpoints"`) || !strings.Contains(body, "comm/frame-read") {
		t.Errorf("/healthz does not surface armed faultpoints: %d %q", code, body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// TestHealthzFleetBreakerSummary drives the admin plane's fleet hook
// directly: a plane wired to a fleet health snapshot must render per-shard
// breaker rows and degrade the overall status while any circuit is open.
func TestHealthzFleetBreakerSummary(t *testing.T) {
	_, reg := publishTiny(t, 0)
	plane := &adminPlane{
		reg: reg, model: "tiny", treg: telemetry.NewRegistry(), start: time.Now(),
		fleet: func() []shard.Health {
			return []shard.Health{
				{Addr: "127.0.0.1:1", Bodies: shard.Range{Lo: 0, Hi: 2}, Breaker: shard.BreakerClosed, Requests: 10},
				{Addr: "127.0.0.1:2", Bodies: shard.Range{Lo: 2, Hi: 4}, Breaker: shard.BreakerOpen,
					Down: true, Requests: 7, Failures: 3, ShortCircuits: 4, BreakerOpens: 1,
					ReopenIn: 250 * time.Millisecond, ConsecutiveFailures: 3, LastErr: "connection refused"},
			}
		},
	}
	rec := httptest.NewRecorder()
	plane.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	body := rec.Body.String()
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d %q", rec.Code, body)
	}
	for _, want := range []string{
		`"status": "degraded"`, `"breaker": "closed"`, `"breaker": "open"`,
		`"short_circuits": 4`, `"reopen_in_ms": 250`, `"last_err": "connection refused"`,
		`"bodies": "0..1"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/healthz fleet summary missing %s in %q", want, body)
		}
	}

	// All circuits closed → plain ok.
	plane.fleet = func() []shard.Health {
		return []shard.Health{{Addr: "127.0.0.1:1", Breaker: shard.BreakerClosed}}
	}
	rec = httptest.NewRecorder()
	plane.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if body := rec.Body.String(); !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthy fleet reported %q", body)
	}
}
