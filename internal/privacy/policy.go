package privacy

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Escalation levels a draining account climbs. Levels latch: de-escalation
// requires the remaining budget to rise past the entry threshold plus the
// hysteresis band, so a client sitting exactly on a boundary does not flap
// between treatments (meaningful when RefillPerSec recovers budget; with a
// drain-only ledger levels only ever climb).
const (
	// LevelOK serves normally.
	LevelOK = iota
	// LevelNoise adds Gaussian noise of the policy's base sigma to response
	// features.
	LevelNoise
	// LevelRotate doubles the noise and requests a selector rotation via the
	// RotateFunc plumbing — the drained client has seen enough of this epoch.
	LevelRotate
	// LevelRefused marks an account whose last request was refused outright.
	LevelRefused
)

// PolicyConfig tunes the escalation ladder. The zero value of every field is
// replaced by the documented default.
type PolicyConfig struct {
	// Observe runs the ledger in accounting-only mode: budgets drain and the
	// admin plane reports them, but no request is ever noised, rotated on, or
	// refused. The flag form is -privacy-policy observe.
	Observe bool
	// NoiseSigma is the base standard deviation of the Gaussian noise added
	// to response features at LevelNoise (doubled at LevelRotate). Default
	// 0.05 — the same order as the training-time feature noise.
	NoiseSigma float64
	// NoiseAt is the remaining-budget fraction at or below which noise
	// starts. Default 0.5.
	NoiseAt float64
	// RotateAt is the remaining-budget fraction at or below which a selector
	// rotation is requested. Default 0.2. Must be below NoiseAt.
	RotateAt float64
	// Hysteresis is the extra remaining-budget fraction required to
	// de-escalate a latched level. Default 0.05.
	Hysteresis float64
	// Rotate, when non-nil, is invoked (on its own goroutine, single-flight,
	// rate-limited by MinRotateInterval) when any account first crosses
	// RotateAt — the audit subsystem's RotateFunc plumbing.
	Rotate func(cause string)
	// MinRotateInterval rate-limits budget-driven rotations. Default 1m.
	MinRotateInterval time.Duration
	// Now is the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Verdict is the guard's decision for one request: refuse it outright, or
// serve it with sigma-scaled Gaussian noise (sigma 0: serve clean).
type Verdict struct {
	Refuse bool
	Sigma  float64
}

// Guard binds a Ledger to an escalation policy. It is what the comm server
// consults on the hot path: Charge is O(1) atomics on the account (the
// policy arithmetic is a handful of integer compares), so a guard-enabled
// server keeps the zero-allocation serving loop.
type Guard struct {
	ledger *Ledger
	cfg    PolicyConfig

	noiseAt  int64 // remaining nano-ε thresholds, precomputed
	rotateAt int64
	hystEps  int64

	lastRotate atomic.Int64
	refused    atomic.Uint64
	noised     atomic.Uint64
	rotations  atomic.Uint64
}

// NewGuard validates cfg, fills defaults, and binds the policy to the
// ledger.
func NewGuard(l *Ledger, cfg PolicyConfig) (*Guard, error) {
	if l == nil {
		return nil, fmt.Errorf("privacy: guard needs a ledger")
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.05
	}
	if cfg.NoiseSigma < 0 {
		return nil, fmt.Errorf("privacy: negative noise sigma %v", cfg.NoiseSigma)
	}
	if cfg.NoiseAt == 0 {
		cfg.NoiseAt = 0.5
	}
	if cfg.RotateAt == 0 {
		cfg.RotateAt = 0.2
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.05
	}
	if cfg.NoiseAt <= 0 || cfg.NoiseAt >= 1 || cfg.RotateAt <= 0 || cfg.RotateAt >= 1 {
		return nil, fmt.Errorf("privacy: escalation thresholds must sit in (0,1): noise %v, rotate %v", cfg.NoiseAt, cfg.RotateAt)
	}
	if cfg.RotateAt >= cfg.NoiseAt {
		return nil, fmt.Errorf("privacy: rotate threshold %v must fall below noise threshold %v", cfg.RotateAt, cfg.NoiseAt)
	}
	if cfg.Hysteresis < 0 || cfg.Hysteresis >= 1 {
		return nil, fmt.Errorf("privacy: hysteresis %v outside [0,1)", cfg.Hysteresis)
	}
	if cfg.MinRotateInterval == 0 {
		cfg.MinRotateInterval = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Guard{
		ledger:   l,
		cfg:      cfg,
		noiseAt:  int64(cfg.NoiseAt * float64(l.budget)),
		rotateAt: int64(cfg.RotateAt * float64(l.budget)),
		hystEps:  int64(cfg.Hysteresis * float64(l.budget)),
	}, nil
}

// Ledger returns the guard's budget store (the admin plane and auditor read
// it).
func (g *Guard) Ledger() *Ledger { return g.ledger }

// AccountFor resolves the account one connection charges against: the
// wire-negotiated client ID, or the handler's address bucket for legacy
// peers.
func (g *Guard) AccountFor(id string) *Account { return g.ledger.AccountFor(id) }

// Charge records rows served rows against the account and returns the
// policy verdict. The hot path is atomics and integer compares only; the
// clock is read only when refill is configured, and allocation happens only
// on the cold rotation edge.
func (g *Guard) Charge(a *Account, rows int) Verdict {
	if rows < 1 {
		rows = 1
	}
	charge := int64(rows) * g.ledger.rowCharge
	if g.cfg.Observe {
		// Accounting-only: debit (rolling back past the budget keeps the
		// drained fraction honest at 1.0, not unbounded) but never act.
		spent, ok := g.ledger.debit(a, charge)
		if !ok {
			a.spent.Store(g.ledger.budget)
			spent = g.ledger.budget
		}
		a.rows.Add(uint64(rows))
		g.ledger.rowsTotal.Add(uint64(rows))
		g.escalate(a, g.ledger.budget-spent)
		return Verdict{}
	}
	spent, ok := g.ledger.debit(a, charge)
	remaining := g.ledger.budget - spent
	if !ok || !g.deRefuse(a, remaining, charge) {
		a.level.Store(LevelRefused)
		a.refusals.Add(1)
		g.refused.Add(1)
		return Verdict{Refuse: true}
	}
	a.rows.Add(uint64(rows))
	g.ledger.rowsTotal.Add(uint64(rows))
	switch g.escalate(a, remaining) {
	case LevelNoise:
		g.noised.Add(1)
		return Verdict{Sigma: g.cfg.NoiseSigma}
	case LevelRotate:
		g.noised.Add(1)
		return Verdict{Sigma: 2 * g.cfg.NoiseSigma}
	}
	return Verdict{}
}

// deRefuse reports whether an account latched at LevelRefused may serve
// again: the refusal level holds until the remaining budget (after this
// request's charge) clears the hysteresis band — without refill that never
// happens once exhausted, which is the honest terminal state.
func (g *Guard) deRefuse(a *Account, remaining, charge int64) bool {
	if a.level.Load() != LevelRefused {
		return true
	}
	if remaining < g.hystEps {
		a.spent.Add(-charge) // roll the tentative debit back; still refused
		return false
	}
	a.level.Store(levelFor(remaining, g.noiseAt, g.rotateAt))
	return true
}

func levelFor(remaining, noiseAt, rotateAt int64) int32 {
	switch {
	case remaining <= rotateAt:
		return LevelRotate
	case remaining <= noiseAt:
		return LevelNoise
	default:
		return LevelOK
	}
}

// escalate moves the account's latched level toward the target for its
// remaining budget: upward immediately (firing the rotation hook on the
// LevelRotate edge), downward only past the hysteresis band.
func (g *Guard) escalate(a *Account, remaining int64) int32 {
	for {
		cur := a.level.Load()
		target := levelFor(remaining, g.noiseAt, g.rotateAt)
		switch {
		case target > cur:
			if !a.level.CompareAndSwap(cur, target) {
				continue
			}
			if target == LevelRotate && cur < LevelRotate {
				g.requestRotate(a)
			}
			return target
		case target < cur:
			// De-escalate one level at a time, each step gated by clearing
			// its entry threshold plus hysteresis.
			gate := g.rotateAt
			if cur == LevelNoise {
				gate = g.noiseAt
			}
			if remaining <= gate+g.hystEps {
				return cur
			}
			if !a.level.CompareAndSwap(cur, cur-1) {
				continue
			}
		default:
			return cur
		}
	}
}

// requestRotate fires the policy's rotation hook once per
// MinRotateInterval, on its own goroutine — rotation walks the registry and
// must never run under the serving path.
func (g *Guard) requestRotate(a *Account) {
	if g.cfg.Rotate == nil {
		return
	}
	now := g.cfg.Now().UnixNano()
	last := g.lastRotate.Load()
	if last != 0 && now-last < g.cfg.MinRotateInterval.Nanoseconds() {
		return
	}
	if !g.lastRotate.CompareAndSwap(last, now) {
		return
	}
	g.rotations.Add(1)
	cause := fmt.Sprintf("privacy budget: client %s drained past the rotation threshold", a.id)
	go g.cfg.Rotate(cause)
}

// Refusals reports how many requests the guard refused.
func (g *Guard) Refusals() uint64 { return g.refused.Load() }

// Noised reports how many requests were served with escalation noise.
func (g *Guard) Noised() uint64 { return g.noised.Load() }

// Rotations reports how many budget-driven rotations the guard requested.
func (g *Guard) Rotations() uint64 { return g.rotations.Load() }

// Observing reports whether the guard runs in accounting-only mode.
func (g *Guard) Observing() bool { return g.cfg.Observe }

// NoiseSigma reports the policy's base escalation noise scale.
func (g *Guard) NoiseSigma() float64 { return g.cfg.NoiseSigma }
