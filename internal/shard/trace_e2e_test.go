package shard_test

import (
	"context"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/shard"
	"ensembler/internal/trace"
)

// TestStitchedTraceAcrossShards is the tracing acceptance run: one logical
// request fanned out by the scatter-gather client to a 2-shard fleet (every
// shard running the continuous-batching dispatcher) must yield one stitched
// trace — the client's root leg plus one server leg per shard, all sharing
// the root's trace ID — whose stage spans account for the measured
// end-to-end latency within tolerance.
func TestStitchedTraceAcrossShards(t *testing.T) {
	const shards = 2
	// One tracer shared by the client and both in-process shard servers, as
	// one admin plane would see it. Rate 1 so the root coin always forces
	// retention; the batch window engages the dispatcher's queue and
	// batch-wait stages on every shard.
	tr := trace.New(trace.Config{SampleRate: 1, SlowestN: -1, Capacity: 64})
	f := commtest.StartShards(t, shards, 4, 2, 11,
		comm.WithTracer(tr), comm.WithBatchWindow(2*time.Millisecond))
	cfg := f.ClientConfig()
	cfg.Tracer = tr
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Warm-up: dial the pools and fault in the runtimes so the timed request
	// measures serving, not connection setup.
	x := imageBatch(1, 12)
	if _, _, err := c.Infer(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	logits, _, err := c.Infer(context.Background(), x)
	e2e := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(f.Pipeline.Predict(x), 1e-9) {
		t.Fatal("traced inference diverged from the local pipeline")
	}

	// The timed request's trace is the latest root: group retained records
	// by ID and take the group that started last. Server legs finish on
	// writer goroutines after the response flushed, so poll until the full
	// fleet's worth of legs landed.
	var legs []trace.Record
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		byID := map[uint64][]trace.Record{}
		var latest uint64
		var latestStart int64
		for _, r := range tr.Snapshot() {
			byID[r.ID] = append(byID[r.ID], r)
			if r.Start > latestStart {
				latestStart, latest = r.Start, r.ID
			}
		}
		if len(byID[latest]) >= 1+shards {
			legs = tr.TraceByID(latest)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(legs) != 1+shards {
		t.Fatalf("stitched trace has %d legs, want %d (client root + one per shard)", len(legs), 1+shards)
	}

	// Identify the root leg (it carries the client/scatter stages) and the
	// server legs (decode/queue/forward/encode).
	var root *trace.Record
	var servers []*trace.Record
	for i := range legs {
		if legs[i].StageDur(trace.StageScatter) > 0 || legs[i].StageDur(trace.StageClient) > 0 {
			root = &legs[i]
		} else {
			servers = append(servers, &legs[i])
		}
	}
	if root == nil || len(servers) != shards {
		t.Fatalf("trace has no identifiable root leg (%d server legs)", len(servers))
	}
	if !root.Forced {
		t.Error("root leg not marked as retention-forced at rate 1")
	}

	// The root leg covers the request as the caller experienced it: its
	// duration must match the externally measured end-to-end latency (it is
	// measured strictly inside the Infer call, so it can only be shorter).
	rootDur := time.Duration(root.Dur)
	if rootDur > e2e {
		t.Errorf("root leg %v exceeds measured end-to-end %v", rootDur, e2e)
	}
	if rootDur < e2e/2 {
		t.Errorf("root leg %v accounts for under half the measured end-to-end %v", rootDur, e2e)
	}

	// One scatter span per shard, each shard index exactly once.
	seen := map[int32]bool{}
	for i := 0; i < root.N; i++ {
		if root.Spans[i].Stage == trace.StageScatter {
			if seen[root.Spans[i].Arg] {
				t.Errorf("duplicate scatter span for shard %d", root.Spans[i].Arg)
			}
			seen[root.Spans[i].Arg] = true
		}
	}
	if len(seen) != shards {
		t.Errorf("root leg has scatter spans for %d shards, want %d", len(seen), shards)
	}

	// Every server leg's stage spans (decode, queue, batch-wait, forward,
	// encode) must sum to within tolerance of that leg's total: attribution
	// that misses half the latency, or double-counts past the total, is
	// exactly the blind spot this subsystem exists to remove. The lower
	// bound is conservative — hand-off gaps between stages are real but
	// small next to a 2ms batch window.
	for _, leg := range servers {
		var sum time.Duration
		for _, s := range []trace.Stage{trace.StageDecode, trace.StageQueue,
			trace.StageBatchWait, trace.StageForward, trace.StageEncode} {
			sum += leg.StageDur(s)
		}
		total := time.Duration(leg.Dur)
		if sum < total/2 {
			t.Errorf("server leg: spans sum to %v, under half the leg total %v", sum, total)
		}
		if sum > total*11/10 {
			t.Errorf("server leg: spans sum to %v, exceeding leg total %v", sum, total)
		}
		if leg.StageDur(trace.StageForward) == 0 {
			t.Error("server leg has no forward span")
		}
	}
}
