package nn

import (
	"fmt"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// BasicBlock is the ResNet-18 residual unit:
//
//	y = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
//
// where shortcut is the identity when stride==1 and channels match, and a
// 1×1 strided convolution + batch norm otherwise. The block handles its own
// two-branch backward pass (the gradient splits at the output sum and
// re-merges at the input).
type BasicBlock struct {
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D
	Relu2 *ReLU

	// Shortcut projection; nil means identity.
	ShortConv *Conv2D
	ShortBN   *BatchNorm2D
}

// NewBasicBlock creates a residual block mapping inC channels to outC with
// the given stride on the first convolution.
func NewBasicBlock(name string, inC, outC, stride int, r *rng.RNG) *BasicBlock {
	b := &BasicBlock{
		Conv1: NewConv2D(name+".conv1", inC, outC, 3, stride, 1, false, r),
		BN1:   NewBatchNorm2D(name+".bn1", outC),
		Relu1: NewReLU(),
		Conv2: NewConv2D(name+".conv2", outC, outC, 3, 1, 1, false, r),
		BN2:   NewBatchNorm2D(name+".bn2", outC),
		Relu2: NewReLU(),
	}
	if stride != 1 || inC != outC {
		b.ShortConv = NewConv2D(name+".short", inC, outC, 1, stride, 0, false, r)
		b.ShortBN = NewBatchNorm2D(name+".shortbn", outC)
	}
	return b
}

// Forward runs both branches and the final rectified sum.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.Conv1.Forward(x, train)
	main = b.BN1.Forward(main, train)
	main = b.Relu1.Forward(main, train)
	main = b.Conv2.Forward(main, train)
	main = b.BN2.Forward(main, train)

	short := x
	if b.ShortConv != nil {
		short = b.ShortConv.Forward(x, train)
		short = b.ShortBN.Forward(short, train)
	}
	if !main.SameShape(short) {
		panic(fmt.Sprintf("nn: BasicBlock branch shapes %v vs %v", main.Shape, short.Shape))
	}
	return b.Relu2.Forward(main.Add(short), train)
}

// Backward propagates through both branches and sums their input gradients.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.Relu2.Backward(grad)

	// Main branch.
	gm := b.BN2.Backward(g)
	gm = b.Conv2.Backward(gm)
	gm = b.Relu1.Backward(gm)
	gm = b.BN1.Backward(gm)
	gm = b.Conv1.Backward(gm)

	// Shortcut branch.
	gs := g
	if b.ShortConv != nil {
		gs = b.ShortBN.Backward(g)
		gs = b.ShortConv.Backward(gs)
	}
	return gm.Add(gs)
}

// Params returns the parameters of every sublayer.
func (b *BasicBlock) Params() []*Param {
	ps := append(b.Conv1.Params(), b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.ShortConv != nil {
		ps = append(ps, b.ShortConv.Params()...)
		ps = append(ps, b.ShortBN.Params()...)
	}
	return ps
}
