// Package metrics implements the image-quality and similarity measures the
// Ensembler evaluation reports: SSIM and PSNR for reconstruction quality
// (Tables I and II), cosine similarity (the Stage-3 regularizer and the
// head-divergence analysis), plus MSE and classification accuracy helpers.
package metrics

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// MSE returns the mean squared error between two equal-shape tensors.
func MSE(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("metrics: MSE shapes %v vs %v", a.Shape, b.Shape))
	}
	s := 0.0
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return s / float64(a.Size())
}

// PSNR returns the peak signal-to-noise ratio in dB for images in [0,1].
// Identical images return +Inf; callers that aggregate should use
// PSNRCapped.
func PSNR(a, b *tensor.Tensor) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(mse)
}

// PSNRCapped is PSNR clamped to cap dB so means over batches stay finite.
func PSNRCapped(a, b *tensor.Tensor, cap float64) float64 {
	p := PSNR(a, b)
	if p > cap {
		return cap
	}
	return p
}

// gaussianKernel returns a normalized 1-D Gaussian window.
func gaussianKernel(size int, sigma float64) []float64 {
	k := make([]float64, size)
	sum := 0.0
	mid := float64(size-1) / 2
	for i := range k {
		d := float64(i) - mid
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// SSIM computes the mean structural similarity index between two images of
// shape [C,H,W] with values in [0,1], using the standard Wang et al.
// formulation: an 8-pixel Gaussian-weighted sliding window (σ=1.5), constants
// C1=(0.01)², C2=(0.03)², averaged over all window positions and channels.
// Window size shrinks automatically for images smaller than 8 pixels.
func SSIM(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("metrics: SSIM shapes %v vs %v", a.Shape, b.Shape))
	}
	if len(a.Shape) != 3 {
		panic(fmt.Sprintf("metrics: SSIM expects [C,H,W], got %v", a.Shape))
	}
	c, h, w := a.Shape[0], a.Shape[1], a.Shape[2]
	win := 8
	if h < win || w < win {
		win = min(h, w)
	}
	kern := gaussianKernel(win, 1.5)
	const c1 = 0.01 * 0.01
	const c2 = 0.03 * 0.03

	total, count := 0.0, 0
	for ci := 0; ci < c; ci++ {
		pa := a.Data[ci*h*w : (ci+1)*h*w]
		pb := b.Data[ci*h*w : (ci+1)*h*w]
		for wy := 0; wy+win <= h; wy++ {
			for wx := 0; wx+win <= w; wx++ {
				var mx, my float64
				for ky := 0; ky < win; ky++ {
					rowA := pa[(wy+ky)*w+wx:]
					rowB := pb[(wy+ky)*w+wx:]
					for kx := 0; kx < win; kx++ {
						wgt := kern[ky] * kern[kx]
						mx += wgt * rowA[kx]
						my += wgt * rowB[kx]
					}
				}
				var vx, vy, cov float64
				for ky := 0; ky < win; ky++ {
					rowA := pa[(wy+ky)*w+wx:]
					rowB := pb[(wy+ky)*w+wx:]
					for kx := 0; kx < win; kx++ {
						wgt := kern[ky] * kern[kx]
						da := rowA[kx] - mx
						db := rowB[kx] - my
						vx += wgt * da * da
						vy += wgt * db * db
						cov += wgt * da * db
					}
				}
				num := (2*mx*my + c1) * (2*cov + c2)
				den := (mx*mx + my*my + c1) * (vx + vy + c2)
				total += num / den
				count++
			}
		}
	}
	return total / float64(count)
}

// BatchSSIM averages SSIM over corresponding samples of two [N,C,H,W]
// tensors.
func BatchSSIM(a, b *tensor.Tensor) float64 {
	n := a.Shape[0]
	s := 0.0
	for i := 0; i < n; i++ {
		s += SSIM(a.SampleView(i), b.SampleView(i))
	}
	return s / float64(n)
}

// BatchPSNR averages capped PSNR over corresponding samples.
func BatchPSNR(a, b *tensor.Tensor) float64 {
	n := a.Shape[0]
	s := 0.0
	for i := 0; i < n; i++ {
		s += PSNRCapped(a.SampleView(i), b.SampleView(i), 60)
	}
	return s / float64(n)
}

// CosineSimilarity returns <a,b>/(|a||b|) over flattened tensors, the
// similarity the Stage-3 regularizer penalizes (Eq. 3). Zero vectors yield 0.
func CosineSimilarity(a, b *tensor.Tensor) float64 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("metrics: cosine sizes %d vs %d", a.Size(), b.Size()))
	}
	var dot, na, nb float64
	for i, v := range a.Data {
		w := b.Data[i]
		dot += v * w
		na += v * v
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// ConfusionMatrix tallies predictions[i] vs labels[i] into a K×K matrix
// (rows = true class, cols = predicted).
func ConfusionMatrix(preds, labels []int, k int) [][]int {
	if len(preds) != len(labels) {
		panic("metrics: preds/labels length mismatch")
	}
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i, p := range preds {
		m[labels[i]][p]++
	}
	return m
}

// AccuracyFromCounts converts a confusion matrix back to accuracy.
func AccuracyFromCounts(m [][]int) float64 {
	correct, total := 0, 0
	for i, row := range m {
		for j, v := range row {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
