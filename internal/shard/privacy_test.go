package shard_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"

	"ensembler/internal/attack"
	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// This file verifies the defense property through the real serving stack:
// an adversary tapping the bytes of one shard (holding only that shard's
// bodies) reconstructs the client's private images no better than the
// full-knowledge monolithic adversary, and both stay below the undefended
// baseline. The victim features are captured OFF THE WIRE — the gob frames
// an adversarial host actually records — not taken from an in-process hook.

// wiretap is a TCP forwarding proxy that records the client→server byte
// stream of every connection separately (each connection is its own gob
// stream; concatenating them would corrupt the second decode).
type wiretap struct {
	addr  string
	mu    sync.Mutex
	conns []*bytes.Buffer
}

func startWiretap(t *testing.T, backend string) *wiretap {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	w := &wiretap{addr: ln.Addr().String()}
	go func() {
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close()
				continue
			}
			buf := &bytes.Buffer{}
			w.mu.Lock()
			w.conns = append(w.conns, buf)
			w.mu.Unlock()
			go func() { // client → server, teed into the tap
				io.Copy(server, io.TeeReader(client, &lockedWriter{w: buf, mu: &w.mu}))
				server.(*net.TCPConn).CloseWrite()
			}()
			go func() { // server → client
				io.Copy(client, server)
				client.Close()
				server.Close()
			}()
		}
	}()
	return w
}

// lockedWriter serializes tap writes against capturedFeatures reads.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// capturedFeatures decodes every request the tap recorded and returns the
// transmitted feature tensors, across all connections. DecodeWireStream
// handles either protocol a client may have spoken — the framing is public;
// only the selection is secret.
func (w *wiretap) capturedFeatures(t *testing.T) []*tensor.Tensor {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []*tensor.Tensor
	for _, buf := range w.conns {
		reqs, err := comm.DecodeWireStream(buf.Bytes())
		if err != nil {
			t.Fatalf("decoding tapped stream: %v", err)
		}
		for _, req := range reqs {
			if req.Features != nil {
				out = append(out, req.Features)
			}
		}
	}
	return out
}

// wireVictim is an attack.Victim backed by features captured off the wire:
// the adversary inverts exactly the bytes it observed, for exactly the
// batch the client sent.
type wireVictim struct {
	t        *testing.T
	captured *tensor.Tensor
}

func (v wireVictim) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	if v.captured.Shape[0] != x.Shape[0] {
		v.t.Fatalf("captured features cover %d samples, attack asks for %d", v.captured.Shape[0], x.Shape[0])
	}
	return v.captured
}

// undefendedVictim adapts a plain split model (no noise, no ensemble) as
// the undefended baseline victim.
type undefendedVictim struct{ m *split.Model }

func (v undefendedVictim) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	return v.m.ClientFeatures(x, false)
}

func privacySplits(seed int64) *data.Splits {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 96, Aux: 64, Test: 32, Seed: seed})
	for _, ds := range []*data.Dataset{sp.Train, sp.Aux, sp.Test} {
		ds.Classes = 4
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	return sp
}

func TestAdversarialShardPrivacyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("attack training smoke test")
	}
	sp := privacySplits(101)
	arch := commtest.TinyArch()

	// The defended pipeline, trained for real: the attack quality ordering
	// below rests on stage-3 head orthogonalization actually happening.
	cfg := ensemble.Config{
		Arch: arch, N: 4, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: 102,
		Stage1:      split.TrainOptions{Epochs: 2, BatchSize: 16, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 2, BatchSize: 16, LR: 0.05},
		Stage1Noise: true,
	}
	e := ensemble.Train(cfg, sp.Train, nil)

	reg := registry.New(nil)
	if _, err := reg.Publish("victim", e); err != nil {
		t.Fatal(err)
	}

	// Monolithic deployment with a tap in front of it.
	monoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	monoCtx, monoCancel := context.WithCancel(context.Background())
	defer monoCancel()
	monoServed := make(chan error, 1)
	go func() { monoServed <- comm.NewModelServer(reg).Serve(monoCtx, monoLn) }()
	defer func() { monoCancel(); <-monoServed }()
	monoTap := startWiretap(t, monoLn.Addr().String())

	// K=2 fleet; the adversary taps shard 0, which hosts bodies [0,2).
	fleet, err := commtest.StartShardServers(reg, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for i := range fleet.Addrs {
			fleet.StopShard(i)
		}
	}()
	shardTap := startWiretap(t, fleet.Addrs[0])

	// The victim's private eval batch flows through both deployments.
	idxs := make([]int, 16)
	for i := range idxs {
		idxs[i] = i
	}
	x, _ := sp.Test.Batch(idxs)

	monoClient, err := comm.Dial(monoTap.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer monoClient.Close()
	monoClient.ComputeFeatures = e.ClientFeatures
	monoClient.Select = e.Selector.Apply
	monoClient.Tail = e.Tail
	if _, _, err := monoClient.Infer(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	shardCfg := fleet.ClientConfig()
	shardCfg.Addrs = []string{shardTap.addr, fleet.Addrs[1]}
	shardClient, err := shard.NewClient(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shardClient.Close()
	if _, _, err := shardClient.Infer(context.Background(), x); err != nil {
		t.Fatal(err)
	}

	monoCaptured := monoTap.capturedFeatures(t)
	shardCaptured := shardTap.capturedFeatures(t)
	if len(monoCaptured) != 1 || len(shardCaptured) != 1 {
		t.Fatalf("expected one captured request per tap, got %d and %d", len(monoCaptured), len(shardCaptured))
	}
	// The shard observer sees the identical transmitted representation the
	// monolith sees — fan-out sends the same features everywhere — and it
	// is genuinely the defended representation the client computed.
	if !shardCaptured[0].AllClose(monoCaptured[0], 1e-9) {
		t.Error("per-shard and monolithic taps observed different features")
	}
	if !monoCaptured[0].AllClose(e.ClientFeatures(x), 1e-9) {
		t.Error("captured wire features are not the defended client features")
	}

	// The undefended baseline: a plain split model, no noise, no secret.
	// Against it the decoder trains on the victim's true features (the
	// oracle form): with nothing hidden, the standard-CI adversary's
	// shadow converges to exactly that, so the oracle is the honest
	// strength of the undefended attack — and unlike a 3-epoch shadow, it
	// is stable at this test scale.
	undefended := split.NewModel("plain", arch, 0, 0, 0, rng.New(103))
	split.Train(undefended, sp.Train, split.TrainOptions{Epochs: 3, BatchSize: 16, LR: 0.05, Seed: 104})

	acfg := attack.Config{
		Arch: arch, ShadowEpochs: 3, DecoderEpochs: 6,
		BatchSize: 16, ShadowLR: 0.01, Seed: 105, StructuredShadow: true,
	}
	shard0Bodies := e.Bodies()[fleet.Ranges[0].Lo:fleet.Ranges[0].Hi]
	perShard := attack.RunDecoderAttack(acfg, "shard0-observer", shard0Bodies, false,
		wireVictim{t, shardCaptured[0]}, sp.Aux, sp.Test, len(idxs))
	full := attack.RunDecoderAttack(acfg, "full-knowledge", e.Bodies(), false,
		wireVictim{t, monoCaptured[0]}, sp.Aux, sp.Test, len(idxs))
	base := attack.OracleDecoderAttack(acfg, undefendedVictim{undefended}, sp.Aux, sp.Test, len(idxs))

	t.Logf("SSIM: undefended %.3f, full-knowledge %.3f, shard0-observer %.3f", base.SSIM, full.SSIM, perShard.SSIM)

	// The defense ordering, measured through the real serving stack: a
	// shard observer is no better off than the full-knowledge attacker
	// (it holds strictly less — a body subset), and both sit clearly below
	// the undefended baseline.
	const tol = 0.05 // attack outcomes are noisy at this scale; ordering must still hold
	if perShard.SSIM > full.SSIM+tol {
		t.Errorf("per-shard observer (SSIM %.3f) must not beat the full-knowledge attacker (%.3f)", perShard.SSIM, full.SSIM)
	}
	if full.SSIM >= base.SSIM {
		t.Errorf("full-knowledge attack on the defended pipeline (SSIM %.3f) must stay below the undefended baseline (%.3f)", full.SSIM, base.SSIM)
	}
	if perShard.SSIM >= base.SSIM {
		t.Errorf("per-shard attack (SSIM %.3f) must stay below the undefended baseline (%.3f)", perShard.SSIM, base.SSIM)
	}
}
