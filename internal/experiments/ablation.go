package experiments

import (
	"fmt"
	"io"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/defense"
	"ensembler/internal/latency"
	"ensembler/internal/split"
)

// AblationPoint is one configuration of an ablation sweep with its measured
// defense quality.
type AblationPoint struct {
	Label    string
	Acc      float64
	BestSSIM float64 // strongest single-body attack
	BestPSNR float64
	Adaptive float64 // adaptive attack SSIM
}

// RenderAblation prints a sweep.
func RenderAblation(w io.Writer, title string, pts []AblationPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-18s %8s %10s %10s %10s\n", "Config", "Acc", "bestSSIM", "bestPSNR", "adaptSSIM")
	for _, p := range pts {
		fmt.Fprintf(w, "%-18s %8.3f %10.3f %10.2f %10.3f\n", p.Label, p.Acc, p.BestSSIM, p.BestPSNR, p.Adaptive)
	}
}

// evalEnsemble trains one Ensembler configuration and scores it against the
// full attack battery.
func evalEnsemble(sc Scale, kind data.Kind, n, p int, lambda float64, stage1Noise bool, seed int64) AblationPoint {
	sp := data.Generate(data.Config{Kind: kind, Train: sc.Train, Aux: sc.Aux, Test: sc.Test, Seed: seed})
	arch := split.DefaultArch(kind)
	cfg := ensemblerConfig(sc, arch, p, seed)
	cfg.N = n
	cfg.Lambda = lambda
	cfg.Stage1Noise = stage1Noise
	ens := defense.TrainEnsembler(cfg, sp.Train, nil)
	acfg := sc.attackConfig(arch, seed+17)
	singles := attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples)
	ad := attack.AdaptiveAttack(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples)
	return AblationPoint{
		Acc:      ens.Accuracy(sp.Test),
		BestSSIM: attack.BestBy(singles, "ssim").SSIM,
		BestPSNR: attack.BestBy(singles, "psnr").PSNR,
		Adaptive: ad.SSIM,
	}
}

// SweepP ablates the secret subset size P at fixed N: larger P forces the
// Stage-3 head to satisfy more bodies simultaneously, pushing it further
// from any single-body optimum (and costing accuracy).
func SweepP(sc Scale, ps []int, seed int64) []AblationPoint {
	var out []AblationPoint
	for _, p := range ps {
		if p < 1 || p > sc.N {
			continue
		}
		pt := evalEnsemble(sc, data.CIFAR10Like, sc.N, p, sc.Lambda, true, seed)
		pt.Label = fmt.Sprintf("N=%d P=%d", sc.N, p)
		out = append(out, pt)
	}
	return out
}

// SweepLambda ablates the Eq. 3 regularizer strength: λ=0 removes the
// quasi-orthogonality constraint (the head may drift back toward a
// stage-1-like solution), large λ trades accuracy for divergence.
func SweepLambda(sc Scale, lambdas []float64, seed int64) []AblationPoint {
	var out []AblationPoint
	for _, l := range lambdas {
		pt := evalEnsemble(sc, data.CIFAR10Like, sc.N, sc.P, l, true, seed)
		pt.Label = fmt.Sprintf("λ=%.2g", l)
		out = append(out, pt)
	}
	return out
}

// SweepStage1Noise ablates Stage 1's per-member noise injection — the
// mechanism that makes the N heads mutually distinct. Without it the DR-N
// row of Table II shows weaker protection.
func SweepStage1Noise(sc Scale, seed int64) []AblationPoint {
	var out []AblationPoint
	for _, enabled := range []bool{true, false} {
		pt := evalEnsemble(sc, data.CIFAR10Like, sc.N, sc.P, sc.Lambda, enabled, seed)
		if enabled {
			pt.Label = "stage1 noise ON"
		} else {
			pt.Label = "stage1 noise OFF"
		}
		out = append(out, pt)
	}
	return out
}

// LatencySweepN reports the cost model across ensemble sizes — the latency
// side of choosing N (privacy grows as 2^N, communication linearly).
func LatencySweepN(ns []int) []latency.Breakdown {
	var out []latency.Breakdown
	for _, n := range ns {
		sc := latency.Ensembler(n)
		sc.Name = fmt.Sprintf("N=%d", n)
		out = append(out, latency.Run(sc))
	}
	return out
}

// AlignedAttackStudy measures the stronger-than-paper attacker that aligns
// its shadow head to passively observed traffic statistics (see
// EXPERIMENTS.md §extensions): it returns the strongest single-body attack
// without and with alignment against the same trained pipeline.
func AlignedAttackStudy(sc Scale, seed int64) (plain, aligned attack.Outcome) {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: sc.Train, Aux: sc.Aux, Test: sc.Test, Seed: seed})
	arch := split.DefaultArch(data.CIFAR10Like)
	ens := defense.TrainEnsembler(ensemblerConfig(sc, arch, sc.P, seed), sp.Train, nil)

	acfg := sc.attackConfig(arch, seed+17)
	plain = attack.BestBy(attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples), "ssim")
	plain.Name = "paper attack"

	acfg.AlignWeight = 1
	aligned = attack.BestBy(attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, sc.EvalSamples), "ssim")
	aligned.Name = "traffic-aligned attack"
	return plain, aligned
}
