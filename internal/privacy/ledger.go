package privacy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultQueryBudget is the pMixed default split of a client's total
	// budget into per-query losses: QueryEps defaults to BudgetEps/1024.
	DefaultQueryBudget = 1024
	// DefaultMaxClients bounds how many client accounts the ledger tracks
	// before evicting the least recently connected.
	DefaultMaxClients = 4096
	// DefaultShards is the ledger's default shard count (rounded up to a
	// power of two).
	DefaultShards = 64

	// epsScale is the fixed-point resolution of the spent counters: one
	// nano-ε per unit, so a per-row charge is one atomic integer add.
	epsScale = 1e9
)

// LedgerConfig configures a Ledger. BudgetEps is required; everything else
// has serviceable defaults.
type LedgerConfig struct {
	// BudgetEps is the total Rényi loss ε(α) one client may spend at order
	// Alpha before requests are refused.
	BudgetEps float64
	// Alpha is the Rényi order the budget is denominated in (integer ≥ 2,
	// the domain of the subsampling bound). Defaults to 2, the pMixed order.
	Alpha int
	// QueryEps is the unamplified per-row loss ε(α) one served row costs
	// before subsampling amplification. Defaults to BudgetEps/1024 (the
	// pMixed q_budget split).
	QueryEps float64
	// SecretFraction is p = P/N, the fraction of the ensemble the secret
	// selection actually answers through; the per-row charge is
	// SubsampleEps(QueryEps, p, Alpha). 0 or ≥ 1 disables amplification.
	SecretFraction float64
	// RefillPerSec recovers budget over time (ε(α) per second per client),
	// so a client that backs off re-earns service. 0 (the default) makes
	// budgets drain-only — and keeps the charge path free of clock reads.
	RefillPerSec float64
	// MaxClients bounds tracked accounts; the least recently connected
	// account is evicted past the bound. Defaults to DefaultMaxClients.
	MaxClients int
	// Shards is the number of account-map shards. Defaults to
	// DefaultShards; rounded up to a power of two.
	Shards int
	// Now is the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Account is one client's budget state. The charge path touches only the
// atomic fields, so concurrent requests from one client never take a lock.
type Account struct {
	id string

	spent    atomic.Int64  // nano-ε spent at the ledger's order
	rows     atomic.Uint64 // rows charged
	refusals atomic.Uint64 // requests refused for this account
	level    atomic.Int32  // policy escalation level (see policy.go)
	lastSeen atomic.Int64  // unix nanos at last acquire/refill — eviction & refill clock
}

// ID returns the client identity the account is keyed by.
func (a *Account) ID() string { return a.id }

// SpentEps returns the account's accumulated Rényi loss at the ledger's
// order.
func (a *Account) SpentEps() float64 { return float64(a.spent.Load()) / epsScale }

type ledgerShard struct {
	mu       sync.RWMutex
	accounts map[string]*Account
}

// Ledger is the sharded per-client budget store. AccountFor resolves a
// client identity to its Account once per connection; the per-request charge
// then runs entirely on that account's atomics — the discipline that keeps
// the serving loop at zero allocations per request (asserted by the comm
// benchmarks with the ledger enabled).
type Ledger struct {
	cfg       LedgerConfig
	budget    int64 // nano-ε
	rowCharge int64 // nano-ε per served row, amplification applied
	maxShard  int   // per-shard account bound (MaxClients / shards)
	mask      uint64
	shards    []ledgerShard

	clients   atomic.Int64
	evictions atomic.Uint64
	rowsTotal atomic.Uint64
}

// NewLedger validates cfg and builds the ledger.
func NewLedger(cfg LedgerConfig) (*Ledger, error) {
	if cfg.BudgetEps <= 0 {
		return nil, fmt.Errorf("privacy: ledger needs a positive budget, got %v", cfg.BudgetEps)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 2
	}
	if cfg.Alpha < 2 {
		return nil, fmt.Errorf("privacy: ledger order %d below 2", cfg.Alpha)
	}
	if cfg.QueryEps < 0 {
		return nil, fmt.Errorf("privacy: negative per-query loss %v", cfg.QueryEps)
	}
	if cfg.QueryEps == 0 {
		cfg.QueryEps = cfg.BudgetEps / DefaultQueryBudget
	}
	if cfg.SecretFraction < 0 || cfg.SecretFraction > 1 {
		return nil, fmt.Errorf("privacy: secret fraction %v outside [0,1]", cfg.SecretFraction)
	}
	if cfg.RefillPerSec < 0 {
		return nil, fmt.Errorf("privacy: negative refill rate %v", cfg.RefillPerSec)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultMaxClients
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	perRow := cfg.QueryEps
	if cfg.SecretFraction > 0 && cfg.SecretFraction < 1 {
		perRow = SubsampleEps(cfg.QueryEps, cfg.SecretFraction, cfg.Alpha)
	}
	maxShard := cfg.MaxClients / shards
	if maxShard < 1 {
		maxShard = 1
	}
	l := &Ledger{
		cfg:       cfg,
		budget:    int64(cfg.BudgetEps * epsScale),
		rowCharge: int64(perRow * epsScale),
		maxShard:  maxShard,
		mask:      uint64(shards - 1),
		shards:    make([]ledgerShard, shards),
	}
	if l.rowCharge < 1 {
		l.rowCharge = 1 // a served row is never free at fixed-point resolution
	}
	return l, nil
}

// RowChargeEps reports the amplified Rényi loss one served row costs.
func (l *Ledger) RowChargeEps() float64 { return float64(l.rowCharge) / epsScale }

// BudgetEps reports the per-client budget.
func (l *Ledger) BudgetEps() float64 { return l.cfg.BudgetEps }

// Alpha reports the Rényi order the budget is denominated in.
func (l *Ledger) Alpha() int { return l.cfg.Alpha }

// fnv1a hashes a client identity to its shard (inline FNV-1a, no
// allocation).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// AccountFor resolves (creating if needed) the account for a client
// identity. Called once per connection, not per request; may evict the
// shard's least recently connected account past the capacity bound.
func (l *Ledger) AccountFor(id string) *Account {
	sh := &l.shards[fnv1a(id)&l.mask]
	now := l.cfg.Now().UnixNano()

	sh.mu.RLock()
	a := sh.accounts[id]
	sh.mu.RUnlock()
	if a != nil {
		a.lastSeen.Store(now)
		return a
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if a = sh.accounts[id]; a != nil {
		a.lastSeen.Store(now)
		return a
	}
	if sh.accounts == nil {
		sh.accounts = make(map[string]*Account)
	}
	for len(sh.accounts) >= l.maxShard {
		var lruID string
		lru := int64(1<<63 - 1)
		for k, cand := range sh.accounts {
			if seen := cand.lastSeen.Load(); seen < lru {
				lruID, lru = k, seen
			}
		}
		delete(sh.accounts, lruID)
		l.clients.Add(-1)
		l.evictions.Add(1)
	}
	a = &Account{id: id}
	a.lastSeen.Store(now)
	sh.accounts[id] = a
	l.clients.Add(1)
	return a
}

// debit charges nano-ε to the account, applying the refill credit first when
// the ledger refills. It returns the new spent value and whether the charge
// fit the budget; a charge that does not fit is rolled back (the refused
// request serves nothing, so it costs nothing).
func (l *Ledger) debit(a *Account, charge int64) (spent int64, ok bool) {
	if l.cfg.RefillPerSec > 0 {
		now := l.cfg.Now().UnixNano()
		last := a.lastSeen.Swap(now)
		if dt := now - last; dt > 0 {
			credit := int64(l.cfg.RefillPerSec * epsScale * float64(dt) / float64(time.Second))
			for credit > 0 {
				s := a.spent.Load()
				ns := s - credit
				if ns < 0 {
					ns = 0
				}
				if a.spent.CompareAndSwap(s, ns) {
					break
				}
			}
		}
	}
	spent = a.spent.Add(charge)
	if spent > l.budget {
		a.spent.Add(-charge)
		return spent - charge, false
	}
	return spent, true
}

// ClientBudget is one account's externally visible state — the /budget admin
// payload and the auditor's worst-drained-client input.
type ClientBudget struct {
	Client       string  `json:"client"`
	SpentEps     float64 `json:"spent_eps"`
	RemainingEps float64 `json:"remaining_eps"`
	Drained      float64 `json:"drained"` // SpentEps / budget, clamped to [0,1]
	Level        int     `json:"level"`
	Rows         uint64  `json:"rows"`
	Refusals     uint64  `json:"refusals"`
}

func (l *Ledger) clientBudget(a *Account) ClientBudget {
	spent := float64(a.spent.Load()) / epsScale
	remaining := l.cfg.BudgetEps - spent
	if remaining < 0 {
		remaining = 0
	}
	drained := spent / l.cfg.BudgetEps
	if drained > 1 {
		drained = 1
	}
	return ClientBudget{
		Client:       a.id,
		SpentEps:     spent,
		RemainingEps: remaining,
		Drained:      drained,
		Level:        int(a.level.Load()),
		Rows:         a.rows.Load(),
		Refusals:     a.refusals.Load(),
	}
}

// Snapshot returns every tracked account's state, most drained first.
func (l *Ledger) Snapshot() []ClientBudget {
	var out []ClientBudget
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.RLock()
		for _, a := range sh.accounts {
			out = append(out, l.clientBudget(a))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpentEps != out[j].SpentEps {
			return out[i].SpentEps > out[j].SpentEps
		}
		return out[i].Client < out[j].Client
	})
	return out
}

// TopSpenders returns the n most drained accounts.
func (l *Ledger) TopSpenders(n int) []ClientBudget {
	all := l.Snapshot()
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// LedgerStats is the ledger's aggregate telemetry snapshot.
type LedgerStats struct {
	Clients    int     `json:"clients"`
	Evictions  uint64  `json:"evictions"`
	Rows       uint64  `json:"rows_charged"`
	BudgetEps  float64 `json:"budget_eps"`
	QueryEps   float64 `json:"query_eps"`
	RowEps     float64 `json:"row_eps"`
	Alpha      int     `json:"alpha"`
	SecretFrac float64 `json:"secret_fraction"`
	MaxClients int     `json:"max_clients"`
}

// Stats reports the ledger's aggregate counters and configuration.
func (l *Ledger) Stats() LedgerStats {
	return LedgerStats{
		Clients:    int(l.clients.Load()),
		Evictions:  l.evictions.Load(),
		Rows:       l.rowsTotal.Load(),
		BudgetEps:  l.cfg.BudgetEps,
		QueryEps:   l.cfg.QueryEps,
		RowEps:     l.RowChargeEps(),
		Alpha:      l.cfg.Alpha,
		SecretFrac: l.cfg.SecretFraction,
		MaxClients: l.maxShard * len(l.shards),
	}
}
