package comm

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

func wireTensor(seed int64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	rng.New(seed).FillNormal(t.Data, 0, 1)
	return t
}

// codecBodies deterministically builds n tiny server bodies.
func codecBodies(n int) []*nn.Network {
	out := make([]*nn.Network, n)
	for i := range out {
		out[i] = tinyArch().NewBody(fmt.Sprintf("b%d", i), rng.New(int64(i+1)))
	}
	return out
}

// startCodecServer boots a replicated multi-worker server on loopback.
func startCodecServer(t *testing.T, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(codecBodies(n), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(n) }))
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		ln.Close()
		<-served
	})
	return ln.Addr().String()
}

// TestBinaryRequestRoundTrip pins encode→decode identity for both request
// forms, on both the heap and arena decode paths.
func TestBinaryRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Model: "m", Version: 3, Features: wireTensor(1, 2, 4, 8, 8)},
		{Features: wireTensor(2, 1, 3, 4, 4)},
		{Model: "batch", Inputs: []*tensor.Tensor{wireTensor(3, 2, 3, 4, 4), wireTensor(4, 1, 3, 4, 4)}},
	}
	for i, req := range reqs {
		body, err := appendRequest(nil, req, false, trace.Context{})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		var heap Request
		if err := parseRequestInto(body, &heap, heapAlloc{}, nil, nil); err != nil {
			t.Fatalf("request %d heap decode: %v", i, err)
		}
		j := newJob()
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			t.Fatalf("request %d arena decode: %v", i, err)
		}
		for _, got := range []*Request{&heap, &j.req} {
			if got.Model != req.Model || got.Version != req.Version {
				t.Errorf("request %d header: got (%q,%d), want (%q,%d)", i, got.Model, got.Version, req.Model, req.Version)
			}
			if req.Features != nil && !got.Features.AllClose(req.Features, 0) {
				t.Errorf("request %d features diverge", i)
			}
			if len(got.Inputs) != len(req.Inputs) {
				t.Fatalf("request %d inputs: got %d, want %d", i, len(got.Inputs), len(req.Inputs))
			}
			for k := range req.Inputs {
				if !got.Inputs[k].AllClose(req.Inputs[k], 0) {
					t.Errorf("request %d input %d diverges", i, k)
				}
			}
		}
	}
}

// TestBinaryResponseRoundTrip pins encode→decode identity for both response
// forms, error strings and headers included.
func TestBinaryResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Model: "m", Version: 7, Features: []*tensor.Tensor{wireTensor(5, 2, 16), wireTensor(6, 2, 16)}},
		{Err: "comm: something broke"},
		{Outputs: [][]*tensor.Tensor{
			{wireTensor(7, 1, 16), wireTensor(8, 1, 16)},
			{wireTensor(9, 1, 16), wireTensor(10, 1, 16)},
		}},
	}
	for i, resp := range resps {
		body, err := appendResponse(nil, resp, false, false, 0)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		var got Response
		if err := parseResponseInto(body, &got, false, nil); err != nil {
			t.Fatalf("response %d decode: %v", i, err)
		}
		if got.Model != resp.Model || got.Version != resp.Version || got.Err != resp.Err {
			t.Errorf("response %d header diverges", i)
		}
		if len(got.Features) != len(resp.Features) {
			t.Fatalf("response %d features: %d vs %d", i, len(got.Features), len(resp.Features))
		}
		for k := range resp.Features {
			if !got.Features[k].AllClose(resp.Features[k], 0) {
				t.Errorf("response %d feature %d diverges", i, k)
			}
		}
		if len(got.Outputs) != len(resp.Outputs) {
			t.Fatalf("response %d outputs: %d vs %d", i, len(got.Outputs), len(resp.Outputs))
		}
		for a := range resp.Outputs {
			for b := range resp.Outputs[a] {
				if !got.Outputs[a][b].AllClose(resp.Outputs[a][b], 0) {
					t.Errorf("response %d output [%d][%d] diverges", i, a, b)
				}
			}
		}
	}
}

// TestFloat32WireRounding pins the -wire f32 accuracy trade-off: values
// round-trip through float32 with relative error bounded by the format's
// epsilon, not exactly.
func TestFloat32WireRounding(t *testing.T) {
	req := &Request{Features: wireTensor(11, 1, 2, 8, 8)}
	body, err := appendRequest(nil, req, true, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := parseRequestInto(body, &got, heapAlloc{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range req.Features.Data {
		g := got.Features.Data[i]
		if g != float64(float32(v)) {
			t.Fatalf("element %d: got %v, want the float32 rounding of %v", i, g, v)
		}
		if rel := math.Abs(g-v) / math.Max(math.Abs(v), 1e-30); rel > 1e-6 {
			t.Errorf("element %d rounds with relative error %v", i, rel)
		}
	}
	// f32 payload is about half the f64 payload.
	body64, _ := appendRequest(nil, req, false, trace.Context{})
	if len(body) >= len(body64) {
		t.Errorf("f32 frame (%d bytes) not smaller than f64 frame (%d bytes)", len(body), len(body64))
	}
}

// TestHostileFramesRejected covers the frame parser's trust boundary:
// truncations and lying lengths must error without huge allocations or
// panics.
func TestHostileFramesRejected(t *testing.T) {
	good, err := appendRequest(nil, &Request{Features: wireTensor(12, 1, 2, 4, 4)}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"wrong msg type":   {0xFF},
		"truncated header": good[:3],
		"truncated tensor": good[:len(good)-5],
		"trailing bytes":   append(append([]byte{}, good...), 1, 2, 3),
		// Claim a gigantic tensor over a short body: rank 4, dims 2^16 each.
		"lying dims": {wireMsgRequest, 0, 0, 0, 0, 0, 0, wireKindFeatures, 1, 0,
			4, wireDtypeF64, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0},
	}
	for name, body := range cases {
		var req Request
		if err := parseRequestInto(body, &req, heapAlloc{}, nil, nil); err == nil {
			t.Errorf("%s: hostile request frame accepted", name)
		}
		var resp Response
		if err := parseResponseInto(body, &resp, false, nil); err == nil {
			t.Errorf("%s: hostile response frame accepted", name)
		}
	}
}

// TestCodecSteadyStateZeroAllocs pins the hot-path contract: after warm-up,
// request decode (arena path) and response encode reuse every buffer.
func TestCodecSteadyStateZeroAllocs(t *testing.T) {
	req := &Request{Features: wireTensor(13, 2, 4, 8, 8)}
	body, err := appendRequest(nil, req, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	resp := &Response{Features: []*tensor.Tensor{wireTensor(14, 2, 64), wireTensor(15, 2, 64)}}
	encBuf := make([]byte, 0, 4096)

	// Warm-up: size the arena and the encode buffer.
	if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
		t.Fatal(err)
	}
	j.reset()
	if encBuf, err = appendResponse(encBuf[:0], resp, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if cap(encBuf) < len(encBuf) {
		t.Fatal("unreachable")
	}

	allocs := testing.AllocsPerRun(50, func() {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			t.Fatal(err)
		}
		j.reset()
		var e error
		encBuf, e = appendResponse(encBuf[:0], resp, false, false, 0)
		if e != nil {
			t.Fatal(e)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state codec cycle allocates %v times, want 0", allocs)
	}
}

// TestBinaryAndGobClientsAgree runs the same request through both protocols
// against one live server: the decoded feature values must agree exactly
// (the binary f64 wire is bit-transparent, like gob).
func TestBinaryAndGobClientsAgree(t *testing.T) {
	const nBodies = 2
	addr := startCodecServer(t, nBodies)
	x := wireTensor(16, 2, 4, 8, 8)

	responses := make([]*Exchanged, 0, 2)
	for _, wire := range []WireFormat{WireBinary, WireGob} {
		client, err := Dial(addr, WithWire(wire))
		if err != nil {
			t.Fatalf("%v dial: %v", wire, err)
		}
		ex, _, err := client.Exchange(context.Background(), x)
		client.Close()
		if err != nil {
			t.Fatalf("%v exchange: %v", wire, err)
		}
		responses = append(responses, ex)
	}
	if len(responses[0].Features) != nBodies || len(responses[1].Features) != nBodies {
		t.Fatalf("feature counts %d/%d, want %d", len(responses[0].Features), len(responses[1].Features), nBodies)
	}
	for i := range responses[0].Features {
		if !responses[0].Features[i].AllClose(responses[1].Features[i], 0) {
			t.Errorf("binary and gob clients received different features for body %d", i)
		}
	}
}

// TestFloat32ClientEndToEnd drives the f32 wire against a live server and
// checks the result stays within float32 rounding of the f64 wire's.
func TestFloat32ClientEndToEnd(t *testing.T) {
	const nBodies = 2
	addr := startCodecServer(t, nBodies)
	x := wireTensor(17, 1, 4, 8, 8)

	exact, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	lossy, err := Dial(addr, WithWire(WireBinaryF32))
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()

	exf, _, err := exact.Exchange(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	lof, t2, err := lossy.Exchange(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exf.Features {
		if !lof.Features[i].AllClose(exf.Features[i], 1e-4) {
			t.Errorf("f32 wire features for body %d diverge beyond rounding", i)
		}
		if lof.Features[i].AllClose(exf.Features[i], 0) {
			t.Logf("body %d features happen to be f32-exact", i)
		}
	}
	// Rough byte check: the f32 upload should be well under the f64 one
	// would be (8 bytes per value plus framing).
	vals := x.Size()
	if t2.BytesUp >= vals*8 {
		t.Errorf("f32 upload of %d bytes for %d values — float32 payload not in effect", t2.BytesUp, vals)
	}
}

// TestDecodeWireStreamBothProtocols pins the wiretap parser used by the
// shard privacy tests: a captured binary stream and a captured gob stream
// both yield the transmitted requests.
func TestDecodeWireStreamBothProtocols(t *testing.T) {
	req := &Request{Model: "m", Features: wireTensor(18, 1, 2, 4, 4)}

	// Binary capture: hello + two frames.
	var bin bytes.Buffer
	hello := helloBytes(wireVersion, 0)
	bin.Write(hello[:])
	codec := &binClientCodec{binFramer: binFramer{w: &bin}}
	if err := codec.writeRequest(req, trace.Context{}); err != nil {
		t.Fatal(err)
	}
	if err := codec.writeRequest(req, trace.Context{}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWireStream(bin.Bytes())
	if err != nil {
		t.Fatalf("binary stream: %v", err)
	}
	if len(got) != 2 || !got[0].Features.AllClose(req.Features, 0) || got[1].Model != "m" {
		t.Errorf("binary stream decoded %d requests", len(got))
	}

	// Gob capture.
	var g bytes.Buffer
	enc := gob.NewEncoder(&g)
	if err := enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	got, err = DecodeWireStream(g.Bytes())
	if err != nil {
		t.Fatalf("gob stream: %v", err)
	}
	if len(got) != 1 || !got[0].Features.AllClose(req.Features, 0) {
		t.Errorf("gob stream decoded %d requests", len(got))
	}

	// Truncated binary stream errors instead of panicking.
	if _, err := DecodeWireStream(bin.Bytes()[:bin.Len()-3]); err == nil {
		t.Error("truncated binary stream accepted")
	}
}

// TestServerComputeLoopZeroAllocs pins the tentpole acceptance criterion at
// the server-loop level: decode → resolve → replica lookup → every body's
// inference pass → response copy-out → encode, with zero heap allocations
// at steady state. A regression here shows up in CI instead of in a GC
// profile under load.
func TestServerComputeLoopZeroAllocs(t *testing.T) {
	const nBodies = 3
	// workers > 1 selects the serial per-body loop, the production shape of
	// a multi-core server.
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(19, 2, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<16)
	cycle := func() {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			t.Fatal(err)
		}
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			t.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
		if e != nil {
			t.Fatal(e)
		}
		j.reset()
	}
	cycle() // warm-up: clone replicas, size arenas and buffers
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state server compute loop allocates %v times per request, want 0", allocs)
	}

	// The batched form reaches steady state too (after its own warm-up).
	batched, err := appendRequest(nil, &Request{Inputs: []*tensor.Tensor{
		wireTensor(20, 1, 4, 8, 8), wireTensor(21, 2, 4, 8, 8)}}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}
	body = batched
	cycle()
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state batched compute loop allocates %v times per request, want 0", allocs)
	}
}

// BenchmarkServeRequestLoop measures the per-request server loop in
// isolation — binary decode, resolve, replica lookup, every body pass,
// response copy-out, binary encode — and reports its allocation count,
// which must be 0 at steady state (pinned by TestServerComputeLoopZeroAllocs).
func BenchmarkServeRequestLoop(b *testing.B) {
	const nBodies = 4
	srv := NewServer(codecBodies(nBodies), WithWorkers(2),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(22, 4, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<20)
	// Warm-up: clone replicas, size arenas and buffers, so the timed loop
	// is pure steady state.
	for i := 0; i < 2; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		if resp := srv.serve(j, replicas); resp.Err != "" {
			b.Fatal(resp.Err)
		}
		j.reset()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			b.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
		if e != nil {
			b.Fatal(e)
		}
		j.reset()
	}
}

// TestMalformedRequestsDoNotGrowScratches pins the panic-path memory fix: a
// request that clears validateFeatures but panics mid-network (hostile
// spatial dims) must not leave un-reset scratch arenas accumulating demand,
// or a stream of malformed requests inflates every worker's scratch buffers
// without bound.
func TestMalformedRequestsDoNotGrowScratches(t *testing.T) {
	// Bodies with a Flatten→Linear boundary: a request whose spatial dims
	// clear validateFeatures still panics at the Linear, AFTER the earlier
	// layers have already drawn activations from the scratch.
	flatBodies := func() []*nn.Network {
		out := make([]*nn.Network, 2)
		for i := range out {
			r := rng.New(int64(40 + i))
			out[i] = nn.NewNetwork(fmt.Sprintf("fb%d", i),
				nn.NewBatchNorm2D("bn", 4),
				nn.NewReLU(),
				nn.NewFlatten(),
				nn.NewLinear("fc", 4*8*8, 4, r),
			)
		}
		return out
	}
	srv := NewServer(flatBodies(), WithWorkers(2), WithReplicas(flatBodies))
	j := newJob()
	replicas := newReplicaCache(PrecisionF64)

	good := &Request{Features: wireTensor(23, 1, 4, 8, 8)}
	// Right rank and channels, wrong spatial size: flattens to 64 ≠ 256.
	bad := &Request{Features: wireTensor(24, 1, 4, 4, 4)}

	serve := func(req *Request) *Response {
		j.req = *req
		resp := srv.serve(j, replicas)
		j.reset()
		return resp
	}
	if resp := serve(good); resp.Err != "" {
		t.Fatalf("good request failed: %s", resp.Err)
	}
	if resp := serve(bad); resp.Err == "" {
		t.Fatal("hostile-shape request must produce an error response")
	}
	m, err := srv.provider.Resolve("", 0)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := replicas.replicaFor(m)
	if err != nil {
		t.Fatal(err)
	}
	// Let the post-failure state settle into steady state, then record it.
	serve(good)
	serve(bad)
	footprint := func() int {
		total := 0
		for _, sc := range wr.scratches {
			total += sc.Footprint()
		}
		return total
	}
	before := footprint()
	for i := 0; i < 50; i++ {
		serve(bad)
	}
	serve(good)
	if after := footprint(); after > before {
		t.Errorf("50 malformed requests grew the replica scratches from %d to %d bytes", before, after)
	}
}
