// Package ensemble implements the paper's primary contribution: the
// Ensembler framework. The server hosts N bodies; the client secretly
// activates P of them through a private Selector (Eq. 1) and trains its
// head/tail in three stages (Eqs. 2-3) so that any shadow network the
// adversarial server reconstructs — from one body, a guessed subset, or all
// N bodies — emulates the wrong client head.
package ensemble

import (
	"fmt"
	"sort"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Selector is the client's secret activation (Eq. 1): it picks P of the N
// feature vectors the server returns, scales each by S_i = 1/P, and
// concatenates them as the tail's input. The selection indices never leave
// the client.
type Selector struct {
	N, P    int
	Indices []int // ascending subset of [0,N), secret to the server
}

// NewSelector draws a secret uniform P-subset of [0,N) — Stage 2 of the
// training pipeline.
func NewSelector(n, p int, r *rng.RNG) *Selector {
	if p <= 0 || p > n {
		panic(fmt.Sprintf("ensemble: selector P=%d out of range for N=%d", p, n))
	}
	idx := r.Choose(n, p)
	sort.Ints(idx)
	return &Selector{N: n, P: p, Indices: idx}
}

// FixedSelector builds a selector with explicit indices (for tests and for
// reloading a saved pipeline).
func FixedSelector(n int, indices []int) *Selector {
	seen := map[int]bool{}
	for _, i := range indices {
		if i < 0 || i >= n || seen[i] {
			panic(fmt.Sprintf("ensemble: invalid selector indices %v for N=%d", indices, n))
		}
		seen[i] = true
	}
	idx := append([]int(nil), indices...)
	sort.Ints(idx)
	return &Selector{N: n, P: len(idx), Indices: idx}
}

// Apply implements Eq. 1 on the full list of N server feature matrices
// [B,D]: Concat[S_i ⊙ f for f in selected], with S_i = 1/P.
func (s *Selector) Apply(features []*tensor.Tensor) *tensor.Tensor {
	if len(features) != s.N {
		panic(fmt.Sprintf("ensemble: selector got %d feature maps, want N=%d", len(features), s.N))
	}
	parts := make([]*tensor.Tensor, s.P)
	for j, i := range s.Indices {
		parts[j] = features[i].Scale(1 / float64(s.P))
	}
	return nn.ConcatFeatures(parts)
}

// ApplySelected is Apply for callers that already computed only the P
// selected branches (the client-side training path, which skips unselected
// bodies entirely).
func (s *Selector) ApplySelected(features []*tensor.Tensor) *tensor.Tensor {
	if len(features) != s.P {
		panic(fmt.Sprintf("ensemble: got %d selected feature maps, want P=%d", len(features), s.P))
	}
	parts := make([]*tensor.Tensor, s.P)
	for j, f := range features {
		parts[j] = f.Scale(1 / float64(s.P))
	}
	return nn.ConcatFeatures(parts)
}

// SplitGrad routes the gradient of the concatenated tail input back to the
// P selected branches, undoing the concat and applying the 1/P scaling's
// chain rule.
func (s *Selector) SplitGrad(grad *tensor.Tensor, featureDim int) []*tensor.Tensor {
	widths := make([]int, s.P)
	for i := range widths {
		widths[i] = featureDim
	}
	parts := nn.SplitFeatureGrad(grad, widths)
	for _, p := range parts {
		p.ScaleInPlace(1 / float64(s.P))
	}
	return parts
}

// Contains reports whether body index i is selected.
func (s *Selector) Contains(i int) bool {
	for _, v := range s.Indices {
		if v == i {
			return true
		}
	}
	return false
}

// SubsetCount returns the number of non-empty subsets of N bodies — the
// brute-force search space of an attacker who must guess the selection
// (§III-D: expected MIA time O(2^N)).
func SubsetCount(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out - 1
}
