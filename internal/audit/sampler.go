// Package audit closes the loop between the paper's offline privacy
// evaluation and the live serving stack: it mirrors a bounded sample of the
// intermediate features clients actually transmit, periodically replays the
// repo's own model-inversion attacks against the currently published
// pipeline, scores the reconstructions the way Tables I/II do (SSIM/PSNR
// against a calibration floor), and drives the selector-rotation policy on
// that evidence instead of a blind timer.
//
// The auditor is the defender auditing itself — it runs on the serving box,
// holds the full pipeline (head, secret selector, tail) the way the model
// owner already does, and therefore can measure an upper bound no real
// attacker reaches (see the threat-model discussion in DESIGN.md: mirroring
// features on-box widens no attack surface, because the box already holds
// them in memory on every request).
package audit

import (
	"sync"
	"sync/atomic"

	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// Sample is one mirrored feature tensor with the epoch that served it.
type Sample struct {
	Model    string
	Version  int
	Features *tensor.Tensor // private copy, safe to retain
}

// Sampler is a reservoir sampler over the serving hot path, implementing
// comm.FeatureObserver. It mirrors every rate-th observed feature tensor
// into a bounded reservoir with uniform replacement, so the retained set is
// a uniform sample of everything mirrored since the last reset regardless
// of traffic volume.
//
// Cost contract (asserted by TestDisabledSamplerDoesNotAllocate):
//   - disabled (rate 0) or skipped observations: one atomic add, zero
//     allocations, no lock;
//   - sampled observations: one tensor copy plus a short mutex hold.
type Sampler struct {
	rate uint64 // mirror every rate-th observation; 0 disables
	cap  int

	seen    atomic.Uint64 // all observations
	sampled atomic.Uint64 // observations that entered the reservoir path

	mu        sync.Mutex
	r         *rng.RNG
	reservoir []Sample
	admitted  uint64 // reservoir-path observations since the last Reset
}

// NewSampler creates a sampler mirroring every rate-th observation into a
// reservoir of at most capacity tensors. rate 0 disables sampling entirely;
// rate 1 considers every request. The seed drives reservoir replacement
// (deterministic for tests; any value is fine in production).
func NewSampler(rate, capacity int, seed int64) *Sampler {
	if capacity <= 0 {
		capacity = 64
	}
	if rate < 0 {
		rate = 0
	}
	return &Sampler{
		rate: uint64(rate),
		cap:  capacity,
		r:    rng.New(seed),
	}
}

// Enabled reports whether the sampler mirrors anything at all.
func (s *Sampler) Enabled() bool { return s != nil && s.rate > 0 }

// ObserveFeatures implements the comm.FeatureObserver hot-path hook.
func (s *Sampler) ObserveFeatures(model string, version int, f *tensor.Tensor) {
	if s == nil || s.rate == 0 {
		return
	}
	n := s.seen.Add(1)
	if n%s.rate != 0 {
		return
	}
	s.sampled.Add(1)
	// The tensor belongs to the request; copy before retaining. The copy
	// happens outside the lock so concurrent workers only serialize on the
	// cheap reservoir bookkeeping.
	cp := tensor.New(f.Shape...)
	copy(cp.Data, f.Data)
	smp := Sample{Model: model, Version: version, Features: cp}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.admitted++
	if len(s.reservoir) < s.cap {
		s.reservoir = append(s.reservoir, smp)
		return
	}
	// Uniform reservoir replacement over the admitted stream.
	if j := s.r.Intn(int(s.admitted)); j < s.cap {
		s.reservoir[j] = smp
	}
}

// ObserveFeatures32 implements the comm.FeatureObserver32 hot-path hook: on
// an f32-precision server the sampler receives the float32 tensors the
// compute path actually runs on. Widening into the float64 reservoir — exact,
// every float32 is a float64 — happens only after the rate gate passes, so
// skipped observations keep the cost contract above: one atomic add, zero
// allocations, no lock. The attack replay and SSIM scoring then consume what
// production traffic really leaked, rounded nowhere further.
func (s *Sampler) ObserveFeatures32(model string, version int, f *tensor.Tensor32) {
	if s == nil || s.rate == 0 {
		return
	}
	n := s.seen.Add(1)
	if n%s.rate != 0 {
		return
	}
	s.sampled.Add(1)
	smp := Sample{Model: model, Version: version, Features: tensor.Widen64(f)}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.admitted++
	if len(s.reservoir) < s.cap {
		s.reservoir = append(s.reservoir, smp)
		return
	}
	if j := s.r.Intn(int(s.admitted)); j < s.cap {
		s.reservoir[j] = smp
	}
}

// Snapshot returns a copy of the current reservoir (the tensors themselves
// are immutable once mirrored, so only the slice is copied).
func (s *Sampler) Snapshot() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.reservoir...)
}

// Reset empties the reservoir — called after an audit consumed it, so the
// next audit scores fresh traffic (and fresh post-rotation features never
// mix with pre-rotation ones).
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reservoir = s.reservoir[:0]
	s.admitted = 0
	s.mu.Unlock()
}

// Counts reports how many feature tensors were observed and how many were
// mirrored since construction.
func (s *Sampler) Counts() (seen, sampled uint64) {
	if s == nil {
		return 0, 0
	}
	return s.seen.Load(), s.sampled.Load()
}
