package nn

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// This file is the inference-mode forward path: ForwardInfer computes
// exactly what Forward(x, false) computes, but writes every activation into
// a caller-owned Scratch instead of allocating per layer, caches nothing for
// a backward pass, and never spawns goroutines inside a kernel. It exists
// for the serving hot path, where a worker handles one request at a time and
// the layer-cache machinery of Forward is pure overhead: after one warm-up
// pass a ForwardInfer is allocation-free (asserted by TestForwardInferAllocs
// and the comm serving benchmarks).
//
// Memory model: all tensors returned by ForwardInfer — including the final
// output — live in the Scratch and are invalidated by Scratch.Reset. A
// caller that retains the output (e.g. to encode it on the wire) must copy
// it out before resetting. A Scratch belongs to one goroutine; concurrent
// passes need one Scratch (and one network replica) each, mirroring the
// existing one-goroutine-per-network rule.

// Scratch is the reusable activation storage for inference-mode forward
// passes. The zero value is usable; the first pass sizes it.
type Scratch struct {
	arena tensor.Arena
}

// NewScratch returns an empty scratch; the first ForwardInfer sizes it.
func NewScratch() *Scratch { return &Scratch{} }

// Reset reclaims the scratch for the next pass, invalidating every tensor
// the previous pass returned.
func (s *Scratch) Reset() { s.arena.Reset() }

// Footprint reports the warmed scratch's backing memory in bytes.
func (s *Scratch) Footprint() int { return s.arena.Footprint() }

// InferenceLayer is implemented by layers with a dedicated allocation-free
// inference path. Network.ForwardInfer uses it where available and falls
// back to Forward(x, false) otherwise, so custom Layer implementations keep
// working (they just allocate).
type InferenceLayer interface {
	Layer
	ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor
}

// ForwardInfer runs the stack in inference mode over the scratch. The result
// is bit-identical to Forward(x, false).
func (n *Network) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	for _, l := range n.Layers {
		if il, ok := l.(InferenceLayer); ok {
			x = il.ForwardInfer(x, s)
		} else {
			x = l.Forward(x, false)
		}
	}
	return x
}

// InferScratch returns a Scratch pre-sized for inputs of the given shape by
// running one throwaway warm-up pass — the "sizing done once per replica"
// step of the serving memory model. Passes over inputs of this shape (or
// smaller) then allocate nothing; a larger input grows the scratch once.
func (n *Network) InferScratch(inputShape ...int) *Scratch {
	s := NewScratch()
	n.ForwardInfer(tensor.New(inputShape...), s)
	s.Reset()
	return s
}

// ForwardInfer computes the convolution serially per sample with the blocked
// matmul kernel, retaining no im2col matrices.
func (c *Conv2D) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D %s expects [N,%d,H,W], got %v", c.W.Name, c.InC, x.Shape))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	y := s.arena.NewTensor(n, c.OutC, oh, ow)
	cols := s.arena.NewTensor(c.InC*c.KH*c.KW, oh*ow)
	var bias *tensor.Tensor
	if c.B != nil {
		bias = c.B.Value
	}
	return tensor.ConvForwardInto(y, x, c.W.Value, bias, cols, c.KH, c.KW, c.Stride, c.Pad)
}

// ForwardInfer computes xW^T + b into the scratch.
func (l *Linear) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear %s expects [N,%d], got %v", l.W.Name, l.In, x.Shape))
	}
	y := s.arena.NewTensor(x.Shape[0], l.Out)
	tensor.MatMulTransBInto(y, x, l.W.Value)
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.B.Value.Data[j]
		}
	}
	return y
}

// ForwardInfer normalizes with the running statistics, folding the affine
// transform into one fused multiply-add per element and caching nothing.
func (b *BatchNorm2D) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm2D %s expects [N,%d,H,W], got %v", b.Gamma.Name, b.C, x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	out := s.arena.NewTensor(x.Shape...)
	for ci := 0; ci < c; ci++ {
		inv := 1 / math.Sqrt(b.RunVar.Data[ci]+b.Eps)
		mean := b.RunMean.Data[ci]
		g, bt := b.Gamma.Value.Data[ci], b.Beta.Value.Data[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			src := x.Data[base : base+hw]
			dst := out.Data[base : base+hw]
			for j, v := range src {
				// Matches Forward's eval mode bit for bit: the same
				// (x-mean)*inv rounding, then the affine.
				dst[j] = g*((v-mean)*inv) + bt
			}
		}
	}
	return out
}

// ForwardInfer clamps negatives to zero without caching a mask.
func (r *ReLU) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.arena.NewTensor(x.Shape...)
	reluSlice(out.Data, x.Data)
	return out
}

// reluSlice writes max(0, src) into dst; dst may alias src.
func reluSlice(dst, src []float64) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ForwardInfer applies the leaky rectifier without caching the input.
func (l *LeakyReLU) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	return out
}

// ForwardInfer squashes to (0,1) without caching the output.
func (s *Sigmoid) ForwardInfer(x *tensor.Tensor, sc *Scratch) *tensor.Tensor {
	out := sc.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// ForwardInfer computes tanh without caching the output.
func (t *Tanh) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	out := s.arena.NewTensor(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ForwardInfer pools each window to its maximum without caching argmax
// indices.
func (p *MaxPool2D) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	out := s.arena.NewTensor(n, c, oh, ow)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if ix >= w {
								continue
							}
							if v := x.Data[base+iy*w+ix]; v > best {
								best = v
							}
						}
					}
					out.Data[oi] = best
					oi++
				}
			}
		}
	}
	return out
}

// ForwardInfer averages the spatial dimensions without caching the input
// shape.
func (g *GlobalAvgPool) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	hw := float64(h * w)
	out := s.arena.NewTensor(n, c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			sum := 0.0
			for j := 0; j < h*w; j++ {
				sum += x.Data[base+j]
			}
			out.Data[ni*c+ci] = sum / hw
		}
	}
	return out
}

// ForwardInfer repeats each pixel factor×factor times.
func (u *Upsample2D) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: Upsample2D expects NCHW, got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f := u.Factor
	out := s.arena.NewTensor(n, c, h*f, w*f)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			inBase := (ni*c + ci) * h * w
			outBase := (ni*c + ci) * h * f * w * f
			for iy := 0; iy < h*f; iy++ {
				srcRow := inBase + (iy/f)*w
				dstRow := outBase + iy*w*f
				for ix := 0; ix < w*f; ix++ {
					out.Data[dstRow+ix] = x.Data[srcRow+ix/f]
				}
			}
		}
	}
	return out
}

// ForwardInfer flattens via an arena-backed view — no data copy, no heap
// header.
func (f *Flatten) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	n := x.Shape[0]
	return s.arena.View(x, n, x.Size()/n)
}

// ForwardInfer reshapes via an arena-backed view.
func (r *Reshape2D4D) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	return s.arena.View(x, x.Shape[0], r.C, r.H, r.W)
}

// ForwardInfer adds the fixed noise tensor to every sample. Resample mode
// still redraws (it mutates the layer, exactly as Forward does — a layer in
// resample mode is not usable concurrently either way).
func (a *AdditiveNoise) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: AdditiveNoise expects NCHW, got %v", x.Shape))
	}
	per := a.Noise.Value.Size()
	if x.Size()/x.Shape[0] != per {
		panic(fmt.Sprintf("nn: AdditiveNoise shape %v incompatible with input %v", a.Noise.Value.Shape, x.Shape))
	}
	if a.Mode == NoiseResample {
		a.r.FillNormal(a.Noise.Value.Data, 0, a.Sigma)
	}
	out := s.arena.NewTensor(x.Shape...)
	noise := a.Noise.Value.Data
	for n := 0; n < x.Shape[0]; n++ {
		base := n * per
		for j := 0; j < per; j++ {
			out.Data[base+j] = x.Data[base+j] + noise[j]
		}
	}
	return out
}

// ForwardInfer is the identity: dropout only acts in training mode.
func (d *Dropout) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor { return x }

// ForwardInfer runs both branches over the scratch and fuses the residual
// sum and final rectifier in place on the main branch's buffer (this block
// owns it — nothing else aliases an activation the block just produced).
func (b *BasicBlock) ForwardInfer(x *tensor.Tensor, s *Scratch) *tensor.Tensor {
	main := b.Conv1.ForwardInfer(x, s)
	main = b.BN1.ForwardInfer(main, s)
	main = b.Relu1.ForwardInfer(main, s)
	main = b.Conv2.ForwardInfer(main, s)
	main = b.BN2.ForwardInfer(main, s)

	short := x
	if b.ShortConv != nil {
		short = b.ShortConv.ForwardInfer(x, s)
		short = b.ShortBN.ForwardInfer(short, s)
	}
	if !main.SameShape(short) {
		panic(fmt.Sprintf("nn: BasicBlock branch shapes %v vs %v", main.Shape, short.Shape))
	}
	tensor.AddInto(main, main, short)
	reluSlice(main.Data, main.Data)
	return main
}

// Interface conformance: every built-in layer provides the inference path,
// so a stack of them runs allocation-free end to end.
var (
	_ InferenceLayer = (*Network)(nil)
	_ InferenceLayer = (*Conv2D)(nil)
	_ InferenceLayer = (*Linear)(nil)
	_ InferenceLayer = (*BatchNorm2D)(nil)
	_ InferenceLayer = (*ReLU)(nil)
	_ InferenceLayer = (*LeakyReLU)(nil)
	_ InferenceLayer = (*Sigmoid)(nil)
	_ InferenceLayer = (*Tanh)(nil)
	_ InferenceLayer = (*MaxPool2D)(nil)
	_ InferenceLayer = (*GlobalAvgPool)(nil)
	_ InferenceLayer = (*Upsample2D)(nil)
	_ InferenceLayer = (*Flatten)(nil)
	_ InferenceLayer = (*Reshape2D4D)(nil)
	_ InferenceLayer = (*AdditiveNoise)(nil)
	_ InferenceLayer = (*Dropout)(nil)
	_ InferenceLayer = (*BasicBlock)(nil)
)
