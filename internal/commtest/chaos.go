package commtest

// The chaos runner: deterministic fault-schedule orchestration for e2e
// robustness tests. A seeded scheduler flips faultpoint sites on and off
// while traffic workers hammer the system under test; the runner counts
// outcomes and then verifies recovery once every fault is disarmed. The
// whole run is reproducible from ChaosConfig.Seed — the schedule (which
// site, which policy, when) is a pure function of the seed, so a chaos
// failure in CI replays locally with the same flips in the same order.
//
// The invariant chaos enforces is NOT "no errors" — faults are supposed to
// fail requests — but "no lies": every ADMITTED response must be bit-exact
// (the traffic closure reports ErrChaosMismatch otherwise), errors must stay
// inside the budget the test sets, and the system must converge back to
// clean service once the schedule ends.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/faultpoint"
	"ensembler/internal/rng"
)

// ErrChaosMismatch is returned by a traffic closure when a response was
// ADMITTED (no error surfaced) but did not match the reference bit-exactly —
// the one failure mode chaos testing exists to catch. RunChaos counts these
// separately from honest errors.
var ErrChaosMismatch = errors.New("commtest: admitted response mismatched reference")

// ChaosSite is one faultpoint the scheduler may arm, with the candidate
// policies it chooses among (uniformly, from the schedule rng).
type ChaosSite struct {
	Name     string
	Policies []faultpoint.Policy
}

// ChaosConfig parameterises one chaos run.
type ChaosConfig struct {
	Seed     int64         // drives the schedule AND the faultpoint master seed
	Workers  int           // concurrent traffic workers (default 4)
	Flips    int           // schedule length: arm/rotate events (default 32)
	FlipGap  time.Duration // pause between schedule events (default 2ms)
	MaxArmed int           // sites armed simultaneously (default 2; oldest rotates out)
	Sites    []ChaosSite
}

// ChaosReport is what a run observed.
type ChaosReport struct {
	Requests   uint64            // traffic closure invocations during the storm
	Errors     uint64            // honest failures (fault surfaced as an error)
	Mismatches uint64            // admitted-but-wrong responses; any non-zero value is a bug
	Flips      int               // schedule events executed
	Armed      map[string]int    // times each site was armed
	Triggers   map[string]uint64 // per-site faults actually fired during the run
	Recovered  bool              // clean service converged after disarm
	RecoverIn  time.Duration     // how long convergence took
}

// TotalTriggers sums every site's fired faults — a storm that triggered
// nothing proved nothing.
func (r ChaosReport) TotalTriggers() uint64 {
	var n uint64
	for _, t := range r.Triggers {
		n += t
	}
	return n
}

func (c *ChaosConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Flips <= 0 {
		c.Flips = 32
	}
	if c.FlipGap <= 0 {
		c.FlipGap = 2 * time.Millisecond
	}
	if c.MaxArmed <= 0 {
		c.MaxArmed = 2
	}
}

// RunChaos drives traffic from cfg.Workers goroutines while the seeded
// scheduler walks cfg.Flips arm/rotate events over cfg.Sites, then disarms
// everything and verifies recovery: the traffic closure must produce
// recoveryStreak consecutive clean calls within recoveryDeadline. The
// traffic closure is called concurrently and must be goroutine-safe; it
// returns nil for a bit-exact success, ErrChaosMismatch for an admitted
// wrong answer, and any other error for an honest failure.
func RunChaos(cfg ChaosConfig, traffic func(worker int) error) ChaosReport {
	cfg.defaults()
	faultpoint.SetSeed(cfg.Seed)
	defer faultpoint.DisableAll()

	var requests, errCount, mismatches atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				switch err := traffic(w); {
				case err == nil:
				case errors.Is(err, ErrChaosMismatch):
					mismatches.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}(w)
	}

	// The storm: arm a site per event; past MaxArmed the oldest disarms.
	// Trigger accounting: arming a site resets its counters, so each site's
	// count is credited at every re-arm boundary (just before the reset) and
	// once more after the storm — every arm period is counted exactly once.
	report := ChaosReport{Armed: make(map[string]int), Triggers: make(map[string]uint64)}
	faultpoint.ResetStats()
	credit := func(name string) {
		for _, st := range faultpoint.SiteStats() {
			if st.Name == name {
				report.Triggers[name] += st.Triggers
			}
		}
	}
	r := rng.New(cfg.Seed)
	var armed []string
	for i := 0; i < cfg.Flips; i++ {
		site := cfg.Sites[r.Intn(len(cfg.Sites))]
		policy := site.Policies[r.Intn(len(site.Policies))]
		credit(site.Name)
		faultpoint.Enable(site.Name, policy)
		report.Armed[site.Name]++
		report.Flips++
		armed = append(armed, site.Name)
		if len(armed) > cfg.MaxArmed {
			faultpoint.Disable(armed[0])
			armed = armed[1:]
		}
		time.Sleep(cfg.FlipGap)
	}
	close(stop)
	wg.Wait()
	report.Requests = requests.Load()
	report.Errors = errCount.Load()
	report.Mismatches = mismatches.Load()
	for _, site := range cfg.Sites {
		credit(site.Name)
	}
	for name, n := range report.Triggers {
		if n == 0 {
			delete(report.Triggers, name)
		}
	}

	// Recovery: with every fault disarmed, clean service must converge.
	faultpoint.DisableAll()
	const recoveryStreak = 5
	const recoveryDeadline = 10 * time.Second
	start := time.Now()
	streak := 0
	for time.Since(start) < recoveryDeadline {
		switch err := traffic(0); {
		case err == nil:
			streak++
		case errors.Is(err, ErrChaosMismatch):
			report.Mismatches++
			streak = 0
		default:
			streak = 0
			time.Sleep(5 * time.Millisecond)
		}
		if streak >= recoveryStreak {
			report.Recovered = true
			report.RecoverIn = time.Since(start)
			break
		}
	}
	return report
}

// LeakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not settled back near the snapshot after
// the test's own cleanups ran (call it FIRST, before starting servers, so
// its cleanup runs LAST). Stragglers get a grace period — hedge legs and
// retry backoffs drain on their own schedule.
func LeakCheck(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after teardown\n%s", before, now, buf[:n])
	})
}
