package comm

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/tensor"
)

// TestRetryPolicyDelaySchedule pins the backoff schedule as a pure function:
// deterministic doubling from BaseDelay, the MaxDelay cap, and the jitter
// envelope — no sleeping, no seeding.
func TestRetryPolicyDelaySchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.5}

	// u = 0 is the jitterless upper envelope: pure doubling.
	for i, want := range []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		16 * time.Millisecond, 32 * time.Millisecond,
	} {
		if got := p.Delay(i+1, 0); got != want {
			t.Errorf("Delay(%d, 0) = %v, want %v", i+1, got, want)
		}
	}
	// The exponential caps at MaxDelay instead of growing without bound.
	if got := p.Delay(30, 0); got != 250*time.Millisecond {
		t.Errorf("Delay(30, 0) = %v, want the %v cap", got, 250*time.Millisecond)
	}
	// Jitter scales into [1-Jitter, 1]: u→1 gives the lower envelope.
	if got := p.Delay(1, 0.9999); got < 1*time.Millisecond || got >= 2*time.Millisecond {
		t.Errorf("Delay(1, ~1) = %v, want within [%v, %v)", got, 1*time.Millisecond, 2*time.Millisecond)
	}
	for u := 0.0; u < 1; u += 0.13 {
		d := p.Delay(2, u)
		if d < 2*time.Millisecond || d > 4*time.Millisecond {
			t.Errorf("Delay(2, %v) = %v outside the jitter envelope [2ms, 4ms]", u, d)
		}
	}

	// Degenerate policies do not panic and do not wait.
	if got := (RetryPolicy{}).Delay(1, 0.5); got != 0 {
		t.Errorf("zero policy Delay = %v, want 0", got)
	}
	if got := p.Delay(0, 0); got != 0 {
		t.Errorf("Delay(0) = %v, want 0", got)
	}
	// Jitter above 1 clamps instead of going negative.
	wild := RetryPolicy{BaseDelay: 8 * time.Millisecond, Jitter: 5}
	if got := wild.Delay(1, 0.9999); got < 0 || got > 8*time.Millisecond {
		t.Errorf("over-jittered Delay = %v, want within [0, 8ms]", got)
	}
}

// TestRetryDelayFloorAtZeroWindow pins the greedy-mode (batch window 0)
// backoff floor. retryOverload floors the policy delay by the server's
// advertised window; a greedy server advertises 0, so the jitter draw is the
// only thing between a shed and an immediate re-send. A full-jitter draw
// (u→1) must therefore never collapse the delay to zero — the floor is a
// quarter of the pre-jitter backoff — or the client hot-spins against the
// very server that just shed it for overload.
func TestRetryDelayFloorAtZeroWindow(t *testing.T) {
	for _, p := range []RetryPolicy{
		DefaultRetryPolicy(),
		{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, Jitter: 1}, // full jitter, no cap
	} {
		for failures := 1; failures <= p.MaxAttempts; failures++ {
			preJitter := p.Delay(failures, 0)
			floor := preJitter / 4
			for u := 0.0; u < 1; u += 0.0625 {
				if got := p.Delay(failures, u); got < floor {
					t.Fatalf("Delay(%d, %v) = %v under policy %+v: below the %v floor — window-0 servers would be hot-spun",
						failures, u, got, p, floor)
				}
			}
			// The adversarial draw: u just under 1 is where full jitter used
			// to collapse to ~0.
			if got := p.Delay(failures, 0.999999); got < floor {
				t.Fatalf("Delay(%d, ~1) = %v, want ≥ %v", failures, got, floor)
			}
		}
	}
}

// TestPoolRetryAtZeroWindow drives the same contract end to end: a greedy
// binary server (hello window 0) that sheds the first request must cost the
// pooled call one backed-off retry — the zero window must not disable the
// policy delay or the retry itself.
func TestPoolRetryAtZeroWindow(t *testing.T) {
	addr := shedOnceBinary(t, 0)
	pool, err := NewPool(addr, 1, func(c *Client) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 1}

	start := time.Now()
	ex, _, err := pool.Exchange(context.Background(), wireTensor(412, 1, 4, 8, 8))
	if err != nil {
		t.Fatalf("exchange against a greedy shedding server: %v", err)
	}
	if len(ex.Features) != 1 {
		t.Fatalf("retried exchange returned %d features, want 1", len(ex.Features))
	}
	// The jitter floor guarantees at least BaseDelay/4 of backoff even at
	// window 0; anything faster means the delay collapsed.
	if elapsed := time.Since(start); elapsed < time.Millisecond/4 {
		t.Errorf("shed retried after only %v — the window-0 backoff floor did not hold", elapsed)
	}
}

// shedThenServeGob runs a hand-rolled legacy-gob server that sheds each
// connection's first `shedFirst` requests with the overload verdict, then
// serves a fixed feature response — the deterministic harness for the Pool
// retry loop. It also proves the gob codec carries Response.Code natively.
func shedThenServeGob(t *testing.T, shedFirst int, served *atomic.Uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	feature := wireTensor(400, 1, 8)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				shed := 0
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					var resp Response
					if shed < shedFirst {
						shed++
						resp = Response{Err: overloadedMsg, Code: CodeOverloaded}
					} else {
						served.Add(1)
						resp = Response{Features: []*tensor.Tensor{feature}}
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestPoolRetriesOverloadedServer drives the retry loop end to end over the
// legacy gob codec: a server shedding each connection's first two requests
// must cost a pooled Exchange two transparent retries, not an error — and
// the same shed must surface as ErrOverloaded (with the connection still
// usable) when retries are disabled.
func TestPoolRetriesOverloadedServer(t *testing.T) {
	var served atomic.Uint64
	addr := shedThenServeGob(t, 2, &served)

	pool, err := NewPool(addr, 1, func(c *Client) error { return nil }, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5}

	x := wireTensor(401, 1, 4, 8, 8)
	ex, _, err := pool.Exchange(context.Background(), x)
	if err != nil {
		t.Fatalf("pooled exchange failed despite retry budget: %v", err)
	}
	if len(ex.Features) != 1 || served.Load() != 1 {
		t.Fatalf("retry loop served %d requests, want exactly 1", served.Load())
	}

	// With retries disabled the shed is the caller's problem — and it must
	// be recognizably ErrOverloaded, benign for the connection.
	var servedNone atomic.Uint64
	addr2 := shedThenServeGob(t, 1, &servedNone)
	pool2, err := NewPool(addr2, 1, func(c *Client) error { return nil }, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	pool2.Retry = RetryPolicy{}
	_, _, err = pool2.Exchange(context.Background(), x)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("retry-disabled shed surfaced as %v, want ErrOverloaded", err)
	}
	// The shed left the stream synchronized: the same pooled connection
	// serves the next request.
	if _, _, err := pool2.Exchange(context.Background(), x); err != nil {
		t.Fatalf("connection unusable after a benign shed: %v", err)
	}
}

// TestPoolRetryHonorsContext pins the backoff's cancellation path: a server
// that always sheds must not hold Exchange for the full retry schedule when
// the context expires mid-backoff.
func TestPoolRetryHonorsContext(t *testing.T) {
	var served atomic.Uint64
	addr := shedThenServeGob(t, 1<<30, &served)
	pool, err := NewPool(addr, 1, func(c *Client) error { return nil }, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Retry = RetryPolicy{MaxAttempts: 1000, BaseDelay: time.Second, MaxDelay: time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = pool.Exchange(ctx, wireTensor(402, 1, 4, 8, 8))
	if err == nil {
		t.Fatal("always-shedding server produced a success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-backoff cancellation surfaced as %v, want the context verdict", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled retry loop held the call for %v", elapsed)
	}
}

// shedOnceBinary runs a hand-rolled binary-wire server: it acks the hello at
// version 2 advertising the given window, sheds the first request with the
// overload code, and serves a real feature response afterwards.
func shedOnceBinary(t *testing.T, windowMs uint16) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	feature := wireTensor(410, 1, 8)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				var hello [8]byte
				if _, err := io.ReadFull(br, hello[:]); err != nil {
					return
				}
				ack := helloAckBytes(2, 0, windowMs)
				if _, err := conn.Write(ack[:]); err != nil {
					return
				}
				shed := false
				var decBuf []byte
				for {
					var body []byte
					var err error
					decBuf, body, err = readFrame(br, decBuf)
					if err != nil {
						return
					}
					var req Request
					if err := parseRequestInto(body, &req, heapAlloc{}, nil, nil); err != nil {
						return
					}
					resp := &Response{Features: []*tensor.Tensor{feature}}
					if !shed {
						shed = true
						resp = &Response{Err: overloadedMsg, Code: CodeOverloaded}
					}
					buf, err := appendResponse([]byte{0, 0, 0, 0}, resp, false, true, 0)
					if err != nil {
						return
					}
					if err := writeFrame(conn, buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestBinaryClientSurfacesOverload pins the v2 binary wire's half of the
// shed contract: the code field decodes into ErrOverloaded, the connection
// survives, and the hello ack's window advice lands in ServerBatchWindow.
func TestBinaryClientSurfacesOverload(t *testing.T) {
	addr := shedOnceBinary(t, 25)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if w := client.ServerBatchWindow(); w != 25*time.Millisecond {
		t.Errorf("ServerBatchWindow = %v, want 25ms from the hello ack", w)
	}
	x := wireTensor(411, 1, 4, 8, 8)
	_, _, err = client.Exchange(context.Background(), x)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("binary shed surfaced as %v, want ErrOverloaded", err)
	}
	if _, _, err := client.Exchange(context.Background(), x); err != nil {
		t.Fatalf("connection unusable after a benign binary shed: %v", err)
	}
}

// TestHelloWindowAdviceClamped pins the defense against a hostile window
// advice: a server advertising an absurd batch window must not be able to
// stretch client backoff beyond the server-side window ceiling.
func TestHelloWindowAdviceClamped(t *testing.T) {
	addr := shedOnceBinary(t, 65535) // ~65.5s claimed
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if w := client.ServerBatchWindow(); w != maxBatchWindow {
		t.Errorf("ServerBatchWindow = %v, want the hostile advice clamped to %v", w, maxBatchWindow)
	}
}
