// Package telemetry is the serving stack's metrics substrate: lock-free
// atomic counters, gauges, and histograms collected into a Registry that
// renders the Prometheus text exposition format (version 0.0.4). It exists
// so the control plane (cmd/ensembler-serve's -admin-addr endpoints and the
// internal/audit engine) can observe a production deployment — QPS, latency,
// batch sizes, shard health, live epoch, leakage — without the serving hot
// path ever taking a lock or allocating.
//
// Design constraints, in order:
//
//  1. The update path (Counter.Add, Gauge.Set, Histogram.Observe) is a
//     handful of atomic operations: safe from any goroutine, no allocation,
//     no lock. Contention on one hot counter is a single cache line.
//  2. Scraping is rare and may be slow: WriteProm takes the registry lock,
//     snapshots every series with atomic loads, and may call arbitrary
//     observer functions (GaugeFunc/CounterFunc) — which is how cheap
//     "computed at scrape" metrics like worker utilization or shard health
//     are exported without any bookkeeping on the request path.
//  3. No external dependencies: the exposition format is simple enough that
//     hand-rolling it is smaller than any client library, and this repo
//     vendors nothing.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that may go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: per-bucket atomic counters plus an
// atomically accumulated sum. Buckets are upper bounds in ascending order;
// an implicit +Inf bucket catches the rest. Observe is lock-free (a short
// scan over a small immutable slice plus three atomics).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// DefaultLatencyBuckets spans microseconds to seconds — wide enough for both
// a loopback tiny-arch request and a paper-scale batch on a slow host.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultSizeBuckets covers request batch sizes up to (and past) the comm
// server's default cap.
var DefaultSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets must ascend, got %v", bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v; a linear scan beats binary search at these sizes and
	// branch-predicts well for clustered observations.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// NewHistogram builds a standalone histogram (not attached to a registry) —
// for callers like internal/trace that always need stage stats but only
// sometimes have a registry to export them through.
func NewHistogram(buckets []float64) *Histogram { return newHistogram(buckets) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the same estimate a
// histogram_quantile() PromQL query would produce. Observations in the +Inf
// bucket are reported as the highest finite bound (there is nothing better
// to interpolate against). Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := uint64(0)
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: clamp to the highest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		inBucket := rank - float64(cum-c)
		return lo + (hi-lo)*inBucket/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Labels attach constant dimensions to one series, e.g. {"shard": "2"}.
// They are rendered sorted by key, so any map order yields one series name.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes the quote, backslash, and newline exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// series is one (name, labels) instance of a metric family. render returns
// the complete sample line(s) for the series, newline-free at the end.
type series struct {
	labels string
	render func() string
}

// family is one metric name: its type, help, and every labelled series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

// Registry holds metric families and renders them. Registration takes a
// lock; the returned metric objects are then updated lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register adds one series, enforcing the Prometheus data model: a metric
// name has exactly one type, and a (name, labels) pair exists at most once.
// Violations are programming errors and panic.
func (r *Registry) register(name, help, typ string, labels Labels, render func() string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	rendered := labels.render()
	for _, s := range f.series {
		if s.labels == rendered {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, rendered))
		}
	}
	f.series = append(f.series, &series{labels: rendered, render: render})
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	ls := labels.render()
	r.register(name, help, "counter", labels, func() string {
		return fmt.Sprintf("%s%s %d", name, ls, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is computed at scrape time.
// fn must be safe to call from any goroutine and should be cheap.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	ls := labels.render()
	r.register(name, help, "counter", labels, func() string {
		return fmt.Sprintf("%s%s %s", name, ls, formatFloat(fn()))
	})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	ls := labels.render()
	r.register(name, help, "gauge", labels, func() string {
		return fmt.Sprintf("%s%s %s", name, ls, formatFloat(g.Value()))
	})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from any goroutine and should be cheap.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	ls := labels.render()
	r.register(name, help, "gauge", labels, func() string {
		return fmt.Sprintf("%s%s %s", name, ls, formatFloat(fn()))
	})
}

// Histogram registers and returns a histogram series with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", labels, func() string {
		return renderHistogram(name, labels, h)
	})
	return h
}

// renderHistogram emits the _bucket/_sum/_count sample lines for one series.
// _count is printed as the +Inf cumulative bucket, not the count field:
// Observe increments buckets before the count, so under a concurrent scrape
// the two can transiently disagree, and Prometheus requires the +Inf bucket
// to equal _count exactly — deriving one from the other keeps the invariant
// by construction.
func renderHistogram(name string, labels Labels, h *Histogram) string {
	var b strings.Builder
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(&b, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(&b, "%s_sum%s %s\n", name, labels.render(), formatFloat(h.Sum()))
	fmt.Fprintf(&b, "%s_count%s %d", name, labels.render(), cum)
	return b.String()
}

// bucketLabels merges the series labels with the le bucket label.
func bucketLabels(labels Labels, le string) string {
	merged := Labels{"le": le}
	for k, v := range labels {
		merged[k] = v
	}
	return merged.render()
}

// formatFloat renders a float the way Prometheus expects: integers without
// an exponent, specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteProm renders every family in registration order: # HELP and # TYPE
// once per family, then each series' samples.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if _, err := fmt.Fprintln(w, s.render()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns the /metrics scrape endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors mean the client went away; nothing useful to do.
		_ = r.WriteProm(w)
	})
}
