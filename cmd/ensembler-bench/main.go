// Command ensembler-bench regenerates the paper's evaluation tables from
// the command line and measures the serving subsystem:
//
//	ensembler-bench -table 1              # Table I (defense quality, 3 datasets)
//	ensembler-bench -table 2              # Table II (defense battery, CIFAR-10-like)
//	ensembler-bench -table 3              # Table III (latency model)
//	ensembler-bench -table all -scale paper
//	ensembler-bench -claims               # §IV headline percentages
//	ensembler-bench -serving -clients 8   # throughput under concurrency
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/data"
	"ensembler/internal/experiments"
	"ensembler/internal/latency"
	"ensembler/internal/nn"
	"ensembler/internal/split"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-bench: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: parse, regenerate the requested
// tables (or measure serving throughput), returning errors instead of
// exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
	scaleName := fs.String("scale", "small", "experiment scale: small or paper")
	seed := fs.Int64("seed", 42, "experiment seed")
	n := fs.Int("n", 10, "ensemble size for the latency model and serving bench")
	claims := fs.Bool("claims", false, "also print the paper's §IV headline claims")
	verbose := fs.Bool("v", false, "log training progress")
	serving := fs.Bool("serving", false, "measure concurrent serving throughput over loopback instead of regenerating tables")
	clients := fs.Int("clients", 8, "concurrent client connections for -serving")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "server worker replicas for -serving")
	reqBatch := fs.Int("req-batch", 1, "images per request for -serving")
	duration := fs.Duration("duration", 2*time.Second, "measurement window per -serving regime")
	jsonPath := fs.String("json", "", "write machine-readable -serving results to this path (the BENCH_*.json perf trajectory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *jsonPath != "" && !*serving {
		return fmt.Errorf("-json records serving measurements; combine it with -serving")
	}

	if *serving {
		return runServingBench(stdout, stderr, *n, *clients, *workers, *reqBatch, *duration, *jsonPath)
	}

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "paper":
		sc = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scaleName)
	}
	var log io.Writer
	if *verbose {
		log = stderr
	}

	runI := *table == "1" || *table == "all"
	runII := *table == "2" || *table == "all" || *claims
	runIII := *table == "3" || *table == "all"
	if !runI && !runII && !runIII {
		return fmt.Errorf("unknown table %q (want 1, 2, 3, or all)", *table)
	}

	if runI {
		for _, blk := range experiments.TableI(sc, *seed, log) {
			experiments.RenderRows(stdout,
				fmt.Sprintf("\nTable I — %s (N=%d, P=%d)", blk.Kind, sc.N, blk.P), blk.Rows)
		}
	}
	if runII {
		rows := experiments.TableII(sc, *seed+1, log)
		experiments.RenderRows(stdout, "\nTable II — defense mechanisms, cifar10-like", rows)
		if *claims {
			rep := experiments.ComputeClaims(rows, sc.N)
			fmt.Fprintf(stdout, "\n§IV claims (paper → measured):\n")
			fmt.Fprintf(stdout, "  SSIM decrease vs Single:  43.5%% → %.1f%%\n", rep.SSIMDropVsSingle)
			fmt.Fprintf(stdout, "  PSNR decrease vs Single:  40.5%% → %.1f%%\n", rep.PSNRDropVsSingle)
			fmt.Fprintf(stdout, "  latency overhead:          4.8%% → %.1f%%\n", rep.LatencyOverhead)
		}
	}
	if runIII {
		fmt.Fprintln(stdout)
		experiments.RenderTableIII(stdout, experiments.TableIII(*n))
		fmt.Fprintf(stdout, "Ensembler overhead vs Standard CI: %.1f%% (paper: 4.8%%)\n", latency.OverheadPercent(*n))
	}
	return nil
}

// benchArch is the serving-bench operating point: the default CIFAR-10-like
// split architecture with untrained weights (inference cost is identical to
// a trained pipeline's); bodies and wiring come from the shared commtest
// harness.
func benchArch() split.Arch { return split.DefaultArch(data.CIFAR10Like) }

// BenchReport is the machine-readable form of one -serving run — the unit
// of the repo's BENCH_*.json perf trajectory. Fields are stable: tooling
// diffs consecutive reports for regressions.
type BenchReport struct {
	Timestamp  string            `json:"timestamp"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Config     BenchConfig       `json:"config"`
	Results    []BenchResult     `json:"results"`
	Extra      map[string]string `json:"extra,omitempty"`
}

// BenchConfig records the measured operating point.
type BenchConfig struct {
	Bodies        int     `json:"bodies"`
	Clients       int     `json:"clients"`
	Workers       int     `json:"workers"`
	ReqBatch      int     `json:"req_batch"`
	WindowSeconds float64 `json:"window_seconds"`
}

// BenchResult is one measured (or model-predicted) regime.
type BenchResult struct {
	Name      string  `json:"name"`
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	ImgPerSec float64 `json:"img_per_sec,omitempty"`
	NsPerOp   float64 `json:"ns_per_op,omitempty"`
	Value     float64 `json:"value,omitempty"`
}

// throughputResult converts a measured rate into the result row shape.
func throughputResult(name string, reqPerSec float64, reqBatch int) BenchResult {
	r := BenchResult{Name: name, ReqPerSec: reqPerSec, ImgPerSec: reqPerSec * float64(reqBatch)}
	if reqPerSec > 0 {
		r.NsPerOp = 1e9 / reqPerSec
	}
	return r
}

// runServingBench measures sustained request throughput over loopback TCP
// for a single connection and for the requested concurrency, then prints
// the analytic model's prediction for the same regimes. jsonPath, when set,
// additionally writes the measurements as a BenchReport.
func runServingBench(stdout, stderr io.Writer, n, clients, workers, reqBatch int, window time.Duration, jsonPath string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer ln.Close()
	srv := comm.NewServer(commtest.Bodies(benchArch(), n),
		comm.WithWorkers(workers),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(benchArch(), n) }),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	fmt.Fprintf(stdout, "serving bench: N=%d bodies, %d workers, %d images/request, %v per regime, GOMAXPROCS=%d\n",
		n, srv.Workers(), reqBatch, window, runtime.GOMAXPROCS(0))

	single := measureThroughput(stderr, ln.Addr().String(), n, 1, reqBatch, window)
	many := measureThroughput(stderr, ln.Addr().String(), n, clients, reqBatch, window)
	fmt.Fprintf(stdout, "  1 connection:   %7.2f req/s  (%.2f img/s)\n", single, single*float64(reqBatch))
	fmt.Fprintf(stdout, "  %d connections: %7.2f req/s  (%.2f img/s)\n", clients, many, many*float64(reqBatch))
	if single > 0 {
		fmt.Fprintf(stdout, "  speedup: %.2f×\n", many/single)
	}

	predicted := latency.ConcurrencySpeedup(latency.Ensembler(n), workers, reqBatch, clients)
	fmt.Fprintf(stdout, "\nanalytic model (calibrated to the paper's Table III devices, not this host):\n")
	for _, est := range latency.ConcurrencySweep(latency.Ensembler(n), workers, reqBatch, []int{1, 2, 4, clients}) {
		fmt.Fprintf(stdout, "  %s\n", est)
	}
	fmt.Fprintf(stdout, "  predicted speedup at %d clients: %.2f×\n", clients, predicted)

	if jsonPath != "" {
		report := BenchReport{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Config: BenchConfig{
				Bodies: n, Clients: clients, Workers: workers,
				ReqBatch: reqBatch, WindowSeconds: window.Seconds(),
			},
			Results: []BenchResult{
				throughputResult("serve_single_connection", single, reqBatch),
				throughputResult(fmt.Sprintf("serve_concurrent_%d", clients), many, reqBatch),
			},
		}
		if single > 0 {
			report.Results = append(report.Results, BenchResult{Name: "speedup", Value: many / single})
		}
		report.Results = append(report.Results, BenchResult{Name: "predicted_speedup", Value: predicted})
		if err := writeBenchReport(jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", jsonPath)
	}

	cancel()
	<-served
	return nil
}

// writeBenchReport writes one report as indented JSON.
func writeBenchReport(path string, report BenchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	return nil
}

// measureThroughput counts completed requests across `conns` connections
// hammering the server for the window.
func measureThroughput(stderr io.Writer, addr string, nBodies, conns, reqBatch int, window time.Duration) float64 {
	var completed atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := comm.Dial(addr)
			if err != nil {
				fmt.Fprintf(stderr, "dial: %v\n", err)
				return
			}
			defer client.Close()
			commtest.Wire(client, benchArch(), nBodies)
			x := commtest.Input(benchArch(), 7, reqBatch)
			ctx := context.Background()
			for time.Now().Before(deadline) {
				if _, _, err := client.Infer(ctx, x); err != nil {
					fmt.Fprintf(stderr, "infer: %v\n", err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(completed.Load()) / window.Seconds()
}
