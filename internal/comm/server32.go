package comm

// The float32 serving path: runtime precision dispatch over the same worker
// pool, job recycling, and continuous-batching machinery as the f64 path.
// A server built WithPrecision(PrecisionF32) compiles each worker's body
// replicas to nn.Net32 and computes every request on the f32 kernels; when
// the connection also negotiated the f32 wire, the decode→forward→encode
// path performs no float64 conversion at all — the payload bits feed the
// kernels directly, fixing the double-rounding the f32 wire used to pay
// (f32 payload widened to f64, computed, narrowed again on encode).
//
// Requests that arrive in float64 anyway — legacy gob connections, binary
// connections without the f32 wire flag, the sync process entry — are
// narrowed exactly once at ingress, computed in f32, and their results
// widened exactly (every float32 is a float64) on the way out, so one
// server precision serves every client dialect with one rounding step.

import (
	"fmt"
	"sync"

	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// Precision selects the element type the compute path runs in.
type Precision int

const (
	// PrecisionF64 computes in float64 — the reference oracle, bit-identical
	// to every release before precision dispatch existed. The default.
	PrecisionF64 Precision = iota
	// PrecisionF32 compiles worker replicas to float32 and serves on the f32
	// kernels: half the memory traffic, twice the SIMD lanes, forward drift
	// bounded at 1e-5 relative by the nn and audit property tests.
	PrecisionF32
)

func (p Precision) String() string {
	if p == PrecisionF32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses the -precision flag / registry manifest form. The
// empty string is the float64 default, matching manifests that predate the
// field.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return PrecisionF64, nil
	case "f32":
		return PrecisionF32, nil
	}
	return 0, fmt.Errorf("comm: unknown precision %q (want f64 or f32)", s)
}

// WithPrecision selects the compute element type for every model the server
// hosts. PrecisionF32 requires every hosted layer to have an f32 compile
// path (all built-in nn layers do); a model that does not compile fails its
// requests with the compile error rather than silently falling back to f64.
func WithPrecision(p Precision) ServerOption {
	return func(o *serverOptions) { o.precision = p }
}

// decodedF32 reports whether the request was decoded directly into float32
// storage (binary codec on a PrecisionF32 server). False for gob and sync
// ingress, whose tensors arrive as float64 and narrow at serve time.
func (j *job) decodedF32() bool { return j.feat32 != nil || len(j.inputs32) > 0 }

// validateTensor32 is validateTensor for wire-decoded float32 tensors.
func validateTensor32(f *tensor.Tensor32) error {
	if f == nil {
		return fmt.Errorf("comm: missing tensor")
	}
	if len(f.Shape) == 0 {
		return fmt.Errorf("comm: tensor has empty shape")
	}
	n := 1
	for _, d := range f.Shape {
		if d <= 0 {
			return fmt.Errorf("comm: tensor has non-positive dimension in shape %v", f.Shape)
		}
		n *= d
	}
	if len(f.Data) != n {
		return fmt.Errorf("comm: tensor carries %d values for shape %v", len(f.Data), f.Shape)
	}
	return nil
}

// validateFeatures32 is validateFeatures for wire-decoded float32 tensors.
func validateFeatures32(f *tensor.Tensor32) error {
	if f == nil || len(f.Shape) != 4 {
		return fmt.Errorf("comm: request must carry [N,C,H,W] features")
	}
	return validateTensor32(f)
}

// processUnguarded32 is processUnguarded for a PrecisionF32 server. Both
// ingress precisions land here: f32-decoded requests compute and respond
// without any f64 conversion (j.f32Resp routes the encoder to the f32
// payload), f64 requests narrow once at ingress and widen their results into
// the ordinary float64 Response.
func (s *Server) processUnguarded32(j *job, wr *workerReplica) *Response {
	f32In := j.decodedF32()
	switch {
	case j.req.Inputs != nil || len(j.inputs32) > 0:
		n := len(j.req.Inputs)
		if f32In {
			n = len(j.inputs32)
		}
		if n == 0 {
			return &Response{Err: "comm: batched request carries no inputs"}
		}
		if n > s.opts.maxBatch {
			return &Response{Err: fmt.Sprintf("comm: batch of %d exceeds server cap %d", n, s.opts.maxBatch)}
		}
		stacked, err := j.stackInputs32()
		if err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := s.forwardBodies32(&j.outs32, wr, stacked)
		// Transpose [body][input] into the wire layout [input][body], copying
		// each part out of its body's scratch into the job arena — f32 parts
		// for f32-decoded requests, widened f64 parts otherwise.
		nb := len(perBody)
		if f32In {
			if cap(j.outputs32) < len(j.rows) {
				j.outputs32 = make([][]*tensor.Tensor32, len(j.rows))
			}
			j.outputs32 = j.outputs32[:len(j.rows)]
			for i := range j.outputs32 {
				if cap(j.outputs32[i]) < nb {
					j.outputs32[i] = make([]*tensor.Tensor32, nb)
				}
				j.outputs32[i] = j.outputs32[i][:nb]
			}
		} else {
			if cap(j.outputs) < len(j.rows) {
				j.outputs = make([][]*tensor.Tensor, len(j.rows))
			}
			j.outputs = j.outputs[:len(j.rows)]
			for i := range j.outputs {
				if cap(j.outputs[i]) < nb {
					j.outputs[i] = make([]*tensor.Tensor, nb)
				}
				j.outputs[i] = j.outputs[i][:nb]
			}
		}
		for b, out := range perBody {
			per := out.Size() / out.Shape[0]
			off := 0
			for i, r := range j.rows {
				shape := append(j.shape[:0], r)
				shape = append(shape, out.Shape[1:]...)
				if f32In {
					part := j.arena32.NewTensor(shape...)
					copy(part.Data, out.Data[off:off+r*per])
					j.outputs32[i][b] = part
				} else {
					part := j.arena.NewTensor(shape...)
					for k, v := range out.Data[off : off+r*per] {
						part.Data[k] = float64(v)
					}
					j.outputs[i][b] = part
				}
				off += r * per
			}
		}
		if f32In {
			j.f32Resp = true
			j.resp = Response{}
		} else {
			j.resp = Response{Outputs: j.outputs}
		}
		return &j.resp
	case f32In:
		if err := validateFeatures32(j.feat32); err != nil {
			return &Response{Err: err.Error()}
		}
		perBody := s.forwardBodies32(&j.outs32, wr, j.feat32)
		feats := j.feats32[:0]
		for _, out := range perBody {
			feats = append(feats, j.arena32.Clone(out))
		}
		j.feats32 = feats
		j.f32Resp = true
		j.resp = Response{}
		return &j.resp
	default:
		if err := validateFeatures(j.req.Features); err != nil {
			return &Response{Err: err.Error()}
		}
		x := tensor.NarrowInto(j.arena32.NewTensor(j.req.Features.Shape...), j.req.Features)
		perBody := s.forwardBodies32(&j.outs32, wr, x)
		feats := j.feats[:0]
		for _, out := range perBody {
			feats = append(feats, tensor.WidenInto(j.arena.NewTensor(out.Shape...), out))
		}
		j.feats = feats
		j.resp = Response{Features: feats}
		return &j.resp
	}
}

// stackInputs32 is job.stackInputs for a PrecisionF32 server: it stacks an
// f32-decoded batch verbatim, or narrows a float64 batch row by row while
// stacking — either way into the job's f32 arena, recording per-input row
// counts in j.rows.
func (j *job) stackInputs32() (*tensor.Tensor32, error) {
	if len(j.inputs32) > 0 {
		inputs := j.inputs32
		rows := j.rows[:0]
		total := 0
		for i, in := range inputs {
			if err := validateFeatures32(in); err != nil {
				return nil, err
			}
			if i > 0 {
				a, b := inputs[0].Shape, in.Shape
				if a[1] != b[1] || a[2] != b[2] || a[3] != b[3] {
					return nil, fmt.Errorf("comm: batched inputs disagree on feature shape: %v vs %v", a[1:], b[1:])
				}
			}
			rows = append(rows, in.Shape[0])
			total += in.Shape[0]
		}
		j.rows = rows
		s := inputs[0].Shape
		out := j.arena32.NewTensor(total, s[1], s[2], s[3])
		off := 0
		for _, in := range inputs {
			off += copy(out.Data[off:], in.Data)
		}
		return out, nil
	}
	inputs := j.req.Inputs
	rows := j.rows[:0]
	total := 0
	for i, in := range inputs {
		if err := validateFeatures(in); err != nil {
			return nil, err
		}
		if i > 0 {
			a, b := inputs[0].Shape, in.Shape
			if a[1] != b[1] || a[2] != b[2] || a[3] != b[3] {
				return nil, fmt.Errorf("comm: batched inputs disagree on feature shape: %v vs %v", a[1:], b[1:])
			}
		}
		rows = append(rows, in.Shape[0])
		total += in.Shape[0]
	}
	j.rows = rows
	s := inputs[0].Shape
	out := j.arena32.NewTensor(total, s[1], s[2], s[3])
	off := 0
	for _, in := range inputs {
		for _, v := range in.Data {
			out.Data[off] = float32(v)
			off++
		}
	}
	return out, nil
}

// forwardBodies32 is forwardBodies over the replica's compiled f32 bodies,
// with the same parallelism contract: serial under a multi-worker pool,
// per-body fan-out on a single-worker server.
func (s *Server) forwardBodies32(slot *[]*tensor.Tensor32, wr *workerReplica, x *tensor.Tensor32) []*tensor.Tensor32 {
	// Mirrors forwardBodies: the serial path must not share a local with the
	// goroutine-spawning branch, or escape analysis heap-moves the slice
	// header on every call.
	if s.opts.workers > 1 || len(wr.bodies32) == 1 {
		outs := (*slot)[:0]
		for i, b := range wr.bodies32 {
			sc := wr.scratches32[i]
			sc.Reset()
			outs = append(outs, b.ForwardInfer(x, sc))
		}
		*slot = outs
		return outs
	}
	return forwardBodiesParallel32(slot, wr, x)
}

// forwardBodiesParallel32 is the single-worker fan-out over f32 bodies; a
// panic in any body's goroutine is re-raised for processWith to absorb.
func forwardBodiesParallel32(slot *[]*tensor.Tensor32, wr *workerReplica, x *tensor.Tensor32) []*tensor.Tensor32 {
	outs := (*slot)[:0]
	for range wr.bodies32 {
		outs = append(outs, nil)
	}
	*slot = outs
	panics := make(chan any, len(wr.bodies32))
	var wg sync.WaitGroup
	for i, b := range wr.bodies32 {
		wg.Add(1)
		go func(i int, b *nn.Net32) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			sc := wr.scratches32[i]
			sc.Reset()
			outs[i] = b.ForwardInfer(x, sc)
		}(i, b)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	return outs
}

// coalescedPass32 is serveCoalesced's stack→forward→split core for a
// PrecisionF32 server. The coalesce key marks batches homogeneous in decode
// precision, so the batch is either all f32-decoded (stacked verbatim, split
// into f32 responses) or all float64 (narrowed while stacking, results
// widened per job).
func (s *Server) coalescedPass32(b *dispatchBatch, wr *workerReplica, m ServedModel) {
	f32In := b.jobs[0].decodedF32()
	total := 0
	rows := b.rows[:0]
	for _, j := range b.jobs {
		if j.resp.Err != "" { // refused by the budget guard in serveCoalesced
			rows = append(rows, -1)
			continue
		}
		var err error
		r := -1
		if f32In {
			if err = validateFeatures32(j.feat32); err == nil {
				r = j.feat32.Shape[0]
			}
		} else {
			if err = validateFeatures(j.req.Features); err == nil {
				r = j.req.Features.Shape[0]
			}
		}
		if err != nil {
			j.resp = Response{Err: err.Error()}
			rows = append(rows, -1)
			continue
		}
		rows = append(rows, r)
		total += r
	}
	b.rows = rows
	if total == 0 {
		return // every member failed validation; each carries its own error
	}
	var stacked *tensor.Tensor32
	if f32In {
		hs := b.jobs[0].feat32.Shape
		stacked = b.arena32.NewTensor(total, hs[1], hs[2], hs[3])
		off := 0
		for i, j := range b.jobs {
			if b.rows[i] < 0 {
				continue
			}
			off += copy(stacked.Data[off:], j.feat32.Data)
		}
	} else {
		hs := b.jobs[0].req.Features.Shape
		stacked = b.arena32.NewTensor(total, hs[1], hs[2], hs[3])
		off := 0
		for i, j := range b.jobs {
			if b.rows[i] < 0 {
				continue
			}
			for _, v := range j.req.Features.Data {
				stacked.Data[off] = float32(v)
				off++
			}
		}
	}
	outs := s.forwardBodies32(&b.outs32, wr, stacked)
	row := 0
	for i, j := range b.jobs {
		if b.rows[i] < 0 {
			continue
		}
		r := b.rows[i]
		if f32In {
			feats := j.feats32[:0]
			for _, out := range outs {
				per := out.Size() / out.Shape[0]
				shape := append(j.shape[:0], r)
				shape = append(shape, out.Shape[1:]...)
				part := j.arena32.NewTensor(shape...)
				copy(part.Data, out.Data[row*per:(row+r)*per])
				feats = append(feats, part)
			}
			j.feats32 = feats
			j.f32Resp = true
			j.resp = Response{Model: m.Name(), Version: m.Version()}
			if j.noiseSigma > 0 {
				noiseResponse(j, &j.resp)
			}
		} else {
			feats := j.feats[:0]
			for _, out := range outs {
				per := out.Size() / out.Shape[0]
				shape := append(j.shape[:0], r)
				shape = append(shape, out.Shape[1:]...)
				part := j.arena.NewTensor(shape...)
				for k, v := range out.Data[row*per : (row+r)*per] {
					part.Data[k] = float64(v)
				}
				feats = append(feats, part)
			}
			j.feats = feats
			j.resp = Response{Features: feats, Model: m.Name(), Version: m.Version()}
			if j.noiseSigma > 0 {
				noiseResponse(j, &j.resp)
			}
		}
		row += r
	}
}
