package main

import (
	"bufio"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/tensor"
)

// runAsync starts run in a goroutine with a pipe-backed stdout and returns
// a line scanner plus the error channel.
func runAsync(ctx context.Context, t *testing.T, args []string) (*bufio.Scanner, <-chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, args, pw, io.Discard)
		pw.Close()
		done <- err
	}()
	t.Cleanup(func() { pr.Close() })
	return bufio.NewScanner(pr), done
}

// scrapeAddr reads stdout lines until the bound-address banner appears.
func scrapeAddr(t *testing.T, sc *bufio.Scanner, done <-chan error) string {
	t.Helper()
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			return addr
		}
	}
	select {
	case err := <-done:
		t.Fatalf("server exited before announcing its address: %v", err)
	case <-time.After(time.Second):
		t.Fatal("no address banner")
	}
	return ""
}

// publishTiny publishes an untrained tiny pipeline into a fresh registry
// directory and returns the directory (the store half of the train→publish→
// serve→infer round trip; cmd/ensembler-train's tests cover real training
// into the same layout).
func publishTiny(t *testing.T, shards int) (dir string, reg *registry.Registry) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "models")
	store, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := commtest.Pipeline(commtest.TinyArch(), 4, 2, 77)
	if shards > 0 {
		_, err = store.PublishSharded("tiny", e, shards)
	} else {
		_, err = store.Publish("tiny", e)
	}
	if err != nil {
		t.Fatal(err)
	}
	reg = registry.New(nil)
	if _, err := reg.Publish("tiny", e); err != nil {
		t.Fatal(err)
	}
	return dir, reg
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-model", "a.gob", "-model-dir", "d"}, "mutually exclusive"},
		{[]string{"-shard", "1/2", "-rotate-every", "1m", "-model-dir", "d"}, "mutually exclusive"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(ctx, c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunMissingArtifacts(t *testing.T) {
	ctx := context.Background()
	missingFile := filepath.Join(t.TempDir(), "nope.gob")
	if err := run(ctx, []string{"-model", missingFile}, io.Discard, io.Discard); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing model file: %v", err)
	}
	missingDir := filepath.Join(t.TempDir(), "nope")
	if err := run(ctx, []string{"-model-dir", missingDir}, io.Discard, io.Discard); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing model dir: %v", err)
	}
}

func TestRunBadShardSpecs(t *testing.T) {
	ctx := context.Background()
	dir, _ := publishTiny(t, 0)
	for _, spec := range []string{"0/2", "3/2", "junk", "1/9"} {
		err := run(ctx, []string{"-model-dir", dir, "-shard", spec, "-addr", "127.0.0.1:0"}, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("-shard %s must be rejected for a 4-body model", spec)
		}
	}
	// A manifest that committed to a 2-shard fleet rejects a 4-shard member.
	dir2, _ := publishTiny(t, 2)
	err := run(ctx, []string{"-model-dir", dir2, "-shard", "1/4", "-addr", "127.0.0.1:0"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "2-shard") {
		t.Errorf("shard-count mismatch with the manifest: %v", err)
	}
}

func TestServeInferRoundTrip(t *testing.T) {
	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{"-model-dir", dir, "-addr", "127.0.0.1:0", "-workers", "2"})
	addr := scrapeAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail

	arch := commtest.TinyArch()
	x := tensor.New(2, arch.InC, arch.H, arch.W)
	rng.New(5).FillNormal(x.Data, 0, 1)
	// The served pipeline was published from the same artifact bytes the
	// local copy holds, so remote logits must match local bit-for-bit.
	want := pipeline.Predict(x)
	logits, _, err := client.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(want, 1e-9) {
		t.Error("served inference does not match the published pipeline")
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestServeShardHostsSubset(t *testing.T) {
	dir, _ := publishTiny(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{"-model-dir", dir, "-addr", "127.0.0.1:0", "-shard", "2/2"})
	addr := scrapeAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	plan, err := shard.Plan(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := client.Exchange(ctx, commtest.Input(commtest.TinyArch(), 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Features) != plan[1].Len() {
		t.Errorf("shard 2/2 returned %d feature vectors, hosts %d bodies", len(ex.Features), plan[1].Len())
	}
	if ex.Model != "tiny" || ex.Version != 1 {
		t.Errorf("shard response reports epoch %s v%d, want tiny v1", ex.Model, ex.Version)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestRunRejectsCorruptModelFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("not a pipeline"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-model", path}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "loading model") {
		t.Errorf("corrupt model file: %v", err)
	}
}
