// Package commtest provides the deterministic untrained serving harness
// shared by the comm concurrency tests, the root serving benchmarks, and
// the ensembler-bench CLI: seeded bodies that rebuild bit-identically
// (standing in for a trained server's worker replicas), a raw-protocol
// client wiring (identity head, concat-all selection, linear tail), and a
// local reference computation to check remote results against. Untrained
// networks cost exactly as much to run as trained ones, which is all a
// serving benchmark needs.
package commtest

import (
	"context"
	"fmt"
	"net"
	"testing"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// TinyArch is the smallest split architecture the harness runs — fast
// enough for race-detector test loops.
func TinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

// Bodies deterministically builds n server bodies for arch; every call
// returns networks with identical weights and private caches, so it doubles
// as the server's replica factory.
func Bodies(arch split.Arch, n int) []*nn.Network {
	out := make([]*nn.Network, n)
	for i := range out {
		out[i] = arch.NewBody(fmt.Sprintf("b%d", i), rng.New(int64(i+1)))
	}
	return out
}

// Pipeline deterministically builds an untrained but fully wired Ensembler
// over arch — members, secret selector, final head/noise/tail. Registry and
// hot-swap harnesses publish these: an untrained pipeline costs exactly as
// much to serve, clone, and persist as a trained one, and different seeds
// give bit-distinguishable model versions.
func Pipeline(arch split.Arch, n, p int, seed int64) *ensemble.Ensembler {
	return ensemble.New(ensemble.Config{
		Arch: arch, N: n, P: p, Sigma: 0.05, Lambda: 0.5, Seed: seed, Stage1Noise: true,
	})
}

// Tail deterministically builds the concat-all linear tail matching n
// bodies.
func Tail(arch split.Arch, n int) *nn.Network {
	return nn.NewNetwork("t", nn.NewLinear("fc", n*arch.FeatureDim(), arch.Classes, rng.New(99)))
}

// Wire points a client at identity features, a concat-everything selector,
// and a fresh deterministic tail — pure protocol mechanics, no trained
// pipeline. Each call builds a private tail, so concurrently used clients
// don't share forward caches.
func Wire(c *comm.Client, arch split.Arch, n int) {
	c.ComputeFeatures = func(x *tensor.Tensor) *tensor.Tensor { return x }
	c.Select = nn.ConcatFeatures
	c.Tail = Tail(arch, n)
}

// Input builds a deterministic feature batch of the given row count.
func Input(arch split.Arch, seed int64, rows int) *tensor.Tensor {
	x := tensor.New(rows, arch.HeadC, arch.H, arch.W)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

// Reference computes the expected logits for x on private copies of the
// server bodies and tail — what a remote round trip must reproduce
// bit-for-bit.
func Reference(arch split.Arch, n int, x *tensor.Tensor) *tensor.Tensor {
	bodies := Bodies(arch, n)
	feats := make([]*tensor.Tensor, n)
	for i, b := range bodies {
		feats[i] = b.Forward(x, false)
	}
	return Tail(arch, n).Forward(nn.ConcatFeatures(feats), false)
}

// Fleet is a running sharded deployment for tests: K shard servers over one
// registry-published pipeline, each hosting a disjoint body subset.
type Fleet struct {
	Pipeline *ensemble.Ensembler
	Registry *registry.Registry
	Addrs    []string
	Ranges   []shard.Range

	cancels []context.CancelFunc
	serves  []chan error
	lns     []net.Listener
}

// StartShards launches a K-shard fleet over a deterministic untrained
// pipeline (see Pipeline) published to a fresh in-memory registry, and
// registers full teardown with t.Cleanup. Every shard listens on a
// kernel-assigned loopback port whose listener is handed directly to
// Serve — ports are never closed and re-bound, which is what keeps these
// tests from flaking under -race in CI (the probe-then-rebind pattern
// races other test processes for the port).
func StartShards(t testing.TB, k, n, p int, seed int64, opts ...comm.ServerOption) *Fleet {
	t.Helper()
	e := Pipeline(TinyArch(), n, p, seed)
	reg := registry.New(nil)
	if _, err := reg.Publish("fleet", e); err != nil {
		t.Fatalf("publishing fleet pipeline: %v", err)
	}
	f, err := StartShardServers(reg, e, k, opts...)
	if err != nil {
		t.Fatalf("starting shard fleet: %v", err)
	}
	t.Cleanup(func() {
		for i := range f.cancels {
			if err := f.StopShard(i); err != nil {
				t.Errorf("shard %d serve: %v", i, err)
			}
		}
	})
	return f
}

// StartShardServers starts one comm.Server per shard of the plan, each over
// a subset provider on the registry, each on its own :0 listener. The
// caller owns teardown via StopShard; StartShards wraps this with t.Cleanup
// for tests.
func StartShardServers(reg *registry.Registry, e *ensemble.Ensembler, k int, opts ...comm.ServerOption) (*Fleet, error) {
	ranges, err := shard.Plan(e.Cfg.N, k)
	if err != nil {
		return nil, err
	}
	f := &Fleet{Pipeline: e, Registry: reg, Ranges: ranges}
	for _, r := range ranges {
		provider, err := comm.NewSubsetProvider(reg, r.Lo, r.Hi)
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := comm.NewModelServer(provider, append([]comm.ServerOption{comm.WithWorkers(2)}, opts...)...)
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ctx, ln) }()
		f.Addrs = append(f.Addrs, ln.Addr().String())
		f.cancels = append(f.cancels, cancel)
		f.serves = append(f.serves, served)
		f.lns = append(f.lns, ln)
	}
	return f, nil
}

// StopShard gracefully stops shard i (idempotent) and returns its Serve
// error — how a test kills one shard mid-traffic.
func (f *Fleet) StopShard(i int) error {
	if f.cancels[i] == nil {
		return nil
	}
	f.cancels[i]()
	f.cancels[i] = nil
	err := <-f.serves[i]
	f.lns[i].Close()
	return err
}

// ClientConfig returns a shard.Client configuration pointing at the fleet,
// wired through the published pipeline's client runtime.
func (f *Fleet) ClientConfig() shard.Config {
	return shard.Config{
		Addrs:      append([]string(nil), f.Addrs...),
		Ranges:     append([]shard.Range(nil), f.Ranges...),
		N:          f.Pipeline.Cfg.N,
		NewRuntime: shard.PipelineRuntime(f.Pipeline),
	}
}
