package nn_test

import (
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// resnetLikeStack builds a network touching the whole server-side layer
// inventory: conv, batch norm, rectifiers, max pooling, residual blocks with
// and without projection shortcuts, global average pooling, flatten, linear.
func resnetLikeStack() *nn.Network {
	r := rng.New(7)
	return nn.NewNetwork("stack",
		nn.NewConv2D("c0", 3, 8, 3, 1, 1, true, r),
		nn.NewBatchNorm2D("bn0", 8),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewBasicBlock("b1", 8, 16, 2, r),
		nn.NewBasicBlock("b2", 16, 16, 1, r),
		nn.NewGlobalAvgPool(),
		nn.NewFlatten(),
		nn.NewLinear("fc", 16, 10, r),
		nn.NewTanh(),
	)
}

// decoderLikeStack covers the remaining inventory: linear, reshape,
// upsample, leaky rectifier, sigmoid, additive noise, dropout.
func decoderLikeStack() *nn.Network {
	r := rng.New(8)
	return nn.NewNetwork("decoder",
		nn.NewLinear("fc", 12, 4*4*4, r),
		nn.NewReshape2D4D(4, 4, 4),
		nn.NewAdditiveNoise("noise", nn.NoiseFixed, 4, 4, 4, 0.1, r),
		nn.NewUpsample2D(2),
		nn.NewConv2D("c", 4, 3, 3, 1, 1, true, r),
		nn.NewLeakyReLU(0.1),
		nn.NewDropout(0.5, r),
		nn.NewSigmoid(),
	)
}

func TestForwardInferMatchesForward(t *testing.T) {
	net := resnetLikeStack()
	x := tensor.New(3, 3, 16, 16)
	rng.New(9).FillNormal(x.Data, 0, 1)
	net.Forward(x, true) // populate batch-norm running statistics

	want := net.Forward(x, false)
	s := nn.NewScratch()
	got := net.ForwardInfer(x, s)
	if !got.AllClose(want, 0) {
		t.Error("ForwardInfer diverges from Forward(x, false) on the resnet stack")
	}
	// A second pass over the reset scratch reproduces the result (buffer
	// reuse must not leak state between passes).
	s.Reset()
	if !net.ForwardInfer(x, s).AllClose(want, 0) {
		t.Error("ForwardInfer diverges on a reused scratch")
	}

	dec := decoderLikeStack()
	z := tensor.New(5, 12)
	rng.New(10).FillNormal(z.Data, 0, 1)
	wantDec := dec.Forward(z, false)
	gotDec := dec.ForwardInfer(z, nn.NewScratch())
	if !gotDec.AllClose(wantDec, 0) {
		t.Error("ForwardInfer diverges on the decoder stack")
	}
}

// fallbackLayer is a Layer without an inference path; ForwardInfer must fall
// back to Forward(x, false) for it.
type fallbackLayer struct{ calls int }

func (f *fallbackLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		panic("fallback must run in eval mode")
	}
	f.calls++
	return x.Scale(2)
}
func (f *fallbackLayer) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }
func (f *fallbackLayer) Params() []*nn.Param                         { return nil }

func TestForwardInferFallsBackForCustomLayers(t *testing.T) {
	fb := &fallbackLayer{}
	net := nn.NewNetwork("mixed", nn.NewReLU(), fb)
	x := tensor.New(2, 4)
	x.Data[0], x.Data[1] = 1, -1
	got := net.ForwardInfer(x, nn.NewScratch())
	if fb.calls != 1 {
		t.Fatalf("fallback layer ran %d times, want 1", fb.calls)
	}
	if got.Data[0] != 2 || got.Data[1] != 0 {
		t.Errorf("mixed-stack result %v", got.Data[:2])
	}
}

func TestInferScratchSizing(t *testing.T) {
	net := resnetLikeStack()
	warm := tensor.New(3, 3, 16, 16)
	net.Forward(warm, true)
	s := net.InferScratch(3, 3, 16, 16)
	if s.Footprint() == 0 {
		t.Fatal("InferScratch returned an unsized scratch")
	}
	x := tensor.New(3, 3, 16, 16)
	rng.New(11).FillNormal(x.Data, 0, 1)
	if !net.ForwardInfer(x, s).AllClose(net.Forward(x, false), 0) {
		t.Error("pass over a pre-sized scratch diverges")
	}
}

// TestForwardInferAllocs pins the tentpole property: a warmed inference pass
// performs zero heap allocations.
func TestForwardInferAllocs(t *testing.T) {
	net := resnetLikeStack()
	x := tensor.New(2, 3, 16, 16)
	rng.New(12).FillNormal(x.Data, 0, 1)
	net.Forward(x, true)
	s := net.InferScratch(2, 3, 16, 16)
	allocs := testing.AllocsPerRun(20, func() {
		net.ForwardInfer(x, s)
		s.Reset()
	})
	if allocs != 0 {
		t.Errorf("warmed ForwardInfer allocates %v times per pass, want 0", allocs)
	}
}
