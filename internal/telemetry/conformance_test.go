package telemetry

import (
	"bufio"
	"math"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Prometheus text-exposition conformance: the properties a scraper relies on
// that are easy to break silently — the Content-Type version, the mandatory
// +Inf bucket, and float formatting that round-trips through ParseFloat.

func TestExpositionContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("conformance_total", "A counter.", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	ct := rec.Header().Get("Content-Type")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain with version=0.0.4", ct)
	}
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestHistogramExpositionConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conf_seconds", "A histogram.", DefaultLatencyBuckets, nil)
	h.Observe(0.003)
	h.Observe(12.5)    // beyond the highest finite bound: lands in +Inf only
	h.Observe(1.0 / 3) // a value whose sum needs full float precision

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	var infCount, sampleCount int64 = -1, -1
	var sum float64 = math.NaN()
	var lastCum int64 = -1
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, "conf_seconds") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q has %d fields, want 2", line, len(fields))
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("sample value %q does not round-trip through ParseFloat: %v", fields[1], err)
		}
		switch {
		case strings.HasPrefix(line, "conf_seconds_bucket"):
			// Cumulative buckets must be non-decreasing in exposition order.
			if int64(val) < lastCum {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
			}
			lastCum = int64(val)
			if strings.Contains(line, `le="+Inf"`) {
				infCount = int64(val)
			}
		case strings.HasPrefix(line, "conf_seconds_sum"):
			sum = val
		case strings.HasPrefix(line, "conf_seconds_count"):
			sampleCount = int64(val)
		}
	}
	if infCount == -1 {
		t.Fatal(`exposition is missing the mandatory le="+Inf" bucket`)
	}
	if sampleCount != 3 {
		t.Fatalf("_count = %d, want 3", sampleCount)
	}
	if infCount != sampleCount {
		t.Fatalf("+Inf bucket %d != _count %d (Prometheus requires equality)", infCount, sampleCount)
	}
	want := 0.003 + 12.5 + 1.0/3
	if math.IsNaN(sum) || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("_sum = %v, want %v within 1e-9 after a ParseFloat round trip", sum, want)
	}
}

func TestNewHistogramAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // le=0.01 bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // le=1 bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %v, want within (0, 0.01]", q)
	}
	if q := h.Quantile(0.99); q <= 0.1 || q > 1 {
		t.Fatalf("p99 = %v, want within (0.1, 1]", q)
	}
	// Out-of-range q clamps instead of panicking.
	if q := h.Quantile(-1); q < 0 {
		t.Fatalf("q=-1 gave %v", q)
	}
	// A +Inf-bucket observation clamps to the highest finite bound.
	h2 := NewHistogram([]float64{0.01, 0.1, 1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 1", q)
	}
}

// TestQuantileInfBucketClampConformance pins the +Inf clamp (which predates
// this test) across the surfaces that republish quantiles: no q on any
// histogram layout in the codebase may ever report +Inf into /traces p99
// summaries or an ensembler_stage_seconds dashboard query.
func TestQuantileInfBucketClampConformance(t *testing.T) {
	// Every observation beyond the highest finite bound, on the exact bucket
	// layout the stage tracer exports: every quantile — p50 through p100 —
	// reports the largest finite bound, never +Inf.
	top := DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1]
	h := NewHistogram(DefaultLatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(top * 100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 1) || math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v with all mass in +Inf, want finite clamp", q, got)
		}
		// q=0 resolves at rank 0 in the first (empty) bucket; every rank with
		// actual mass behind it must clamp to the top bound exactly.
		if q > 0 && got != top {
			t.Fatalf("Quantile(%v) = %v, want clamp to the %v top bound", q, got, top)
		}
	}

	// Mixed mass: quantiles below the +Inf share interpolate normally, those
	// inside it clamp.
	m := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		m.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		m.Observe(1e9)
	}
	if q := m.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Fatalf("mixed p50 = %v, want within (0.01, 0.1]", q)
	}
	if q := m.Quantile(0.999); q != 1 {
		t.Fatalf("mixed p99.9 = %v, want clamp to 1", q)
	}

	// Degenerate layout: a histogram with no finite bounds at all has nothing
	// to clamp to and must report 0, not +Inf.
	d := NewHistogram(nil)
	d.Observe(7)
	if q := d.Quantile(0.99); q != 0 {
		t.Fatalf("boundless histogram quantile = %v, want 0", q)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	// Force at least one GC so the pause gauge has something to report.
	runtime.GC()
	// Invalidate the 1s MemStats cache deadline by just scraping; the first
	// scrape always populates.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"go_goroutines", "go_mem_heap_alloc_bytes", "go_gc_last_pause_seconds"} {
		if !strings.Contains(body, name+" ") {
			t.Fatalf("scrape missing %s:\n%s", name, body)
		}
	}
	var goroutines, heap float64
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "go_goroutines":
			goroutines = v
		case "go_mem_heap_alloc_bytes":
			heap = v
		}
	}
	if goroutines < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", goroutines)
	}
	if heap <= 0 {
		t.Fatalf("go_mem_heap_alloc_bytes = %v, want > 0", heap)
	}
}

func TestRuntimeMetricsCacheRefreshes(t *testing.T) {
	c := &memStatsCache{}
	first := c.get()
	if first.HeapAlloc == 0 {
		t.Fatal("first read returned zero MemStats")
	}
	// Within the TTL the same snapshot comes back (same ReadMemStats call).
	again := c.get()
	if again.HeapAlloc != first.HeapAlloc || again.NumGC != first.NumGC {
		t.Fatal("cache refreshed within its TTL")
	}
	// Backdate the cache and confirm a refresh happens.
	c.mu.Lock()
	c.at = c.at.Add(-2 * time.Second)
	c.mu.Unlock()
	refreshed := c.get()
	if refreshed.HeapAlloc == 0 {
		t.Fatal("refreshed read returned zero MemStats")
	}
}
