package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/tensor"
)

// runAsync starts run in a goroutine with a pipe-backed stdout and returns
// a line scanner plus the error channel.
func runAsync(ctx context.Context, t *testing.T, args []string) (*bufio.Scanner, <-chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, args, pw, io.Discard)
		pw.Close()
		done <- err
	}()
	t.Cleanup(func() { pr.Close() })
	return bufio.NewScanner(pr), done
}

// scrapeAddr reads stdout lines until the bound-address banner appears.
func scrapeAddr(t *testing.T, sc *bufio.Scanner, done <-chan error) string {
	t.Helper()
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			return addr
		}
	}
	select {
	case err := <-done:
		t.Fatalf("server exited before announcing its address: %v", err)
	case <-time.After(time.Second):
		t.Fatal("no address banner")
	}
	return ""
}

// publishTiny publishes an untrained tiny pipeline into a fresh registry
// directory and returns the directory (the store half of the train→publish→
// serve→infer round trip; cmd/ensembler-train's tests cover real training
// into the same layout).
func publishTiny(t *testing.T, shards int) (dir string, reg *registry.Registry) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "models")
	store, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := commtest.Pipeline(commtest.TinyArch(), 4, 2, 77)
	if shards > 0 {
		_, err = store.PublishSharded("tiny", e, shards)
	} else {
		_, err = store.Publish("tiny", e)
	}
	if err != nil {
		t.Fatal(err)
	}
	reg = registry.New(nil)
	if _, err := reg.Publish("tiny", e); err != nil {
		t.Fatal(err)
	}
	return dir, reg
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-model", "a.gob", "-model-dir", "d"}, "mutually exclusive"},
		{[]string{"-shard", "1/2", "-rotate-every", "1m", "-model-dir", "d"}, "mutually exclusive"},
		{[]string{"stray"}, "unexpected arguments"},
		{[]string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		err := run(ctx, c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

func TestRunMissingArtifacts(t *testing.T) {
	ctx := context.Background()
	missingFile := filepath.Join(t.TempDir(), "nope.gob")
	if err := run(ctx, []string{"-model", missingFile}, io.Discard, io.Discard); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing model file: %v", err)
	}
	missingDir := filepath.Join(t.TempDir(), "nope")
	if err := run(ctx, []string{"-model-dir", missingDir}, io.Discard, io.Discard); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing model dir: %v", err)
	}
}

func TestRunBadShardSpecs(t *testing.T) {
	ctx := context.Background()
	dir, _ := publishTiny(t, 0)
	for _, spec := range []string{"0/2", "3/2", "junk", "1/9"} {
		err := run(ctx, []string{"-model-dir", dir, "-shard", spec, "-addr", "127.0.0.1:0"}, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("-shard %s must be rejected for a 4-body model", spec)
		}
	}
	// A manifest that committed to a 2-shard fleet rejects a 4-shard member.
	dir2, _ := publishTiny(t, 2)
	err := run(ctx, []string{"-model-dir", dir2, "-shard", "1/4", "-addr", "127.0.0.1:0"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "2-shard") {
		t.Errorf("shard-count mismatch with the manifest: %v", err)
	}
}

func TestServeInferRoundTrip(t *testing.T) {
	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{"-model-dir", dir, "-addr", "127.0.0.1:0", "-workers", "2"})
	addr := scrapeAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail

	arch := commtest.TinyArch()
	x := tensor.New(2, arch.InC, arch.H, arch.W)
	rng.New(5).FillNormal(x.Data, 0, 1)
	// The served pipeline was published from the same artifact bytes the
	// local copy holds, so remote logits must match local bit-for-bit.
	want := pipeline.Predict(x)
	logits, _, err := client.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(want, 1e-9) {
		t.Error("served inference does not match the published pipeline")
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestServeShardHostsSubset(t *testing.T) {
	dir, _ := publishTiny(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{"-model-dir", dir, "-addr", "127.0.0.1:0", "-shard", "2/2"})
	addr := scrapeAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	plan, err := shard.Plan(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := client.Exchange(ctx, commtest.Input(commtest.TinyArch(), 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Features) != plan[1].Len() {
		t.Errorf("shard 2/2 returned %d feature vectors, hosts %d bodies", len(ex.Features), plan[1].Len())
	}
	if ex.Model != "tiny" || ex.Version != 1 {
		t.Errorf("shard response reports epoch %s v%d, want tiny v1", ex.Model, ex.Version)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestRunRejectsCorruptModelFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("not a pipeline"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-model", path}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "loading model") {
		t.Errorf("corrupt model file: %v", err)
	}
}

// scrapeAdminAddr reads stdout lines until the admin banner appears.
func scrapeAdminAddr(t *testing.T, sc *bufio.Scanner, done <-chan error) string {
	t.Helper()
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "admin listening on "); ok {
			return addr
		}
	}
	select {
	case err := <-done:
		t.Fatalf("server exited before announcing its admin address: %v", err)
	case <-time.After(time.Second):
		t.Fatal("no admin banner")
	}
	return ""
}

// adminGet fetches an admin endpoint body.
func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	dir, _ := publishTiny(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0", "-workers", "2",
	})
	scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	if code, body := adminGet(t, admin+"/healthz"); code != 200 ||
		!strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"model": "tiny"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := adminGet(t, admin+"/metrics"); code != 200 ||
		!strings.Contains(body, "ensembler_server_requests_total") ||
		!strings.Contains(body, "ensembler_epoch_version 1") ||
		!strings.Contains(body, "ensembler_workers 2") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := adminGet(t, admin+"/leakage"); code != 200 || !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/leakage without audit = %d %q", code, body)
	}

	// Rotation is a POST; a GET must be refused.
	if code, _ := adminGet(t, admin+"/rotate"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /rotate = %d, want 405", code)
	}
	resp, err := http.Post(admin+"/rotate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"version": 2`) {
		t.Errorf("POST /rotate = %d %q", resp.StatusCode, body)
	}
	if code, b := adminGet(t, admin+"/metrics"); code != 200 ||
		!strings.Contains(b, "ensembler_rotations_total 1") ||
		!strings.Contains(b, "ensembler_epoch_version 2") {
		t.Errorf("metrics after rotation = %d %q", code, b)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// TestAdminTracesEndpoints serves one traced request (sample rate 1 forces
// retention) and walks the trace surface: /traces must list it with stage
// attribution, /traces/{id} must serve Chrome trace-event JSON that actually
// parses as such, bad IDs must 400/404, and the profiler must exist exactly
// when -pprof asked for it.
func TestAdminTracesEndpoints(t *testing.T) {
	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-trace-sample", "1", "-pprof",
	})
	addr := scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail
	arch := commtest.TinyArch()
	x := tensor.New(1, arch.InC, arch.H, arch.W)
	rng.New(9).FillNormal(x.Data, 0, 1)
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}

	// The server leg finishes on the connection writer after the response
	// flushed; poll until it lands in the ring.
	var listing struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			ID string `json:"id"`
		} `json:"traces"`
		Stages []struct {
			Stage string `json:"stage"`
		} `json:"stages"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, body := adminGet(t, admin+"/traces")
		if code != 200 {
			t.Fatalf("/traces = %d %q", code, body)
		}
		if err := json.Unmarshal([]byte(body), &listing); err != nil {
			t.Fatalf("/traces is not JSON: %v\n%s", err, body)
		}
		if listing.Enabled && len(listing.Traces) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !listing.Enabled || len(listing.Traces) == 0 {
		t.Fatal("/traces never listed the retained trace")
	}
	stages := map[string]bool{}
	for _, s := range listing.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{"decode", "forward", "encode"} {
		if !stages[want] {
			t.Errorf("/traces stage attribution is missing %q (have %v)", want, listing.Stages)
		}
	}

	// The full timeline must be valid Chrome trace-event JSON: a
	// traceEvents array of "X" complete events with µs timestamps.
	code, body := adminGet(t, admin+"/traces/"+listing.Traces[0].ID)
	if code != 200 {
		t.Fatalf("/traces/{id} = %d %q", code, body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/traces/{id} is not Chrome trace-event JSON: %v\n%s", err, body)
	}
	var complete int
	for _, ev := range chrome.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "" || ev.Ts <= 0 || ev.Pid != 1 || ev.Tid < 1 {
				t.Errorf("malformed complete event: %+v", ev)
			}
		case "M":
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete == 0 {
		t.Fatal("trace timeline has no complete events")
	}

	if code, _ := adminGet(t, admin+"/traces/nothex"); code != 400 {
		t.Errorf("/traces/nothex = %d, want 400", code)
	}
	if code, _ := adminGet(t, admin+"/traces/ffffffffffffffff"); code != 404 {
		t.Errorf("/traces/<unknown id> = %d, want 404", code)
	}
	if code, _ := adminGet(t, admin+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline with -pprof = %d, want 200", code)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// Without -pprof the profiler must not exist on the admin plane.
func TestAdminPprofAbsentByDefault(t *testing.T) {
	dir, _ := publishTiny(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
	})
	scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()
	if code, _ := adminGet(t, admin+"/debug/pprof/cmdline"); code != 404 {
		t.Errorf("/debug/pprof/cmdline without -pprof = %d, want 404", code)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestAdminRotateRefusedInShardMode(t *testing.T) {
	dir, _ := publishTiny(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0", "-shard", "1/2",
	})
	scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()
	resp, err := http.Post(admin+"/rotate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body), "client-side") {
		t.Errorf("POST /rotate in shard mode = %d %q, want 409", resp.StatusCode, body)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestAuditFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-audit-sample", "-1"}, "-audit-sample"},
		{[]string{"-audit-sample", "2", "-audit-threshold", "0"}, "-audit-threshold"},
	}
	for _, c := range cases {
		err := run(ctx, c.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want %q", c.args, err, c.want)
		}
	}
}

// TestLeakageTriggeredRotationEndToEnd is the control plane's acceptance
// test: serve → live traffic mirrored by the sampler → the audit replays the
// oracle inversion, scores above the (deliberately low) threshold → the
// policy rotates the selector automatically — observed through /metrics as a
// rotation count and a new epoch version — while the client load sees zero
// failed requests across the swap.
func TestLeakageTriggeredRotationEndToEnd(t *testing.T) {
	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(ctx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-workers", "2",
		"-audit-sample", "1",
		"-audit-reservoir", "16",
		"-audit-every", "25ms",
		"-audit-min-samples", "2",
		"-audit-calib", "16",
		"-audit-threshold", "0.05", // any successful reconstruction on smooth calib images clears this
		"-audit-breaches", "1",
		"-rotate-min-interval", "1ms",
	})
	addr := scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	go func() {
		for sc.Scan() {
		}
	}()

	// Client load: keeps requests flowing through the audit and any
	// rotation. The selector rotation must be invisible — zero failures.
	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail
	arch := commtest.TinyArch()
	x := tensor.New(1, arch.InC, arch.H, arch.W)
	rng.New(17).FillNormal(x.Data, 0, 1)

	var failures atomic.Int64
	var requests atomic.Int64
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-stopLoad:
				return
			default:
			}
			if _, _, err := client.Infer(ctx, x); err != nil {
				failures.Add(1)
				return
			}
			requests.Add(1)
		}
	}()

	// Watch /metrics until the automatic rotation lands: the rotation
	// counter advances and the live epoch moves past v1.
	deadline := time.Now().Add(30 * time.Second)
	rotated := false
	for time.Now().Before(deadline) {
		_, body := adminGet(t, admin+"/metrics")
		if strings.Contains(body, "ensembler_audit_rotations_total 1") &&
			!strings.Contains(body, "ensembler_epoch_version 1\n") {
			rotated = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stopLoad)
	<-loadDone
	if !rotated {
		_, leak := adminGet(t, admin+"/leakage")
		t.Fatalf("no leakage-triggered rotation within 30s; /leakage: %s", leak)
	}
	if n := failures.Load(); n != 0 {
		t.Errorf("%d client requests failed across the audit-triggered rotation, want 0", n)
	}
	if requests.Load() == 0 {
		t.Error("load loop never completed a request")
	}
	// The leakage state names the evidence as the rotation cause.
	if _, body := adminGet(t, admin+"/leakage"); !strings.Contains(body, "leakage") ||
		!strings.Contains(body, `"rotations": 1`) {
		t.Errorf("/leakage after rotation = %q", body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

// TestServeBatchingFlags covers the continuous-batching runbook surface:
// negative knobs are rejected, a window-batched server still answers
// bit-exactly, the banner announces the dispatcher configuration, and the
// admin plane exports the dispatcher series.
func TestServeBatchingFlags(t *testing.T) {
	ctx := context.Background()
	for _, c := range []struct{ args, want string }{
		{"-batch-window=-5ms", "-batch-window must be >= 0"},
		{"-max-queue=-1", "-max-queue must be >= 0"},
	} {
		err := run(ctx, []string{c.args}, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%s) = %v, want %q", c.args, err, c.want)
		}
	}

	dir, reg := publishTiny(t, 0)
	e, err := reg.Current("tiny")
	if err != nil {
		t.Fatal(err)
	}
	pipeline := e.Pipeline()

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc, done := runAsync(runCtx, t, []string{
		"-model-dir", dir, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-workers", "1", "-batch-window", "5ms", "-max-queue", "16",
	})
	addr := scrapeAddr(t, sc, done)
	admin := "http://" + scrapeAdminAddr(t, sc, done)
	banner := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.Contains(sc.Text(), "continuous batching") {
				select {
				case banner <- sc.Text():
				default:
				}
			}
		}
	}()

	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rt := pipeline.NewClientRuntime()
	client.ComputeFeatures = rt.Features
	client.Select = rt.Select
	client.Tail = rt.Tail

	arch := commtest.TinyArch()
	x := tensor.New(1, arch.InC, arch.H, arch.W)
	rng.New(17).FillNormal(x.Data, 0, 1)
	want := pipeline.Predict(x)
	logits, _, err := client.Infer(runCtx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(want, 1e-9) {
		t.Error("window-batched inference does not match the published pipeline")
	}

	select {
	case line := <-banner:
		if !strings.Contains(line, "window 5ms") || !strings.Contains(line, "intake queue 16") {
			t.Errorf("dispatcher banner %q missing window/queue configuration", line)
		}
	case <-time.After(5 * time.Second):
		t.Error("no continuous-batching banner line")
	}
	if code, body := adminGet(t, admin+"/metrics"); code != 200 ||
		!strings.Contains(body, "ensembler_dispatch_queue_depth") ||
		!strings.Contains(body, "ensembler_dispatch_shed_total") ||
		!strings.Contains(body, "ensembler_dispatch_batches_total") {
		t.Errorf("/metrics missing dispatcher series: %d %q", code, body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}
