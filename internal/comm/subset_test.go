package comm

import (
	"strings"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// subsetBodies builds deterministic bodies for the subset tests.
func subsetBodies(n int) []*nn.Network {
	out := make([]*nn.Network, n)
	for i := range out {
		out[i] = tinyArch().NewBody("sb", rng.New(int64(i+1)))
	}
	return out
}

func TestSubsetProviderServesBodyRange(t *testing.T) {
	bodies := subsetBodies(4)
	provider, err := NewSubsetProvider(&staticModel{bodies: bodies}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewModelServer(provider)

	x := tensor.New(2, 4, 8, 8)
	rng.New(9).FillNormal(x.Data, 0, 1)
	resp := srv.process(&Request{Features: x})
	if resp.Err != "" {
		t.Fatalf("subset request failed: %s", resp.Err)
	}
	if len(resp.Features) != 2 {
		t.Fatalf("subset [1,3) returned %d features, want 2", len(resp.Features))
	}
	// The shard's response must be exactly bodies 1 and 2 of the full
	// ensemble, in body order — the invariant scatter-gather reassembly
	// depends on.
	for j, i := range []int{1, 2} {
		want := subsetBodies(4)[i].Forward(x, false)
		if !resp.Features[j].AllClose(want, 1e-12) {
			t.Errorf("subset feature %d does not match body %d", j, i)
		}
	}
}

func TestSubsetProviderRejectsOutOfRangeShard(t *testing.T) {
	provider, err := NewSubsetProvider(&staticModel{bodies: subsetBodies(3)}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewModelServer(provider)
	x := tensor.New(1, 4, 8, 8)
	resp := srv.process(&Request{Features: x})
	if resp.Err == "" {
		t.Fatal("out-of-range shard must fail to resolve")
	}
	if !strings.Contains(resp.Err, "bodies") {
		t.Errorf("error should explain the body-range mismatch, got: %s", resp.Err)
	}
}

func TestNewSubsetProviderValidation(t *testing.T) {
	if _, err := NewSubsetProvider(nil, 0, 1); err == nil {
		t.Error("nil inner provider must be rejected")
	}
	sm := &staticModel{bodies: subsetBodies(2)}
	for _, r := range [][2]int{{-1, 1}, {2, 2}, {3, 1}} {
		if _, err := NewSubsetProvider(sm, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) must be rejected", r[0], r[1])
		}
	}
}

func TestSubsetModelPassesThroughEpochIdentity(t *testing.T) {
	sm := &staticModel{bodies: subsetBodies(2)}
	provider, err := NewSubsetProvider(sm, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := provider.Resolve("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != sm.Name() || m.Version() != sm.Version() || m.Seq() != sm.Seq() {
		t.Error("subset model must keep the inner model's epoch identity")
	}
	if got := m.NewReplica(); len(got) != 1 {
		t.Errorf("subset replica has %d bodies, want 1", len(got))
	}
	// Unknown-model resolution errors pass through the wrapper.
	if _, err := provider.Resolve("nope", 0); err == nil {
		t.Error("inner resolution errors must propagate")
	}
}
