// Package commtest provides the deterministic untrained serving harness
// shared by the comm concurrency tests, the root serving benchmarks, and
// the ensembler-bench CLI: seeded bodies that rebuild bit-identically
// (standing in for a trained server's worker replicas), a raw-protocol
// client wiring (identity head, concat-all selection, linear tail), and a
// local reference computation to check remote results against. Untrained
// networks cost exactly as much to run as trained ones, which is all a
// serving benchmark needs.
package commtest

import (
	"fmt"

	"ensembler/internal/comm"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// TinyArch is the smallest split architecture the harness runs — fast
// enough for race-detector test loops.
func TinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

// Bodies deterministically builds n server bodies for arch; every call
// returns networks with identical weights and private caches, so it doubles
// as the server's replica factory.
func Bodies(arch split.Arch, n int) []*nn.Network {
	out := make([]*nn.Network, n)
	for i := range out {
		out[i] = arch.NewBody(fmt.Sprintf("b%d", i), rng.New(int64(i+1)))
	}
	return out
}

// Pipeline deterministically builds an untrained but fully wired Ensembler
// over arch — members, secret selector, final head/noise/tail. Registry and
// hot-swap harnesses publish these: an untrained pipeline costs exactly as
// much to serve, clone, and persist as a trained one, and different seeds
// give bit-distinguishable model versions.
func Pipeline(arch split.Arch, n, p int, seed int64) *ensemble.Ensembler {
	return ensemble.New(ensemble.Config{
		Arch: arch, N: n, P: p, Sigma: 0.05, Lambda: 0.5, Seed: seed, Stage1Noise: true,
	})
}

// Tail deterministically builds the concat-all linear tail matching n
// bodies.
func Tail(arch split.Arch, n int) *nn.Network {
	return nn.NewNetwork("t", nn.NewLinear("fc", n*arch.FeatureDim(), arch.Classes, rng.New(99)))
}

// Wire points a client at identity features, a concat-everything selector,
// and a fresh deterministic tail — pure protocol mechanics, no trained
// pipeline. Each call builds a private tail, so concurrently used clients
// don't share forward caches.
func Wire(c *comm.Client, arch split.Arch, n int) {
	c.ComputeFeatures = func(x *tensor.Tensor) *tensor.Tensor { return x }
	c.Select = nn.ConcatFeatures
	c.Tail = Tail(arch, n)
}

// Input builds a deterministic feature batch of the given row count.
func Input(arch split.Arch, seed int64, rows int) *tensor.Tensor {
	x := tensor.New(rows, arch.HeadC, arch.H, arch.W)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

// Reference computes the expected logits for x on private copies of the
// server bodies and tail — what a remote round trip must reproduce
// bit-for-bit.
func Reference(arch split.Arch, n int, x *tensor.Tensor) *tensor.Tensor {
	bodies := Bodies(arch, n)
	feats := make([]*tensor.Tensor, n)
	for i, b := range bodies {
		feats[i] = b.Forward(x, false)
	}
	return Tail(arch, n).Forward(nn.ConcatFeatures(feats), false)
}
