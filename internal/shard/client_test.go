package shard_test

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/tensor"
)

// imageBatch builds a deterministic image batch shaped for TinyArch.
func imageBatch(rows int, seed int64) *tensor.Tensor {
	arch := commtest.TinyArch()
	x := tensor.New(rows, arch.InC, arch.H, arch.W)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

// shardHosting returns the index of a shard whose range contains a selected
// body, and one whose range contains none (both must exist for the fleets
// these tests build).
func shardHosting(t *testing.T, f *commtest.Fleet) (selected, unselected int) {
	t.Helper()
	selected, unselected = -1, -1
	for k, r := range f.Ranges {
		hosts := false
		for _, i := range f.Pipeline.Selector.Indices {
			if r.Contains(i) {
				hosts = true
				break
			}
		}
		if hosts && selected < 0 {
			selected = k
		}
		if !hosts && unselected < 0 {
			unselected = k
		}
	}
	if selected < 0 || unselected < 0 {
		t.Fatalf("fleet layout %v with selection %v has no (selected, unselected) shard pair",
			f.Ranges, f.Pipeline.Selector.Indices)
	}
	return selected, unselected
}

func TestShardedInferMatchesMonolith(t *testing.T) {
	f := commtest.StartShards(t, 3, 4, 2, 11)
	c, err := shard.NewClient(f.ClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	x := imageBatch(4, 12)
	logits, timing, err := c.Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(f.Pipeline.Predict(x), 1e-9) {
		t.Error("sharded inference does not match the local pipeline bit-for-bit")
	}
	if timing.BytesUp == 0 || timing.BytesDown == 0 {
		t.Errorf("timing byte counters not aggregated: %+v", timing)
	}
	for _, h := range c.Health() {
		if h.Requests != 1 || h.Failures != 0 || h.Down {
			t.Errorf("healthy shard snapshot wrong: %+v", h)
		}
	}
}

func TestShardLossSurvivableWhenUnselected(t *testing.T) {
	f := commtest.StartShards(t, 3, 4, 2, 21)
	sel, unsel := shardHosting(t, f)
	c, err := shard.NewClient(f.ClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(2, 22)

	// Warm the pools, then kill the shard hosting no selected bodies:
	// inference must keep succeeding and keep matching local results.
	if _, _, err := c.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	if err := f.StopShard(unsel); err != nil {
		t.Fatalf("stopping shard %d: %v", unsel, err)
	}
	logits, _, err := c.Infer(ctx, x)
	if err != nil {
		t.Fatalf("inference must survive losing unselected shard %d: %v", unsel, err)
	}
	if !logits.AllClose(f.Pipeline.Predict(x), 1e-9) {
		t.Error("degraded inference does not match the local pipeline")
	}

	// Killing a shard that hosts selected bodies is fatal for this client,
	// and the error says so.
	if err := f.StopShard(sel); err != nil {
		t.Fatalf("stopping shard %d: %v", sel, err)
	}
	if _, _, err := c.Infer(ctx, x); err == nil {
		t.Fatal("inference must fail when a selected shard is unreachable")
	} else if !strings.Contains(err.Error(), "selected") {
		t.Errorf("error should name the selected-shard cause, got: %v", err)
	}
}

func TestShardDeathUnderConcurrentTraffic(t *testing.T) {
	f := commtest.StartShards(t, 3, 4, 2, 31)
	_, unsel := shardHosting(t, f)
	c, err := shard.NewClient(f.ClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(2, 32)
	want := f.Pipeline.Predict(x)

	const clients, perClient = 6, 12
	var failures, mismatches atomic.Int64
	var started, kill sync.WaitGroup
	started.Add(clients)
	kill.Add(1)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			kill.Wait()
			for i := 0; i < perClient; i++ {
				logits, _, err := c.Infer(ctx, x)
				if err != nil {
					failures.Add(1)
					t.Logf("request failed: %v", err)
					continue
				}
				if !logits.AllClose(want, 1e-9) {
					mismatches.Add(1)
				}
			}
		}()
	}
	started.Wait()
	// Kill the unselected shard while all clients hammer the fleet: every
	// request must still succeed (the selection never needed it) and still
	// match the local pipeline bit-for-bit.
	if err := f.StopShard(unsel); err != nil {
		t.Fatalf("stopping shard %d: %v", unsel, err)
	}
	kill.Done()
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Errorf("%d requests failed; shard %d loss must be survivable", n, unsel)
	}
	if n := mismatches.Load(); n != 0 {
		t.Errorf("%d requests returned wrong logits", n)
	}
	h := c.Health()
	if h[unsel].Failures == 0 || !h[unsel].Down {
		t.Errorf("killed shard health should show failures and down: %+v", h[unsel])
	}
	for k, hs := range h {
		if k != unsel && (hs.Failures != 0 || hs.Down) {
			t.Errorf("live shard %d health shows failures: %+v", k, hs)
		}
	}
}

func TestReconfigurePropagatesRotation(t *testing.T) {
	f := commtest.StartShards(t, 2, 4, 2, 41)
	c, err := shard.NewClient(f.ClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(2, 42)

	if _, _, err := c.Infer(ctx, x); err != nil {
		t.Fatal(err)
	}
	// Rotate the secret selector. The shard servers' bodies are untouched
	// (rotation is invisible on the wire), so only the client re-wires.
	rotated, err := f.Pipeline.Rotate(ensemble.RotateOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	c.Reconfigure(shard.PipelineRuntime(rotated))
	logits, _, err := c.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !logits.AllClose(rotated.Predict(x), 1e-9) {
		t.Error("post-rotation inference does not match the rotated pipeline")
	}
	if logits.AllClose(f.Pipeline.Predict(x), 1e-9) {
		t.Error("rotation changed nothing — selector redraw did not propagate")
	}
}

func TestHedgedRequestsFire(t *testing.T) {
	f := commtest.StartShards(t, 2, 4, 2, 51)
	cfg := f.ClientConfig()
	cfg.HedgeAfter = time.Nanosecond // always lapsed: every exchange may hedge
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	x := imageBatch(1, 52)
	want := f.Pipeline.Predict(x)
	for i := 0; i < 10; i++ {
		logits, _, err := c.Infer(ctx, x)
		if err != nil {
			t.Fatalf("hedged inference failed: %v", err)
		}
		if !logits.AllClose(want, 1e-9) {
			t.Fatal("hedged inference returned wrong logits")
		}
	}
	hedged := uint64(0)
	for _, h := range c.Health() {
		hedged += h.Hedged
		if h.Failures != 0 {
			t.Errorf("hedging must not count as failure: %+v", h)
		}
	}
	if hedged == 0 {
		t.Error("no hedge ever fired with an always-expired hedge timer")
	}
}

func TestMixedEpochGatherRejected(t *testing.T) {
	// Two shard servers over two registries at different versions of the
	// same model — exactly what a client sees mid-way through a rolling
	// fleet reload. The gather must refuse to mix their answers even
	// though every tensor is shape-identical.
	e := commtest.Pipeline(commtest.TinyArch(), 4, 2, 71)
	regA := registry.New(nil)
	if _, err := regA.Publish("m", e); err != nil {
		t.Fatal(err)
	}
	regB := registry.New(nil)
	for i := 0; i < 2; i++ { // same pipeline, but live at v2
		if _, err := regB.Publish("m", e); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := shard.Plan(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	for k, reg := range []*registry.Registry{regA, regB} {
		provider, err := comm.NewSubsetProvider(reg, plan[k].Lo, plan[k].Hi)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		srv := comm.NewModelServer(provider)
		go func() { served <- srv.Serve(ctx, ln) }()
		t.Cleanup(func() { cancel(); <-served; ln.Close() })
		addrs[k] = ln.Addr().String()
	}
	// A selection spanning both shards consumes features from both, so
	// the version skew must be rejected.
	e.Selector = ensemble.FixedSelector(4, []int{1, 2})
	c, err := shard.NewClient(shard.Config{
		Addrs: addrs, Ranges: plan, N: 4, NewRuntime: shard.PipelineRuntime(e),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Infer(context.Background(), imageBatch(1, 72))
	if err == nil || !strings.Contains(err.Error(), "mixed epochs") {
		t.Fatalf("gather across v1 and v2 shards must be rejected, got: %v", err)
	}

	// A selection confined to one shard never reads the skewed shard's
	// features — the same reasoning that makes its death survivable makes
	// its version skew harmless, so a rolling reload stays zero-downtime
	// for this client.
	e.Selector = ensemble.FixedSelector(4, []int{0, 1})
	c2, err := shard.NewClient(shard.Config{
		Addrs: addrs, Ranges: plan, N: 4, NewRuntime: shard.PipelineRuntime(e),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	logits, _, err := c2.Infer(context.Background(), imageBatch(1, 72))
	if err != nil {
		t.Fatalf("version skew on an unselected shard must be harmless: %v", err)
	}
	if !logits.AllClose(e.Predict(imageBatch(1, 72)), 1e-9) {
		t.Error("skew-tolerant inference does not match the local pipeline")
	}
}

func TestNewClientValidation(t *testing.T) {
	rtf := func() (*shard.Runtime, error) { return nil, nil }
	cases := []shard.Config{
		{},
		{Addrs: []string{"a"}, Ranges: []shard.Range{{0, 2}}, N: 2},                               // nil factory
		{Addrs: []string{"a", "b"}, Ranges: []shard.Range{{0, 2}}, N: 2, NewRuntime: rtf},         // count mismatch
		{Addrs: []string{"a", "b"}, Ranges: []shard.Range{{0, 2}, {3, 4}}, N: 4, NewRuntime: rtf}, // gap
		{Addrs: []string{"a", "b"}, Ranges: []shard.Range{{0, 2}, {2, 2}}, N: 2, NewRuntime: rtf}, // empty range
		{Addrs: []string{"a", "b"}, Ranges: []shard.Range{{0, 2}, {2, 4}}, N: 5, NewRuntime: rtf}, // wrong N
		{Addrs: []string{"a", "b"}, Ranges: []shard.Range{{1, 2}, {2, 4}}, N: 4, NewRuntime: rtf}, // offset start
	}
	for i, cfg := range cases {
		if _, err := shard.NewClient(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	// An incompletely wired runtime factory fails at first use, not at
	// construction.
	f := commtest.StartShards(t, 2, 4, 2, 61)
	cfg := f.ClientConfig()
	cfg.NewRuntime = func() (*shard.Runtime, error) { return &shard.Runtime{}, nil }
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Infer(context.Background(), imageBatch(1, 62)); err == nil {
		t.Error("incompletely wired runtime must fail inference")
	}
}
