package ensemble

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(51)
	cfg := tinyConfig(52)
	e := Train(cfg, train, nil)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical secret selection.
	if len(loaded.Selector.Indices) != len(e.Selector.Indices) {
		t.Fatal("selection length changed")
	}
	for i := range e.Selector.Indices {
		if loaded.Selector.Indices[i] != e.Selector.Indices[i] {
			t.Fatal("secret selection changed across save/load")
		}
	}

	// Identical predictions, end to end.
	x, _ := train.Batch([]int{0, 1, 2, 3})
	if !loaded.Predict(x).AllClose(e.Predict(x), 1e-9) {
		t.Error("loaded pipeline predicts differently")
	}
	// Identical transmitted features (head + noise both restored).
	if !loaded.ClientFeatures(x).AllClose(e.ClientFeatures(x), 1e-9) {
		t.Error("loaded client features differ")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected decode error")
	}
}
