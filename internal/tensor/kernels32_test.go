package tensor

import (
	"math"
	"testing"
)

func fill32(t *Tensor32, seed int64) {
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range t.Data {
		s = s*2862933555777941757 + 3037000493
		t.Data[i] = float32(int32(s>>33))/float32(1<<31) - 0.5
	}
}

// TestMatMulInto32MatchesF64 bounds the f32 matmul against the f64 kernel on
// the same values: every element within 1e-5 relative of the float64 result.
func TestMatMulInto32MatchesF64(t *testing.T) {
	const m, k, n = 7, 71, 65 // off-size dims exercise the k-unroll and panel tails
	a32, b32, dst32 := New32(m, k), New32(k, n), New32(m, n)
	fill32(a32, 1)
	fill32(b32, 2)
	MatMulInto32(dst32, a32, b32)

	a64, b64 := New(m, k), New(k, n)
	for i, v := range a32.Data {
		a64.Data[i] = float64(v)
	}
	for i, v := range b32.Data {
		b64.Data[i] = float64(v)
	}
	want := MatMulInto(New(m, n), a64, b64)
	for i, v := range dst32.Data {
		if e := math.Abs(float64(v)-want.Data[i]) / math.Max(1, math.Abs(want.Data[i])); e > 1e-5 {
			t.Fatalf("element %d drifts %.3g relative (f32 %v vs f64 %v)", i, e, v, want.Data[i])
		}
	}
}

// benchmark shapes drawn from the serving bodies' im2col matmuls:
// weight [OC, C*KH*KW] × cols [C*KH*KW, OH*OW].
const bm, bk, bn = 8, 36, 16

func BenchmarkMatMulInto(b *testing.B) {
	a, x, dst := New(bm, bk), New(bk, bn), New(bm, bn)
	for i := range a.Data {
		a.Data[i] = float64(i%13) - 6
	}
	for i := range x.Data {
		x.Data[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, x)
	}
}

func BenchmarkMatMulInto32(b *testing.B) {
	a, x, dst := New32(bm, bk), New32(bk, bn), New32(bm, bn)
	for i := range a.Data {
		a.Data[i] = float32(i%13) - 6
	}
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto32(dst, a, x)
	}
}

// The stride-2 blocks shrink the im2col panel to oh*ow = 4 (and 1 at the
// last block). Panels this narrow are where a call-per-k-row kernel loses to
// the f64 inline loop — the k-unrolled kernel must stay ahead here too.
func BenchmarkMatMulInto32TinyPanel(b *testing.B) {
	const m, k, n = 16, 144, 4
	a, x, dst := New32(m, k), New32(k, n), New32(m, n)
	fill32(a, 3)
	fill32(x, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto32(dst, a, x)
	}
}

func BenchmarkMatMulIntoTinyPanel(b *testing.B) {
	const m, k, n = 16, 144, 4
	a, x, dst := New(m, k), New(k, n), New(m, n)
	a32, x32 := New32(m, k), New32(k, n)
	fill32(a32, 3)
	fill32(x32, 4)
	for i, v := range a32.Data {
		a.Data[i] = float64(v)
	}
	for i, v := range x32.Data {
		x.Data[i] = float64(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, x)
	}
}
