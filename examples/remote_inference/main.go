// Remote inference: the deployed form of the system. A TCP server hosts the
// N ensemble bodies (the cloud) behind a replicated worker pool; the client
// keeps its head, fixed noise, secret selector, and tail, and performs
// classification over the wire. The example verifies the remote result
// matches local inference bit-for-bit, then drives the concurrent serving
// path: a connection pool issuing simultaneous single and batched requests.
//
//	go run ./examples/remote_inference
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

func main() {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: 256, Aux: 16, Test: 64, Seed: 3})
	cfg := ensemble.Config{
		Arch: split.DefaultArch(data.CIFAR10Like), N: 4, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: 4,
		Stage1:      split.TrainOptions{Epochs: 4, BatchSize: 32, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 6, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Println("training a small Ensembler pipeline...")
	e := ensemble.Train(cfg, sp.Train, nil)

	// Cloud side: only the bodies travel to the server. Each worker owns a
	// replica, so requests from different connections compute in parallel.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	srv := comm.NewServer(e.Bodies(),
		comm.WithWorkers(4),
		comm.WithReplicas(e.CloneBodies),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	fmt.Printf("server hosting %d bodies at %s (%d workers)\n", cfg.N, ln.Addr(), srv.Workers())

	// Edge side: head, noise, secret selector, tail.
	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.ComputeFeatures = e.ClientFeatures
	client.Select = e.Selector.Apply
	client.Tail = e.Tail

	idxs := make([]int, 32)
	for i := range idxs {
		idxs[i] = i
	}
	x, labels := sp.Test.Batch(idxs)
	logits, timing, err := client.Infer(ctx, x)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("remote batch of %d images: accuracy %.3f\n", len(idxs), nn.Accuracy(logits, labels))
	if logits.AllClose(e.Predict(x), 1e-9) {
		fmt.Println("remote result matches local pipeline exactly ✓")
	}
	fmt.Printf("timing: client %.1fms | network+server round trip %.1fms\n",
		timing.Client.Seconds()*1e3, timing.RoundTrip.Seconds()*1e3)
	fmt.Printf("wire:   %.1f KiB up (features), %.1f KiB down (%d bodies × features)\n",
		float64(timing.BytesUp)/1024, float64(timing.BytesDown)/1024, cfg.N)

	// One round trip can carry several inputs: the server stacks them, runs
	// each body once over the stack, and splits the results back.
	a, _ := sp.Test.Batch([]int{0, 1, 2, 3})
	b, _ := sp.Test.Batch([]int{4, 5, 6, 7})
	batched, bt, err := client.InferBatch(ctx, []*tensor.Tensor{a, b})
	if err != nil {
		log.Fatal(err)
	}
	if batched[0].AllClose(e.Predict(a), 1e-9) && batched[1].AllClose(e.Predict(b), 1e-9) {
		fmt.Printf("batched round trip (2 inputs, %.1fms) matches local inference ✓\n",
			bt.RoundTrip.Seconds()*1e3)
	}

	// Concurrent serving: a connection pool, each connection wired through
	// its own clone of the client-side networks.
	pool, err := comm.NewPool(ln.Addr().String(), 4, func(c *comm.Client) error {
		rt := e.NewClientRuntime()
		c.ComputeFeatures = rt.Features
		c.Select = rt.Select
		c.Tail = rt.Tail
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	const requests = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := pool.Infer(ctx, x); err != nil {
				log.Printf("pooled request: %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("pool: %d concurrent requests in %.1fms (%.1f req/s)\n",
		requests, elapsed.Seconds()*1e3, float64(requests)/elapsed.Seconds())

	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
	fmt.Println("graceful shutdown complete")
	fmt.Printf("the %v secret selection never appeared on the wire.\n", e.Selector.Indices)
}
