package comm

import (
	"bufio"
	"bytes"
	"testing"

	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// FuzzWireRequestFrame runs arbitrary bytes through the binary request
// parser — the server's trust boundary for everything after the frame
// length. The parser must never panic and never allocate beyond what the
// frame's actual byte count supports (the lying-dims guard); round-tripping
// whatever decodes must reproduce the frame's semantics.
func FuzzWireRequestFrame(f *testing.F) {
	seed, err := appendRequest(nil, &Request{Model: "m", Version: 2, Features: wireTensor(41, 1, 2, 4, 4)}, false, trace.Context{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	batched, err := appendRequest(nil, &Request{Inputs: []*tensor.Tensor{wireTensor(42, 1, 2, 4, 4)}}, true, trace.Context{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batched)
	f.Add([]byte{wireMsgRequest, 0, 0, 0, 0, 0, 0, wireKindFeatures, 1, 0, 1, wireDtypeF64, 1, 0, 0, 0})
	// The v3 traced frame: same payload behind the trace header. A corrupted
	// variant (trace ID zeroed, which the parser must reject) seeds the
	// invalid branch.
	traced, err := appendRequest(nil, &Request{Model: "m", Version: 2, Features: wireTensor(41, 1, 2, 4, 4)},
		false, trace.Context{ID: 0x0123456789ABCDEF, Sampled: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(traced)
	zeroID := append([]byte(nil), traced...)
	for i := 1; i <= 8; i++ {
		zeroID[i] = 0
	}
	f.Add(zeroID)
	f.Add([]byte{wireMsgRequestTraced, 1, 2, 3}) // truncated trace header
	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := parseRequestInto(body, &req, heapAlloc{}, nil, nil); err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse to the same header.
		re, err := appendRequest(nil, &req, false, trace.Context{})
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		var req2 Request
		if err := parseRequestInto(re, &req2, heapAlloc{}, nil, nil); err != nil {
			t.Fatalf("re-encoded request does not parse: %v", err)
		}
		if req2.Model != req.Model || req2.Version != req.Version {
			t.Fatal("request header does not round-trip")
		}
	})
}

// FuzzWireResponseFrame covers the client's half of the trust boundary: the
// server is the adversary of the threat model, so its frames deserve the
// same hostility testing as requests. Both frame layouts run — the v1 form
// and the v2 form carrying the response code — and a frame that decodes in
// v2 must round-trip its code (the overload verdict must survive the wire
// exactly, or a shed would be mistaken for a terminal failure).
func FuzzWireResponseFrame(f *testing.F) {
	seed, err := appendResponse(nil, &Response{Model: "m", Version: 1,
		Features: []*tensor.Tensor{wireTensor(43, 2, 8)}}, false, false, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	errFrame, err := appendResponse(nil, &Response{Err: "x"}, false, false, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(errFrame)
	// The admission-control shed frame, exactly as the dispatcher emits it
	// on a v2 connection.
	shed, err := appendResponse(nil, &Response{Err: overloadedMsg, Code: CodeOverloaded}, false, true, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(shed)
	// The v3 traced response: trace-ID echo ahead of the v2 payload, plus a
	// truncated-echo corruption.
	echoed, err := appendResponse(nil, &Response{Model: "m", Version: 1,
		Features: []*tensor.Tensor{wireTensor(43, 2, 8)}}, false, true, 0xFEEDFACECAFEBEEF)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(echoed)
	f.Add([]byte{wireMsgResponseTraced, 0xEF, 0xBE})
	f.Fuzz(func(t *testing.T, body []byte) {
		var v1 Response
		_ = parseResponseInto(body, &v1, false, nil)
		var resp Response
		if err := parseResponseInto(body, &resp, true, nil); err != nil {
			return
		}
		re, err := appendResponse(nil, &resp, false, true, 0)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %v", err)
		}
		var resp2 Response
		if err := parseResponseInto(re, &resp2, true, nil); err != nil {
			t.Fatalf("re-encoded response does not parse: %v", err)
		}
		if resp2.Code != resp.Code || resp2.Err != resp.Err {
			t.Fatalf("response code/err does not round-trip: (%d,%q) vs (%d,%q)",
				resp.Code, resp.Err, resp2.Code, resp2.Err)
		}
	})
}

// FuzzWireStream covers the wiretap/stream parser over both protocols,
// hello negotiation included — seeds now cover the v2 hello with the
// window-advice bytes set, which the request-stream parser must skip like
// any other hello.
func FuzzWireStream(f *testing.F) {
	var bin bytes.Buffer
	hello := helloBytes(wireVersion, 0)
	bin.Write(hello[:])
	c := &binClientCodec{binFramer: binFramer{w: &bin}}
	if err := c.writeRequest(&Request{Features: wireTensor(44, 1, 1, 2, 2)}, trace.Context{}); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	// A v2-negotiated stream: hello-ack bytes carrying a 25ms batch-window
	// advice followed by a frame (what a wiretap of the server→client
	// direction of a batching server opens with).
	var ackStream bytes.Buffer
	ack := helloAckBytes(wireVersion, wireFlagF32, 25)
	ackStream.Write(ack[:])
	ackStream.Write(bin.Bytes()[8:])
	f.Add(ackStream.Bytes())
	f.Add([]byte{0xE5, 'N', 'S', 'B'})
	f.Add([]byte{0xE5, 'N', 'S', 'B', 2, 0, 0xFF, 0xFF})
	f.Add([]byte{3, 0xFF})
	// A v3 stream whose request frame carries the trace header.
	var tracedStream bytes.Buffer
	h3 := helloBytes(wireVersion, 0)
	tracedStream.Write(h3[:])
	c3 := &binClientCodec{binFramer: binFramer{w: &tracedStream}, traceOK: true}
	if err := c3.writeRequest(&Request{Features: wireTensor(44, 1, 1, 2, 2)},
		trace.Context{ID: 7, Sampled: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(tracedStream.Bytes())
	f.Fuzz(func(t *testing.T, stream []byte) {
		_, _ = DecodeWireStream(stream)
	})
}

// FuzzWireTracedFrames is the trace-extension trust boundary: arbitrary
// bytes through the traced request parser must never panic, anything that
// parses must carry a nonzero trace ID (the zero ID is the reserved
// "untraced" value and the parser rejects it), and the trace context must
// round-trip exactly — a sampled flag or ID that mutates in flight would
// stitch legs onto the wrong trace.
func FuzzWireTracedFrames(f *testing.F) {
	for _, tc := range []trace.Context{
		{ID: 1},
		{ID: ^uint64(0), Sampled: true},
		{ID: 0x0123456789ABCDEF, Sampled: true},
	} {
		seed, err := appendRequest(nil, &Request{Model: "m", Features: wireTensor(41, 1, 2, 4, 4)}, false, tc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte{wireMsgRequestTraced, 0, 0, 0, 0, 0, 0, 0, 0, 0})    // zero ID: must be rejected
	f.Add([]byte{wireMsgRequestTraced, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF}) // unknown tflags bits
	f.Add([]byte{wireMsgRequestTraced, 1, 2, 3, 4})                   // truncated ID
	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		var tc trace.Context
		j := newJob()
		if err := parseRequestInto(body, &req, (*arenaAlloc)(&j.arena), j, &tc); err != nil {
			return
		}
		if len(body) > 0 && body[0] == wireMsgRequestTraced && tc.ID == 0 {
			t.Fatal("traced frame parsed with the reserved zero trace ID")
		}
		re, err := appendRequest(nil, &req, false, tc)
		if err != nil {
			t.Fatalf("decoded traced request does not re-encode: %v", err)
		}
		var req2 Request
		var tc2 trace.Context
		if err := parseRequestInto(re, &req2, heapAlloc{}, nil, &tc2); err != nil {
			t.Fatalf("re-encoded traced request does not parse: %v", err)
		}
		if tc2 != tc {
			t.Fatalf("trace context does not round-trip: %+v vs %+v", tc, tc2)
		}
	})
}

// FuzzWireHelloAck runs arbitrary bytes through the client's half of the
// hello exchange — the window-negotiation surface a hostile server controls.
// The client must never panic, never accept a version above what it offered,
// and any window it does accept must be what the ack's u16 encodes.
func FuzzWireHelloAck(f *testing.F) {
	good := helloAckBytes(wireVersion, 0, 0)
	f.Add(good[:])
	v1 := helloAckBytes(1, wireFlagF32, 0)
	f.Add(v1[:])
	windowed := helloAckBytes(2, 0, 25)
	f.Add(windowed[:])
	tooNew := helloAckBytes(99, 0, 0)
	f.Add(tooNew[:])
	f.Add([]byte("notmagic"))
	f.Add([]byte{0xE5, 'N', 'S', 'B', 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ack []byte) {
		var sink bytes.Buffer
		ver, _, window, err := negotiateClient(&sink, bufio.NewReader(bytes.NewReader(ack)), true, "fuzz-client")
		if err != nil {
			return
		}
		if ver < 1 || ver > wireVersion {
			t.Fatalf("accepted wire version %d outside [1,%d]", ver, wireVersion)
		}
		if window < 0 || window > 65535*1_000_000 {
			t.Fatalf("accepted window %v outside the u16-milliseconds range", window)
		}
		// The client declares its identity only to an ack that both names v4
		// and echoes the flag; everything else must keep the post-hello wire
		// silent (a v3 server would parse the ID frame as its first request).
		if sent := sink.Len() > 8; sent != (ver >= 4 && len(ack) >= 6 && ack[5]&wireFlagClientID != 0) {
			t.Fatalf("client-ID frame presence wrong: wrote %d bytes after an ack with version %d flags %#x",
				sink.Len()-8, ver, ack[5])
		}
	})
}

// FuzzWireHelloClientID is the server's trust boundary for the v4 identity
// extension: arbitrary bytes through the client-ID frame parser must never
// panic, anything accepted must satisfy the declared identity discipline
// (1-64 printable ASCII bytes, nothing trailing), and valid IDs must
// round-trip through the encoder exactly.
func FuzzWireHelloClientID(f *testing.F) {
	f.Add(appendClientID(nil, "client-a"))
	f.Add(appendClientID(nil, "did:key:z6MkhaXgBZDvotDkL5257faiztiGiC2QtKLGpbnnEGta2doK"))
	f.Add([]byte{wireMsgClientID, 0})                    // zero-length ID
	f.Add([]byte{wireMsgClientID, 5, 'a', 'b'})          // truncated body
	f.Add([]byte{wireMsgClientID, 1, ' '})               // space: not printable-ASCII per the wire rule
	f.Add([]byte{wireMsgClientID, 2, 'o', 'k', 'x'})     // trailing bytes
	f.Add([]byte{wireMsgClientID, 1, 0x00})              // control byte
	f.Add([]byte{wireMsgClientID, 3, 'a', 0xFF, 'b'})    // high bit set
	f.Add([]byte{wireMsgRequest, 2, 'o', 'k'})           // wrong message type
	f.Add(appendClientID(nil, string(make([]byte, 65)))) // over the length cap
	f.Fuzz(func(t *testing.T, body []byte) {
		id, err := parseClientID(body)
		if err != nil {
			return
		}
		if !ValidClientID(id) {
			t.Fatalf("parser accepted invalid client ID %q", id)
		}
		re := appendClientID(nil, id)
		id2, err := parseClientID(re)
		if err != nil || id2 != id {
			t.Fatalf("client ID does not round-trip: %q -> %q (%v)", id, id2, err)
		}
	})
}
