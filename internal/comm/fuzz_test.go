package comm

import (
	"bytes"
	"testing"

	"ensembler/internal/tensor"
)

// FuzzWireRequestFrame runs arbitrary bytes through the binary request
// parser — the server's trust boundary for everything after the frame
// length. The parser must never panic and never allocate beyond what the
// frame's actual byte count supports (the lying-dims guard); round-tripping
// whatever decodes must reproduce the frame's semantics.
func FuzzWireRequestFrame(f *testing.F) {
	seed, err := appendRequest(nil, &Request{Model: "m", Version: 2, Features: wireTensor(41, 1, 2, 4, 4)}, false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	batched, err := appendRequest(nil, &Request{Inputs: []*tensor.Tensor{wireTensor(42, 1, 2, 4, 4)}}, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batched)
	f.Add([]byte{wireMsgRequest, 0, 0, 0, 0, 0, 0, wireKindFeatures, 1, 0, 1, wireDtypeF64, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		var req Request
		if err := parseRequestInto(body, &req, heapAlloc{}, nil); err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse to the same header.
		re, err := appendRequest(nil, &req, false)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		var req2 Request
		if err := parseRequestInto(re, &req2, heapAlloc{}, nil); err != nil {
			t.Fatalf("re-encoded request does not parse: %v", err)
		}
		if req2.Model != req.Model || req2.Version != req.Version {
			t.Fatal("request header does not round-trip")
		}
	})
}

// FuzzWireResponseFrame covers the client's half of the trust boundary: the
// server is the adversary of the threat model, so its frames deserve the
// same hostility testing as requests.
func FuzzWireResponseFrame(f *testing.F) {
	seed, err := appendResponse(nil, &Response{Model: "m", Version: 1,
		Features: []*tensor.Tensor{wireTensor(43, 2, 8)}}, false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	errFrame, err := appendResponse(nil, &Response{Err: "x"}, false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(errFrame)
	f.Fuzz(func(t *testing.T, body []byte) {
		var resp Response
		_ = parseResponseInto(body, &resp)
	})
}

// FuzzWireStream covers the wiretap/stream parser over both protocols,
// hello negotiation included.
func FuzzWireStream(f *testing.F) {
	var bin bytes.Buffer
	hello := helloBytes(wireVersion, 0)
	bin.Write(hello[:])
	c := &binClientCodec{binFramer{w: &bin}}
	if err := c.writeRequest(&Request{Features: wireTensor(44, 1, 1, 2, 2)}); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add([]byte{0xE5, 'N', 'S', 'B'})
	f.Add([]byte{3, 0xFF})
	f.Fuzz(func(t *testing.T, stream []byte) {
		_, _ = DecodeWireStream(stream)
	})
}
