// Defense comparison: a narrated Table-I/II-style run on the CIFAR-10-like
// workload. It walks through the three training stages of Fig. 2, trains the
// baseline defenses (None, Single, Shredder, DR-single), and scores every
// pipeline against the same model-inversion battery.
//
//	go run ./examples/cifar_defense
package main

import (
	"fmt"
	"os"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/defense"
	"ensembler/internal/ensemble"
	"ensembler/internal/split"
)

func main() {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: 384, Aux: 192, Test: 96, Seed: 21})
	arch := split.DefaultArch(data.CIFAR10Like)
	opts := split.TrainOptions{Epochs: 5, BatchSize: 32, LR: 0.05}
	acfg := attack.Config{
		Arch: arch, ShadowEpochs: 20, DecoderEpochs: 8, BatchSize: 32,
		ShadowLR: 0.01, Seed: 31, StructuredShadow: true,
	}

	fmt.Println("baselines:")
	none := defense.TrainNone(arch, sp.Train, opts, 1)
	base := none.Accuracy(sp.Test)
	report := func(p defense.Pipeline, o attack.Outcome) {
		fmt.Printf("  %-10s ΔAcc %+6.2f%%  attack SSIM %.3f  PSNR %.2f\n",
			p.Name(), 100*(p.Accuracy(sp.Test)-base), o.SSIM, o.PSNR)
	}
	report(none, attack.RunDecoderAttack(acfg, "none", none.Bodies(), false, none, sp.Aux, sp.Test, 32))

	single := defense.TrainSingle(arch, 0.05, sp.Train, opts, 2)
	report(single, attack.RunDecoderAttack(acfg, "single", single.Bodies(), false, single, sp.Aux, sp.Test, 32))

	shred := defense.TrainShredder(arch, 0.05, 1e-3, sp.Train, opts, 3, nil)
	report(shred, attack.RunDecoderAttack(acfg, "shredder", shred.Bodies(), false, shred, sp.Aux, sp.Test, 32))

	dr := defense.TrainDRSingle(arch, 0.3, sp.Train, opts, 4)
	report(dr, attack.RunDecoderAttack(acfg, "dr-single", dr.Bodies(), false, dr, sp.Aux, sp.Test, 32))

	fmt.Println("\nEnsembler (Fig. 2 training pipeline):")
	cfg := ensemble.Config{
		Arch: arch, N: 4, P: 2, Sigma: 0.05, Lambda: 1.0, Seed: 5,
		Stage1:      opts,
		Stage3:      split.TrainOptions{Epochs: 8, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	fmt.Println("  stage 1: training N networks, each with its own fixed noise (Eq. 2)")
	fmt.Println("  stage 2: drawing the secret P-subset")
	fmt.Println("  stage 3: retraining head+tail against the frozen subset (Eq. 3)")
	ens := defense.TrainEnsembler(cfg, sp.Train, os.Stdout)

	x, _ := sp.Test.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	fmt.Printf("  head-vs-member cosine similarities (regularizer target ≈ 0): %.2f\n",
		ens.Ensembler().HeadCosines(x))

	singles := attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, 32)
	bs, bp := attack.BestBy(singles, "ssim"), attack.BestBy(singles, "psnr")
	ad := attack.AdaptiveAttack(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, 32)
	ensAcc := 100 * (ens.Accuracy(sp.Test) - base)
	fmt.Printf("  %-16s ΔAcc %+6.2f%%  SSIM %.3f  PSNR %.2f\n", "Ours - Adaptive", ensAcc, ad.SSIM, ad.PSNR)
	fmt.Printf("  %-16s ΔAcc %+6.2f%%  SSIM %.3f  PSNR %.2f\n", "Ours - SSIM", ensAcc, bs.SSIM, bs.PSNR)
	fmt.Printf("  %-16s ΔAcc %+6.2f%%  SSIM %.3f  PSNR %.2f\n", "Ours - PSNR", ensAcc, bp.SSIM, bp.PSNR)
}
