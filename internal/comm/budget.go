package comm

// Privacy-budget enforcement on the serving path. A server constructed with
// WithBudget charges every request's row count to the connection's client
// account (the wire-declared v4 identity, or an address bucket for legacy
// peers) and applies the guard's verdict: serve clean, serve with Gaussian
// noise on the response features as the budget drains, or refuse outright
// with CodeBudgetExhausted once it is spent. The charge is O(1) atomics and
// the noise is in-place arithmetic over arena tensors, so a guarded server
// keeps the zero-allocation steady state (BenchmarkServeRequestLoopLedger
// pins this).

import (
	"math"
	"net"
	"sync/atomic"

	"ensembler/internal/privacy"
	"ensembler/internal/tensor"
)

// budgetExhaustedMsg is the constant refusal text, mirroring overloadedMsg:
// building it per refusal would allocate exactly when a drained client is
// hammering the server.
const budgetExhaustedMsg = "privacy budget exhausted"

// WithBudget attaches a privacy-budget guard: every served row debits the
// requesting client's Rényi-loss account and the guard's escalation policy
// (noise → rotation → refusal) shapes the response. nil disables budgeting
// at zero hot-path cost.
func WithBudget(g *privacy.Guard) ServerOption {
	return func(o *serverOptions) { o.guard = g }
}

// addrBucket derives the ledger identity of a peer that declared no client
// ID (pre-v4 binary clients and all gob clients): the host portion of its
// remote address, so every connection from one machine shares one account.
// The prefix keeps address buckets disjoint from declared IDs, which are
// printable-ASCII and never contain "addr:" by way of the colon being legal
// — so the prefix namespace is enforced, not assumed: a declared ID equal to
// an address bucket string still maps to a different account only if it
// includes the prefix itself, which is fine — both spend real budget.
func addrBucket(addr net.Addr) string {
	if addr == nil {
		return "addr:unknown"
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil || host == "" {
		return "addr:" + addr.String()
	}
	return "addr:" + host
}

// noiseSeq seeds each job's private noise generator: a distinct odd seed per
// job, no clock or global RNG on the serving path.
var noiseSeq atomic.Uint64

// xorshift64 advances a job's noise state.
func xorshift64(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// gauss draws one standard normal via Box-Muller over the job's xorshift
// state — scalar math only, nothing escapes.
func gauss(s *uint64) float64 {
	u1 := (float64(xorshift64(s)>>11) + 1) / (1 << 53) // (0,1]: log never sees 0
	u2 := float64(xorshift64(s)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func noiseData(s *uint64, data []float64, sigma float64) {
	for i := range data {
		data[i] += sigma * gauss(s)
	}
}

func noiseData32(s *uint64, data []float32, sigma float64) {
	for i := range data {
		data[i] += float32(sigma * gauss(s))
	}
}

func noiseTensors(s *uint64, ts []*tensor.Tensor, sigma float64) {
	for _, t := range ts {
		noiseData(s, t.Data, sigma)
	}
}

func noiseTensors32(s *uint64, ts []*tensor.Tensor32, sigma float64) {
	for _, t := range ts {
		noiseData32(s, t.Data, sigma)
	}
}

// noiseResponse perturbs a successful response's payload in place with
// Gaussian noise of the job's verdict sigma — the budget-aware analogue of
// the client's own transmission noise, raising the floor of what a drained
// client's further queries can resolve. The tensors are arena-backed and
// about to be encoded, so in-place addition is safe and allocation-free.
func noiseResponse(j *job, resp *Response) {
	sigma := j.noiseSigma
	if sigma <= 0 {
		return
	}
	if j.rng == 0 {
		j.rng = noiseSeq.Add(1)*0x9E3779B97F4A7C15 | 1
	}
	if j.f32Resp {
		noiseTensors32(&j.rng, j.feats32, sigma)
		for _, row := range j.outputs32 {
			noiseTensors32(&j.rng, row, sigma)
		}
		return
	}
	noiseTensors(&j.rng, resp.Features, sigma)
	for _, row := range resp.Outputs {
		noiseTensors(&j.rng, row, sigma)
	}
}

// chargeJob runs the budget verdict for one job before any compute: a
// refusal fills the job's response (mirroring the dispatcher's shed — fixed
// text, honest code, no allocation) and reports false; otherwise the
// verdict's noise sigma is parked on the job for noiseResponse to apply
// after the forward pass.
func (s *Server) chargeJob(j *job) bool {
	// Fault site: an injected charge failure refuses the request before any
	// compute, like a ledger that cannot render a verdict — fail closed.
	if err := fpBudget.Inject(); err != nil {
		j.resp = Response{Err: err.Error()}
		return false
	}
	g := s.opts.guard
	if g == nil || j.account == nil {
		return true
	}
	_, rows := requestSize(j)
	v := g.Charge(j.account, rows)
	if v.Refuse {
		// Metrics stay honest without special-casing: both serving paths run
		// their usual record() over the refusal response (Err non-empty, so it
		// counts as an error).
		j.resp = Response{Err: budgetExhaustedMsg, Code: CodeBudgetExhausted}
		return false
	}
	j.noiseSigma = v.Sigma
	return true
}
