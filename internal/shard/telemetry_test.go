package shard_test

import (
	"context"
	"strings"
	"testing"

	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/shard"
	"ensembler/internal/telemetry"
)

// TestFleetMetricsExportAndRotateFanOut drives a K=2 fleet through an
// instrumented scatter-gather client and checks the exported per-shard
// series tell the story — then rotates the registry's selector and fans the
// rotation out to the fleet client, verifying inference matches the rotated
// pipeline afterwards (the shard servers are never touched by a rotation).
func TestFleetMetricsExportAndRotateFanOut(t *testing.T) {
	f := commtest.StartShards(t, 2, 4, 2, 51)
	client, err := shard.NewClient(f.ClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	treg := telemetry.NewRegistry()
	client.RegisterMetrics(treg)

	ctx := context.Background()
	images := imageBatch(2, 9)
	got, _, err := client.Infer(ctx, images)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(f.Pipeline.Predict(images), 1e-9) {
		t.Fatal("fleet inference does not match the pipeline")
	}

	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ensembler_shard_up{bodies="0..1",shard="1"} 1`,
		`ensembler_shard_up{bodies="2..3",shard="2"} 1`,
		`ensembler_shard_requests_total{bodies="0..1",shard="1"} 1`,
		`ensembler_shard_requests_total{bodies="2..3",shard="2"} 1`,
		`ensembler_shard_failures_total{bodies="0..1",shard="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Rotation fan-out: re-draw the secret subset in the registry, fan it
	// out to the fleet client, and verify the fleet now matches the rotated
	// pipeline.
	ep, err := f.Registry.RotateSelectorCause("fleet", "test", ensemble.RotateOptions{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	client.RotateTo(ep.Pipeline())
	got, _, err = client.Infer(ctx, images)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(ep.Pipeline().Predict(images), 1e-9) {
		t.Error("post-rotation fleet inference does not match the rotated pipeline")
	}
	if hist := f.Registry.RotationHistory("fleet"); len(hist) != 1 || hist[0].Cause != "test" {
		t.Errorf("rotation history = %+v, want one record with cause %q", hist, "test")
	}
}

// TestFleetMetricsReportDownShard kills a shard and checks the up gauge
// flips once the health tracker marks it down.
func TestFleetMetricsReportDownShard(t *testing.T) {
	// P=1 guarantees one of the two shards hosts no selected body.
	f := commtest.StartShards(t, 2, 4, 1, 53)
	cfg := f.ClientConfig()
	cfg.DownAfter = 1
	cfg.Retries = 0
	client, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	treg := telemetry.NewRegistry()
	client.RegisterMetrics(treg)

	_, unselected := shardHosting(t, f)
	if err := f.StopShard(unselected); err != nil {
		t.Fatalf("stopping shard: %v", err)
	}
	// Traffic keeps flowing (the dead shard hosts no selected body); its
	// failure marks it down.
	if _, _, err := client.Infer(context.Background(), imageBatch(1, 10)); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := treg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `ensembler_shard_up{bodies="` + f.Ranges[unselected].String() + `",shard="` +
		string(rune('1'+unselected)) + `"} 0`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}
