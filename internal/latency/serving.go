package latency

import "fmt"

// This file models the serving regimes of the comm subsystem: many client
// connections, a bounded pool of server-side workers (each holding a private
// replica of the N bodies), and batched requests that amortize protocol
// overhead. It is the analytic counterpart of the throughput benchmark in
// bench_test.go, built as a closed queueing system: each of C clients keeps
// exactly one request in flight, the server completes at most one request
// per worker every S seconds, and the round-trip time seen by an unloaded
// client is client compute + transfer + server compute.

// ServingScenario describes one operating point of the concurrent server.
type ServingScenario struct {
	Base    Scenario // device/link/model parameters; Base.Batch is ignored
	Workers int      // server worker replicas computing in parallel
	Clients int      // concurrent client connections, one request in flight each
	Batch   int      // images per request (InferBatch size × client batch)

	// EffectiveParallel caps how many workers actually compute
	// concurrently — the host's usable cores (GOMAXPROCS on the bench
	// host). A pool of 8 workers on 1 core serves like 1 worker; the
	// measured-vs-modeled gap of BENCH_2026-07-30 (0.94× measured against
	// 4.5× predicted) was exactly this clamp going unmodeled. 0 means
	// Workers (the historical, unclamped behavior).
	EffectiveParallel int

	// WireFactor scales transferred bytes relative to the float32 payload
	// the Table III link model assumes: the legacy float64 gob wire is
	// ≈ WireFactorGob, the binary codec WireFactorBinary (f64) or
	// WireFactorBinaryF32. 0 means 1 (float32-equivalent bytes).
	WireFactor float64

	// ComputeFactor scales the server-side body-pass time relative to the
	// float64 reference kernels the base scenario's FLOP model is calibrated
	// against: ComputeFactorF64 for the reference path, ComputeFactorF32 for
	// the vectorized float32 backend. Client compute is not scaled — the
	// tail stays with the client at whatever precision it chooses, and the
	// serving model only commits to the server's. 0 means 1 (float64).
	ComputeFactor float64
}

// Wire factors for the serving model, relative to raw float32 payloads.
const (
	// WireFactorGob: float64 values, gob type headers and per-message
	// self-description on top.
	WireFactorGob = 2.2
	// WireFactorBinary: the length-prefixed binary codec with float64
	// payloads — twice the float32 bytes, negligible framing.
	WireFactorBinary = 2.0
	// WireFactorBinaryF32: the binary codec shipping float32 — the link
	// model's native operating point.
	WireFactorBinaryF32 = 1.0
)

// Compute factors for the serving model, relative to the float64 reference
// kernels. Measured on the repo's own blocked kernels (BenchmarkServeRequestLoop
// in both precisions): the float32 backend halves memory traffic and doubles
// effective SIMD width, landing near 0.7× the f64 body-pass time on the CI
// host — conservative against the ≥1.2× throughput gate the CI enforces.
const (
	// ComputeFactorF64: the reference float64 path the FLOP model is
	// calibrated against.
	ComputeFactorF64 = 1.0
	// ComputeFactorF32: the vectorized float32 backend (8-wide panels,
	// half the bytes per cache line).
	ComputeFactorF32 = 0.7
)

// effectiveWorkers applies the host-parallelism clamp.
func (sc ServingScenario) effectiveWorkers() int {
	if sc.EffectiveParallel > 0 && sc.EffectiveParallel < sc.Workers {
		return sc.EffectiveParallel
	}
	return sc.Workers
}

// ServingEstimate is the model's prediction for one serving scenario.
type ServingEstimate struct {
	Name string
	// RequestSeconds is the unloaded round-trip latency of one request.
	RequestSeconds float64
	// ThroughputRPS is the sustained request rate with all clients active.
	ThroughputRPS float64
	// ThroughputIPS is the sustained image rate (requests × batch).
	ThroughputIPS float64
	// Utilization is the fraction of worker capacity kept busy.
	Utilization float64
}

// String formats one row of the serving table.
func (e ServingEstimate) String() string {
	return fmt.Sprintf("%-18s rtt %.3fs  %.2f req/s  %.1f img/s  util %.0f%%",
		e.Name, e.RequestSeconds, e.ThroughputRPS, e.ThroughputIPS, 100*e.Utilization)
}

// servingTimes evaluates the base scenario at the serving operating point,
// returning the unloaded round-trip time and the per-request server time.
// The wire factor scales only the communication component.
func servingTimes(sc *ServingScenario) (request, service float64) {
	base := sc.Base
	if sc.Batch <= 0 {
		sc.Batch = 1
	}
	if sc.Workers <= 0 {
		sc.Workers = 1
	}
	if sc.Clients <= 0 {
		sc.Clients = 1
	}
	wire := sc.WireFactor
	if wire <= 0 {
		wire = 1
	}
	compute := sc.ComputeFactor
	if compute <= 0 {
		compute = 1
	}
	base.Batch = sc.Batch
	b := Run(base)
	server := compute * b.Server
	return b.Client + server + wire*b.Communication, server
}

// EstimateServing evaluates the closed-system model: throughput is bounded
// both by the clients' request-issue rate (Clients / round-trip) and by the
// server pool's service rate (Workers / server-time-per-request).
func EstimateServing(sc ServingScenario) ServingEstimate {
	return EstimateServingRotated(sc, Rotation{})
}

// Rotation models the hot-swap cadence of the registry subsystem: every
// PeriodSeconds a new epoch is published (a selector rotation or a model
// publish), and each serving worker lazily rebuilds its private body
// replicas once per epoch, costing CloneSeconds of that worker's capacity.
type Rotation struct {
	// PeriodSeconds is the time between epoch swaps; <= 0 means never.
	PeriodSeconds float64
	// CloneSeconds is the time one worker spends re-cloning its N-body
	// replica set when it first sees a new epoch.
	CloneSeconds float64
}

// OverheadFraction returns the fraction of each worker's capacity spent
// re-cloning: CloneSeconds out of every PeriodSeconds, clamped to [0,1].
// The cost is per worker but does not grow with the pool — every worker
// pays one clone per epoch, concurrently, as requests arrive.
func (r Rotation) OverheadFraction() float64 {
	if r.PeriodSeconds <= 0 || r.CloneSeconds <= 0 {
		return 0
	}
	f := r.CloneSeconds / r.PeriodSeconds
	if f > 1 {
		return 1
	}
	return f
}

// EstimateServingRotated evaluates the closed-system model under a rotation
// cadence: the server pool's effective capacity shrinks by the overhead
// fraction while the unloaded round-trip time is unchanged (a request never
// waits on a clone already paid for by its worker). A zero Rotation is
// exactly EstimateServing. This is the analytic counterpart of
// BenchmarkHotSwap: rotation bounds what a curious server accumulates
// against one selector, and this term prices that privacy. It is the
// zero-audit slice of the general estimator (see EstimateServingAudited).
func EstimateServingRotated(sc ServingScenario, rot Rotation) ServingEstimate {
	return EstimateServingAudited(sc, rot, Audit{})
}

// servingName labels one serving estimate row.
func servingName(sc ServingScenario, rot Rotation) string {
	name := fmt.Sprintf("c=%d w=%d b=%d", sc.Clients, sc.Workers, sc.Batch)
	if sc.effectiveWorkers() < sc.Workers {
		name += fmt.Sprintf(" par=%d", sc.effectiveWorkers())
	}
	if rot.OverheadFraction() > 0 {
		name += fmt.Sprintf(" rot=%.0fs", rot.PeriodSeconds)
	}
	return name
}

// RotationSweep evaluates a serving scenario across rotation periods — the
// planning question the registry's -rotate-every flag asks: how often can
// the selector rotate before the hot-swap overhead bites into throughput?
func RotationSweep(base Scenario, workers, clients, batch int, cloneSeconds float64, periods []float64) []ServingEstimate {
	out := make([]ServingEstimate, len(periods))
	for i, p := range periods {
		out[i] = EstimateServingRotated(
			ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: batch},
			Rotation{PeriodSeconds: p, CloneSeconds: cloneSeconds})
	}
	return out
}

// ConcurrencySweep evaluates the scenario across client counts — the model
// behind the ">2× throughput under concurrency" serving claim: a single
// connection is round-trip-bound, so adding clients raises throughput until
// the worker pool saturates. maxParallel clamps the pool to the host's
// usable cores (pass the measured GOMAXPROCS; 0 leaves the pool unclamped):
// predictions are only comparable to a measurement when both ran at the
// same effective parallelism.
func ConcurrencySweep(base Scenario, workers, maxParallel, batch int, clients []int) []ServingEstimate {
	out := make([]ServingEstimate, len(clients))
	for i, c := range clients {
		out[i] = EstimateServing(ServingScenario{
			Base: base, Workers: workers, Clients: c, Batch: batch, EffectiveParallel: maxParallel})
	}
	return out
}

// BatchingSweep evaluates the scenario across request batch sizes: batching
// amortizes the per-round-trip RTT over more images, raising image
// throughput even at fixed concurrency.
func BatchingSweep(base Scenario, workers, clients int, batches []int) []ServingEstimate {
	out := make([]ServingEstimate, len(batches))
	for i, b := range batches {
		out[i] = EstimateServing(ServingScenario{Base: base, Workers: workers, Clients: clients, Batch: b})
	}
	return out
}

// ConcurrencySpeedup returns the predicted throughput ratio between clients
// concurrent connections and a single connection at the same batch size,
// with the pool clamped to maxParallel usable cores (0 = unclamped). At
// maxParallel=1 the prediction collapses toward 1× — the regime the
// GOMAXPROCS=1 bench of BENCH_2026-07-30 actually measured.
func ConcurrencySpeedup(base Scenario, workers, maxParallel, batch, clients int) float64 {
	one := EstimateServing(ServingScenario{
		Base: base, Workers: workers, Clients: 1, Batch: batch, EffectiveParallel: maxParallel})
	many := EstimateServing(ServingScenario{
		Base: base, Workers: workers, Clients: clients, Batch: batch, EffectiveParallel: maxParallel})
	return many.ThroughputRPS / one.ThroughputRPS
}
