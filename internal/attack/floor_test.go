package attack

import (
	"testing"

	"ensembler/internal/metrics"
	"ensembler/internal/tensor"
)

// TestDecoderTransferFloor pins the reproduction finding documented in
// EXPERIMENTS.md ("Fidelity notes" §2): a decoder trained to invert one
// head transfers to an *independently trained* head at a clearly degraded
// SSIM. The existence of this floor is why SSIM compresses mid-table
// defenses at this scale; the degradation (same-head ≫ cross-head) is what
// the Ensembler defense exploits.
func TestDecoderTransferFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sp := tinySplits(71)
	vA := trainVictim(sp, 72)
	vB := trainVictim(sp, 73) // independent head, same task/data

	cfg := Config{Arch: tinyArch(), DecoderEpochs: 8, BatchSize: 16, Seed: 74}
	featA := func(x *tensor.Tensor) *tensor.Tensor { return vA.ClientFeatures(x, false) }
	dec := TrainDecoder(cfg, featA, sp.Aux)

	idxs := make([]int, 16)
	for i := range idxs {
		idxs[i] = i
	}
	x, _ := sp.Test.Batch(idxs)
	same := metrics.BatchSSIM(dec.Reconstruct(vA.ClientFeatures(x, false)), x)
	cross := metrics.BatchSSIM(dec.Reconstruct(vB.ClientFeatures(x, false)), x)

	if same <= cross {
		t.Errorf("matched-head inversion (%.3f) must beat cross-head transfer (%.3f)", same, cross)
	}
	if same < 0.2 {
		t.Errorf("matched-head SSIM %.3f suspiciously low — decoder broken?", same)
	}
}
