package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// newTest builds a tracer with a deterministic-enough config for assertions:
// coin disabled unless rate is given, slow tracker disabled when slowN is 0
// (the Config zero value would mean "default 8").
func newTest(rate float64, slowN, capacity int) *Tracer {
	if rate == 0 {
		rate = -1
	}
	if slowN == 0 {
		slowN = -1
	}
	return New(Config{SampleRate: rate, SlowestN: slowN, Capacity: capacity})
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	var a Active
	ctx := tr.Root(&a)
	if ctx.ID != 0 {
		t.Fatalf("nil tracer minted ID %d", ctx.ID)
	}
	tr.Begin(&a, Context{})
	tr.Span(&a, StageForward, time.Now(), time.Millisecond)
	if tr.Finish(&a, false) {
		t.Fatal("nil tracer retained a trace")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if got := tr.TraceByID(1); got != nil {
		t.Fatalf("nil tracer TraceByID = %v", got)
	}
	if f, r := tr.Counts(); f != 0 || r != 0 {
		t.Fatalf("nil tracer counts = %d, %d", f, r)
	}
	if s := tr.StageStats(); s != nil {
		t.Fatalf("nil tracer stage stats = %v", s)
	}
	if tr.StageHistogram(StageForward) != nil {
		t.Fatal("nil tracer returned a histogram")
	}
	if tr.NewID() != 0 {
		t.Fatal("nil tracer minted an ID")
	}
}

func TestErrorAndShedAlwaysRetain(t *testing.T) {
	tr := newTest(-1, 0, 8) // no coin, no slow tracker
	var a Active

	tr.Begin(&a, Context{})
	if tr.Finish(&a, false) {
		t.Fatal("healthy request retained with sampling fully off")
	}

	tr.Begin(&a, Context{})
	if !tr.Finish(&a, true) {
		t.Fatal("errored request (errFlag) not retained")
	}

	tr.Begin(&a, Context{})
	a.MarkErr()
	if !tr.Finish(&a, false) {
		t.Fatal("errored request (MarkErr) not retained")
	}

	tr.Begin(&a, Context{})
	a.MarkShed()
	if !tr.Finish(&a, false) {
		t.Fatal("shed request not retained")
	}
	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	last := recs[len(recs)-1]
	if !last.Shed || last.Err {
		t.Fatalf("shed record flags = err:%v shed:%v", last.Err, last.Shed)
	}
}

func TestForcedContextRetains(t *testing.T) {
	tr := newTest(-1, 0, 8)
	var a Active
	tr.Begin(&a, Context{ID: 42, Sampled: true})
	if a.ID() != 42 {
		t.Fatalf("leg ID = %d, want upstream 42", a.ID())
	}
	if !tr.Finish(&a, false) {
		t.Fatal("upstream-sampled leg not retained")
	}
	legs := tr.TraceByID(42)
	if len(legs) != 1 || !legs[0].Forced {
		t.Fatalf("TraceByID(42) = %+v, want one forced record", legs)
	}
}

func TestCoinRateOneRetainsEverything(t *testing.T) {
	tr := newTest(1, 0, 64)
	var a Active
	for i := 0; i < 10; i++ {
		tr.Begin(&a, Context{})
		if !tr.Finish(&a, false) {
			t.Fatalf("request %d not retained at rate 1", i)
		}
	}
	if f, r := tr.Counts(); f != 10 || r != 10 {
		t.Fatalf("counts = %d finished, %d retained; want 10, 10", f, r)
	}
}

func TestSlowestRetention(t *testing.T) {
	tr := newTest(-1, 2, 64)
	var a Active
	// The first slowN legs seed the tracker and retain; after that only legs
	// at least as slow as the tracked minimum do. Seed durations increase so
	// measurement overhead can't reorder them.
	for i := 0; i < 2; i++ {
		tr.BeginAt(&a, Context{}, time.Now().Add(-time.Duration(i+1)*time.Second))
		if !tr.Finish(&a, false) {
			t.Fatalf("seed leg %d not retained by slow tracker", i)
		}
	}
	// A fast leg (microseconds) must now lose to the 1-second entries.
	tr.Begin(&a, Context{})
	if tr.Finish(&a, false) {
		t.Fatal("fast leg retained despite slower top-N")
	}
	// A slower-than-tracked leg must win.
	tr.BeginAt(&a, Context{}, time.Now().Add(-3*time.Second))
	if !tr.Finish(&a, false) {
		t.Fatal("slowest-yet leg not retained")
	}
}

func TestSlowTrackerDecays(t *testing.T) {
	tr := newTest(-1, 1, 64)
	var a Active
	tr.BeginAt(&a, Context{}, time.Now().Add(-time.Hour))
	tr.Finish(&a, false) // the tracker now remembers one huge outlier
	before := tr.slowMin.Load()
	tr.decaySlow()
	after := tr.slowMin.Load()
	if after >= before {
		t.Fatalf("decay did not lower the threshold: %d -> %d", before, after)
	}
}

func TestSpanRecordingAndStageDur(t *testing.T) {
	tr := newTest(1, 0, 8)
	var a Active
	start := time.Now()
	tr.BeginAt(&a, Context{}, start)
	tr.Span(&a, StageDecode, start, time.Millisecond)
	tr.SpanArg(&a, StageScatter, 3, start.Add(time.Millisecond), 2*time.Millisecond)
	tr.SpanArg(&a, StageScatter, 1, start.Add(time.Millisecond), time.Millisecond)
	tr.Span(&a, StageForward, start.Add(-time.Millisecond), -5*time.Millisecond) // negative dur clamps to 0
	if !tr.Finish(&a, false) {
		t.Fatal("not retained at rate 1")
	}
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("snapshot has %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.N != 4 {
		t.Fatalf("record has %d spans, want 4", r.N)
	}
	if got := r.StageDur(StageScatter); got != 3*time.Millisecond {
		t.Fatalf("scatter stage dur = %v, want 3ms", got)
	}
	if got := r.StageDur(StageForward); got != 0 {
		t.Fatalf("negative-duration span not clamped: %v", got)
	}
	if r.Spans[1].Arg != 3 || r.Spans[2].Arg != 1 {
		t.Fatalf("span args = %d, %d; want 3, 1", r.Spans[1].Arg, r.Spans[2].Arg)
	}
	if r.Spans[3].Start >= 0 {
		t.Fatalf("pre-Begin span offset = %d, want negative", r.Spans[3].Start)
	}
}

func TestSpanOverflowCountsDropped(t *testing.T) {
	tr := newTest(1, 0, 8)
	var a Active
	tr.Begin(&a, Context{})
	for i := 0; i < MaxSpans+5; i++ {
		tr.Span(&a, StageForward, time.Now(), time.Microsecond)
	}
	tr.Finish(&a, false)
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].N != MaxSpans || recs[0].Dropped != 5 {
		t.Fatalf("overflow record: n=%d dropped=%d (len %d), want n=%d dropped=5",
			recs[0].N, recs[0].Dropped, len(recs), MaxSpans)
	}
}

func TestSpansAreNotRecordedOutsideALeg(t *testing.T) {
	tr := newTest(1, 0, 8)
	var a Active
	tr.Span(&a, StageForward, time.Now(), time.Millisecond) // before Begin: histogram only
	tr.Begin(&a, Context{})
	tr.Finish(&a, false)
	tr.Span(&a, StageForward, time.Now(), time.Millisecond) // after Finish: histogram only
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].N != 0 {
		t.Fatalf("dead-leg spans leaked into the record: n=%d", recs[0].N)
	}
	// Both observations still reached the stage histogram.
	if c := tr.StageHistogram(StageForward).Count(); c != 2 {
		t.Fatalf("forward histogram count = %d, want 2", c)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := newTest(1, 0, 4) // capacity rounds to 4
	var a Active
	for i := 0; i < 10; i++ {
		tr.Begin(&a, Context{ID: uint64(i + 1)})
		tr.Finish(&a, false)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.ID < 7 {
			t.Fatalf("ring kept stale trace %d after wrap", r.ID)
		}
	}
}

func TestTraceByIDStitchesLegs(t *testing.T) {
	tr := newTest(-1, 0, 16)
	var root, leg Active
	ctx := Context{ID: tr.NewID(), Sampled: true}
	tr.BeginAt(&root, ctx, time.Now().Add(-time.Millisecond))
	tr.Begin(&leg, ctx)
	tr.Finish(&leg, false)
	tr.Finish(&root, false)
	legs := tr.TraceByID(ctx.ID)
	if len(legs) != 2 {
		t.Fatalf("stitched %d legs, want 2", len(legs))
	}
	if legs[0].Start > legs[1].Start {
		t.Fatal("legs not sorted by start time")
	}
}

func TestNewIDsAreDistinctAndNonzero(t *testing.T) {
	tr := newTest(-1, 0, 8)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NewID()
		if id == 0 || seen[id] {
			t.Fatalf("id %d at draw %d: zero or repeated", id, i)
		}
		seen[id] = true
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageDecode: "decode", StageQueue: "queue", StageBatchWait: "batch_wait",
		StageForward: "forward", StageEncode: "encode", StageShed: "shed",
		StageClient: "client", StageScatter: "scatter", StageHedge: "hedge",
		StageRetry: "retry", numStages: "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

func TestStageStats(t *testing.T) {
	tr := newTest(-1, 0, 8)
	var a Active
	tr.Begin(&a, Context{})
	for i := 0; i < 100; i++ {
		tr.Span(&a, StageForward, time.Now(), 10*time.Millisecond)
	}
	tr.Finish(&a, false)
	stats := tr.StageStats()
	if len(stats) != 1 {
		t.Fatalf("StageStats has %d rows, want 1 (only forward observed)", len(stats))
	}
	s := stats[0]
	if s.Stage != "forward" || s.Count != 100 {
		t.Fatalf("row = %+v", s)
	}
	// 10ms falls in a bucket; mean is exact, p99 is bucket-interpolated.
	if s.Mean < 9*time.Millisecond || s.Mean > 11*time.Millisecond {
		t.Fatalf("mean = %v, want ~10ms", s.Mean)
	}
	if s.P99 < 5*time.Millisecond || s.P99 > 50*time.Millisecond {
		t.Fatalf("p99 = %v, want within the 10ms bucket's bounds", s.P99)
	}
}

func TestConcurrentFinishAndScrape(t *testing.T) {
	tr := newTest(1, 4, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a Active
			for i := 0; i < 500; i++ {
				ctx := tr.Root(&a)
				tr.Span(&a, StageForward, time.Now(), time.Microsecond)
				tr.Finish(&a, i%7 == 0)
				_ = ctx
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, r := range tr.Snapshot() {
				if r.ID == 0 {
					t.Error("snapshot returned a zero-ID record")
					return
				}
			}
		}
	}()
	wg.Wait()
	finished, retained := tr.Counts()
	if finished != 2000 {
		t.Fatalf("finished = %d, want 2000", finished)
	}
	if retained+tr.dropped.Load() != 2000 {
		t.Fatalf("retained %d + dropped %d != finished 2000", retained, tr.dropped.Load())
	}
}

func TestChromeExportValidates(t *testing.T) {
	tr := newTest(1, 0, 8)
	var a Active
	ctx := tr.Root(&a)
	tr.Span(&a, StageDecode, time.Now(), time.Millisecond)
	tr.SpanArg(&a, StageScatter, 0, time.Now(), 2*time.Millisecond)
	tr.Finish(&a, false)

	var shed Active
	tr.Begin(&shed, Context{ID: ctx.ID})
	shed.MarkShed()
	tr.Finish(&shed, false)

	var buf jsonBuffer
	if err := WriteChrome(&buf, tr.TraceByID(ctx.ID)); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	// The output must be valid Chrome trace-event JSON: a traceEvents array
	// of objects each carrying ph/pid/tid, loadable by Perfetto.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.b, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.b)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 legs: each has one metadata event and one enclosing request event,
	// plus the root leg's 2 spans.
	if len(doc.TraceEvents) != 2*2+2 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), buf.b)
	}
	var sawShedName, sawTraceID bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid != 1 || ev.Tid < 1 {
			t.Fatalf("event ids pid=%d tid=%d", ev.Pid, ev.Tid)
		}
		if ev.Ph == "M" {
			if name, _ := ev.Args["name"].(string); name == "leg 2 (shed)" {
				sawShedName = true
			}
		}
		if ev.Name == "request" {
			if _, ok := ev.Args["trace_id"].(string); ok {
				sawTraceID = true
			}
		}
	}
	if !sawShedName {
		t.Fatal("shed leg not labeled in metadata")
	}
	if !sawTraceID {
		t.Fatal("request event missing trace_id arg")
	}
}

// jsonBuffer avoids importing bytes just for a writer.
type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}

// TestHotPathAllocs is the tracing half of the repo's zero-allocation
// contract: Begin + spans + Finish allocate nothing, whether the leg is
// retained (rate 1: every Finish copies into the ring) or not (rate
// disabled: pure histogram feeding).
func TestHotPathAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"sampling_off", -1},
		{"retain_all", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := New(Config{SampleRate: tc.rate, SlowestN: 4, Capacity: 64})
			var a Active
			start := time.Now()
			allocs := testing.AllocsPerRun(1000, func() {
				tr.Begin(&a, Context{})
				tr.Span(&a, StageDecode, start, time.Microsecond)
				tr.Span(&a, StageQueue, start, time.Microsecond)
				tr.SpanArg(&a, StageForward, 2, start, time.Millisecond)
				tr.Span(&a, StageEncode, start, time.Microsecond)
				tr.Finish(&a, false)
			})
			if allocs != 0 {
				t.Fatalf("traced hot path allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.rate != DefaultSampleRate {
		t.Fatalf("default rate = %v", tr.rate)
	}
	if tr.slowN != 8 {
		t.Fatalf("default slowN = %d", tr.slowN)
	}
	if len(tr.slots) != 256 {
		t.Fatalf("default capacity = %d", len(tr.slots))
	}
	// Capacity rounds up to a power of two.
	if tr2 := New(Config{Capacity: 100}); len(tr2.slots) != 128 {
		t.Fatalf("capacity 100 rounded to %d, want 128", len(tr2.slots))
	}
}
