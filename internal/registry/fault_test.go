package registry_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensembler/internal/faultpoint"
	"ensembler/internal/registry"
)

// tornPublish drives one publish into the given fault and asserts it failed
// with the injected error, leaving a crash-simulating temp dir behind.
func tornPublish(t *testing.T, s *registry.Store, site string, seed int64) {
	t.Helper()
	faultpoint.Enable(site, faultpoint.Policy{Kind: faultpoint.Error, Count: 1})
	if _, err := s.Publish("m", pipeline(seed)); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("publish with %s fault: err = %v, want injected", site, err)
	}
}

// countTempDirs counts stale .publish-* dirs left in one model's directory.
func countTempDirs(t *testing.T, modelDir string) int {
	t.Helper()
	entries, err := os.ReadDir(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".publish-") {
			n++
		}
	}
	return n
}

// TestTornPublishQuarantinedOnReopen: a publish that crashes at the rename
// (or at the manifest fsync) leaves only a temp dir — never a visible
// version — and the next Open sweeps it into the quarantine area while the
// previously published version keeps loading bit-for-bit.
func TestTornPublishQuarantinedOnReopen(t *testing.T) {
	defer faultpoint.DisableAll()
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := pipeline(1)
	if _, err := s.Publish("m", e); err != nil {
		t.Fatal(err)
	}

	tornPublish(t, s, "registry/publish-rename", 2)
	tornPublish(t, s, "registry/manifest-fsync", 3)
	if n := countTempDirs(t, filepath.Join(dir, "m")); n != 2 {
		t.Fatalf("%d stale temp dirs after two torn publishes, want 2", n)
	}

	// Crash-recovery pass: reopening the store quarantines the wreckage.
	s2, err := registry.Open(dir)
	if err != nil {
		t.Fatalf("store with torn publishes failed to open: %v", err)
	}
	q := s2.Quarantined()
	if len(q) != 2 {
		t.Fatalf("Quarantined() = %v, want 2 entries", q)
	}
	for _, name := range q {
		if !strings.HasPrefix(name, "m/.publish-") {
			t.Fatalf("quarantined entry %q not of form m/.publish-*", name)
		}
		if _, err := os.Stat(filepath.Join(dir, ".quarantine", name)); err != nil {
			t.Fatalf("quarantined entry %q not preserved on disk: %v", name, err)
		}
	}
	if n := countTempDirs(t, filepath.Join(dir, "m")); n != 0 {
		t.Fatalf("%d temp dirs survived the sweep, want 0", n)
	}

	// The quarantine area is store-internal: invisible to Models(), and the
	// good version is untouched.
	models, err := s2.Models()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if strings.HasPrefix(m, ".") {
			t.Fatalf("Models() leaked internal entry %q", m)
		}
	}
	loaded, v, err := s2.Load("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("latest version after recovery = %d, want 1", v)
	}
	x := images(4, 2)
	if !loaded.Predict(x).AllClose(e.Predict(x), 1e-12) {
		t.Error("recovered store loads a different pipeline")
	}

	// A clean store reports nothing quarantined.
	if len(s.Quarantined()) != 0 {
		t.Fatalf("pre-crash handle reports quarantined entries: %v", s.Quarantined())
	}

	// Publishing still works after recovery and resumes the version counter.
	v2, err := s2.Publish("m", pipeline(5))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("post-recovery publish got version %d, want 2", v2)
	}
}

// TestQuarantinePruneCap: the quarantine area keeps only the newest
// maxQuarantined (8) torn publishes per model — a crash-looping publisher
// cannot fill the disk with evidence.
func TestQuarantinePruneCap(t *testing.T) {
	defer faultpoint.DisableAll()
	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("m", pipeline(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		tornPublish(t, s, "registry/publish-rename", int64(10+i))
	}
	s2, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Quarantined()) != 11 {
		t.Fatalf("sweep reported %d torn publishes, want 11", len(s2.Quarantined()))
	}
	entries, err := os.ReadDir(filepath.Join(dir, ".quarantine", "m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("quarantine holds %d entries after prune, want 8", len(entries))
	}
}

// TestEpochLoadFault: a fault at epoch load surfaces as a wrapped injected
// error and a clean retry succeeds — the load path has no sticky state.
func TestEpochLoadFault(t *testing.T) {
	defer faultpoint.DisableAll()
	s, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("m", pipeline(1)); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable("registry/epoch-load", faultpoint.Policy{Kind: faultpoint.Error, Count: 1})
	_, _, err = s.Load("m", 0)
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("Load with epoch fault: err = %v, want injected", err)
	}
	if !strings.Contains(err.Error(), `model "m"`) {
		t.Fatalf("load fault error lost the model identity: %v", err)
	}
	if _, _, err := s.Load("m", 0); err != nil {
		t.Fatalf("clean retry after load fault failed: %v", err)
	}
}
