package optim

import (
	"math"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// quadratic sets up a single parameter with loss L = 0.5*||w - target||².
func quadGrad(p *nn.Param, target []float64) {
	for i := range p.Value.Data {
		p.Grad.Data[i] += p.Value.Data[i] - target[i]
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{5, -3, 2}, 3))
	target := []float64{1, 2, 3}
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		quadGrad(p, target)
		opt.Step()
	}
	for i, w := range p.Value.Data {
		if math.Abs(w-target[i]) > 1e-4 {
			t.Errorf("w[%d] = %v, want %v", i, w, target[i])
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p := nn.NewParam("w", tensor.FromSlice([]float64{10}, 1))
		opt := NewSGD([]*nn.Param{p}, 0.01, momentum, 0)
		for i := 0; i < 50; i++ {
			quadGrad(p, []float64{0})
			opt.Step()
		}
		return math.Abs(p.Value.Data[0])
	}
	if run(0.9) >= run(0) {
		t.Error("momentum should accelerate convergence on a smooth quadratic")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{1}, 1))
	opt := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5)
	// Zero task gradient: only decay acts.
	for i := 0; i < 10; i++ {
		opt.Step()
	}
	if w := p.Value.Data[0]; w >= 1 || w <= 0 {
		t.Errorf("weight decay should shrink toward zero, got %v", w)
	}
}

func TestSGDZeroesGradAfterStep(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{1}, 1))
	opt := NewSGD([]*nn.Param{p}, 0.1, 0.9, 0)
	p.Grad.Data[0] = 3
	opt.Step()
	if p.Grad.Data[0] != 0 {
		t.Error("Step must clear gradients")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := nn.NewParam("w", tensor.FromSlice([]float64{5, -4}, 2))
	target := []float64{-1, 2}
	opt := NewAdam([]*nn.Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		quadGrad(p, target)
		opt.Step()
	}
	for i, w := range p.Value.Data {
		if math.Abs(w-target[i]) > 1e-3 {
			t.Errorf("w[%d] = %v, want %v", i, w, target[i])
		}
	}
}

func TestAdamHandlesSparseScales(t *testing.T) {
	// One coordinate has gradients 1000× the other; Adam should still move
	// both toward the optimum.
	p := nn.NewParam("w", tensor.FromSlice([]float64{1, 1}, 2))
	opt := NewAdam([]*nn.Param{p}, 0.05)
	for i := 0; i < 400; i++ {
		p.Grad.Data[0] += 1000 * p.Value.Data[0]
		p.Grad.Data[1] += 0.001 * p.Value.Data[1]
		opt.Step()
	}
	if math.Abs(p.Value.Data[0]) > 1e-2 {
		t.Errorf("large-scale coord did not converge: %v", p.Value.Data[0])
	}
	if p.Value.Data[1] >= 1 {
		t.Errorf("small-scale coord did not move: %v", p.Value.Data[1])
	}
}

func TestLinearRegressionEndToEnd(t *testing.T) {
	// Train a Linear layer to fit y = 2x₀ - x₁ + 0.5 with SGD.
	r := rng.New(1)
	lin := nn.NewLinear("fc", 2, 1, r)
	opt := NewSGD(lin.Params(), 0.05, 0.9, 0)
	for epoch := 0; epoch < 300; epoch++ {
		x := tensor.New(16, 2)
		r.FillNormal(x.Data, 0, 1)
		target := tensor.New(16, 1)
		for i := 0; i < 16; i++ {
			target.Data[i] = 2*x.At(i, 0) - x.At(i, 1) + 0.5
		}
		pred := lin.Forward(x, true)
		_, grad := nn.MSELoss(pred, target)
		lin.Backward(grad)
		opt.Step()
	}
	if w0 := lin.W.Value.At(0, 0); math.Abs(w0-2) > 0.02 {
		t.Errorf("w0 = %v, want 2", w0)
	}
	if w1 := lin.W.Value.At(0, 1); math.Abs(w1+1) > 0.02 {
		t.Errorf("w1 = %v, want -1", w1)
	}
	if b := lin.B.Value.Data[0]; math.Abs(b-0.5) > 0.02 {
		t.Errorf("b = %v, want 0.5", b)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("w", tensor.New(2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	after := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(after-1) > 1e-12 {
		t.Errorf("post-clip norm = %v, want 1", after)
	}
	// Below the threshold nothing changes.
	norm2 := ClipGradNorm([]*nn.Param{p}, 10)
	if math.Abs(norm2-1) > 1e-12 || math.Abs(math.Hypot(p.Grad.Data[0], p.Grad.Data[1])-1) > 1e-12 {
		t.Error("clip below threshold should be a no-op")
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(1.0, 0.5, 10)
	if sched(0) != 1.0 || sched(9) != 1.0 {
		t.Error("first period should keep base LR")
	}
	if sched(10) != 0.5 || sched(25) != 0.25 {
		t.Errorf("decay wrong: %v %v", sched(10), sched(25))
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	sched := CosineDecay(1.0, 0.1, 100)
	if math.Abs(sched(0)-1.0) > 1e-12 {
		t.Errorf("start = %v", sched(0))
	}
	if got := sched(100); got != 0.1 {
		t.Errorf("end = %v", got)
	}
	if mid := sched(50); math.Abs(mid-0.55) > 1e-9 {
		t.Errorf("mid = %v, want 0.55", mid)
	}
	if sched(150) != 0.1 {
		t.Error("past-total should clamp to floor")
	}
}

func TestSetLR(t *testing.T) {
	p := nn.NewParam("w", tensor.New(1))
	var opts = []Optimizer{
		NewSGD([]*nn.Param{p}, 0.1, 0, 0),
		NewAdam([]*nn.Param{p}, 0.1),
	}
	for _, o := range opts {
		o.SetLR(0.01)
		if o.LR() != 0.01 {
			t.Errorf("%T LR = %v", o, o.LR())
		}
	}
}
