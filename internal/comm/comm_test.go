package comm

import (
	"context"
	"net"
	"testing"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

func tinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

// startServer spins a loopback TCP server over the given bodies and returns
// its address.
func startServer(t *testing.T, bodies []*nn.Network) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go NewServer(bodies).Serve(context.Background(), ln)
	return ln.Addr().String()
}

// buildPipeline trains a tiny ensemble and returns it with its dataset.
func buildPipeline(t *testing.T) (*ensemble.Ensembler, *data.Dataset) {
	t.Helper()
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 64, Aux: 16, Test: 32, Seed: 5})
	for _, ds := range []*data.Dataset{sp.Train, sp.Test} {
		ds.Classes = 4
		for i, l := range ds.Labels {
			ds.Labels[i] = l % 4
		}
	}
	cfg := ensemble.Config{
		Arch: tinyArch(), N: 3, P: 2, Sigma: 0.05, Lambda: 0.5, Seed: 7,
		Stage1:      split.TrainOptions{Epochs: 2, BatchSize: 16, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 2, BatchSize: 16, LR: 0.05},
		Stage1Noise: true,
	}
	return ensemble.Train(cfg, sp.Train, nil), sp.Test
}

// wire connects a client to the trained pipeline's client-side functions.
// The live networks cache forward state, so this form is for one client at a
// time; concurrent clients use wireRuntime.
func wire(c *Client, e *ensemble.Ensembler) {
	c.ComputeFeatures = e.ClientFeatures
	c.Select = e.Selector.Apply
	c.Tail = e.Tail
}

// wireRuntime wires a client through its own cloned copy of the client-side
// networks, making it independent of every other client.
func wireRuntime(c *Client, e *ensemble.Ensembler) {
	rt := e.NewClientRuntime()
	c.ComputeFeatures = rt.Features
	c.Select = rt.Select
	c.Tail = rt.Tail
}

func TestRemoteInferenceMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("network + training smoke test")
	}
	e, test := buildPipeline(t)
	addr := startServer(t, e.Bodies())
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire(client, e)

	x, _ := test.Batch([]int{0, 1, 2, 3})
	remote, timing, err := client.Infer(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	local := e.Predict(x)
	if !remote.AllClose(local, 1e-9) {
		t.Error("remote inference must match local pipeline exactly")
	}
	if timing.BytesUp <= 0 || timing.BytesDown <= 0 {
		t.Errorf("byte accounting missing: %+v", timing)
	}
	// The server returns N bodies' features; downstream bytes must exceed
	// the per-body feature payload at least N-fold (gob overhead aside).
	minDown := 4 * e.Cfg.Arch.FeatureDim() * e.Cfg.N // 4 images ≈ even more
	if timing.BytesDown < minDown {
		t.Errorf("down bytes %d suspiciously small (< %d)", timing.BytesDown, minDown)
	}
}

func TestMultipleRequestsOneConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("network + training smoke test")
	}
	e, test := buildPipeline(t)
	addr := startServer(t, e.Bodies())
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wire(client, e)
	for i := 0; i < 3; i++ {
		x, _ := test.Batch([]int{i})
		if _, _, err := client.Infer(context.Background(), x); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("network + training smoke test")
	}
	e, test := buildPipeline(t)
	addr := startServer(t, e.Bodies())
	x, _ := test.Batch([]int{0, 1})
	want := e.Predict(x)

	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			client, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer client.Close()
			wireRuntime(client, e)
			got, _, err := client.Infer(context.Background(), x)
			if err == nil && !got.AllClose(want, 1e-9) {
				err = errMismatch
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent result mismatch" }

func TestServerRejectsBadRequest(t *testing.T) {
	r := rng.New(1)
	body := tinyArch().NewBody("b", r)
	s := NewServer([]*nn.Network{body})
	resp := s.process(&Request{Features: nil})
	if resp.Err == "" {
		t.Error("nil features must be rejected")
	}
	bad := tensor.New(2, 2) // wrong rank
	resp = s.process(&Request{Features: bad})
	if resp.Err == "" {
		t.Error("non-NCHW features must be rejected")
	}
}

func TestNewServerPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewServer(nil)
}
