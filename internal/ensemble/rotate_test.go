package ensemble

import (
	"testing"

	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// randomImages builds a deterministic input batch matching the config's
// image shape.
func randomImages(cfg Config, seed int64, n int) *tensor.Tensor {
	x := tensor.New(n, cfg.Arch.InC, cfg.Arch.H, cfg.Arch.W)
	rng.New(seed).FillNormal(x.Data, 0, 1)
	return x
}

// untrainedPipeline builds a skeleton pipeline cheaply — rotation mechanics
// don't need trained weights.
func untrainedPipeline(seed int64) *Ensembler {
	cfg := tinyConfig(seed)
	cfg.N, cfg.P = 4, 2
	return New(cfg)
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	e := untrainedPipeline(71)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	x := randomImages(e.Cfg, 72, 3)
	if !c.Predict(x).AllClose(e.Predict(x), 1e-12) {
		t.Fatal("clone predicts differently")
	}
	// Mutating the clone must not touch the original.
	c.Head.Params()[0].Value.Data[0] += 1
	c.Selector.Indices[0] = (c.Selector.Indices[0] + 1) % c.Cfg.N
	if e.Head.Params()[0].Value.Data[0] == c.Head.Params()[0].Value.Data[0] {
		t.Error("clone shares head parameters with the original")
	}
	if e.Selector.Indices[0] == c.Selector.Indices[0] {
		t.Error("clone shares selector state with the original")
	}
}

func TestRotateRedrawsSelectorKeepsBodies(t *testing.T) {
	e := untrainedPipeline(73)
	before := append([]int(nil), e.Selector.Indices...)

	rot, err := e.Rotate(RotateOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sameIndices(rot.Selector.Indices, before) {
		t.Error("rotation kept the same secret subset")
	}
	if !sameIndices(e.Selector.Indices, before) {
		t.Error("rotation mutated the original's selector")
	}
	// The server bodies must be bit-identical: rotation is invisible on the
	// wire by design.
	for i := range e.Members {
		a, b := e.Members[i].Body.Params(), rot.Members[i].Body.Params()
		for j := range a {
			for k := range a[j].Value.Data {
				if a[j].Value.Data[k] != b[j].Value.Data[k] {
					t.Fatalf("rotation changed body %d weights", i)
				}
			}
		}
	}
	// Without tuning, the stage-3 head is also untouched.
	if rot.Head.Params()[0].Value.Data[0] != e.Head.Params()[0].Value.Data[0] {
		t.Error("untuned rotation changed the head")
	}
}

func TestRotateSameSeedStillMoves(t *testing.T) {
	// Even a seed whose first draw reproduces the current subset must end on
	// a different one (redraw-until-moved), for every seed we try.
	e := untrainedPipeline(74)
	for seed := int64(0); seed < 20; seed++ {
		rot, err := e.Rotate(RotateOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sameIndices(rot.Selector.Indices, e.Selector.Indices) {
			t.Fatalf("seed %d: rotation landed on the same subset", seed)
		}
	}
}

func TestRotateSingleSubsetIsIdentity(t *testing.T) {
	cfg := tinyConfig(75)
	cfg.N, cfg.P = 2, 2 // only one possible subset
	e := New(cfg)
	rot, err := e.Rotate(RotateOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndices(rot.Selector.Indices, e.Selector.Indices) {
		t.Error("P=N rotation invented a different subset")
	}
}

func TestRotateWithTuneAdaptsHeadTail(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(76)
	cfg := tinyConfig(77)
	e := Train(cfg, train, nil)

	rot, err := e.Rotate(RotateOptions{
		Seed: 5,
		Tune: train,
		TuneOpts: split.TrainOptions{
			Epochs: 1, BatchSize: 16, LR: 0.02,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	a, b := e.Tail.Params(), rot.Tail.Params()
	for i := range a {
		for k := range a[i].Value.Data {
			if a[i].Value.Data[k] != b[i].Value.Data[k] {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("tuned rotation left the tail untouched")
	}
	// Bodies still frozen through the tune.
	for i := range e.Members {
		ap, bp := e.Members[i].Body.Params(), rot.Members[i].Body.Params()
		for j := range ap {
			for k := range ap[j].Value.Data {
				if ap[j].Value.Data[k] != bp[j].Value.Data[k] {
					t.Fatalf("tuned rotation changed body %d", i)
				}
			}
		}
	}
}
