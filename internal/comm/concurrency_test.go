package comm_test

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/nn"
	"ensembler/internal/tensor"
)

// These tests exercise the concurrent serving path through the exported API
// only, over the commtest harness: untrained seeded networks that rebuild
// bit-identically, which is what lets every client check its results
// against a locally computed reference.

var tiny = commtest.TinyArch()

// startConcurrentServer runs a replicated worker-pool server and returns its
// address plus the channel Serve's result lands on.
func startConcurrentServer(t *testing.T, ctx context.Context, n, workers int, opts ...comm.ServerOption) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	opts = append([]comm.ServerOption{
		comm.WithWorkers(workers),
		comm.WithReplicas(func() []*nn.Network { return commtest.Bodies(tiny, n) }),
	}, opts...)
	srv := comm.NewServer(commtest.Bodies(tiny, n), opts...)
	if srv.Workers() != workers {
		t.Fatalf("workers = %d, want %d", srv.Workers(), workers)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), errCh
}

// dialWired dials the server and wires the raw-protocol client.
func dialWired(t *testing.T, addr string, n int) *comm.Client {
	t.Helper()
	client, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	commtest.Wire(client, tiny, n)
	return client
}

// TestConcurrentMixedClients hammers a replicated worker-pool server with
// simultaneous clients issuing a mix of single and batched requests, every
// one of which must match the locally computed reference bit-for-bit.
func TestConcurrentMixedClients(t *testing.T) {
	const (
		nBodies = 3
		clients = 10
		rounds  = 4
	)
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 4)

	x := commtest.Input(tiny, 50, 2)
	want := commtest.Reference(tiny, nBodies, x)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := comm.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			for round := 0; round < rounds; round++ {
				if id%2 == 0 {
					got, _, err := client.Infer(ctx, x)
					if err != nil {
						errs <- fmt.Errorf("client %d round %d: %w", id, round, err)
						return
					}
					if !got.AllClose(want, 1e-12) {
						errs <- fmt.Errorf("client %d round %d: single result diverged", id, round)
						return
					}
				} else {
					got, _, err := client.InferBatch(ctx, []*tensor.Tensor{x, x, x})
					if err != nil {
						errs <- fmt.Errorf("client %d round %d: %w", id, round, err)
						return
					}
					for j, g := range got {
						if !g.AllClose(want, 1e-12) {
							errs <- fmt.Errorf("client %d round %d: batched result %d diverged", id, round, j)
							return
						}
					}
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolConcurrentInference drives a connection pool from more goroutines
// than it has connections; every result must match the reference.
func TestPoolConcurrentInference(t *testing.T) {
	const nBodies = 3
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 2)

	pool, err := comm.NewPool(addr, 4, func(c *comm.Client) error {
		commtest.Wire(c, tiny, nBodies)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	x := commtest.Input(tiny, 51, 1)
	want := commtest.Reference(tiny, nBodies, x)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got *tensor.Tensor
			var err error
			if i%3 == 0 {
				var batch []*tensor.Tensor
				batch, _, err = pool.InferBatch(ctx, []*tensor.Tensor{x, x})
				if err == nil {
					got = batch[1]
				}
			} else {
				got, _, err = pool.Infer(ctx, x)
			}
			if err != nil {
				errs <- err
				return
			}
			if !got.AllClose(want, 1e-12) {
				errs <- fmt.Errorf("goroutine %d: pooled result diverged", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShutdownMidFlight cancels the server context while clients are
// hammering it: Serve must return promptly and cleanly, in-flight requests
// must either complete or fail with an error (never hang), and the listener
// must stop accepting.
func TestShutdownMidFlight(t *testing.T) {
	const nBodies = 3
	ctx, cancel := context.WithCancel(context.Background())
	addr, errCh := startConcurrentServer(t, ctx, nBodies, 2)

	x := commtest.Input(tiny, 52, 2)
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := comm.Dial(addr)
			if err != nil {
				once.Do(func() { close(started) })
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			for {
				if _, _, err := client.Infer(context.Background(), x); err != nil {
					return // shutdown reached this connection
				}
				once.Do(func() { close(started) })
			}
		}()
	}

	<-started // at least one request fully served before pulling the plug
	cancel()

	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("graceful shutdown must return nil, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within 5s of cancellation")
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("clients still blocked 5s after shutdown")
	}

	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		// Accepting stopped, so either the dial fails outright or the
		// connection is immediately dead; a request must not succeed.
		client, err := comm.Dial(addr)
		if err == nil {
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			cctx, ccancel := context.WithTimeout(context.Background(), time.Second)
			defer ccancel()
			if _, _, err := client.Infer(cctx, x); err == nil {
				t.Error("server answered a request after shutdown")
			}
		}
	}
}

// TestShutdownWithNonDrainingClient connects a client that floods requests
// but never reads a single response: its connection's send side eventually
// backs up, and shutdown must still complete via the drain-timeout
// force-close rather than hanging on the blocked writer.
func TestShutdownWithNonDrainingClient(t *testing.T) {
	const nBodies = 3
	ctx, cancel := context.WithCancel(context.Background())
	addr, errCh := startConcurrentServer(t, ctx, nBodies, 2, comm.WithDrainTimeout(300*time.Millisecond))

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Flood from a goroutine: once the server stops reading, our own writes
	// block too, so the flood must be bounded by the connection failing.
	flooding := make(chan struct{})
	go func() {
		defer close(flooding)
		enc := gob.NewEncoder(conn)
		x := commtest.Input(tiny, 60, 8)
		for i := 0; i < 10000; i++ {
			if err := enc.Encode(&comm.Request{Features: x}); err != nil {
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // let requests pile up unread
	cancel()

	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("shutdown with a non-draining client must return nil, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve hung on a client that never reads responses")
	}
	conn.Close()
	select {
	case <-flooding:
	case <-time.After(5 * time.Second):
		t.Fatal("flooding client still blocked after its connection was closed")
	}
}

// TestInferHonorsContext checks per-request deadlines, pre-cancelled
// contexts, and that a context abort mid-flight breaks the connection
// rather than leaving a desynchronized stream behind.
func TestInferHonorsContext(t *testing.T) {
	const nBodies = 2
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 1)

	client := dialWired(t, addr, nBodies)
	x := commtest.Input(tiny, 53, 1)

	// A pre-cancelled context fails before any I/O and must NOT poison the
	// connection.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := client.Infer(cancelled, x); err == nil {
		t.Error("pre-cancelled context must fail the request")
	}
	// A generous deadline must not interfere with a healthy request.
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Errorf("deadline-bearing request failed: %v", err)
	}
}

// TestAbortedRequestBreaksClient pins the stale-response defense: a request
// aborted mid-flight leaves the stream in an unknown state, so the client
// must refuse further use instead of silently pairing the next request with
// the previous response.
func TestAbortedRequestBreaksClient(t *testing.T) {
	// A listener that accepts and reads but never responds: the request
	// will always time out mid-decode.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// Complete the wire negotiation (echoing the client's hello
				// verbatim is a valid ack), then go mute: requests are read
				// and never answered.
				hello := make([]byte, 8)
				if _, err := io.ReadFull(conn, hello); err != nil {
					return
				}
				if _, err := conn.Write(hello); err != nil {
					return
				}
				buf := make([]byte, 1<<16)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	commtest.Wire(client, tiny, 1)
	x := commtest.Input(tiny, 58, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := client.Infer(ctx, x); err == nil {
		t.Fatal("request against a mute server must time out")
	}
	if _, _, err := client.Infer(context.Background(), x); err == nil {
		t.Error("client must be broken after an aborted request")
	}
}

// TestMuteDispatcherServerBreaksClient is the continuous-batching variant
// of the mute-server handshake test: a hostile server that completes the
// version-2 hello — advertising an absurd 65.5-second batch window — and
// then never dispatches anything. The window advice must not buy the server
// extra patience: the client's deadline still fires, the connection still
// breaks, and the advertised window is clamped to the honest ceiling rather
// than swallowed whole.
func TestMuteDispatcherServerBreaksClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				hello := make([]byte, 8)
				if _, err := io.ReadFull(conn, hello); err != nil {
					return
				}
				// A v2 ack claiming windowMs = 0xFFFF: "just wait, the batch
				// is coming" — then mute.
				ack := []byte{0xE5, 'N', 'S', 'B', 2, 0, 0xFF, 0xFF}
				if _, err := conn.Write(ack); err != nil {
					return
				}
				buf := make([]byte, 1<<16)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if w := client.ServerBatchWindow(); w > time.Second {
		t.Errorf("client accepted a %v batch window from a hostile ack", w)
	}
	commtest.Wire(client, tiny, 1)
	x := commtest.Input(tiny, 59, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := client.Infer(ctx, x); err == nil {
		t.Fatal("request against a mute dispatcher must time out")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("client waited %v on a mute dispatcher despite a 100ms deadline", waited)
	}
	if _, _, err := client.Infer(context.Background(), x); err == nil {
		t.Error("client must be broken after a request died waiting on a mute dispatcher")
	}
}

// TestMalformedTensorsDoNotKillServer sends hostile payloads straight over
// the wire: lying shapes must produce error responses, not a server crash,
// and a healthy client must still be served afterwards.
func TestMalformedTensorsDoNotKillServer(t *testing.T) {
	const nBodies = 2
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 1)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	hostile := []*tensor.Tensor{
		{Shape: []int{0, 3, 8, 8}},                              // zero dimension
		{Shape: []int{1, 4, 8, 8}, Data: make([]float64, 5)},    // shape/data lie
		{Shape: []int{1, 7, 8, 8}, Data: make([]float64, 7*64)}, // wrong channels: panics inside the body
	}
	for i, f := range hostile {
		if err := enc.Encode(&comm.Request{Features: f}); err != nil {
			t.Fatalf("payload %d: send: %v", i, err)
		}
		var resp comm.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("payload %d: server dropped the connection instead of answering: %v", i, err)
		}
		if resp.Err == "" {
			t.Errorf("payload %d: hostile tensor accepted", i)
		}
	}
	// Batched variant of the same lies.
	if err := enc.Encode(&comm.Request{Inputs: []*tensor.Tensor{{Shape: []int{0, 4, 8, 8}}}}); err != nil {
		t.Fatal(err)
	}
	var resp comm.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Error("hostile batched tensor accepted")
	}

	// The server must still be alive for well-formed clients.
	client := dialWired(t, addr, nBodies)
	x := commtest.Input(tiny, 59, 1)
	if _, _, err := client.Infer(context.Background(), x); err != nil {
		t.Errorf("healthy request after hostile payloads failed: %v", err)
	}
}

// TestPoolRecoversFromBrokenConnections pins the waiter-wakeup path: when
// every connection breaks while other callers are queued at capacity, the
// queued callers must wake up and redial instead of hanging forever.
func TestPoolRecoversFromBrokenConnections(t *testing.T) {
	// A server that accepts and immediately closes: every request fails
	// fast with a transport error, breaking its connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	pool, err := comm.NewPool(ln.Addr().String(), 1, func(c *comm.Client) error {
		commtest.Wire(c, tiny, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	x := commtest.Input(tiny, 61, 1)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every request must fail with an error — never hang, even for
			// the goroutines that queued while the pool was at capacity.
			if _, _, err := pool.Infer(context.Background(), x); err == nil {
				t.Error("request against a slamming server must fail")
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool waiters hung after all connections broke")
	}
}

// TestPoolKeepsConnectionAfterBenignError checks that server-side
// rejections (which leave the gob stream synchronized) do not cost the pool
// its connection.
func TestPoolKeepsConnectionAfterBenignError(t *testing.T) {
	const nBodies = 2
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 1, comm.WithMaxBatch(1))

	dials := 0
	pool, err := comm.NewPool(addr, 1, func(c *comm.Client) error {
		dials++
		commtest.Wire(c, tiny, nBodies)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx := context.Background()
	x := commtest.Input(tiny, 62, 1)
	if _, _, err := pool.InferBatch(ctx, []*tensor.Tensor{x, x}); err == nil {
		t.Fatal("batch above the server cap must be rejected")
	}
	if _, _, err := pool.Infer(ctx, x); err != nil {
		t.Fatalf("healthy request after a benign rejection failed: %v", err)
	}
	if dials != 1 {
		t.Errorf("pool redialed after a benign error: %d dials, want 1", dials)
	}
}

// TestClientRejectsHostileResponses plays a malicious server: responses
// whose tensors lie about their shape, carry nils, or mismatch the
// selector's expected body count must produce errors, not client panics.
func TestClientRejectsHostileResponses(t *testing.T) {
	responses := []comm.Response{
		{Features: []*tensor.Tensor{nil}},
		{Features: []*tensor.Tensor{{Shape: []int{0, 16}}}},
		{Features: []*tensor.Tensor{{Shape: []int{1, 16}, Data: make([]float64, 3)}}},
		// Wrong body count for the concat-all selector's tail (wired for 1).
		{Features: []*tensor.Tensor{
			{Shape: []int{1, 16}, Data: make([]float64, 16)},
			{Shape: []int{1, 16}, Data: make([]float64, 16)},
		}},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
				for i := 0; ; i++ {
					var req comm.Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if err := enc.Encode(&responses[i%len(responses)]); err != nil {
						return
					}
				}
			}()
		}
	}()

	x := commtest.Input(tiny, 63, 1)
	for i := range responses {
		// The hand-rolled hostile server speaks gob; the validation under
		// test is codec-agnostic (the binary decoder rejects the structural
		// lies even earlier, at frame parse time).
		client, err := comm.Dial(ln.Addr().String(), comm.WithWire(comm.WireGob))
		if err != nil {
			t.Fatal(err)
		}
		commtest.Wire(client, tiny, 1)
		for j := 0; j <= i; j++ { // walk the rotating server to response i
			_, _, err = client.Infer(context.Background(), x)
		}
		if err == nil {
			t.Errorf("hostile response %d accepted", i)
		}
		client.Close()
	}
}

// TestBatchedRequestValidation covers the server-side batch guardrails.
func TestBatchedRequestValidation(t *testing.T) {
	const nBodies = 2
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 1, comm.WithMaxBatch(2))

	client := dialWired(t, addr, nBodies)
	ctx := context.Background()
	x := commtest.Input(tiny, 54, 1)

	if _, _, err := client.InferBatch(ctx, nil); err == nil {
		t.Error("empty batch must be rejected client-side")
	}
	if _, _, err := client.InferBatch(ctx, []*tensor.Tensor{x, x, x}); err == nil {
		t.Error("batch above the server cap must be rejected")
	}
	// The connection must survive a rejected request.
	if _, _, err := client.InferBatch(ctx, []*tensor.Tensor{x, x}); err != nil {
		t.Errorf("in-cap batch after rejection failed: %v", err)
	}
	// Mismatched trailing shapes within one batch are a protocol error.
	other := commtest.Input(commtest.TinyArch(), 55, 1)
	other.Shape[2] /= 2
	other.Data = other.Data[:other.Shape[0]*other.Shape[1]*other.Shape[2]*other.Shape[3]]
	if _, _, err := client.InferBatch(ctx, []*tensor.Tensor{x, other}); err == nil {
		t.Error("shape-mismatched batch must be rejected")
	}
}

// TestDialContextCancelAbortsHello pins the negotiation's cancellation
// path: a cancellable (deadline-less) context must abort a hello blocked on
// a server that accepts the connection but never acks, promptly rather than
// after the 10-second default handshake timeout.
func TestDialContextCancelAbortsHello(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open without ever answering the hello.
			defer conn.Close()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = comm.DialContext(ctx, ln.Addr().String())
	if err == nil {
		t.Fatal("dial against a mute negotiator must fail on cancellation")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("cancelled dial took %v, want prompt abort", d)
	}
}
