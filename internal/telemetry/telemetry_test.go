package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	g := r.Gauge("leakage", "rolling SSIM", nil)
	c.Add(3)
	c.Inc()
	g.Set(0.25)
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if g.Value() != 0.25 {
		t.Errorf("gauge = %v, want 0.25", g.Value())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests",
		"# TYPE reqs_total counter",
		"reqs_total 4",
		"# TYPE leakage gauge",
		"leakage 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsRenderSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("shard_up", "", Labels{"shard": "2", "addr": `a"b\c`}, func() float64 { return 1 })
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `shard_up{addr="a\"b\\c",shard="2"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("labelled series = %q, want %q", b.String(), want)
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-6.05) > 1e-12 {
		t.Errorf("sum = %v, want 6.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 6.05",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMultipleSeriesOneFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shard_requests_total", "per-shard requests", Labels{"shard": "1"})
	b2 := r.Counter("shard_requests_total", "per-shard requests", Labels{"shard": "2"})
	a.Add(1)
	b2.Add(2)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE shard_requests_total counter") != 1 {
		t.Errorf("family header must appear exactly once:\n%s", out)
	}
	if !strings.Contains(out, `shard_requests_total{shard="1"} 1`) ||
		!strings.Contains(out, `shard_requests_total{shard="2"} 2`) {
		t.Errorf("missing per-shard series:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("ok_total", "", nil)
	expectPanic("duplicate series", func() { r.Counter("ok_total", "", nil) })
	expectPanic("type conflict", func() { r.Gauge("ok_total", "", Labels{"a": "b"}) })
	expectPanic("bad name", func() { r.Counter("bad name", "", nil) })
	expectPanic("unsorted buckets", func() { r.Histogram("h", "", []float64{1, 1}, nil) })
}

// TestConcurrentUpdatesAndScrapes exercises the lock-free update path against
// concurrent scrapes under -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", DefaultLatencyBuckets, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%7) / 100)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WriteProm(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

// TestUpdatePathDoesNotAllocate pins the hot-path contract the comm server
// relies on: recording a request must not allocate.
func TestUpdatePathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", DefaultLatencyBuckets, nil)
	if n := testing.AllocsPerRun(100, func() { c.Inc(); g.Set(1.5); h.Observe(0.003) }); n != 0 {
		t.Errorf("update path allocates %.1f objects per op, want 0", n)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil).Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 7") {
		t.Errorf("scrape body missing sample: %q", buf[:n])
	}
}
