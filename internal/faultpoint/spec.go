package faultpoint

// ENSEMBLER_FAULTPOINTS grammar — the operator/chaos activation surface:
//
//	spec     := entry (';' entry)*
//	entry    := site '=' kind (':' opt)*
//	kind     := "error" | "panic" | "delay" | "partial-write" | "conn-reset"
//	opt      := "p" '=' float            per-hit trigger probability
//	          | "count" '=' int          max triggers (0 = unlimited)
//	          | "after" '=' int          skip the first N hits
//	          | "delay" '=' duration     sleep for kind delay (default 10ms)
//	          | "frac" '=' float         partial-write cut fraction
//
// Example:
//
//	ENSEMBLER_FAULTPOINTS='comm/frame-write=partial-write:p=0.05;registry/publish-rename=error:count=1'
//
// The master seed comes from ENSEMBLER_FAULTPOINTS_SEED (default 1), so a
// chaos run is replayable from its logged environment alone.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar and EnvSeedVar name the activation environment variables.
const (
	EnvVar     = "ENSEMBLER_FAULTPOINTS"
	EnvSeedVar = "ENSEMBLER_FAULTPOINTS_SEED"
)

// ParseSpec parses the ENSEMBLER_FAULTPOINTS grammar into per-site
// policies without arming anything.
func ParseSpec(spec string) (map[string]Policy, error) {
	out := map[string]Policy{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("faultpoint: entry %q: want site=kind[:opt...]", entry)
		}
		parts := strings.Split(rest, ":")
		p := Policy{}
		switch strings.TrimSpace(parts[0]) {
		case "error":
			p.Kind = Error
		case "panic":
			p.Kind = Panic
		case "delay":
			p.Kind = Delay
			p.Delay = 10 * time.Millisecond
		case "partial-write":
			p.Kind = PartialWrite
		case "conn-reset":
			p.Kind = ConnReset
		default:
			return nil, fmt.Errorf("faultpoint: site %s: unknown kind %q (want error|panic|delay|partial-write|conn-reset)", site, parts[0])
		}
		for _, opt := range parts[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("faultpoint: site %s: option %q: want key=value", site, opt)
			}
			var err error
			switch key {
			case "p":
				p.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (p.Prob < 0 || p.Prob > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", p.Prob)
				}
			case "count":
				p.Count, err = strconv.Atoi(val)
			case "after":
				p.After, err = strconv.Atoi(val)
			case "delay":
				p.Delay, err = time.ParseDuration(val)
			case "frac":
				p.Frac, err = strconv.ParseFloat(val, 64)
				if err == nil && (p.Frac <= 0 || p.Frac >= 1) {
					err = fmt.Errorf("fraction %v outside (0,1)", p.Frac)
				}
			default:
				err = fmt.Errorf("unknown option %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faultpoint: site %s: option %q: %v", site, opt, err)
			}
		}
		if _, dup := out[site]; dup {
			return nil, fmt.Errorf("faultpoint: site %s specified twice", site)
		}
		out[site] = p
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultpoint: empty spec")
	}
	return out, nil
}

// EnableSpec parses and arms a spec string, returning the armed site names.
// Names that match no registered site are still armed (stashed for dynamic
// sites) and returned in deferred so the caller can log possible typos.
func EnableSpec(spec string) (enabled, deferred []string, err error) {
	policies, err := ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	known := map[string]bool{}
	for _, name := range Names() {
		known[name] = true
	}
	for site, p := range policies {
		Enable(site, p)
		if known[site] {
			enabled = append(enabled, site)
		} else {
			deferred = append(deferred, site)
		}
	}
	return enabled, deferred, nil
}

// EnableFromEnv arms sites from ENSEMBLER_FAULTPOINTS (no-op when unset)
// after seeding from ENSEMBLER_FAULTPOINTS_SEED. Callers gate this behind
// an explicit opt-in flag: injection must never reach production by
// environment inheritance alone.
func EnableFromEnv() (enabled, deferred []string, err error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil, nil
	}
	if sv := os.Getenv(EnvSeedVar); sv != "" {
		s, err := strconv.ParseInt(sv, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("faultpoint: %s: %v", EnvSeedVar, err)
		}
		SetSeed(s)
	}
	return EnableSpec(spec)
}
