package tensor

// Arena is a bump allocator for the inference hot path: tensors carved out
// of one reusable backing buffer instead of individual heap allocations.
// Alloc hands out slices sequentially; Reset reclaims everything at once and
// grows the buffer to the cycle's high-water mark, so after one warm-up
// cycle a steady-state workload performs zero heap allocations.
//
// Ownership rules (the serving memory model, see DESIGN.md):
//
//   - Every tensor returned by NewTensor/View is INVALIDATED by Reset: its
//     backing array will be handed out again. A caller that needs data to
//     outlive the cycle must copy it out first.
//   - An Arena is not safe for concurrent use. One goroutine owns it — a
//     serving worker, a codec direction, a benchmark loop.
//   - Tensor data from NewTensor is NOT zeroed (the previous cycle's values
//     remain). Kernels writing into arena tensors must fully overwrite or
//     zero their output; NewTensorZeroed does the memset for callers that
//     accumulate.
type Arena struct {
	data []float64
	off  int
	need int

	ints  []int
	ioff  int
	ineed int

	hdrs  []Tensor
	hoff  int
	hneed int
}

// NewArena returns an empty arena; the first cycle sizes it.
func NewArena() *Arena { return &Arena{} }

// Alloc returns an n-element float slice from the arena, falling back to a
// fresh heap allocation when capacity is exhausted (Reset then grows the
// buffer so the next cycle stays in-arena). Contents are unspecified.
func (a *Arena) Alloc(n int) []float64 {
	a.need += n
	if a.off+n > len(a.data) {
		return make([]float64, n)
	}
	s := a.data[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// allocInts is Alloc for the int storage backing tensor shapes.
func (a *Arena) allocInts(n int) []int {
	a.ineed += n
	if a.ioff+n > len(a.ints) {
		return make([]int, n)
	}
	s := a.ints[a.ioff : a.ioff+n : a.ioff+n]
	a.ioff += n
	return s
}

// header returns a reusable Tensor header.
func (a *Arena) header() *Tensor {
	a.hneed++
	if a.hoff >= len(a.hdrs) {
		return &Tensor{}
	}
	t := &a.hdrs[a.hoff]
	a.hoff++
	return t
}

// prodDims is numElems without the formatted panic: passing the shape to
// fmt would make every variadic shape argument escape to the heap, which is
// exactly what the arena exists to avoid.
func prodDims(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in shape")
		}
		n *= d
	}
	return n
}

// NewTensor returns a tensor of the given shape backed by the arena. Data is
// NOT zeroed; see the ownership rules above.
func (a *Arena) NewTensor(shape ...int) *Tensor {
	t := a.header()
	t.Shape = a.allocInts(len(shape))
	copy(t.Shape, shape)
	t.Data = a.Alloc(prodDims(shape))
	return t
}

// NewTensorZeroed returns a zero-filled arena tensor.
func (a *Arena) NewTensorZeroed(shape ...int) *Tensor {
	t := a.NewTensor(shape...)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// View returns a tensor sharing t's backing array under a new shape of equal
// size, with the header and shape storage coming from the arena — the
// allocation-free counterpart of Reshape for the inference path.
func (a *Arena) View(t *Tensor, shape ...int) *Tensor {
	if prodDims(shape) != len(t.Data) {
		panic("tensor: Arena.View size mismatch")
	}
	v := a.header()
	v.Shape = a.allocInts(len(shape))
	copy(v.Shape, shape)
	v.Data = t.Data
	return v
}

// Clone copies t into the arena.
func (a *Arena) Clone(t *Tensor) *Tensor {
	out := a.NewTensor(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Reset reclaims every allocation at once, invalidating all tensors handed
// out since the previous Reset, and grows the backing buffers to the
// finished cycle's demand so the next identical cycle allocates nothing.
func (a *Arena) Reset() {
	if a.need > len(a.data) {
		a.data = make([]float64, a.need)
	}
	if a.ineed > len(a.ints) {
		a.ints = make([]int, a.ineed)
	}
	if a.hneed > len(a.hdrs) {
		a.hdrs = make([]Tensor, a.hneed)
	}
	a.off, a.need = 0, 0
	a.ioff, a.ineed = 0, 0
	a.hoff, a.hneed = 0, 0
}

// Footprint reports the arena's current backing capacity in bytes — what one
// warmed worker scratch costs at steady state.
func (a *Arena) Footprint() int {
	return 8*len(a.data) + 8*len(a.ints) + len(a.hdrs)*48
}
