package faultpoint

import (
	"errors"
	"testing"
	"time"
)

// TestDisabledFastPathAllocs pins the contract the serving loop depends on:
// a site check with nothing armed performs no allocation.
func TestDisabledFastPathAllocs(t *testing.T) {
	DisableAll()
	s := New("test/disabled-allocs")
	if allocs := testing.AllocsPerRun(100, func() {
		if err := s.Inject(); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Fire(); ok {
			t.Fatal("disabled site fired")
		}
	}); allocs != 0 {
		t.Errorf("disabled site check allocates %v times, want 0", allocs)
	}
}

func TestEnableDisable(t *testing.T) {
	DisableAll()
	s := New("test/enable")
	if Enabled() {
		t.Fatal("Enabled() true with nothing armed")
	}
	if err := s.Inject(); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
	Enable("test/enable", Policy{Kind: Error})
	if !Enabled() {
		t.Fatal("Enabled() false after Enable")
	}
	err := s.Inject()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed error site returned %v, want ErrInjected", err)
	}
	Disable("test/enable")
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	if err := s.Inject(); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
}

// TestArmedOtherSiteDoesNotTrigger: arming site A must not make site B
// fire, only flip the global gate.
func TestArmedOtherSiteDoesNotTrigger(t *testing.T) {
	DisableAll()
	defer DisableAll()
	a := New("test/armed-a")
	b := New("test/armed-b")
	Enable("test/armed-a", Policy{Kind: Error})
	if err := b.Inject(); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := a.Inject(); err == nil {
		t.Fatal("armed site did not fire")
	}
}

func TestCountAndAfter(t *testing.T) {
	DisableAll()
	defer DisableAll()
	s := New("test/count")
	Enable("test/count", Policy{Kind: Error, After: 2, Count: 3})
	var errs int
	for i := 0; i < 10; i++ {
		if s.Inject() != nil {
			errs++
			if i < 2 {
				t.Fatalf("triggered on hit %d, want first 2 skipped", i)
			}
		}
	}
	if errs != 3 {
		t.Fatalf("got %d triggers, want 3 (count cap)", errs)
	}
	st := SiteStats()
	var found bool
	for _, row := range st {
		if row.Name == "test/count" {
			found = true
			if row.Hits != 10 || row.Triggers != 3 || !row.Armed {
				t.Fatalf("stats %+v, want 10 hits / 3 triggers / armed", row)
			}
		}
	}
	if !found {
		t.Fatal("site missing from SiteStats")
	}

	// ResetStats zeroes the counters without touching the armed policy.
	ResetStats()
	for _, row := range SiteStats() {
		if row.Name == "test/count" {
			if row.Hits != 0 || row.Triggers != 0 || !row.Armed {
				t.Fatalf("after ResetStats: %+v, want 0 hits / 0 triggers / still armed", row)
			}
		}
	}
}

// TestProbabilityDeterministic: the same seed yields the same trigger
// sequence; a different seed yields a different one (overwhelmingly).
func TestProbabilityDeterministic(t *testing.T) {
	DisableAll()
	defer DisableAll()
	s := New("test/prob")
	run := func(seed int64) []bool {
		SetSeed(seed)
		Enable("test/prob", Policy{Kind: Error, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Inject() != nil
		}
		return out
	}
	a1, a2, b := run(42), run(42), run(43)
	var trig int
	sameA, sameB := true, true
	for i := range a1 {
		if a1[i] {
			trig++
		}
		sameA = sameA && a1[i] == a2[i]
		sameB = sameB && a1[i] == b[i]
	}
	if !sameA {
		t.Fatal("same seed produced different trigger sequences")
	}
	if sameB {
		t.Fatal("different seeds produced identical 64-hit sequences")
	}
	if trig < 16 || trig > 48 {
		t.Fatalf("p=0.5 triggered %d/64 times — rng or probability gate broken", trig)
	}
}

func TestDelayAndPanic(t *testing.T) {
	DisableAll()
	defer DisableAll()
	d := New("test/delay")
	Enable("test/delay", Policy{Kind: Delay, Delay: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := d.Inject(); err != nil {
		t.Fatalf("delay trigger returned error %v", err)
	}
	if since := time.Since(start); since < 15*time.Millisecond {
		t.Fatalf("delay trigger slept %v, want ~20ms", since)
	}
	if err := d.Inject(); err != nil {
		t.Fatal("count=1 site fired twice")
	}

	p := New("test/panic")
	Enable("test/panic", Policy{Kind: Panic})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = p.Inject()
	}()
	if recovered == nil {
		t.Fatal("panic site did not panic")
	}
}

func TestPendingEnableBeforeNew(t *testing.T) {
	DisableAll()
	defer DisableAll()
	Enable("test/pending-site", Policy{Kind: Error, Count: 1})
	if !Enabled() {
		t.Fatal("pending policy did not flip the global gate")
	}
	s := New("test/pending-site")
	if err := s.Inject(); err == nil {
		t.Fatal("pending policy not applied on registration")
	}
	Disable("test/pending-site")
	if err := s.Inject(); err != nil {
		t.Fatal("site fired after Disable")
	}

	// Disabling a still-pending name must release the global gate too.
	Enable("test/pending-never-created", Policy{Kind: Error})
	Disable("test/pending-never-created")
	if Enabled() {
		t.Fatal("Enabled() stuck after disabling a pending-only policy")
	}
}

func TestFireOutcomeDefaults(t *testing.T) {
	DisableAll()
	defer DisableAll()
	s := New("test/outcome")
	Enable("test/outcome", Policy{Kind: PartialWrite})
	out, ok := s.Fire()
	if !ok {
		t.Fatal("armed site did not fire")
	}
	if out.Kind != PartialWrite || !errors.Is(out.Err, ErrInjected) || out.Frac != 0.5 {
		t.Fatalf("outcome %+v, want partial-write/ErrInjected/frac 0.5", out)
	}
	if n := out.CutLen(100); n != 50 {
		t.Fatalf("CutLen(100) = %d, want 50", n)
	}
	if n := out.CutLen(1); n != 0 {
		// frac 0.5 of 1 byte floors to 1... then clamps below n.
		t.Fatalf("CutLen(1) = %d, want 0", n)
	}
	if n := out.CutLen(0); n != 0 {
		t.Fatalf("CutLen(0) = %d, want 0", n)
	}
	custom := errors.New("custom")
	Enable("test/outcome", Policy{Kind: ConnReset, Err: custom, Frac: 0.99})
	out, ok = s.Fire()
	if !ok || out.Err != custom {
		t.Fatalf("outcome %+v ok=%v, want custom error", out, ok)
	}
	if n := out.CutLen(100); n != 99 {
		t.Fatalf("CutLen(100) frac=0.99 = %d, want 99", n)
	}
}

func TestNamesAndActive(t *testing.T) {
	DisableAll()
	defer DisableAll()
	New("test/names-a")
	New("test/names-b")
	names := Names()
	has := func(list []string, want string) bool {
		for _, n := range list {
			if n == want {
				return true
			}
		}
		return false
	}
	if !has(names, "test/names-a") || !has(names, "test/names-b") {
		t.Fatalf("Names() = %v missing registered sites", names)
	}
	Enable("test/names-b", Policy{})
	Enable("test/names-pending", Policy{})
	act := Active()
	if !has(act, "test/names-b") || !has(act, "test/names-pending") || has(act, "test/names-a") {
		t.Fatalf("Active() = %v, want exactly the armed + pending sites", act)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Error: "error", Panic: "panic", Delay: "delay",
		PartialWrite: "partial-write", ConnReset: "conn-reset", Kind(250): "kind(250)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewIdempotent(t *testing.T) {
	a := New("test/idempotent")
	b := New("test/idempotent")
	if a != b {
		t.Fatal("New returned distinct sites for one name")
	}
	if a.Name() != "test/idempotent" {
		t.Fatalf("Name() = %q", a.Name())
	}
}

// BenchmarkSiteDisabled measures the fast path the serving loop pays per
// site when nothing is armed: one atomic load and a branch. CI gates 0
// allocs/op; the ns/op should sit at or below ~1ns on any modern core.
func BenchmarkSiteDisabled(b *testing.B) {
	DisableAll()
	s := New("bench/disabled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Inject(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiteArmedOtherSite: the cost when the global gate is open but
// THIS site is disarmed — the price every other site pays during a chaos
// window.
func BenchmarkSiteArmedOtherSite(b *testing.B) {
	DisableAll()
	defer DisableAll()
	s := New("bench/disarmed")
	Enable("bench/armed-elsewhere", Policy{Kind: Error})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Inject(); err != nil {
			b.Fatal(err)
		}
	}
}
