package ensemble

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// savedState is the on-disk form of a trained Ensembler: the configuration
// (enough to rebuild identically shaped networks), the secret selection, all
// parameter tensors keyed by network role, and the fixed noise tensors.
type savedState struct {
	Cfg       Config
	Selection []int
	// Nets maps role keys ("member3.body", "final.head", ...) to the gob
	// bytes produced by nn.Network.Save.
	Nets map[string][]byte
	// Noises maps role keys ("member3.noise", "final.noise") to the fixed
	// noise tensors, which live outside the parameter lists.
	Noises map[string]*tensor.Tensor
}

// saveNet serializes one network into the state map.
func (st *savedState) saveNet(key string, n *nn.Network) error {
	var buf byteBuffer
	if err := n.Save(&buf); err != nil {
		return fmt.Errorf("ensemble: saving %s: %w", key, err)
	}
	st.Nets[key] = buf.b
	return nil
}

// loadNet restores one network from the state map.
func (st *savedState) loadNet(key string, n *nn.Network) error {
	b, ok := st.Nets[key]
	if !ok {
		return fmt.Errorf("ensemble: saved state missing network %q", key)
	}
	return n.Load(&byteReader{b: b})
}

// byteBuffer / byteReader avoid importing bytes for two trivial uses.
type byteBuffer struct{ b []byte }

func (w *byteBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// Save writes the full trained pipeline to w.
func (e *Ensembler) Save(w io.Writer) error {
	st := savedState{
		Cfg:       e.Cfg,
		Selection: e.Selector.Indices,
		Nets:      map[string][]byte{},
		Noises:    map[string]*tensor.Tensor{},
	}
	for i, m := range e.Members {
		if err := st.saveNet(fmt.Sprintf("member%d.head", i), m.Head); err != nil {
			return err
		}
		if err := st.saveNet(fmt.Sprintf("member%d.body", i), m.Body); err != nil {
			return err
		}
		if err := st.saveNet(fmt.Sprintf("member%d.tail", i), m.Tail); err != nil {
			return err
		}
		if m.Noise != nil {
			st.Noises[fmt.Sprintf("member%d.noise", i)] = m.Noise.Noise.Value
		}
	}
	if err := st.saveNet("final.head", e.Head); err != nil {
		return err
	}
	if err := st.saveNet("final.tail", e.Tail); err != nil {
		return err
	}
	if e.Noise != nil {
		st.Noises["final.noise"] = e.Noise.Noise.Value
	}
	return gob.NewEncoder(w).Encode(&st)
}

// Load reconstructs a trained pipeline from r. The stored Config rebuilds
// the network skeletons; saved parameters then overwrite the fresh
// initialization. The training-time RNG stream is irrelevant here because
// every tensor is restored explicitly.
func Load(r io.Reader) (*Ensembler, error) {
	var st savedState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("ensemble: decoding saved state: %w", err)
	}
	cfg := st.Cfg
	e := &Ensembler{Cfg: cfg}
	seedR := rng.New(cfg.Seed)
	for i := 0; i < cfg.N; i++ {
		sigma := cfg.Sigma
		if !cfg.Stage1Noise {
			sigma = 0
		}
		m := split.NewModel(fmt.Sprintf("member%d", i), cfg.Arch, sigma, nn.NoiseFixed, cfg.Dropout, seedR.Split())
		if err := st.loadNet(fmt.Sprintf("member%d.head", i), m.Head); err != nil {
			return nil, err
		}
		if err := st.loadNet(fmt.Sprintf("member%d.body", i), m.Body); err != nil {
			return nil, err
		}
		if err := st.loadNet(fmt.Sprintf("member%d.tail", i), m.Tail); err != nil {
			return nil, err
		}
		if m.Noise != nil {
			saved, ok := st.Noises[fmt.Sprintf("member%d.noise", i)]
			if !ok {
				return nil, fmt.Errorf("ensemble: saved state missing member %d noise", i)
			}
			copy(m.Noise.Noise.Value.Data, saved.Data)
		}
		e.Members = append(e.Members, m)
	}
	e.Selector = FixedSelector(cfg.N, st.Selection)
	r3 := rng.New(1)
	e.Head = cfg.Arch.NewHead("final.head", r3)
	e.Tail = cfg.Arch.NewTail("final.tail", cfg.P, cfg.Dropout, r3)
	if err := st.loadNet("final.head", e.Head); err != nil {
		return nil, err
	}
	if err := st.loadNet("final.tail", e.Tail); err != nil {
		return nil, err
	}
	if saved, ok := st.Noises["final.noise"]; ok {
		c, h, w := cfg.Arch.HeadOutShape()
		e.Noise = nn.NewAdditiveNoise("final.noise", nn.NoiseFixed, c, h, w, cfg.Sigma, rng.New(2))
		copy(e.Noise.Noise.Value.Data, saved.Data)
	}
	return e, nil
}

// SaveFile writes the pipeline to path.
func (e *Ensembler) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a pipeline from path.
func LoadFile(path string) (*Ensembler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
