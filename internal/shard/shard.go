// Package shard turns the single-box deployment into a horizontally
// scalable fleet: K independent server processes each host a disjoint
// contiguous subset of the N ensemble bodies (a comm.Server over a
// comm.NewSubsetProvider), and the client-side scatter-gather runtime
// (Client) fans one head output out to every shard concurrently,
// reassembles the N feature vectors in body order, and applies the secret
// selector and tail locally — exactly as against a monolith.
//
// The wire protocol per shard is unchanged, and the selection indices still
// never appear anywhere: the client transmits the same features to every
// shard on every request regardless of which bodies are selected, so a
// per-shard observer cannot even learn whether its own bodies matter. This
// is a strict strengthening of the paper's threat model — the adversarial
// server of the monolithic deployment holds all N bodies; a compromised
// shard host holds only its subset, the setting where ensemble-inversion
// attacks degrade (see PAPERS.md on ensemble inversion and switching
// ensembles).
//
// Shard loss is survivable because of the same secret: a request fails only
// when a shard hosting one of its *selected* bodies is unreachable. With P
// of N bodies selected, the selection touches at most P shards, so up to
// K−P shard losses leave a given client fully servable — the fleet degrades
// probabilistically rather than collapsing.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Range is one shard's contiguous body assignment [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns how many bodies the range hosts.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether body index i falls in the range.
func (r Range) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// String renders the range in the -bodies i..j CLI form.
func (r Range) String() string { return fmt.Sprintf("%d..%d", r.Lo, r.Hi-1) }

// Plan partitions N bodies across K shards as evenly as possible:
// contiguous, disjoint, covering [0, N), with the first N mod K shards one
// body larger. The plan is a pure function of (N, K), so every fleet member
// — each shard server and every client — derives the identical layout from
// the model configuration alone, with nothing to distribute or agree on.
func Plan(n, k int) ([]Range, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: plan needs a positive body count, got N=%d", n)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("shard: shard count K=%d out of range for N=%d bodies (want 1..%d)", k, n, n)
	}
	out := make([]Range, k)
	base, extra := n/k, n%k
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out, nil
}

// ParseSpec parses the -shard CLI form "k/K" (1-based shard k of K), e.g.
// "2/3" for the second of three shards.
func ParseSpec(spec string) (k, total int, err error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("shard: spec %q is not of the form k/K (e.g. 2/3)", spec)
	}
	k, errK := strconv.Atoi(parts[0])
	total, errT := strconv.Atoi(parts[1])
	if errK != nil || errT != nil || total <= 0 || k <= 0 || k > total {
		return 0, 0, fmt.Errorf("shard: spec %q wants shard k in 1..K, K positive", spec)
	}
	return k, total, nil
}
