// Package comm implements collaborative inference over a real network: a
// server that hosts the N ensemble bodies behind a gob-encoded TCP protocol,
// and a client that transmits its head's output, receives all N feature
// vectors, and applies its secret Selector and tail locally. This is the
// deployment form of Fig. 1/Fig. 2: the selection indices never appear on
// the wire, which is precisely what the defense relies on.
//
// The serving path is concurrent end to end. The server accepts many
// simultaneous connections, pipelines requests per connection, and dispatches
// them to a bounded worker pool; within one request the N body passes fan out
// across goroutines and join before the reply. Because every layer caches its
// forward activations (see package nn), a body network is safe for one
// goroutine at a time only — each worker therefore owns a private replica of
// the bodies (WithReplicas), and per-body fan-out is safe because the N
// bodies of one replica set are distinct networks.
//
// One round trip can carry a whole batch: a Request either holds a single
// [B,C,H,W] feature tensor or a list of them (InferBatch), which the server
// stacks along the batch axis, pushes through each body once, and splits
// back per input. Context plumbing runs through Serve and Infer for graceful
// shutdown and per-request deadlines.
//
// The serving path is observable without being slowed: WithMetrics attaches
// a telemetry bundle (requests, errors, images, per-request serve-time and
// batch-size histograms) and WithObserver mirrors transmitted features into
// the privacy-audit engine's sampler. Both are nil checks on the hot path
// when absent, and the attached implementations are lock-free (telemetry)
// or amortized to an atomic add (audit sampling).
//
// The server no longer owns its bodies: every request resolves a
// (model, version) pair through a ModelProvider — a registry of published
// model epochs, or the built-in single-model provider NewServer wraps around
// a fixed body slice. An empty model name and version 0 (what a pre-registry
// client's request decodes to) fall back to the provider's default, so old
// clients keep working; a provider whose current epoch changes between
// requests gives zero-downtime hot swaps, with each worker lazily re-cloning
// its body replicas when it first sees the new epoch.
package comm

import (
	"errors"
	"fmt"
	"net"
	"time"

	"ensembler/internal/tensor"
)

// ErrOverloaded is the 429 of the wire protocol: the server's intake queue
// was full and the request was shed by admission control instead of queued
// without bound. The connection stays synchronized — the response frame is
// well-formed — so the client may retry after backing off (Pool does this
// automatically; see RetryPolicy). Detect with errors.Is.
var ErrOverloaded = errors.New("server overloaded")

// CodeOverloaded is Response.Code for a load-shed request — 429 by analogy,
// carried natively by the gob codec and as the code field of a version-2
// binary response frame (a v1 binary peer sees only the error text).
const CodeOverloaded = 429

// ErrBudgetExhausted is the privacy-budget refusal: the client's per-client
// Rényi budget (see internal/privacy) is spent and the budget-aware policy
// refused the request rather than leak more. Unlike ErrOverloaded this is
// NOT transient — retrying cannot help until the budget refills (if it ever
// does), so Pool.Retry treats it as terminal. Detect with errors.Is.
var ErrBudgetExhausted = errors.New("privacy budget exhausted")

// CodeBudgetExhausted is Response.Code for a budget-refused request. It is
// carried natively by the gob codec and on any code-capable (v2+) binary
// connection, so legacy peers receive the same honest refusal the moment
// their budget drains.
const CodeBudgetExhausted = 430

// Request is the client→server message. Exactly one of the two payload
// fields is set: Features carries the intermediate activations
// Mc,h(x)+noise for one input batch, Inputs carries B of them to be served
// in a single round trip.
//
// Model and Version route the request on a multi-model server: Model ""
// falls back to the server's default model and Version 0 to its current
// version, which is also exactly what a pre-registry client's request
// decodes to (gob omits zero-valued fields, so the old and new wire forms
// of a header-less request are identical bytes).
type Request struct {
	Model    string
	Version  int
	Features *tensor.Tensor
	Inputs   []*tensor.Tensor
}

// Response is the server→client message mirroring the request form.
// Features holds one feature matrix per hosted body (the server cannot know
// which the client will use); Outputs holds that per-body list for each of
// the B batched inputs. Model and Version echo what actually served the
// request — how a client observes a hot swap; a single-model server leaves
// them zero, which old clients ignore.
type Response struct {
	Model    string
	Version  int
	Features []*tensor.Tensor
	Outputs  [][]*tensor.Tensor
	Err      string
	// Code classifies a non-empty Err so clients can react mechanically:
	// 0 is an ordinary request failure (terminal for that request),
	// CodeOverloaded marks a load-shed request that is safe to retry.
	// Legacy gob decoders predating the field simply ignore it.
	Code int
}

// Timing breaks down one remote inference round trip as measured at the
// client — the empirical analogue of a Table III row.
type Timing struct {
	Client    time.Duration // head + selector + tail compute
	RoundTrip time.Duration // upload + server compute + download
	BytesUp   int
	BytesDown int
}

// countingConn wraps a net.Conn tallying payload bytes in each direction.
type countingConn struct {
	net.Conn
	up, down int
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.down += n
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.up += n
	return n, err
}

// validateTensor checks the structural honesty of any tensor that came off
// the wire — nothing about it can be trusted: non-nil, non-empty shape,
// positive dimensions, and shape/data agreement. Both trust boundaries
// (server validating requests, client validating responses) build on it.
func validateTensor(f *tensor.Tensor) error {
	if f == nil {
		return fmt.Errorf("comm: missing tensor")
	}
	if len(f.Shape) == 0 {
		return fmt.Errorf("comm: tensor has empty shape")
	}
	n := 1
	for _, d := range f.Shape {
		if d <= 0 {
			return fmt.Errorf("comm: tensor has non-positive dimension in shape %v", f.Shape)
		}
		n *= d
	}
	if len(f.Data) != n {
		return fmt.Errorf("comm: tensor carries %d values for shape %v", len(f.Data), f.Shape)
	}
	return nil
}

// validateFeatures checks one transmitted feature tensor: structurally
// honest and of the [N,C,H,W] rank the bodies expect.
func validateFeatures(f *tensor.Tensor) error {
	if f == nil || len(f.Shape) != 4 {
		return fmt.Errorf("comm: request must carry [N,C,H,W] features")
	}
	return validateTensor(f)
}

// Batch stacking and splitting live on the serving job (see job.stackInputs
// in server.go and the split loop in processUnguarded): both write into the
// request's recycled arena so the batched path shares the single-feature
// path's zero-allocation steady state.
