package shard

import (
	"errors"
	"testing"
	"time"
)

func testBreaker() *breaker {
	// jitter 0 so reopen instants are exact; threshold 3 like the default.
	return newBreaker(3, 100*time.Millisecond, 800*time.Millisecond, 0, 7)
}

// TestBreakerStateMachine walks the full circuit: closed → open on the
// threshold streak, short-circuit while open, half-open single-probe
// admission after the backoff, reopen with doubled backoff on a failed
// probe, and closed again (backoff reset) on a successful one.
func TestBreakerStateMachine(t *testing.T) {
	b := testBreaker()
	t0 := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if admit, probe := b.allow(t0); !admit || probe {
			t.Fatalf("closed circuit: allow = (%v,%v), want (true,false)", admit, probe)
		}
		b.recordFailure(t0)
		if st, _, _, _ := b.snapshot(t0); st != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, st)
		}
	}
	b.recordFailure(t0)
	st, fails, opens, reopenIn := b.snapshot(t0)
	if st != BreakerOpen || fails != 3 || opens != 1 {
		t.Fatalf("after threshold: state=%v fails=%d opens=%d, want open/3/1", st, fails, opens)
	}
	if reopenIn != 100*time.Millisecond {
		t.Fatalf("reopenIn = %v, want 100ms (base, no jitter)", reopenIn)
	}

	// Open: short-circuit until the backoff elapses.
	if admit, _ := b.allow(t0.Add(50 * time.Millisecond)); admit {
		t.Fatal("open circuit admitted before reopen backoff elapsed")
	}

	// Backoff elapsed: exactly one caller becomes the probe; concurrent
	// callers keep short-circuiting while it is in flight.
	t1 := t0.Add(150 * time.Millisecond)
	admit, probe := b.allow(t1)
	if !admit || !probe {
		t.Fatalf("reopen instant: allow = (%v,%v), want probe admission", admit, probe)
	}
	if admit, _ := b.allow(t1); admit {
		t.Fatal("second caller admitted while a half-open probe is in flight")
	}
	if st, _, _, _ := b.snapshot(t1); st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}

	// Failed probe: reopen with doubled backoff.
	b.recordFailure(t1)
	st, _, opens, reopenIn = b.snapshot(t1)
	if st != BreakerOpen || opens != 2 || reopenIn != 200*time.Millisecond {
		t.Fatalf("failed probe: state=%v opens=%d reopenIn=%v, want open/2/200ms", st, opens, reopenIn)
	}

	// Next probe succeeds: closed, streak cleared, backoff reset to base.
	t2 := t1.Add(250 * time.Millisecond)
	if admit, probe := b.allow(t2); !admit || !probe {
		t.Fatal("second probe not admitted after doubled backoff")
	}
	b.recordSuccess()
	st, fails, _, _ = b.snapshot(t2)
	if st != BreakerClosed || fails != 0 {
		t.Fatalf("after probe success: state=%v fails=%d, want closed/0", st, fails)
	}
	b.recordFailure(t2)
	b.recordFailure(t2)
	b.recordFailure(t2)
	if _, _, _, reopenIn := b.snapshot(t2); reopenIn != 100*time.Millisecond {
		t.Fatalf("backoff after recovery = %v, want reset to 100ms base", reopenIn)
	}
}

// TestBreakerBackoffCap: repeated failed probes double the wait only up to
// the cap.
func TestBreakerBackoffCap(t *testing.T) {
	b := testBreaker()
	now := time.Unix(2000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now)
	}
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour)
		if admit, probe := b.allow(now); !admit || !probe {
			t.Fatalf("probe %d not admitted after an hour", i)
		}
		b.recordFailure(now)
	}
	if _, _, _, reopenIn := b.snapshot(now); reopenIn != 800*time.Millisecond {
		t.Fatalf("reopenIn = %v, want capped at 800ms", reopenIn)
	}
}

// TestBreakerJitterDeterministicAndBounded: jittered reopen waits are
// reproducible from the seed and stay within ±jitter of the nominal wait.
func TestBreakerJitterDeterministicAndBounded(t *testing.T) {
	run := func(seed int64) []time.Duration {
		b := newBreaker(1, 100*time.Millisecond, time.Minute, 0.3, seed)
		now := time.Unix(3000, 0)
		var waits []time.Duration
		for i := 0; i < 8; i++ {
			b.recordFailure(now)
			_, _, _, reopenIn := b.snapshot(now)
			waits = append(waits, reopenIn)
			now = now.Add(2 * time.Minute)
			b.allow(now) // take the probe slot
			now = now.Add(time.Minute)
		}
		return waits
	}
	a1, a2, c := run(11), run(11), run(12)
	varies := false
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different jitter at step %d: %v vs %v", i, a1[i], a2[i])
		}
		if a1[i] != c[i] {
			varies = true
		}
		nominal := 100 * time.Millisecond << min(i, 9)
		if nominal > time.Minute {
			nominal = time.Minute
		}
		lo := time.Duration(float64(nominal) * 0.69)
		hi := time.Duration(float64(nominal) * 1.31)
		if a1[i] < lo || a1[i] > hi {
			t.Fatalf("step %d wait %v outside [%v,%v]", i, a1[i], lo, hi)
		}
	}
	if !varies {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestBreakerReleaseProbe: a probe whose caller was cancelled hands the
// slot back (open, immediately eligible) instead of wedging half-open.
func TestBreakerReleaseProbe(t *testing.T) {
	b := testBreaker()
	now := time.Unix(4000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now)
	}
	now = now.Add(time.Second)
	if admit, probe := b.allow(now); !admit || !probe {
		t.Fatal("probe not admitted")
	}
	b.releaseProbe()
	if admit, probe := b.allow(now); !admit || !probe {
		t.Fatal("released probe slot not re-admittable")
	}
	// releaseProbe on a non-half-open circuit is a no-op.
	b.recordSuccess()
	b.releaseProbe()
	if st, _, _, _ := b.snapshot(now); st != BreakerClosed {
		t.Fatalf("releaseProbe disturbed a closed circuit: %v", st)
	}
}

// TestBreakerLateFailureWhileOpen: a straggler failure from a request
// admitted before the circuit opened must not disturb the reopen schedule.
func TestBreakerLateFailureWhileOpen(t *testing.T) {
	b := testBreaker()
	now := time.Unix(5000, 0)
	for i := 0; i < 3; i++ {
		b.recordFailure(now)
	}
	_, _, opens, reopenBefore := b.snapshot(now)
	b.recordFailure(now) // straggler
	_, _, opensAfter, reopenAfter := b.snapshot(now)
	if opensAfter != opens || reopenAfter != reopenBefore {
		t.Fatalf("straggler failure re-opened the circuit: opens %d→%d reopen %v→%v",
			opens, opensAfter, reopenBefore, reopenAfter)
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
		BreakerState(9): "invalid",
	} {
		if st.String() != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
	if !errors.Is(ErrBreakerOpen, ErrBreakerOpen) {
		t.Fatal("ErrBreakerOpen identity broken")
	}
}
