// Package tensor implements the dense numeric arrays that the rest of the
// Ensembler reproduction is built on: contiguous, row-major float64 tensors
// with the elementwise arithmetic, matrix multiplication and im2col/col2im
// transforms needed to train and invert split convolutional networks on the
// CPU. All operations are deterministic; parallel kernels split work in fixed
// chunk order so results do not depend on scheduling.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a dense row-major array of float64 values. Shape holds the
// extent of each dimension; Data holds len = product(Shape) values. Both
// fields are exported so tensors serialize directly with encoding/gob.
type Tensor struct {
	Shape []int
	Data  []float64
}

// numElems returns the number of elements implied by shape, validating that
// every dimension is positive.
func numElems(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, numElems(shape))}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data (copied) in a tensor of the given shape. It panics if
// len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != numElems(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: append([]float64(nil), data...)}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float64(nil), t.Data...)}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// offset converts a multi-index to a flat offset.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Reshape returns a view of t with a new shape of equal size. The returned
// tensor ALIASES t: both share one backing Data array, so a write through
// either is visible in the other. Only the header and shape are fresh.
// Callers that need an independent copy must Clone first; the layers that
// deliberately rely on the aliasing (nn.Flatten, nn.Reshape2D4D — a reshape
// in a forward pass must not copy activations) annotate it at the call site.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if numElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// String renders a short description (shape plus a few leading values), keeping
// logs readable for large tensors.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v...", t.Shape, t.Data[:n])
}

// checkSame panics unless t and o share a shape; op names the caller.
func (t *Tensor) checkSame(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}

// AddInPlace adds o into t elementwise and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.checkSame(o, "Add")
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace subtracts o from t elementwise and returns t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.checkSame(o, "Sub")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace multiplies t by o elementwise and returns t.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.checkSame(o, "Mul")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns t * o elementwise.
func (t *Tensor) Mul(o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// Scale returns s * t.
func (t *Tensor) Scale(s float64) *Tensor { return t.Clone().ScaleInPlace(s) }

// AddScalarInPlace adds s to every element and returns t.
func (t *Tensor) AddScalarInPlace(s float64) *Tensor {
	for i := range t.Data {
		t.Data[i] += s
	}
	return t
}

// AddScaledInPlace performs t += s*o elementwise and returns t. This is the
// axpy primitive used by the optimizers.
func (t *Tensor) AddScaledInPlace(o *Tensor, s float64) *Tensor {
	t.checkSame(o, "AddScaled")
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Min returns the smallest element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element (first on ties).
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.checkSame(o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of t viewed as a flat vector.
func (t *Tensor) L2Norm() float64 { return math.Sqrt(t.Dot(t)) }

// AllClose reports whether every element of t is within tol of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Row returns row i of a 2-D tensor as a copied 1-D tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Row on non-matrix")
	}
	cols := t.Shape[1]
	return FromSlice(t.Data[i*cols:(i+1)*cols], cols)
}

// parallelFor runs body(i) for i in [0, n), splitting the range across
// workers in fixed chunks. For small n it runs inline to avoid goroutine
// overhead. The worker count defaults to GOMAXPROCS, capped by
// SetKernelParallelism — serving processes set the cap to 1 so kernels never
// nest a second level of parallelism under the comm worker pool.
func parallelFor(n int, body func(i int)) {
	parallelForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// parallelForChunks runs body(lo, hi) over a fixed-order partition of
// [0, n) — the chunked form lets blocked kernels keep cache tiles hot across
// a whole chunk instead of re-entering per index.
func parallelForChunks(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if limit := int(kernelWorkers.Load()); limit > 0 && limit < workers {
		workers = limit
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns the matrix product a×b for 2-D tensors [m,k]·[k,n] → [m,n].
// Row blocks of the output are computed in parallel with the cache-blocked
// kernel (see matmulRows); results are bit-identical to the serial
// MatMulInto because accumulation order per output element is fixed.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelForChunks(m, func(lo, hi int) {
		matmulRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return out
}

// MatMulTransB returns a × bᵀ for a:[m,k], b:[n,k] → [m,n]. Using the
// transposed layout directly avoids materializing bᵀ in conv backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelFor(m, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	})
	return out
}

// MatMulTransA returns aᵀ × b for a:[k,m], b:[k,n] → [m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelFor(m, func(i int) {
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	return out
}

// Transpose2D returns the transpose of a 2-D tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose2D on non-matrix")
	}
	m, n := t.Shape[0], t.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}
