package ensemble

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(51)
	cfg := tinyConfig(52)
	e := Train(cfg, train, nil)

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical secret selection.
	if len(loaded.Selector.Indices) != len(e.Selector.Indices) {
		t.Fatal("selection length changed")
	}
	for i := range e.Selector.Indices {
		if loaded.Selector.Indices[i] != e.Selector.Indices[i] {
			t.Fatal("secret selection changed across save/load")
		}
	}

	// Identical predictions, end to end.
	x, _ := train.Batch([]int{0, 1, 2, 3})
	if !loaded.Predict(x).AllClose(e.Predict(x), 1e-9) {
		t.Error("loaded pipeline predicts differently")
	}
	// Identical transmitted features (head + noise both restored).
	if !loaded.ClientFeatures(x).AllClose(e.ClientFeatures(x), 1e-9) {
		t.Error("loaded client features differ")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestUntrainedSaveLoadRoundTrip(t *testing.T) {
	// New + Save + Load must reproduce the skeleton bit-for-bit — the cheap
	// path the registry harnesses rely on.
	e := untrainedPipeline(81)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := randomImages(e.Cfg, 82, 2)
	if !loaded.Predict(x).AllClose(e.Predict(x), 1e-12) {
		t.Error("loaded untrained pipeline predicts differently")
	}
}

// reencode decodes a saved envelope, lets mutate rewrite it, and re-encodes.
func reencode(t *testing.T, e *Ensembler, mutate func(*savedFile)) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var env savedFile
	if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(out.Bytes())
}

func TestLoadRejectsEnvelopeLessFormat1File(t *testing.T) {
	// A pre-envelope (format 1) file is a bare gob of savedState. None of
	// its fields match the savedFile envelope, which gob reports as a type
	// mismatch — the reader must surface the older-format possibility, not
	// imply corruption or fail deep inside network reconstruction.
	e := untrainedPipeline(85)
	st := savedState{
		Cfg:       e.Cfg,
		Selection: e.Selector.Indices,
		Nets:      map[string][]byte{},
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(&st); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&legacy)
	if err == nil || !strings.Contains(err.Error(), "older build") {
		t.Errorf("want an older-format hint for a format-1 file, got %v", err)
	}
}

func TestLoadRejectsWrongFormatVersion(t *testing.T) {
	e := untrainedPipeline(83)
	r := reencode(t, e, func(env *savedFile) { env.Format = FormatVersion + 1 })
	_, err := Load(r)
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("want format-version mismatch error, got %v", err)
	}
}

func TestLoadRejectsCorruptedPayload(t *testing.T) {
	e := untrainedPipeline(84)
	r := reencode(t, e, func(env *savedFile) { env.Payload[len(env.Payload)/2] ^= 0xff })
	_, err := Load(r)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("want checksum error, got %v", err)
	}
	// Truncation of the payload is also a checksum failure, not a garbled
	// network.
	r = reencode(t, e, func(env *savedFile) { env.Payload = env.Payload[:len(env.Payload)-7] })
	_, err = Load(r)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("want checksum error for truncated payload, got %v", err)
	}
}
