package attack

import (
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/tensor"
)

// RMLEConfig parameterizes the optimization-based inversion (regularized
// maximum-likelihood estimation, He et al. 2019): instead of learning a
// decoder, the attacker gradient-descends on candidate pixels until the
// shadow head maps them to the observed features, with a total-variation
// prior keeping the estimate image-like.
type RMLEConfig struct {
	Steps    int
	LR       float64
	TVWeight float64
}

// withDefaults fills zero fields.
func (c RMLEConfig) withDefaults() RMLEConfig {
	if c.Steps == 0 {
		c.Steps = 300
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.TVWeight == 0 {
		c.TVWeight = 1e-3
	}
	return c
}

// tvLossGrad returns the anisotropic total variation of a batch of images
// and its gradient: TV = Σ (x[i,j+1]-x[i,j])² + (x[i+1,j]-x[i,j])²,
// normalized by the pixel count.
func tvLossGrad(x *tensor.Tensor) (float64, *tensor.Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	grad := tensor.New(x.Shape...)
	total := 0.0
	norm := 1 / float64(x.Size())
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					idx := base + y*w + xx
					if xx+1 < w {
						d := x.Data[idx+1] - x.Data[idx]
						total += d * d * norm
						grad.Data[idx] -= 2 * d * norm
						grad.Data[idx+1] += 2 * d * norm
					}
					if y+1 < h {
						d := x.Data[idx+w] - x.Data[idx]
						total += d * d * norm
						grad.Data[idx] -= 2 * d * norm
						grad.Data[idx+w] += 2 * d * norm
					}
				}
			}
		}
	}
	return total, grad
}

// RMLE inverts observed features by optimizing input pixels through the
// shadow head: min_x ||head(x) − observed||² + λ·TV(x), with pixels clamped
// to [0,1] after every step. Returns the reconstructed batch.
func RMLE(head *nn.Network, observed *tensor.Tensor, imgShape []int, cfg RMLEConfig) *tensor.Tensor {
	cfg = cfg.withDefaults()
	x := tensor.Full(0.5, imgShape...) // neutral gray start
	xp := nn.NewParam("rmle.x", x)
	opt := optim.NewAdam([]*nn.Param{xp}, cfg.LR)
	for step := 0; step < cfg.Steps; step++ {
		pred := head.Forward(x, false)
		_, gradPred := nn.MSELoss(pred, observed)
		gx := head.Backward(gradPred)
		head.ZeroGrad() // attacker never updates the shadow head here
		_, gtv := tvLossGrad(x)
		xp.Grad.AddInPlace(gx).AddScaledInPlace(gtv, cfg.TVWeight)
		opt.Step()
		for i, v := range x.Data {
			if v < 0 {
				x.Data[i] = 0
			} else if v > 1 {
				x.Data[i] = 1
			}
		}
	}
	return x
}
