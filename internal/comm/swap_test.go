package comm_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/comm"
	"ensembler/internal/commtest"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/registry"
	"ensembler/internal/tensor"
)

// bodyReference computes what a commtest-wired client must receive from a
// server hosting the pipeline's bodies: identity features in, concat-all
// selection and the deterministic tail over every body's output.
func bodyReference(e *ensemble.Ensembler, x *tensor.Tensor) *tensor.Tensor {
	bodies := e.Bodies()
	feats := make([]*tensor.Tensor, len(bodies))
	for i, b := range bodies {
		feats[i] = b.Forward(x, false)
	}
	return commtest.Tail(tiny, len(bodies)).Forward(nn.ConcatFeatures(feats), false)
}

// TestHotSwapUnderConcurrentLoad is the acceptance scenario of the registry
// subsystem: a running server under load from 8 concurrent clients takes a
// Publish of a brand-new model version and then a RotateSelector, with zero
// failed requests. Every response must bit-match the reference of the
// version the server says it served, and every client must eventually
// observe the final epoch — the swap is total as well as lossless.
func TestHotSwapUnderConcurrentLoad(t *testing.T) {
	const (
		nBodies = 3
		clients = 8
	)
	e1 := commtest.Pipeline(tiny, nBodies, 2, 101)
	e2 := commtest.Pipeline(tiny, nBodies, 2, 202)
	x := commtest.Input(tiny, 103, 2)

	// Version 3 is a selector rotation of version 2: same bodies by design,
	// so its wire-visible reference equals version 2's. Computed before any
	// load starts so the primaries' forward caches are never shared.
	refs := map[int]*tensor.Tensor{
		1: bodyReference(e1, x),
		2: bodyReference(e2, x),
	}
	refs[3] = refs[2]

	reg := registry.New(nil)
	if _, err := reg.Publish("m", e1); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := comm.NewModelServer(reg, comm.WithWorkers(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	var (
		failed   atomic.Int64 // must stay zero: the hot-swap guarantee
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})
	errs := make(chan error, clients)
	sawFinal := make([]atomic.Bool, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client, err := comm.Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				failed.Add(1)
				return
			}
			defer client.Close()
			commtest.Wire(client, tiny, nBodies)
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := client.Infer(context.Background(), x)
				if err != nil {
					failed.Add(1)
					errs <- fmt.Errorf("client %d: %w", id, err)
					return
				}
				requests.Add(1)
				model, version := client.Served()
				want := refs[version]
				if model != "m" || want == nil {
					failed.Add(1)
					errs <- fmt.Errorf("client %d: served unexpected %s v%d", id, model, version)
					return
				}
				if !got.AllClose(want, 1e-12) {
					failed.Add(1)
					errs <- fmt.Errorf("client %d: result diverges from v%d reference", id, version)
					return
				}
				if version == 3 {
					sawFinal[id].Store(true)
				}
			}
		}(id)
	}

	// Let traffic flow on v1, hot-publish v2, keep the load up, then rotate
	// the selector (v3). Neither swap may fail a single request.
	time.Sleep(50 * time.Millisecond)
	if _, err := reg.Publish("m", e2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := reg.RotateSelector("m", ensemble.RotateOptions{Seed: 104}); err != nil {
		t.Fatal(err)
	}

	// Run until every client has served at least one request on the final
	// epoch — proof the swap reached the whole worker pool.
	deadline := time.After(10 * time.Second)
	for {
		all := true
		for i := range sawFinal {
			if !sawFinal[i].Load() {
				all = false
			}
		}
		if all {
			break
		}
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatal("not every client observed the final epoch within 10s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := failed.Load(); n != 0 {
		t.Errorf("hot swap dropped %d requests, want 0", n)
	}
	if requests.Load() == 0 {
		t.Error("no requests served")
	}

	cancel()
	if err := <-served; err != nil {
		t.Errorf("serve: %v", err)
	}
}

// TestVersionPinning checks that a client asking for a superseded version
// keeps getting it after a publish moves current — multi-version routing on
// one socket.
func TestVersionPinning(t *testing.T) {
	const nBodies = 3
	e1 := commtest.Pipeline(tiny, nBodies, 2, 111)
	e2 := commtest.Pipeline(tiny, nBodies, 2, 222)
	x := commtest.Input(tiny, 113, 1)
	ref1, ref2 := bodyReference(e1, x), bodyReference(e2, x)

	reg := registry.New(nil)
	if _, err := reg.Publish("m", e1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("m", e2); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := comm.NewModelServer(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	client := dialWired(t, ln.Addr().String(), nBodies)

	// Header-less: current version.
	got, _, err := client.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(ref2, 1e-12) {
		t.Error("default routing did not serve the current version")
	}
	if _, v := client.Served(); v != 2 {
		t.Errorf("served version = %d, want 2", v)
	}

	// Pinned: the superseded version, on the same connection.
	client.Model, client.Version = "m", 1
	got, _, err = client.Infer(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(ref1, 1e-12) {
		t.Error("pinned routing did not serve version 1")
	}
	if _, v := client.Served(); v != 1 {
		t.Errorf("served version = %d, want 1", v)
	}

	// Unknown model and unknown version are benign protocol errors: the
	// connection survives.
	client.Model, client.Version = "ghost", 0
	if _, _, err := client.Infer(ctx, x); err == nil {
		t.Error("unknown model must be rejected")
	}
	client.Model, client.Version = "m", 42
	if _, _, err := client.Infer(ctx, x); err == nil {
		t.Error("unknown version must be rejected")
	}
	client.Model, client.Version = "", 0
	if _, _, err := client.Infer(ctx, x); err != nil {
		t.Errorf("connection must survive routing rejections: %v", err)
	}

	cancel()
	<-served
}

// TestPoolReconfigureMidTraffic drives the client-side half of a hot swap: a
// pool under concurrent load is re-pointed at a new wiring, no request
// fails, and traffic converges to the new configuration.
func TestPoolReconfigureMidTraffic(t *testing.T) {
	const nBodies = 3
	addr, _ := startConcurrentServer(t, context.Background(), nBodies, 2)

	x := commtest.Input(tiny, 121, 1)
	want1 := commtest.Reference(tiny, nBodies, x)
	// The rewired pool doubles the selected features; the tail is linear, so
	// the expected logits double too.
	want2 := want1.Scale(2)

	pool, err := comm.NewPool(addr, 4, func(c *comm.Client) error {
		commtest.Wire(c, tiny, nBodies)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		failed  atomic.Int64
		swapped atomic.Int64
	)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := pool.Infer(context.Background(), x)
				if err != nil {
					failed.Add(1)
					errs <- fmt.Errorf("goroutine %d: %w", i, err)
					return
				}
				switch {
				case got.AllClose(want1, 1e-12):
				case got.AllClose(want2, 1e-12):
					swapped.Add(1)
				default:
					failed.Add(1)
					errs <- fmt.Errorf("goroutine %d: result matches neither wiring", i)
					return
				}
			}
		}(i)
	}

	time.Sleep(30 * time.Millisecond)
	pool.Reconfigure(func(c *comm.Client) error {
		commtest.Wire(c, tiny, nBodies)
		inner := c.Select
		c.Select = func(features []*tensor.Tensor) *tensor.Tensor {
			return inner(features).Scale(2)
		}
		return nil
	})

	deadline := time.After(10 * time.Second)
	for swapped.Load() < 8 {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("pool served only %d new-wiring results within 10s", swapped.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := failed.Load(); n != 0 {
		t.Errorf("reconfigure dropped %d requests, want 0", n)
	}
}
