package data

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ensembler/internal/tensor"
)

func TestEncodePPMHeaderAndSize(t *testing.T) {
	img := tensor.New(3, 4, 5)
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	var w, h, max int
	var magic string
	if _, err := fmt.Fscanf(bytes.NewReader(buf.Bytes()), "%s\n%d %d\n%d\n", &magic, &w, &h, &max); err != nil {
		t.Fatal(err)
	}
	if magic != "P6" || w != 5 || h != 4 || max != 255 {
		t.Errorf("header %s %d %d %d", magic, w, h, max)
	}
	// Payload: exactly 3·H·W bytes after the header.
	header := fmt.Sprintf("P6\n%d %d\n255\n", w, h)
	if got := buf.Len() - len(header); got != 3*4*5 {
		t.Errorf("payload %d bytes, want %d", got, 60)
	}
}

func TestEncodePPMClampsAndQuantizes(t *testing.T) {
	img := tensor.New(3, 1, 2)
	img.Set(-0.5, 0, 0, 0) // clamps to 0
	img.Set(2.0, 1, 0, 0)  // clamps to 255
	img.Set(0.5, 2, 0, 0)  // rounds to 128
	var buf bytes.Buffer
	if err := EncodePPM(&buf, img); err != nil {
		t.Fatal(err)
	}
	payload := buf.Bytes()[len("P6\n2 1\n255\n"):]
	if payload[0] != 0 || payload[1] != 255 || payload[2] != 128 {
		t.Errorf("pixel 0 = (%d,%d,%d)", payload[0], payload[1], payload[2])
	}
}

func TestEncodePPMRejectsBadShape(t *testing.T) {
	if err := EncodePPM(&bytes.Buffer{}, tensor.New(1, 4, 4)); err == nil {
		t.Error("grayscale shape must be rejected")
	}
}

func TestSaveGrid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.ppm")
	batch := tensor.New(5, 3, 2, 2)
	for i := range batch.Data {
		batch.Data[i] = 0.5
	}
	if err := SaveGrid(path, batch, 2); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 5 images in 2 columns → 3 rows: canvas 4px wide (2·2), 6px tall (3·2).
	want := fmt.Sprintf("P6\n%d %d\n255\n", 4, 6)
	if string(b[:len(want)]) != want {
		t.Errorf("grid header %q", string(b[:len(want)]))
	}
}

func TestSaveGridRejectsBadShape(t *testing.T) {
	if err := SaveGrid(filepath.Join(t.TempDir(), "x.ppm"), tensor.New(2, 1, 2, 2), 2); err == nil {
		t.Error("non-RGB batch must be rejected")
	}
}
