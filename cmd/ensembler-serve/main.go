// Command ensembler-serve hosts the server bodies of trained pipelines over
// TCP — the cloud half of the collaborative-inference deployment. The secret
// selector and the client tail stay with whoever holds the model artifacts;
// the server only ever sees intermediate features and returns the feature
// vectors of every body it hosts.
//
// Models come from either a single file (-model, the legacy path) or a
// versioned registry directory (-model-dir) written by ensembler-train or
// registry.Store.Publish. With a registry directory the server is
// hot-swappable with zero downtime: requests carry an optional
// (model, version) header resolved per request, SIGHUP re-scans the
// directory and swaps newly published versions in while in-flight requests
// finish on their old epoch, and -rotate-every re-draws the secret selector
// on a cadence (the switching-ensembles defense; the served bodies are
// unchanged, so rotation is invisible on the wire).
//
// -shard k/K turns the process into one member of a sharded fleet: it hosts
// only shard k's contiguous body subset of the ensemble (shard.Plan over
// the model's N), serving the identical wire protocol with fewer feature
// vectors per response. K such processes behind a shard.Client scatter-
// gather runtime replace one monolithic server; a compromised shard host
// then observes only its own bodies' traffic. Selector rotation is a
// client-side affair in a fleet, so -rotate-every is rejected with -shard.
//
// Requests from concurrent connections are served by a bounded worker pool;
// each worker owns private replicas of the bodies it has served, lazily
// re-cloned when a swap publishes a new epoch, and within one request the
// hosted body passes run in parallel. SIGINT/SIGTERM triggers a graceful
// shutdown: in-flight requests finish, their responses flush, and Serve
// returns.
//
// -batch-window turns on cross-connection continuous batching: single-tensor
// requests arriving within the window are coalesced into one stacked forward
// pass per body, trading up to one window of added latency for per-request
// dispatch overhead amortized across connections. -max-queue bounds the
// intake queue; when it fills, admission control sheds the newest request of
// the longest per-connection backlog with an honest 429-style overload error
// (retryable — comm.Pool backs off and retries automatically), so polite
// clients are never starved by a firehose. Dispatcher depth, sheds, and
// batch occupancy are exported on /metrics.
//
// -admin-addr opens the operational control plane on a second listener:
// /healthz (liveness + live epoch), /metrics (Prometheus exposition of QPS,
// latency, batch sizes, epoch version, rotations, worker utilization, and
// audit leakage), /leakage (the audit engine's state as JSON), and /rotate
// (POST: rotate the selector now, recorded with cause "admin request").
//
// -audit-sample N turns on the online privacy audit: every Nth request's
// transmitted features are mirrored into a bounded reservoir, and on the
// -audit-every cadence the process replays the repo's model-inversion attack
// (oracle-grade — the conservative upper bound only the model owner can
// mount) against the live pipeline, scoring reconstructions on a synthetic
// calibration set. When the rolling SSIM stays above -audit-threshold for
// -audit-breaches consecutive audits, the selector rotates automatically
// (cause recorded with the evidence), rate-limited by -rotate-min-interval
// and re-armed only after leakage dips below threshold−hysteresis. In a
// sharded fleet the audit is report-only: rotation is the client's move.
//
//	ensembler-serve -model ensembler.gob -addr :7946 -workers 4 -max-batch 64
//	ensembler-serve -model-dir models/ -model-name cifar -rotate-every 10m
//	ensembler-serve -model-dir models/ -shard 2/3 -addr :7948
//	ensembler-serve -model-dir models/ -admin-addr 127.0.0.1:9100 -audit-sample 100
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ensembler/internal/attack"
	"ensembler/internal/audit"
	"ensembler/internal/comm"
	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/faultpoint"
	"ensembler/internal/privacy"
	"ensembler/internal/registry"
	"ensembler/internal/shard"
	"ensembler/internal/telemetry"
	"ensembler/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ensembler-serve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it parses args, opens the model
// source, serves until ctx is cancelled (the signal path in main), and
// returns errors instead of exiting.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ensembler-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "trained pipeline file from ensembler-train (single-model mode)")
	modelDir := fs.String("model-dir", "", "versioned model registry directory (multi-model, hot-swappable)")
	modelName := fs.String("model-name", "", "default model name (registry mode; defaults to the first model found)")
	addr := fs.String("addr", "127.0.0.1:7946", "listen address (use :0 to pick a free port)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "compute worker pool size (each worker holds body replicas)")
	maxBatch := fs.Int("max-batch", comm.DefaultMaxBatch, "max inputs per batched request")
	batchWindow := fs.Duration("batch-window", 0, "continuous-batching window: hold the first request this long to coalesce co-arrivals from other connections (0 disables unless -max-queue is set)")
	maxQueue := fs.Int("max-queue", 0, "bound on the continuous-batching intake queue before admission control sheds (0 = default when batching is on)")
	rotateEvery := fs.Duration("rotate-every", 0, "selector rotation cadence (registry mode; 0 disables)")
	rotateSeed := fs.Int64("rotate-seed", 1, "seed stream for selector rotations")
	keepVersions := fs.Int("keep-versions", 64, "on-disk versions kept per model when rotating (0 keeps everything)")
	shardSpec := fs.String("shard", "", `host shard k of a K-shard fleet ("k/K"): only that shard's body subset`)
	precisionName := fs.String("precision", "", `compute precision for the hosted body passes: "f64" (reference kernels) or "f32" (vectorized backend, ~1e-7 relative drift); empty defaults to the manifest's commitment, else f64`)
	adminAddr := fs.String("admin-addr", "", "admin plane listen address (/healthz, /metrics, /leakage, /rotate, /traces); empty disables")
	traceSample := fs.Float64("trace-sample", trace.DefaultSampleRate, "probability a healthy request's full span timeline is retained (errors, sheds, and the slowest are always kept); negative disables tail sampling")
	traceSlowest := fs.Int("trace-slowest", 0, "always retain this many slowest requests seen (0 = default)")
	traceCapacity := fs.Int("trace-capacity", 0, "retained-trace ring capacity, rounded up to a power of two (0 = default)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the admin plane (requires -admin-addr)")
	auditSample := fs.Int("audit-sample", 0, "mirror every Nth request's features into the privacy audit (0 disables the audit)")
	auditReservoir := fs.Int("audit-reservoir", 64, "bound on mirrored feature tensors held for the audit")
	auditEvery := fs.Duration("audit-every", time.Minute, "leakage audit cadence")
	auditMinSamples := fs.Int("audit-min-samples", 8, "mirrored tensors required before an audit runs")
	auditThreshold := fs.Float64("audit-threshold", 0.35, "rolling reconstruction SSIM that arms a selector rotation")
	auditHysteresis := fs.Float64("audit-hysteresis", 0.05, "leakage must dip this far below the threshold to re-arm the trigger")
	auditBreaches := fs.Int("audit-breaches", 2, "consecutive breaching audits required to rotate")
	auditCalib := fs.Int("audit-calib", 64, "synthetic calibration images for the audit's attack replay")
	rotateMinInterval := fs.Duration("rotate-min-interval", 10*time.Minute, "floor between leakage-triggered rotations")
	privacyBudget := fs.Float64("privacy-budget", 0, "per-client Rényi privacy budget ε(α); as a client drains it responses are noised, the selector rotates, and finally requests are refused (0 disables the ledger)")
	privacyAlpha := fs.Int("privacy-alpha", 2, "Rényi order α the per-client budget is accounted at (integer ≥ 2)")
	privacyPolicy := fs.String("privacy-policy", "enforce", `privacy-budget policy: "enforce" (noise, rotation, refusal as budgets drain) or "observe" (account and report only)`)
	allowFaultpoints := fs.Bool("allow-faultpoints", false, "permit fault injection via "+faultpoint.EnvVar+" (chaos testing only — never set in production)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *maxBatch <= 0 {
		*maxBatch = comm.DefaultMaxBatch // mirror the server's clamping in the banner
	}
	if *batchWindow < 0 {
		return fmt.Errorf("-batch-window must be >= 0, got %v", *batchWindow)
	}
	if *maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0 (0 = default when batching is on), got %d", *maxQueue)
	}
	if *shardSpec != "" && *rotateEvery > 0 {
		return fmt.Errorf("-rotate-every and -shard are mutually exclusive: in a fleet the selector is rotated client-side (publish the rotated pipeline and SIGHUP the shards)")
	}
	if *auditSample < 0 {
		return fmt.Errorf("-audit-sample must be >= 0 (every Nth request; 0 disables), got %d", *auditSample)
	}
	if *auditSample > 0 && *auditThreshold <= 0 {
		return fmt.Errorf("-audit-threshold must be positive when the audit is enabled, got %v", *auditThreshold)
	}
	if *pprofFlag && *adminAddr == "" {
		return fmt.Errorf("-pprof serves on the admin plane; set -admin-addr")
	}
	if *traceSample > 1 {
		return fmt.Errorf("-trace-sample is a probability; got %v", *traceSample)
	}
	if *traceSlowest < 0 || *traceCapacity < 0 {
		return fmt.Errorf("-trace-slowest and -trace-capacity must be >= 0")
	}
	if *privacyBudget < 0 {
		return fmt.Errorf("-privacy-budget must be >= 0 (0 disables), got %v", *privacyBudget)
	}
	if *privacyBudget > 0 && *privacyAlpha < 2 {
		return fmt.Errorf("-privacy-alpha must be an integer >= 2, got %d", *privacyAlpha)
	}
	if *privacyPolicy != "enforce" && *privacyPolicy != "observe" {
		return fmt.Errorf(`-privacy-policy must be "enforce" or "observe", got %q`, *privacyPolicy)
	}

	// Fault injection never arms silently: a process started with
	// ENSEMBLER_FAULTPOINTS in its environment refuses to serve unless the
	// operator also passed -allow-faultpoints — an env var inherited from a
	// chaos harness must not ride into a production restart.
	if spec := os.Getenv(faultpoint.EnvVar); spec != "" {
		if !*allowFaultpoints {
			return fmt.Errorf("%s is set (%q) but -allow-faultpoints was not passed: refusing to serve with fault injection armed", faultpoint.EnvVar, spec)
		}
		enabled, deferred, err := faultpoint.EnableFromEnv()
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "faultpoints: FAULT INJECTION ACTIVE — armed %v, deferred %v (disarm by unsetting %s)\n",
			enabled, deferred, faultpoint.EnvVar)
	}

	reg, err := openRegistry(*modelPath, *modelDir, *modelName)
	if err != nil {
		return err
	}
	defaultModel := reg.Default()
	cur, err := reg.Current(defaultModel)
	if err != nil {
		return err
	}

	// Precision resolution: the flag wins when set, but never against a
	// manifest that committed this version to the other backend — a model
	// validated for one set of kernels must not be silently served by the
	// other. An unset flag defaults to the commitment (or f64, the
	// reference path, when the manifest makes none).
	manifestPrecision := ""
	if store := reg.Store(); store != nil {
		man, err := store.Manifest(defaultModel, cur.Version())
		if err != nil {
			return err
		}
		manifestPrecision = man.Precision
	}
	precisionStr := *precisionName
	if precisionStr == "" {
		precisionStr = manifestPrecision
	} else if manifestPrecision != "" && precisionStr != manifestPrecision {
		return fmt.Errorf("model %s v%d was published for %s compute; -precision %s disagrees (republish or drop the flag)",
			defaultModel, cur.Version(), manifestPrecision, precisionStr)
	}
	precision, err := comm.ParsePrecision(precisionStr)
	if err != nil {
		return err
	}

	provider := comm.ModelProvider(reg)
	shardBanner := ""
	// checkShardLayout (set in shard mode) re-validates the fleet layout
	// against a given version of the default model; the SIGHUP reload path
	// runs it before swapping anything in, so a model republished for a
	// different fleet never gets served as the wrong subset.
	var checkShardLayout func(version int) error
	if *shardSpec != "" {
		k, total, err := shard.ParseSpec(*shardSpec)
		if err != nil {
			return err
		}
		n := cur.Pipeline().Cfg.N
		plan, err := shard.Plan(n, total)
		if err != nil {
			return fmt.Errorf("planning -shard %s over the %d bodies of %s: %w", *shardSpec, n, defaultModel, err)
		}
		r := plan[k-1]
		// A publisher that committed to a shard layout (-shards at train
		// time) recorded it in the manifest; a disagreeing fleet member
		// must fail loudly, not serve the wrong subset. The check also
		// guards N drift: even at the same K, a different N moves this
		// shard's planned range away from the one being served.
		checkShardLayout = func(version int) error {
			store := reg.Store()
			if store == nil {
				return nil
			}
			man, err := store.Manifest(defaultModel, version)
			if err != nil {
				return fmt.Errorf("verifying shard layout of %s v%d: %w", defaultModel, version, err)
			}
			if man.Shards > 0 {
				if man.Shards != total {
					return fmt.Errorf("model %s v%d was published for a %d-shard fleet; -shard %s disagrees",
						defaultModel, version, man.Shards, *shardSpec)
				}
				// The manifest's recorded ranges are the authoritative
				// commitment — not a fresh shard.Plan, whose algorithm
				// could change between the publishing and serving builds.
				rec := man.ShardRanges[k-1]
				if (shard.Range{Lo: rec.Lo, Hi: rec.Hi}) != r {
					return fmt.Errorf("model %s v%d records shard %d/%d as bodies %d..%d; this process serves %s — restart the fleet",
						defaultModel, version, k, total, rec.Lo, rec.Hi-1, r)
				}
				return nil
			}
			// No recorded commitment: derive the layout and guard N drift —
			// at the same K, a different N moves this shard's range.
			newPlan, err := shard.Plan(man.N, total)
			if err != nil {
				return fmt.Errorf("model %s v%d has %d bodies, unshardable as -shard %s: %w",
					defaultModel, version, man.N, *shardSpec, err)
			}
			if newPlan[k-1] != r {
				return fmt.Errorf("model %s v%d (N=%d) plans shard %d/%d as bodies %s; this process serves %s — restart the fleet",
					defaultModel, version, man.N, k, total, newPlan[k-1], r)
			}
			return nil
		}
		if err := checkShardLayout(cur.Version()); err != nil {
			return err
		}
		provider, err = comm.NewSubsetProvider(reg, r.Lo, r.Hi)
		if err != nil {
			return err
		}
		shardBanner = fmt.Sprintf("shard %d/%d hosting bodies %s of %d — ", k, total, r, n)
	}

	// Observability: the telemetry registry always exists (it is cheap and
	// the audit engine exports through it); per-request server metrics are
	// only attached when an admin plane will scrape them, and the feature
	// sampler only when the audit is on — both hooks cost one nil check on
	// the hot path when absent.
	startTime := time.Now()
	treg := telemetry.NewRegistry()
	serverOpts := []comm.ServerOption{
		comm.WithWorkers(*workers),
		comm.WithMaxBatch(*maxBatch),
		comm.WithPrecision(precision),
	}
	if *batchWindow > 0 {
		serverOpts = append(serverOpts, comm.WithBatchWindow(*batchWindow))
	}
	if *maxQueue > 0 {
		serverOpts = append(serverOpts, comm.WithMaxQueue(*maxQueue))
	}
	telemetry.RegisterRuntimeMetrics(treg)
	var sm *comm.ServerMetrics
	var tracer *trace.Tracer
	if *adminAddr != "" {
		sm = comm.NewServerMetrics(treg)
		serverOpts = append(serverOpts, comm.WithMetrics(sm))
		// Tracing rides the admin plane: the per-stage histograms land on
		// /metrics and the retained timelines on /traces. Without an admin
		// listener there is nowhere to scrape either, so the hot path keeps
		// its nil tracer.
		tracer = trace.New(trace.Config{
			SampleRate: *traceSample,
			SlowestN:   *traceSlowest,
			Capacity:   *traceCapacity,
			Registry:   treg,
		})
		serverOpts = append(serverOpts, comm.WithTracer(tracer))
	}
	var sampler *audit.Sampler
	if *auditSample > 0 {
		sampler = audit.NewSampler(*auditSample, *auditReservoir, *rotateSeed)
		serverOpts = append(serverOpts, comm.WithObserver(sampler))
	}

	// rotateNow is assigned below (it needs the server context); the privacy
	// guard's rotation hook closes over the variable so budget-triggered
	// rotations ride the same plumbing as the audit and the admin endpoint.
	var rotateNow func(cause string) (*registry.Epoch, error)

	// The per-client privacy-budget ledger. The subsampling amplification
	// uses the served pipeline's own secret fraction p = P/N: each served row
	// is charged the amplified Rényi loss at order α, and the guard escalates
	// (noise → rotation → refusal) as an account drains.
	var privacyLedger *privacy.Ledger
	var privacyGuard *privacy.Guard
	if *privacyBudget > 0 {
		cfg := cur.Pipeline().Cfg
		secretFrac := 0.0
		if cfg.N > 0 {
			secretFrac = float64(cfg.P) / float64(cfg.N)
		}
		privacyLedger, err = privacy.NewLedger(privacy.LedgerConfig{
			BudgetEps:      *privacyBudget,
			Alpha:          *privacyAlpha,
			SecretFraction: secretFrac,
		})
		if err != nil {
			return err
		}
		privacyGuard, err = privacy.NewGuard(privacyLedger, privacy.PolicyConfig{
			Observe: *privacyPolicy == "observe",
			Rotate: func(cause string) {
				if rotateNow == nil {
					fmt.Fprintf(stderr, "privacy: rotation requested (%s) but this process cannot rotate — in a fleet the selector is client-side\n", cause)
					return
				}
				if _, err := rotateNow(cause); err != nil {
					fmt.Fprintf(stderr, "privacy: rotate: %v\n", err)
				}
			},
			MinRotateInterval: *rotateMinInterval,
		})
		if err != nil {
			return err
		}
		serverOpts = append(serverOpts, comm.WithBudget(privacyGuard))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	defer ln.Close()
	srv := comm.NewModelServer(provider, serverOpts...)
	// Pin against the pool size the server actually runs (a non-positive
	// -workers keeps the GOMAXPROCS default), not the raw flag value.
	comm.PinKernelParallelism(srv.Workers())

	// A shard that ends up serving a layout-divergent model must stop
	// serving — wrong-subset responses are shape-identical to right ones,
	// so fail-stop is the only loud failure available once a bad version
	// is live. serveCtx cancellation drains in-flight requests first.
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()

	// rotateNow is the one selector-rotation path every trigger shares —
	// the -rotate-every timer (cause "schedule"), the leakage audit (cause
	// carries the evidence), and the admin /rotate endpoint (cause "admin
	// request") — so the registry's rotation history attributes each swap.
	// A sharded fleet member cannot rotate (the selector is client-side).
	if *shardSpec == "" {
		var rotateSeq atomic.Int64
		var rotateMu sync.Mutex
		rotateNow = func(cause string) (*registry.Epoch, error) {
			rotateMu.Lock() // concurrent triggers serialize; each still publishes
			defer rotateMu.Unlock()
			seed := *rotateSeed + rotateSeq.Add(1)
			start := time.Now()
			ep, err := reg.RotateSelectorCause(defaultModel, cause, ensemble.RotateOptions{Seed: seed})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stdout, "rotate[%s]: %s now v%d (selection re-drawn in %v; bodies unchanged)\n",
				cause, ep.Name(), ep.Version(), time.Since(start).Round(time.Millisecond))
			// Every rotation writes a full pipeline: prune the store so disk
			// (and the checksum-verifying Open on restart) stays bounded.
			if store := reg.Store(); store != nil && *keepVersions > 0 {
				if pruned, err := store.Prune(ep.Name(), *keepVersions); err != nil {
					fmt.Fprintf(stderr, "prune: %v\n", err)
				} else if pruned > 0 {
					fmt.Fprintf(stdout, "prune: removed %d old version(s) of %s\n", pruned, ep.Name())
				}
			}
			return ep, nil
		}
	}

	// The leakage audit: mirror sampled live features, replay the decoder
	// attack against the published pipeline on a synthetic calibration set
	// shaped like the model's inputs, and rotate on evidence. In a fleet the
	// auditor is report-only (leakage is measured and exported; rotation is
	// the client's move).
	var auditor *audit.Auditor
	if sampler != nil {
		arch := cur.Pipeline().Cfg.Arch
		if arch.InC != 3 {
			return fmt.Errorf("-audit-sample: the synthetic calibration generator produces 3-channel images; model %s expects %d input channels", defaultModel, arch.InC)
		}
		calibN := *auditCalib
		if calibN < 8 {
			calibN = 8
		}
		calib := data.Generate(data.Config{
			Kind: data.CIFAR10Like, H: arch.H, W: arch.W,
			Train: 8, Aux: calibN, Test: max(8, calibN/2), Seed: 424242,
		})
		var rotateFn audit.RotateFunc
		if rotateNow != nil {
			rotateFn = func(cause string) error { _, err := rotateNow(cause); return err }
		}
		auditor, err = audit.New(audit.Config{
			Registry:          reg,
			Model:             defaultModel,
			Sampler:           sampler,
			MinSamples:        *auditMinSamples,
			Interval:          *auditEvery,
			Attack:            attack.Config{DecoderEpochs: 2, BatchSize: 16, Seed: *rotateSeed + 7919},
			Aux:               calib.Aux,
			Eval:              calib.Test,
			EvalSamples:       16,
			Oracle:            true, // audit against the strongest (oracle) inversion: conservative by construction
			Threshold:         *auditThreshold,
			Hysteresis:        *auditHysteresis,
			Breaches:          *auditBreaches,
			MinRotateInterval: *rotateMinInterval,
			Rotate:            rotateFn,
			Ledger:            privacyLedger,
			Log:               stderr,
		})
		if err != nil {
			return err
		}
		auditor.RegisterMetrics(treg)
		go auditor.Run(serveCtx)
	}

	// Process-level gauges: uptime, live epoch, rotation count, and — when
	// request metrics are on — worker-pool utilization derived from the
	// serve-time histogram.
	treg.GaugeFunc("ensembler_uptime_seconds", "Seconds since this process started serving.",
		nil, func() float64 { return time.Since(startTime).Seconds() })
	treg.GaugeFunc("ensembler_epoch_version", "Version of the default model's live epoch.",
		nil, func() float64 {
			if ep, err := reg.Current(defaultModel); err == nil {
				return float64(ep.Version())
			}
			return 0
		})
	treg.CounterFunc("ensembler_rotations_total", "Selector rotations of the default model (any cause).",
		nil, func() float64 { return float64(reg.RotationCount(defaultModel)) })
	treg.GaugeFunc("ensembler_workers", "Size of the compute worker pool.",
		nil, func() float64 { return float64(srv.Workers()) })
	if srv.DispatcherStats().Enabled {
		treg.GaugeFunc("ensembler_dispatch_queue_depth", "Requests currently held in the continuous-batching intake queue.",
			nil, func() float64 { return float64(srv.DispatcherStats().Depth) })
		treg.GaugeFunc("ensembler_dispatch_queue_peak", "High-water mark of the intake queue since start.",
			nil, func() float64 { return float64(srv.DispatcherStats().PeakDepth) })
		treg.GaugeFunc("ensembler_dispatch_max_coalesced", "Largest cross-connection batch coalesced since start.",
			nil, func() float64 { return float64(srv.DispatcherStats().MaxCoalesced) })
		treg.CounterFunc("ensembler_dispatch_shed_total", "Requests shed by admission control (intake queue full).",
			nil, func() float64 { return float64(srv.DispatcherStats().Sheds) })
		treg.CounterFunc("ensembler_dispatch_batches_total", "Batches dispatched to the worker pool.",
			nil, func() float64 { return float64(srv.DispatcherStats().Batches) })
		treg.CounterFunc("ensembler_dispatch_coalesced_jobs_total", "Requests that rode a multi-request coalesced batch.",
			nil, func() float64 { return float64(srv.DispatcherStats().CoalescedJobs) })
	}
	if privacyGuard != nil {
		treg.GaugeFunc("ensembler_privacy_budget_eps", "Per-client Rényi budget ε(α) the ledger enforces.",
			nil, func() float64 { return privacyLedger.Stats().BudgetEps })
		treg.GaugeFunc("ensembler_privacy_clients", "Client accounts currently tracked by the ledger.",
			nil, func() float64 { return float64(privacyLedger.Stats().Clients) })
		treg.GaugeFunc("ensembler_privacy_observe", "1 when the budget policy only observes (no noise, rotations, or refusals).",
			nil, func() float64 {
				if privacyGuard.Observing() {
					return 1
				}
				return 0
			})
		treg.GaugeFunc("ensembler_privacy_worst_drained", "Drained budget fraction of the most spent client account.",
			nil, func() float64 {
				if top := privacyLedger.TopSpenders(1); len(top) == 1 {
					return top[0].Drained
				}
				return 0
			})
		treg.CounterFunc("ensembler_privacy_rows_charged_total", "Served rows debited against client budgets.",
			nil, func() float64 { return float64(privacyLedger.Stats().Rows) })
		treg.CounterFunc("ensembler_privacy_evictions_total", "Client accounts evicted past the ledger's capacity bound.",
			nil, func() float64 { return float64(privacyLedger.Stats().Evictions) })
		treg.CounterFunc("ensembler_privacy_noised_total", "Requests served with escalation noise on the response.",
			nil, func() float64 { return float64(privacyGuard.Noised()) })
		treg.CounterFunc("ensembler_privacy_refusals_total", "Requests refused because the client's budget was exhausted.",
			nil, func() float64 { return float64(privacyGuard.Refusals()) })
		treg.CounterFunc("ensembler_privacy_rotations_total", "Selector rotations requested by the budget policy.",
			nil, func() float64 { return float64(privacyGuard.Rotations()) })
	}
	if sm != nil {
		treg.GaugeFunc("ensembler_worker_utilization", "Fraction of worker-pool capacity spent serving since start.",
			nil, func() float64 {
				up := time.Since(startTime).Seconds()
				if up <= 0 {
					return 0
				}
				return sm.ServeSeconds.Sum() / (float64(srv.Workers()) * up)
			})
	}

	// The bound address line comes first and stands alone so scripts (and
	// tests using -addr :0) can scrape the actual port; the admin banner
	// follows in the same scrapeable shape.
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	var adminWait func() error
	if *adminAddr != "" {
		plane := &adminPlane{
			reg: reg, model: defaultModel, treg: treg, auditor: auditor,
			rotate: rotateNow, tracer: tracer, guard: privacyGuard, pprof: *pprofFlag,
			workers: srv.Workers(), shard: *shardSpec, start: startTime,
		}
		adminWait, err = serveAdmin(serveCtx, *adminAddr, plane, func(format string, args ...any) {
			fmt.Fprintf(stdout, format, args...)
		})
		if err != nil {
			return err
		}
	}
	auditBanner := ""
	if auditor != nil {
		mode := "rotating on evidence"
		if *shardSpec != "" {
			mode = "report-only in a fleet"
		}
		auditBanner = fmt.Sprintf("; audit mirrors 1/%d of requests (threshold SSIM %.2f, %s)", *auditSample, *auditThreshold, mode)
	}
	dispatchBanner := ""
	if ds := srv.DispatcherStats(); ds.Enabled {
		dispatchBanner = fmt.Sprintf("; continuous batching window %v, intake queue %d", ds.Window, ds.MaxQueue)
	}
	privacyBanner := ""
	if privacyGuard != nil {
		mode := "enforced"
		if privacyGuard.Observing() {
			mode = "observe-only"
		}
		privacyBanner = fmt.Sprintf("; privacy budget ε=%g at α=%d per client (%s)", *privacyBudget, *privacyAlpha, mode)
	}
	fmt.Fprintf(stdout, "%sserving %s v%d (%d bodies) as default — %d models total, %d workers, max batch %d, %s compute; selector stays client-side%s%s%s\n",
		shardBanner, defaultModel, cur.Version(), cur.Pipeline().Cfg.N, len(reg.Models()), srv.Workers(), *maxBatch, precision, auditBanner, dispatchBanner, privacyBanner)
	var fatalMu sync.Mutex
	var fatalErr error
	failServe := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
			stopServe()
		}
		fatalMu.Unlock()
	}

	// SIGHUP: re-scan the registry directory and hot-swap anything newer.
	// Stop unregisters delivery before close, so the drained channel ends
	// the goroutine — run() must not leak one handler per invocation.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer func() {
		signal.Stop(hup)
		close(hup)
	}()
	go func() {
		for range hup {
			if *modelDir == "" {
				fmt.Fprintln(stdout, "reload: ignored (no -model-dir)")
				continue
			}
			// A shard refuses to swap in a model whose recorded fleet
			// layout disagrees with what this process serves: the check
			// runs against the store's latest version before LoadStore
			// installs anything.
			if checkShardLayout != nil {
				latest, err := reg.Store().Latest(defaultModel)
				if err != nil {
					fmt.Fprintf(stderr, "reload: %v\n", err)
					continue
				}
				if err := checkShardLayout(latest); err != nil {
					fmt.Fprintf(stderr, "reload: refused: %v\n", err)
					continue
				}
			}
			updated, err := reg.LoadStore()
			if err != nil {
				fmt.Fprintf(stderr, "reload: %v\n", err)
				continue
			}
			// Close the check-then-act window: a publish can land between
			// the pre-check above and LoadStore's own Latest read. If the
			// version now live disagrees with this shard's layout, stop
			// serving rather than serve the wrong body subset.
			if checkShardLayout != nil {
				cur, err := reg.Current(defaultModel)
				if err == nil {
					err = checkShardLayout(cur.Version())
				}
				if err != nil {
					failServe(fmt.Errorf("shard layout diverged after reload: %w", err))
					continue
				}
			}
			fmt.Fprintf(stdout, "reload: %d model(s) swapped in\n", updated)
		}
	}()

	// Selector rotation cadence: each tick re-draws the default model's
	// secret subset and publishes it as a new version (persisted when a
	// registry directory is attached). The swap is a pointer flip; workers
	// lazily re-clone between requests, so traffic never stalls.
	if *rotateEvery > 0 {
		go func() {
			ticker := time.NewTicker(*rotateEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if _, err := rotateNow("schedule"); err != nil {
						fmt.Fprintf(stderr, "rotate: %v\n", err)
					}
				}
			}
		}()
	}

	if err := srv.Serve(serveCtx, ln); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	stopServe()
	if adminWait != nil {
		if err := adminWait(); err != nil {
			return fmt.Errorf("admin plane: %w", err)
		}
	}
	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "shutdown complete")
	return nil
}

// openRegistry builds the registry the server reads through, from either a
// single model file or a registry directory, failing with a descriptive
// error (never a panic) when the artifact is missing or corrupt.
func openRegistry(modelPath, modelDir, modelName string) (*registry.Registry, error) {
	switch {
	case modelDir != "" && modelPath != "":
		return nil, fmt.Errorf("-model and -model-dir are mutually exclusive")
	case modelDir != "":
		if _, err := os.Stat(modelDir); err != nil {
			return nil, fmt.Errorf("model directory %s is missing (train with ensembler-train -model-dir %s first): %w", modelDir, modelDir, err)
		}
		reg, err := registry.OpenDir(modelDir)
		if err != nil {
			return nil, err
		}
		if len(reg.Models()) == 0 {
			return nil, fmt.Errorf("model directory %s holds no published models", modelDir)
		}
		if modelName != "" {
			if err := reg.SetDefault(modelName); err != nil {
				return nil, err
			}
		}
		return reg, nil
	default:
		if modelPath == "" {
			modelPath = "ensembler.gob"
		}
		if _, err := os.Stat(modelPath); err != nil {
			return nil, fmt.Errorf("model file %s is missing (train with ensembler-train -out %s first): %w", modelPath, modelPath, err)
		}
		e, err := ensemble.LoadFile(modelPath)
		if err != nil {
			return nil, fmt.Errorf("loading model %s: %w", modelPath, err)
		}
		name := modelName
		if name == "" {
			name = "default"
		}
		reg := registry.New(nil)
		if _, err := reg.Publish(name, e); err != nil {
			return nil, err
		}
		return reg, nil
	}
}
