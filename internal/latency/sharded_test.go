package latency

import (
	"math"
	"testing"
)

// shardedBase is an Ensembler scenario with server parallelism 1, so the
// server term is maximally visible to the sharding model.
func shardedBase() Scenario {
	sc := Ensembler(10)
	sc.Server.Parallelism = 1
	return sc
}

func TestShardedReducesToMonolithAtK1(t *testing.T) {
	base := shardedBase()
	encrypted := base
	encrypted.EncryptedFactor = 78.6
	for _, b := range []Scenario{base, encrypted} {
		mono := EstimateServing(ServingScenario{Base: b, Workers: 4, Clients: 8, Batch: 2})
		one := EstimateShardedServing(ShardedScenario{Base: b, Shards: 1, Workers: 4, Clients: 8, Batch: 2})
		if math.Abs(mono.RequestSeconds-one.RequestSeconds) > 1e-9 {
			t.Errorf("%s: K=1 request time %.6f vs monolith %.6f", b.Name, one.RequestSeconds, mono.RequestSeconds)
		}
		if math.Abs(mono.ThroughputRPS-one.ThroughputRPS) > 1e-9 {
			t.Errorf("%s: K=1 throughput %.6f vs monolith %.6f", b.Name, one.ThroughputRPS, mono.ThroughputRPS)
		}
	}
}

func TestShardingIsMaxOverShardsNotSumOverBodies(t *testing.T) {
	base := shardedBase()
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 5, 10} {
		_, maxServer, _ := shardedTimes(&ShardedScenario{Base: base, Shards: k, Workers: 1, Clients: 1, Batch: 1})
		if maxServer >= prev {
			t.Errorf("K=%d server time %.6f did not shrink from %.6f", k, maxServer, prev)
		}
		prev = maxServer
	}
	// At K=N every shard hosts one body: no waves, no contention — the
	// server term is a single body pass.
	_, maxServer, _ := shardedTimes(&ShardedScenario{Base: base, Shards: 10, Workers: 1, Clients: 1, Batch: 1})
	single := base.Spec.BodyFLOPs() / base.Server.EffectiveFLOPS
	if math.Abs(maxServer-single) > 1e-12 {
		t.Errorf("K=N server time %.6f, want one body pass %.6f", maxServer, single)
	}
}

func TestShardingChargesUploadFanOut(t *testing.T) {
	base := shardedBase()
	_, _, comm1 := shardedTimes(&ShardedScenario{Base: base, Shards: 1, Workers: 1, Clients: 1, Batch: 1})
	_, _, comm5 := shardedTimes(&ShardedScenario{Base: base, Shards: 5, Workers: 1, Clients: 1, Batch: 1})
	if comm5 <= comm1 {
		t.Errorf("K=5 comm %.6f must exceed K=1 comm %.6f (features upload K times)", comm5, comm1)
	}
	// The delta is exactly the four extra feature uploads.
	extra := 4 * base.Spec.FeatureBytes() / base.Link.UpBps
	if math.Abs((comm5-comm1)-extra) > 1e-12 {
		t.Errorf("comm delta %.6f, want %.6f", comm5-comm1, extra)
	}
}

func TestShardedThroughputGatedBySlowestShard(t *testing.T) {
	base := shardedBase()
	// Enough clients that the server pool binds: throughput must scale
	// with the fleet until the client bound takes over.
	est2 := EstimateShardedServing(ShardedScenario{Base: base, Shards: 2, Workers: 1, Clients: 64, Batch: 1})
	est5 := EstimateShardedServing(ShardedScenario{Base: base, Shards: 5, Workers: 1, Clients: 64, Batch: 1})
	if est5.ThroughputRPS <= est2.ThroughputRPS {
		t.Errorf("server-bound fleet throughput must grow with K: K=5 %.3f vs K=2 %.3f",
			est5.ThroughputRPS, est2.ThroughputRPS)
	}
	if s := ShardedSpeedup(base, 1, 64, 1, 5); s <= 1 {
		t.Errorf("K=5 speedup over the monolith should exceed 1, got %.3f", s)
	}
	if est2.Utilization <= 0 || est2.Utilization > 1+1e-9 {
		t.Errorf("utilization out of range: %v", est2.Utilization)
	}
}

func TestShardSweepShapes(t *testing.T) {
	ests := ShardSweep(shardedBase(), 2, 16, 4, []int{1, 2, 10})
	if len(ests) != 3 {
		t.Fatalf("sweep returned %d estimates", len(ests))
	}
	for _, e := range ests {
		if e.RequestSeconds <= 0 || e.ThroughputRPS <= 0 || e.ThroughputIPS != 4*e.ThroughputRPS {
			t.Errorf("degenerate estimate %+v", e)
		}
	}
	// Shard counts beyond N clamp to one body per shard.
	over := EstimateShardedServing(ShardedScenario{Base: shardedBase(), Shards: 99, Workers: 1, Clients: 1, Batch: 1})
	atN := EstimateShardedServing(ShardedScenario{Base: shardedBase(), Shards: 10, Workers: 1, Clients: 1, Batch: 1})
	if math.Abs(over.RequestSeconds-atN.RequestSeconds) > 1e-12 {
		t.Errorf("K>N should clamp to K=N: %.6f vs %.6f", over.RequestSeconds, atN.RequestSeconds)
	}
}
