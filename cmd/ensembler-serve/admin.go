package main

// The admin plane: a second HTTP listener (-admin-addr) carrying the
// operational surface of a serving process — health, Prometheus metrics,
// live leakage state, and a manual rotation trigger. It is deliberately a
// separate listener from the inference socket: the inference port faces
// untrusted clients and speaks the gob protocol only, while the admin port
// is for operators and scrapers and should be firewalled accordingly.
//
// Nothing served here reveals the secret selection: health and metrics
// describe traffic volume, latency, versions, and leakage scores — all
// quantities a wire observer or the (adversarial) serving box itself already
// has. See DESIGN.md §2e on why the on-box auditor widens no attack surface.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"ensembler/internal/audit"
	"ensembler/internal/faultpoint"
	"ensembler/internal/privacy"
	"ensembler/internal/registry"
	"ensembler/internal/shard"
	"ensembler/internal/telemetry"
	"ensembler/internal/trace"
)

// adminPlane bundles what the admin endpoints read and do.
type adminPlane struct {
	reg     *registry.Registry
	model   string // default model name
	treg    *telemetry.Registry
	auditor *audit.Auditor                              // nil: audit disabled
	rotate  func(cause string) (*registry.Epoch, error) // nil: rotation not possible here (shard mode)
	tracer  *trace.Tracer                               // nil: tracing disabled
	guard   *privacy.Guard                              // nil: privacy-budget ledger disabled
	fleet   func() []shard.Health                       // nil: no fleet client in this process
	pprof   bool                                        // expose net/http/pprof under /debug/pprof/
	workers int
	shard   string // "k/K" in fleet mode, "" otherwise
	start   time.Time
}

// mux builds the admin endpoint routing.
func (a *adminPlane) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", a.handleHealthz)
	m.Handle("/metrics", a.treg.Handler())
	m.HandleFunc("/leakage", a.handleLeakage)
	m.HandleFunc("/budget", a.handleBudget)
	m.HandleFunc("/rotate", a.handleRotate)
	m.HandleFunc("/traces", a.handleTraces)
	m.HandleFunc("/traces/", a.handleTraceByID)
	if a.pprof {
		// Registered explicitly instead of importing for the DefaultServeMux
		// side effect: the admin plane never serves DefaultServeMux, and the
		// profiler should exist only when the operator asked for it.
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return m
}

// handleTraces lists the tail-sampled traces currently retained in the
// tracer's ring, newest first, plus the per-stage latency attribution the
// histograms have accumulated — the "what is slow" summary an operator reads
// before pulling a full timeline.
func (a *adminPlane) handleTraces(w http.ResponseWriter, r *http.Request) {
	if a.tracer == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	recs := a.tracer.Snapshot()
	finished, retained := a.tracer.Counts()
	type summary struct {
		ID    string  `json:"id"`
		Start string  `json:"start"`
		Ms    float64 `json:"duration_ms"`
		Spans int     `json:"spans"`
		Err   bool    `json:"err,omitempty"`
		Shed  bool    `json:"shed,omitempty"`
	}
	sums := make([]summary, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		sums = append(sums, summary{
			ID:    fmt.Sprintf("%016x", rec.ID),
			Start: time.Unix(0, rec.Start).UTC().Format(time.RFC3339Nano),
			Ms:    float64(rec.Dur) / 1e6,
			Spans: rec.N,
			Err:   rec.Err,
			Shed:  rec.Shed,
		})
	}
	stages := a.tracer.StageStats()
	type stageRow struct {
		Stage  string  `json:"stage"`
		Count  uint64  `json:"count"`
		MeanMs float64 `json:"mean_ms"`
		P99Ms  float64 `json:"p99_ms"`
	}
	rows := make([]stageRow, 0, len(stages))
	for _, s := range stages {
		rows = append(rows, stageRow{
			Stage: s.Stage, Count: s.Count,
			MeanMs: float64(s.Mean) / float64(time.Millisecond),
			P99Ms:  float64(s.P99) / float64(time.Millisecond),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"finished": finished,
		"retained": retained,
		"traces":   sums,
		"stages":   rows,
	})
}

// handleTraceByID serves one stitched trace — every retained leg sharing the
// requested ID — as Chrome trace-event JSON, loadable directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
func (a *adminPlane) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if a.tracer == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "tracing disabled"})
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := strconv.ParseUint(idStr, 16, 64)
	if err != nil || id == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("trace id must be the hex id from /traces, got %q", idStr),
		})
		return
	}
	recs := a.tracer.TraceByID(id)
	if len(recs) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": "trace not retained (evicted from the ring, or never sampled)",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChrome(w, recs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing useful to do
}

func (a *adminPlane) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cur, err := a.reg.Current(a.model)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unhealthy", "error": err.Error(),
		})
		return
	}
	resp := map[string]any{
		"status":         "ok",
		"model":          cur.Name(),
		"version":        cur.Version(),
		"models":         a.reg.Models(),
		"workers":        a.workers,
		"uptime_seconds": time.Since(a.start).Seconds(),
		"rotations":      a.reg.RotationCount(a.model),
		"audit_enabled":  a.auditor != nil,
		"budget_enabled": a.guard != nil,
	}
	if a.shard != "" {
		resp["shard"] = a.shard
	}
	// When this process drives a shard fleet, each shard's circuit-breaker
	// state rides the health payload — the operator's one-glance view of
	// which shards are taking traffic, short-circuited, or probing.
	if a.fleet != nil {
		type shardRow struct {
			Shard         int    `json:"shard"`
			Addr          string `json:"addr"`
			Bodies        string `json:"bodies"`
			Breaker       string `json:"breaker"`
			ConsecFails   int    `json:"consecutive_failures,omitempty"`
			ReopenInMs    int64  `json:"reopen_in_ms,omitempty"`
			Opens         uint64 `json:"breaker_opens,omitempty"`
			Requests      uint64 `json:"requests"`
			Failures      uint64 `json:"failures,omitempty"`
			Hedged        uint64 `json:"hedged,omitempty"`
			ShortCircuits uint64 `json:"short_circuits,omitempty"`
			LastErr       string `json:"last_err,omitempty"`
		}
		healths := a.fleet()
		rows := make([]shardRow, 0, len(healths))
		allClosed := true
		for i, h := range healths {
			if h.Breaker != shard.BreakerClosed {
				allClosed = false
			}
			rows = append(rows, shardRow{
				Shard: i + 1, Addr: h.Addr, Bodies: h.Bodies.String(),
				Breaker: h.Breaker.String(), ConsecFails: h.ConsecutiveFailures,
				ReopenInMs: h.ReopenIn.Milliseconds(), Opens: h.BreakerOpens,
				Requests: h.Requests, Failures: h.Failures, Hedged: h.Hedged,
				ShortCircuits: h.ShortCircuits, LastErr: h.LastErr,
			})
		}
		resp["shards"] = rows
		if !allClosed {
			resp["status"] = "degraded"
		}
	}
	// Armed fault-injection sites are surfaced loudly: a scraper must be
	// able to tell a chaos run from an organic incident.
	if armed := faultpoint.Active(); len(armed) > 0 {
		resp["faultpoints"] = armed
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *adminPlane) handleLeakage(w http.ResponseWriter, r *http.Request) {
	if a.auditor == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, a.auditor.State())
}

// handleBudget reports the privacy-budget ledger: aggregate accounting
// configuration and counters, the top spenders, and every tracked client
// account's spent/remaining budget — the operator's view of who is drinking
// the ε and what the policy has done about it.
func (a *adminPlane) handleBudget(w http.ResponseWriter, r *http.Request) {
	if a.guard == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	ledger := a.guard.Ledger()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"observe":      a.guard.Observing(),
		"stats":        ledger.Stats(),
		"noised":       a.guard.Noised(),
		"refusals":     a.guard.Refusals(),
		"rotations":    a.guard.Rotations(),
		"top_spenders": ledger.TopSpenders(10),
		"clients":      ledger.Snapshot(),
	})
}

// handleRotate triggers one selector rotation — the operator's "rotate now"
// button, recorded in the registry history with cause "admin request".
func (a *adminPlane) handleRotate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{
			"error": "rotation is a POST",
		})
		return
	}
	if a.rotate == nil {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "this process cannot rotate: in a sharded fleet the selector is client-side — publish a rotated pipeline and SIGHUP the shards",
		})
		return
	}
	ep, err := a.rotate("admin request")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model": ep.Name(), "version": ep.Version(),
	})
}

// serveAdmin binds the admin listener, announces its address on stdout (the
// second scrapeable banner line), and serves until ctx is cancelled.
func serveAdmin(ctx context.Context, addr string, plane *adminPlane, announce func(format string, args ...any)) (func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin plane: listening on %s: %w", addr, err)
	}
	announce("admin listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: plane.mux()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	return func() error {
		err := <-done
		if errors.Is(err, http.ErrServerClosed) || ctx.Err() != nil {
			return nil
		}
		return err
	}, nil
}
