package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestLatencySweepN(t *testing.T) {
	rows := LatencySweepN([]int{1, 5, 10})
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Total() <= rows[i-1].Total() {
			t.Error("total latency should grow with N (communication term)")
		}
	}
}

func TestRenderAblation(t *testing.T) {
	var buf bytes.Buffer
	RenderAblation(&buf, "sweep", []AblationPoint{{Label: "N=4 P=2", Acc: 0.9, BestSSIM: 0.1, BestPSNR: 9, Adaptive: 0.05}})
	out := buf.String()
	for _, want := range []string{"sweep", "N=4 P=2", "0.900", "0.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSweepPSkipsInvalid(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	sc := microScale()
	pts := SweepP(sc, []int{0, 1, 99}, 7) // 0 and 99 are invalid for N=2
	if len(pts) != 1 {
		t.Fatalf("want exactly the valid point, got %d", len(pts))
	}
	if pts[0].Label != "N=2 P=1" {
		t.Errorf("label %q", pts[0].Label)
	}
	if pts[0].Acc <= 0 {
		t.Error("accuracy not measured")
	}
}

func TestSweepStage1NoiseBothPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	pts := SweepStage1Noise(microScale(), 8)
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if pts[0].Label == pts[1].Label {
		t.Error("labels must distinguish the variants")
	}
}
