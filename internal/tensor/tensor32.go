package tensor

import "fmt"

// Tensor32 is the float32 twin of Tensor: the element type of the f32
// compute backend. It exists as a separate concrete type (not a generic
// instantiation) so the float64 path — the reference oracle every drift test
// compares against — keeps compiling to exactly the code it always did,
// bit-identical results included. Tensor32 carries only what serving needs:
// the training, attack, and serialization paths stay float64.
//
// Precision contract (see DESIGN.md §2i): a Tensor32 holds values rounded
// once from their float64 origins (weights at compile time, features at the
// wire boundary). Kernels accumulate in float32; the end-to-end forward
// drift against the f64 oracle is bounded at 1e-5 relative by the property
// tests in internal/nn and the seed-network test in internal/audit.
type Tensor32 struct {
	Shape []int
	Data  []float32
}

// New32 allocates a zero-filled float32 tensor of the given shape.
func New32(shape ...int) *Tensor32 {
	n := numElems(shape)
	return &Tensor32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Size returns the number of elements.
func (t *Tensor32) Size() int { return len(t.Data) }

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor32) SameShape(o *Tensor32) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// checkSame panics unless o matches t's shape.
func (t *Tensor32) checkSame(o *Tensor32, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.Shape, o.Shape))
	}
}

// Reshape returns a view sharing t's backing array under a new shape of
// equal size — the same aliasing contract as Tensor.Reshape.
func (t *Tensor32) Reshape(shape ...int) *Tensor32 {
	if numElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v to %v changes size", t.Shape, shape))
	}
	return &Tensor32{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Narrow32 rounds a float64 tensor to a freshly allocated float32 tensor —
// the one sanctioned f64→f32 conversion point (weight compilation, gob-wire
// ingress on an f32 server). Each element is rounded exactly once.
func Narrow32(t *Tensor) *Tensor32 {
	out := &Tensor32{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Widen64 converts a float32 tensor to a freshly allocated float64 tensor —
// exact (every float32 is representable in float64), used where an f32
// result crosses into an f64-typed API (gob responses, the audit sampler's
// reservoir, the sync Process entry point).
func Widen64(t *Tensor32) *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// NarrowInto rounds src into the caller-owned dst (sizes must match) — the
// allocation-free form of Narrow32 for arena-backed callers (the f64→f32
// ingress of gob and sync requests on an f32-precision server).
func NarrowInto(dst *Tensor32, src *Tensor) *Tensor32 {
	if len(dst.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: NarrowInto size %d vs %d", len(dst.Data), len(src.Data)))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// WidenInto widens src into the caller-owned dst (shapes must match in
// size); the allocation-free form of Widen64 for arena-backed callers.
func WidenInto(dst *Tensor, src *Tensor32) *Tensor {
	if len(dst.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: WidenInto size %d vs %d", len(dst.Data), len(src.Data)))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}
