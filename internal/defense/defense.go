// Package defense assembles the defended collaborative-inference pipelines
// the paper compares in Tables I and II behind one interface: the
// unprotected baseline (None), fixed additive Gaussian noise (Single, [30]),
// Shredder-style learned noise, the dropout defenses (DR-single, DR-N), and
// the Ensembler itself. Each pipeline exposes exactly what the experiments
// need: the features the server observes, the server-side bodies the
// attacker trains against, and end-to-end accuracy.
package defense

import (
	"fmt"
	"io"

	"ensembler/internal/data"
	"ensembler/internal/ensemble"
	"ensembler/internal/nn"
	"ensembler/internal/optim"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

// Pipeline is a trained collaborative-inference deployment under some
// defense. It satisfies attack.Victim.
type Pipeline interface {
	Name() string
	// ClientFeatures returns the intermediate output the server observes.
	ClientFeatures(x *tensor.Tensor) *tensor.Tensor
	// Bodies returns the server-held networks the attacker can exploit.
	Bodies() []*nn.Network
	// Accuracy evaluates end-to-end classification accuracy.
	Accuracy(ds *data.Dataset) float64
}

// Single wraps a one-body pipeline (None, Single, Shredder, DR-single).
type Single struct {
	name  string
	Model *split.Model
}

// Name identifies the defense.
func (s *Single) Name() string { return s.name }

// ClientFeatures returns the transmitted intermediate output.
func (s *Single) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	return s.Model.ClientFeatures(x, false)
}

// Bodies returns the single server body.
func (s *Single) Bodies() []*nn.Network { return []*nn.Network{s.Model.Body} }

// Accuracy evaluates the pipeline.
func (s *Single) Accuracy(ds *data.Dataset) float64 { return split.Evaluate(s.Model, ds) }

// TrainNone trains the unprotected baseline: no noise, no dropout.
func TrainNone(arch split.Arch, train *data.Dataset, opts split.TrainOptions, seed int64) *Single {
	m := split.NewModel("none", arch, 0, nn.NoiseFixed, 0, rng.New(seed))
	opts.Seed = seed
	split.Train(m, train, opts)
	return &Single{name: "None", Model: m}
}

// TrainSingle trains the fixed additive-noise baseline of Dwork et al. [30]
// as used in the paper: one network with a predefined N(0,σ) added to the
// client's intermediate output, trained with the noise in place.
func TrainSingle(arch split.Arch, sigma float64, train *data.Dataset, opts split.TrainOptions, seed int64) *Single {
	m := split.NewModel("single", arch, sigma, nn.NoiseFixed, 0, rng.New(seed))
	opts.Seed = seed
	split.Train(m, train, opts)
	return &Single{name: "Single", Model: m}
}

// TrainDRSingle trains the dropout defense on a single network (He et al.
// IoT-J 2021): dropout before the FC tail, no noise injection.
func TrainDRSingle(arch split.Arch, dropout float64, train *data.Dataset, opts split.TrainOptions, seed int64) *Single {
	m := split.NewModel("dr-single", arch, 0, nn.NoiseFixed, dropout, rng.New(seed))
	opts.Seed = seed
	split.Train(m, train, opts)
	return &Single{name: "DR-single", Model: m}
}

// TrainShredder trains the Shredder-like learned-noise baseline: the noise
// tensor is a trainable parameter optimized jointly with the network under
// CE − μ·‖noise‖², i.e. the noise is pushed to grow wherever growth does not
// hurt the classification loss (a simplified stand-in for Shredder's
// mutual-information objective; see DESIGN.md substitutions).
func TrainShredder(arch split.Arch, sigma, mu float64, train *data.Dataset, opts split.TrainOptions, seed int64, log io.Writer) *Single {
	r := rng.New(seed)
	m := split.NewModel("shredder", arch, sigma, nn.NoiseTrainable, 0, r)
	if opts.Epochs == 0 {
		opts.Epochs = 4
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 32
	}
	if opts.LR == 0 {
		opts.LR = 0.05
	}
	if opts.Momentum == 0 {
		opts.Momentum = 0.9
	}
	br := rng.New(seed + 7)
	opt := optim.NewSGD(m.Params(), opts.LR, opts.Momentum, opts.WeightDecay)
	sched := optim.StepDecay(opts.LR, 0.5, max(1, opts.Epochs/2))
	noise := m.Noise.Noise
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		opt.SetLR(sched(epoch))
		for _, idxs := range train.Batches(opts.BatchSize, br) {
			x, labels := train.Batch(idxs)
			logits := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(logits, labels)
			m.Backward(grad)
			// Noise-power bonus: ∂(−μ‖n‖²)/∂n = −2μn, added to the
			// accumulated gradient so SGD grows the noise where CE allows.
			noise.Grad.AddScaledInPlace(noise.Value, -2*mu)
			opt.Step()
		}
		if log != nil {
			fmt.Fprintf(log, "shredder: epoch %d/%d noise L2 %.4f\n", epoch+1, opts.Epochs, noise.Value.L2Norm())
		}
	}
	return &Single{name: "Shredder", Model: m}
}

// Ensemble wraps the paper's Ensembler as a Pipeline.
type Ensemble struct {
	name string
	E    *ensemble.Ensembler
}

// Name identifies the defense.
func (e *Ensemble) Name() string { return e.name }

// ClientFeatures returns the transmitted intermediate output.
func (e *Ensemble) ClientFeatures(x *tensor.Tensor) *tensor.Tensor {
	return e.E.ClientFeatures(x)
}

// Bodies returns all N server bodies.
func (e *Ensemble) Bodies() []*nn.Network { return e.E.Bodies() }

// Accuracy evaluates the full selective-ensemble pipeline.
func (e *Ensemble) Accuracy(ds *data.Dataset) float64 { return e.E.Accuracy(ds) }

// Ensembler returns the wrapped framework (for head-cosine diagnostics).
func (e *Ensemble) Ensembler() *ensemble.Ensembler { return e.E }

// TrainEnsembler trains the full three-stage Ensembler defense.
func TrainEnsembler(cfg ensemble.Config, train *data.Dataset, log io.Writer) *Ensemble {
	return &Ensemble{name: "Ensembler", E: ensemble.Train(cfg, train, log)}
}

// TrainDRN trains the DR-N ablation from Table II: an ensemble of N
// networks with dropout tails but *without* the Stage-1 noise injection and
// without the Eq. 3 regularizer — isolating how much of Ensembler's
// protection comes from the selective-ensemble training rather than from
// merely having N nets with dropout.
func TrainDRN(cfg ensemble.Config, dropout float64, train *data.Dataset, log io.Writer) *Ensemble {
	cfg.Stage1Noise = false
	cfg.Dropout = dropout
	cfg.Lambda = 0
	cfg.Sigma = 0 // no noise layer at all in the DR variant
	e := ensemble.Train(cfg, train, log)
	return &Ensemble{name: "DR-10", E: e}
}
