package latency

import (
	"math"
	"testing"
)

// TestQueueingWindowZeroReducesToPerRequest pins the model's base case: no
// window and no offered load is just the unloaded round trip — the queueing
// layer must vanish when its knobs are off.
func TestQueueingWindowZeroReducesToPerRequest(t *testing.T) {
	base := LoopbackBench(3)
	srv := ServingScenario{Base: base, Workers: 1, Clients: 1, Batch: 1}
	request, _ := servingTimes(&srv)

	e := EstimateContinuousBatching(QueueingScenario{Base: base, Workers: 1})
	if e.MeanBatch != 1 {
		t.Errorf("idle mean batch = %v, want 1", e.MeanBatch)
	}
	if e.WaitP99Seconds != 0 || e.WaitP50Seconds != 0 {
		t.Errorf("idle window wait = (%v, %v), want 0", e.WaitP50Seconds, e.WaitP99Seconds)
	}
	if math.Abs(e.P99Seconds-request) > 1e-12 || math.Abs(e.P50Seconds-request) > 1e-12 {
		t.Errorf("idle p50/p99 = (%v, %v), want the unloaded round trip %v",
			e.P50Seconds, e.P99Seconds, request)
	}
	if e.Saturated {
		t.Error("idle scenario reported saturated")
	}
}

// TestQueueingWindowDominatedRegime pins the operating point the e2e serving
// test runs in: a tiny calibrated service time and a window that dwarfs it.
// The p99 must be the window plus the stacked pass, and the first-job mass of
// the wait CDF must put the wait p99 at exactly W.
func TestQueueingWindowDominatedRegime(t *testing.T) {
	e := EstimateContinuousBatching(QueueingScenario{
		Workers:        1,
		ArrivalRPS:     200,
		WindowSeconds:  0.025,
		ServiceSeconds: 0.001,
	})
	if want := 1 + 200*0.025; e.MeanBatch != want {
		t.Errorf("mean batch = %v, want %v", e.MeanBatch, want)
	}
	if e.WaitP99Seconds != 0.025 {
		t.Errorf("wait p99 = %v, want the full window 0.025", e.WaitP99Seconds)
	}
	if e.P99Seconds < 0.025 {
		t.Errorf("p99 = %v below the window itself", e.P99Seconds)
	}
	// Window-dominated means the window is most of the answer: stacked
	// service (6ms) + congestion on a 20%-utilized pool stays small.
	if e.P99Seconds > 2*0.025 {
		t.Errorf("p99 = %v, want window-dominated (< 50ms)", e.P99Seconds)
	}
	if e.Saturated {
		t.Error("20%%-utilized scenario reported saturated")
	}
}

// TestQueueingMonotonicity pins the two directions the planning table is
// read in: widening the window never lowers p99 and never lowers batch
// occupancy; raising the arrival rate never lowers occupancy.
func TestQueueingMonotonicity(t *testing.T) {
	sc := QueueingScenario{Workers: 1, ServiceSeconds: 0.0005}
	windows := []float64{0, 0.005, 0.010, 0.025, 0.050}
	rates := []float64{10, 50, 100, 400}
	for _, r := range rates {
		prevP99, prevB := -1.0, 0.0
		for _, w := range windows {
			pt := sc
			pt.ArrivalRPS = r
			pt.WindowSeconds = w
			e := EstimateContinuousBatching(pt)
			if e.P99Seconds < prevP99 {
				t.Errorf("λ=%v: p99 dropped from %v to %v as window grew to %v",
					r, prevP99, e.P99Seconds, w)
			}
			if e.MeanBatch < prevB {
				t.Errorf("λ=%v: mean batch shrank from %v to %v at window %v",
					r, prevB, e.MeanBatch, w)
			}
			prevP99, prevB = e.P99Seconds, e.MeanBatch
		}
	}
	// Occupancy grows with offered load at a fixed window.
	lo := EstimateContinuousBatching(QueueingScenario{Workers: 1, ServiceSeconds: 0.0005, ArrivalRPS: 20, WindowSeconds: 0.02})
	hi := EstimateContinuousBatching(QueueingScenario{Workers: 1, ServiceSeconds: 0.0005, ArrivalRPS: 200, WindowSeconds: 0.02})
	if hi.MeanBatch <= lo.MeanBatch {
		t.Errorf("mean batch %v at λ=200 not above %v at λ=20", hi.MeanBatch, lo.MeanBatch)
	}
}

// TestQueueingSaturation pins the admission-control regime: arrivals beyond
// pool capacity must raise the Saturated flag, cap throughput at capacity,
// and still report finite latency for the admitted survivors.
func TestQueueingSaturation(t *testing.T) {
	// Capacity = 1 worker / 10ms = 100 req/s; offer 250.
	e := EstimateContinuousBatching(QueueingScenario{
		Workers: 1, ServiceSeconds: 0.010, ArrivalRPS: 250, WindowSeconds: 0.005,
	})
	if !e.Saturated {
		t.Fatalf("ρ = %v did not report saturated", e.Utilization)
	}
	if math.Abs(e.ThroughputRPS-100) > 1e-9 {
		t.Errorf("saturated throughput = %v, want the 100 req/s capacity", e.ThroughputRPS)
	}
	if math.IsInf(e.P99Seconds, 0) || math.IsNaN(e.P99Seconds) || e.P99Seconds <= 0 {
		t.Errorf("saturated p99 = %v, want finite and positive", e.P99Seconds)
	}

	under := EstimateContinuousBatching(QueueingScenario{
		Workers: 1, ServiceSeconds: 0.010, ArrivalRPS: 50, WindowSeconds: 0.005,
	})
	if under.Saturated {
		t.Errorf("ρ = %v reported saturated", under.Utilization)
	}
	if under.ThroughputRPS != 50 {
		t.Errorf("sub-capacity throughput = %v, want the offered 50 req/s", under.ThroughputRPS)
	}
}

// TestQueueingMaxBatchClamp pins the coalescing cap: occupancy cannot exceed
// WithMaxCoalesce no matter how much load the window collects.
func TestQueueingMaxBatchClamp(t *testing.T) {
	e := EstimateContinuousBatching(QueueingScenario{
		Workers: 4, EffectiveParallel: 4, ServiceSeconds: 0.0001,
		ArrivalRPS: 10_000, WindowSeconds: 0.050, MaxBatch: 8,
	})
	if e.MeanBatch != 8 {
		t.Errorf("mean batch = %v, want clamped to 8", e.MeanBatch)
	}
}

// TestQueueingSweepGrid pins the sweep's shape and ordering: a full
// rate-major grid with distinct labels.
func TestQueueingSweepGrid(t *testing.T) {
	rates := []float64{50, 200}
	windows := []float64{0, 0.010, 0.025}
	rows := QueueingSweep(QueueingScenario{Workers: 1, ServiceSeconds: 0.001}, rates, windows)
	if len(rows) != len(rates)*len(windows) {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), len(rates)*len(windows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Name] {
			t.Errorf("duplicate sweep row %q", r.Name)
		}
		seen[r.Name] = true
		if r.String() == "" {
			t.Error("empty formatted row")
		}
	}
	// Rate-major: the first len(windows) rows share the first rate.
	if rows[0].MeanBatch != 1 {
		t.Errorf("first row (window 0) mean batch = %v, want 1", rows[0].MeanBatch)
	}
	if rows[len(windows)].MeanBatch != 1 {
		t.Errorf("first row of second rate (window 0) mean batch = %v, want 1", rows[len(windows)].MeanBatch)
	}
}
