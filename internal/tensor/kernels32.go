package tensor

import "fmt"

// Float32 twins of the allocation-free serving kernels in kernels.go. The
// structure mirrors the f64 kernels — same cache blocking, same zero-skip,
// same caller-owned-output contract, strictly serial — but the inner panels
// are unrolled 8 wide in the gonum generic-fallback style so gc's
// auto-vectorizer emits SIMD over float32 lanes (twice the lane width of the
// f64 path, and half the memory traffic). Accumulation stays in float32:
// the drift this costs against the f64 oracle is bounded by the nn/audit
// property tests at 1e-5 relative for the seed network's depths.

// Blocking factor for the f32 tiled matmul: float32 halves the element size,
// so a panel twice as wide as the f64 kernel's occupies the same 64 KiB of
// cache. blockK is shared with the f64 kernel.
const matmulBlockJ32 = 2 * matmulBlockJ

// axpy32 computes y[i] += a*x[i] over equal-length slices, unrolled 8 wide.
// The re-sliced 8-element windows give the compiler constant bounds, which
// is what lets it vectorize the body.
func axpy32(a float32, x, y []float32) {
	i := 0
	for ; i+8 <= len(x) && i+8 <= len(y); i += 8 {
		xv := x[i : i+8 : i+8]
		yv := y[i : i+8 : i+8]
		yv[0] += a * xv[0]
		yv[1] += a * xv[1]
		yv[2] += a * xv[2]
		yv[3] += a * xv[3]
		yv[4] += a * xv[4]
		yv[5] += a * xv[5]
		yv[6] += a * xv[6]
		yv[7] += a * xv[7]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// dot32 computes the inner product of equal-length slices with eight
// independent accumulators — wide enough for the vectorizer, and with the
// side effect of a shorter error chain than a single running sum.
func dot32(x, y []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(x) && i+8 <= len(y); i += 8 {
		xv := x[i : i+8 : i+8]
		yv := y[i : i+8 : i+8]
		s0 += xv[0] * yv[0]
		s1 += xv[1] * yv[1]
		s2 += xv[2] * yv[2]
		s3 += xv[3] * yv[3]
		s4 += xv[4] * yv[4]
		s5 += xv[5] * yv[5]
		s6 += xv[6] * yv[6]
		s7 += xv[7] * yv[7]
	}
	s := ((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// matmulRows32 computes out[i0:i1) = a[i0:i1)×b for row-major a:[m,k],
// b:[k,n], out:[m,n], tiled over (k, j) like matmulRows. Output rows are
// zeroed first.
//
// The inner kernel unrolls four k-rows of b per pass over the output panel
// instead of delegating to axpy32. The serving bodies' post-pool convolutions
// have tiny spatial panels (oh*ow of 16, 4, even 1 after the stride-2
// blocks), so a call per (i, p) pair costs more than the arithmetic it
// performs; folding four multiplies into one inline j-loop quarters the
// passes over orow and drops the call overhead entirely. Summation order per
// output element is unchanged (Go's + is left-associative, so
// o + a0*b0[j] + a1*b1[j] + ... accumulates in ascending-p order, exactly
// like the sequential loop it replaces).
func matmulRows32(out, a, b []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		row := out[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	for kb := 0; kb < k; kb += matmulBlockK {
		kend := min(kb+matmulBlockK, k)
		for jb := 0; jb < n; jb += matmulBlockJ32 {
			jend := min(jb+matmulBlockJ32, n)
			for i := i0; i < i1; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n+jb : i*n+jend]
				p := kb
				for ; p+4 <= kend; p += 4 {
					a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
					b0 := b[p*n+jb : p*n+jend][:len(orow)]
					b1 := b[(p+1)*n+jb : (p+1)*n+jend][:len(orow)]
					b2 := b[(p+2)*n+jb : (p+2)*n+jend][:len(orow)]
					b3 := b[(p+3)*n+jb : (p+3)*n+jend][:len(orow)]
					for j := range orow {
						orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < kend; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b[p*n+jb : p*n+jend]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// checkMatMulShapes32 validates a 2-D matmul triple and returns (m, k, n).
func checkMatMulShapes32(dst, a, b *Tensor32, op string) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors", op))
	}
	m, k = a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dims %d vs %d", op, k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
	return m, k, n
}

// MatMulInto32 computes dst = a×b for 2-D float32 tensors [m,k]·[k,n] →
// [m,n] into the caller-owned dst, serially, with the cache-blocked kernel.
// dst must not alias a or b.
func MatMulInto32(dst, a, b *Tensor32) *Tensor32 {
	_, k, n := checkMatMulShapes32(dst, a, b, "MatMulInto32")
	matmulRows32(dst.Data, a.Data, b.Data, 0, a.Shape[0], k, n)
	return dst
}

// MatMulTransBInto32 computes dst = a×bᵀ for a:[m,k], b:[n,k] → [m,n] into
// the caller-owned dst, serially.
func MatMulTransBInto32(dst, a, b *Tensor32) *Tensor32 {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransBInto32 requires 2-D tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBInto32 inner dims %d vs %d", k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto32 dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dot32(arow, b.Data[j*k:(j+1)*k])
		}
	}
	return dst
}

// MatMulTransAInto32 computes dst = aᵀ×b for a:[k,m], b:[k,n] → [m,n] into
// the caller-owned dst, serially.
func MatMulTransAInto32(dst, a, b *Tensor32) *Tensor32 {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransAInto32 requires 2-D tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAInto32 inner dims %d vs %d", k, k2))
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto32 dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for p := 0; p < k; p++ {
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			axpy32(av, brow, dst.Data[i*n:(i+1)*n])
		}
	}
	return dst
}

// AddInto32 computes dst = a + b elementwise into the caller-owned dst. dst
// may alias a or b.
func AddInto32(dst, a, b *Tensor32) *Tensor32 {
	dst.checkSame(a, "AddInto32")
	dst.checkSame(b, "AddInto32")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// ScaleInto32 computes dst = s*a elementwise into the caller-owned dst.
func ScaleInto32(dst, a *Tensor32, s float32) *Tensor32 {
	dst.checkSame(a, "ScaleInto32")
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// Im2ColInto32 expands one [C,H,W] image into the caller-owned patch matrix
// dst of shape [C*KH*KW, OH*OW] (see Im2Col). dst is fully overwritten,
// zero-padding included.
func Im2ColInto32(dst, x *Tensor32, kh, kw, stride, pad int) *Tensor32 {
	if len(x.Shape) != 3 {
		panic("tensor: Im2ColInto32 expects [C,H,W]")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if len(dst.Shape) != 2 || dst.Shape[0] != c*kh*kw || dst.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto32 dst shape %v, want [%d %d]", dst.Shape, c*kh*kw, oh*ow))
	}
	im2colSlice32(dst.Data, x.Data, c, h, w, kh, kw, stride, pad, oh, ow)
	return dst
}

// im2colSlice32 is the raw-slice im2col used by the f32 serving conv kernel;
// dst is fully overwritten.
func im2colSlice32(dst, src []float32, c, h, w, kh, kw, stride, pad, oh, ow int) {
	for i := range dst {
		dst[i] = 0
	}
	colStride := oh * ow
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ci*kh+ky)*kw + kx) * colStride
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := chanBase + iy*w
					dstRow := rowBase + oy*ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[dstRow+ox] = src[srcRow+ix]
					}
				}
			}
		}
	}
}

// ConvForwardInto32 computes the batched convolution into the caller-owned
// output y:[N,OC,OH,OW], using cols (shape [C*KH*KW, OH*OW]) as the
// per-sample im2col scratch — the f32 twin of ConvForwardInto, with the same
// zero-allocation and one-level-of-parallelism contract.
func ConvForwardInto32(y, x, weight, bias, cols *Tensor32, kh, kw, stride, pad int) *Tensor32 {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc := weight.Shape[0]
	if weight.Shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: ConvForwardInto32 weight %v vs c*kh*kw=%d", weight.Shape, c*kh*kw))
	}
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if len(y.Shape) != 4 || y.Shape[0] != n || y.Shape[1] != oc || y.Shape[2] != oh || y.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: ConvForwardInto32 y shape %v, want [%d %d %d %d]", y.Shape, n, oc, oh, ow))
	}
	if len(cols.Shape) != 2 || cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: ConvForwardInto32 cols shape %v, want [%d %d]", cols.Shape, c*kh*kw, oh*ow))
	}
	hw := oh * ow
	per := c * h * w
	for i := 0; i < n; i++ {
		im2colSlice32(cols.Data, x.Data[i*per:(i+1)*per], c, h, w, kh, kw, stride, pad, oh, ow)
		dst := y.Data[i*oc*hw : (i+1)*oc*hw]
		matmulRows32(dst, weight.Data, cols.Data, 0, oc, c*kh*kw, hw)
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.Data[o]
				row := dst[o*hw : (o+1)*hw]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return y
}
