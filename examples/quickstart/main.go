// Quickstart: the Fig. 1 pipeline end to end in under a minute.
//
// It trains a small collaborative-inference model (client conv head + server
// ResNet body + client FC tail), runs the model inversion attack of the
// paper's threat model against it, then trains an Ensembler defense and runs
// the same attack again, printing the reconstruction-quality drop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ensembler/internal/attack"
	"ensembler/internal/data"
	"ensembler/internal/defense"
	"ensembler/internal/ensemble"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

func main() {
	// A CIFAR-10-like synthetic workload: Train is the client's private
	// data, Aux is the attacker's in-distribution auxiliary data, Test holds
	// the private inputs the attacker will try to reconstruct.
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, Train: 384, Aux: 192, Test: 96, Seed: 7})
	arch := split.DefaultArch(data.CIFAR10Like)
	opts := split.TrainOptions{Epochs: 5, BatchSize: 32, LR: 0.05}

	fmt.Println("== 1. Standard collaborative inference (no defense) ==")
	none := defense.TrainNone(arch, sp.Train, opts, 1)
	fmt.Printf("test accuracy: %.3f\n", none.Accuracy(sp.Test))

	acfg := attack.Config{
		Arch: arch, ShadowEpochs: 20, DecoderEpochs: 8, BatchSize: 32,
		ShadowLR: 0.01, Seed: 9, StructuredShadow: true,
	}
	fmt.Println("mounting the model inversion attack (shadow net + decoder)...")
	oNone := attack.RunDecoderAttack(acfg, "MIA vs undefended", none.Bodies(), false, none, sp.Aux, sp.Test, 32)
	fmt.Printf("%s  (higher = worse privacy)\n\n", oNone)

	fmt.Println("== 2. Ensembler defense (N=4 bodies, secret P=2) ==")
	cfg := ensemble.Config{
		Arch: arch, N: 4, P: 2, Sigma: 0.05, Lambda: 1.0, Seed: 11,
		Stage1:      opts,
		Stage3:      split.TrainOptions{Epochs: 8, BatchSize: 32, LR: 0.05},
		Stage1Noise: true,
	}
	ens := defense.TrainEnsembler(cfg, sp.Train, nil)
	fmt.Printf("test accuracy: %.3f (Δ vs undefended: %+.1f%%)\n",
		ens.Accuracy(sp.Test), 100*(ens.Accuracy(sp.Test)-none.Accuracy(sp.Test)))

	fmt.Println("attacking each server body (the adversary's best guess)...")
	singles := attack.SingleBodyAttacks(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, 32)
	best := attack.BestBy(singles, "psnr")
	fmt.Printf("strongest single-body attack: %s\n", best)
	ad := attack.AdaptiveAttack(acfg, ens.Bodies(), ens, sp.Aux, sp.Test, 32)
	fmt.Printf("adaptive all-body attack:     %s\n\n", ad)

	fmt.Printf("PSNR of the best attack dropped from %.2f dB (undefended) to %.2f dB (Ensembler).\n",
		oNone.PSNR, best.PSNR)
	fmt.Printf("A brute-force attacker faces %.0f candidate subsets (O(2^N), §III-D).\n",
		ensemble.SubsetCount(cfg.N))

	// Dump contact sheets for visual inspection: truth vs what the attacker
	// recovered with and without the defense.
	truth, _ := sp.Test.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for name, batch := range map[string]*tensor.Tensor{
		"quickstart_truth.ppm":    truth,
		"quickstart_mia_none.ppm": oNone.Recon,
		"quickstart_mia_ours.ppm": best.Recon,
	} {
		grid := batch
		if grid.Shape[0] > 8 {
			sub := tensor.New(8, grid.Shape[1], grid.Shape[2], grid.Shape[3])
			copy(sub.Data, grid.Data[:sub.Size()])
			grid = sub
		}
		path := filepath.Join(os.TempDir(), name)
		if err := data.SaveGrid(path, grid, 4); err == nil {
			fmt.Printf("wrote %s\n", path)
		}
	}
}
