package comm

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"io"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ensembler/internal/nn"
	"ensembler/internal/privacy"
	"ensembler/internal/tensor"
	"ensembler/internal/trace"
)

// This file pins the comm half of the privacy-budget contract: the wire
// codes and handshake bytes, Pool.Retry terminality for budget refusals (a
// drained budget does not refill on retry, so retrying is pure waste), the
// escalation-noise arithmetic, and the zero-allocation discipline of the
// guarded serving loop. The policy ladder itself is pinned in
// internal/privacy; the end-to-end escalation run lives in
// budget_e2e_test.go.

// refuseThenServeGob runs a hand-rolled legacy-gob server that refuses each
// connection's first `refuseFirst` requests with the budget-exhausted
// verdict, then serves a fixed feature response — the deterministic harness
// proving the gob codec carries CodeBudgetExhausted natively.
func refuseThenServeGob(t *testing.T, refuseFirst int, attempts *atomic.Uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	feature := wireTensor(430, 1, 8)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				refused := 0
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					attempts.Add(1)
					var resp Response
					if refused < refuseFirst {
						refused++
						resp = Response{Err: budgetExhaustedMsg, Code: CodeBudgetExhausted}
					} else {
						resp = Response{Features: []*tensor.Tensor{feature}}
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// refuseOnceBinary runs a hand-rolled binary-wire server that refuses each
// connection's first request with the budget code and serves afterwards —
// the binary twin of refuseThenServeGob.
func refuseOnceBinary(t *testing.T, attempts *atomic.Uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	feature := wireTensor(431, 1, 8)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				var hello [8]byte
				if _, err := io.ReadFull(br, hello[:]); err != nil {
					return
				}
				ack := helloAckBytes(2, 0, 0)
				if _, err := conn.Write(ack[:]); err != nil {
					return
				}
				refused := false
				var decBuf []byte
				for {
					var body []byte
					var err error
					decBuf, body, err = readFrame(br, decBuf)
					if err != nil {
						return
					}
					var req Request
					if err := parseRequestInto(body, &req, heapAlloc{}, nil, nil); err != nil {
						return
					}
					attempts.Add(1)
					resp := &Response{Features: []*tensor.Tensor{feature}}
					if !refused {
						refused = true
						resp = &Response{Err: budgetExhaustedMsg, Code: CodeBudgetExhausted}
					}
					buf, err := appendResponse([]byte{0, 0, 0, 0}, resp, false, true, 0)
					if err != nil {
						return
					}
					if err := writeFrame(conn, buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestPoolBudgetExhaustedTerminalGob pins retry terminality on the legacy
// gob wire: a budget refusal must surface immediately as ErrBudgetExhausted
// after exactly one attempt, even under a generous retry policy — unlike an
// overload shed, a drained budget does not recover on the retry timescale,
// and hammering the server only burns the refusal counters. The contrast
// case (ErrOverloaded retried transparently) is TestPoolRetriesOverloadedServer.
func TestPoolBudgetExhaustedTerminalGob(t *testing.T) {
	var attempts atomic.Uint64
	addr := refuseThenServeGob(t, 1, &attempts)

	pool, err := NewPool(addr, 1, func(c *Client) error { return nil }, WithWire(WireGob))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5}

	x := wireTensor(432, 1, 4, 8, 8)
	_, _, err = pool.Exchange(context.Background(), x)
	// The server would have served a second attempt — the retry budget of 4
	// must still not spend it.
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget refusal surfaced as %v, want ErrBudgetExhausted", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("budget refusal also matches ErrOverloaded — retry loops would treat it as transient")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("budget-refused exchange hit the server %d times, want exactly 1", got)
	}

	// The refusal is benign for the connection: the same pooled stream serves
	// the next request.
	if _, _, err := pool.Exchange(context.Background(), x); err != nil {
		t.Fatalf("connection unusable after a budget refusal: %v", err)
	}
}

// TestPoolBudgetExhaustedTerminalBinary pins the same terminality contract
// on the binary wire, where the refusal travels as the Code field of a v2+
// response frame.
func TestPoolBudgetExhaustedTerminalBinary(t *testing.T) {
	var attempts atomic.Uint64
	addr := refuseOnceBinary(t, &attempts)

	pool, err := NewPool(addr, 1, func(c *Client) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5}

	x := wireTensor(433, 1, 4, 8, 8)
	_, _, err = pool.Exchange(context.Background(), x)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("binary budget refusal surfaced as %v, want ErrBudgetExhausted", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("budget-refused exchange hit the server %d times, want exactly 1", got)
	}
	if _, _, err := pool.Exchange(context.Background(), x); err != nil {
		t.Fatalf("connection unusable after a binary budget refusal: %v", err)
	}
}

// TestWireHelloBytesPinned pins the handshake bytes across versions: the v4
// client-ID extension must not move a single byte of the v3 hello, so a v3
// capture replayed today still negotiates identically, and a v4 hello
// without an ID differs from v3 in exactly the version byte. These literals
// are the wire contract — if this test needs editing, the protocol broke.
func TestWireHelloBytesPinned(t *testing.T) {
	if got, want := helloBytes(3, 0), [8]byte{0xE5, 'N', 'S', 'B', 3, 0, 0, 0}; got != want {
		t.Errorf("v3 hello bytes = %v, want %v", got, want)
	}
	if got, want := helloBytes(wireVersion, 0), [8]byte{0xE5, 'N', 'S', 'B', 4, 0, 0, 0}; got != want {
		t.Errorf("v4 ID-less hello bytes = %v, want %v", got, want)
	}
	if got, want := helloBytes(wireVersion, wireFlagF32|wireFlagClientID), [8]byte{0xE5, 'N', 'S', 'B', 4, 0x03, 0, 0}; got != want {
		t.Errorf("v4 flagged hello bytes = %v, want %v", got, want)
	}
	// The client-ID frame encoding is equally pinned: message type 0x05,
	// one-byte length, raw ID bytes.
	if got, want := string(appendClientID(nil, "ab")), "\x05\x02ab"; got != want {
		t.Errorf("client-ID frame body = %q, want %q", got, want)
	}
}

// TestNegotiateClientIDHandshake pins the server half of the v4 extension
// at the negotiate boundary: a v4 hello with the flag yields the declared
// identity; a v3 hello forging the flag is served at v3 with the flag
// cleared and no extra read; a hostile ID frame drops the connection.
func TestNegotiateClientIDHandshake(t *testing.T) {
	srv := NewServer(codecBodies(1))

	type result struct {
		id  string
		err error
	}
	run := func(t *testing.T, drive func(c net.Conn, ack []byte)) result {
		t.Helper()
		server, client := net.Pipe()
		defer server.Close()
		defer client.Close()
		done := make(chan result, 1)
		go func() {
			_, id, err := srv.negotiate(server, bufio.NewReaderSize(server, 1<<16))
			done <- result{id, err}
		}()
		var ack [8]byte
		drive(client, ack[:])
		select {
		case r := <-done:
			return r
		case <-time.After(5 * time.Second):
			t.Fatal("negotiate did not return — it is reading bytes the peer never promised")
			return result{}
		}
	}

	t.Run("v4 declared identity", func(t *testing.T) {
		r := run(t, func(c net.Conn, ack []byte) {
			hello := helloBytes(wireVersion, wireFlagClientID)
			c.Write(hello[:])
			io.ReadFull(c, ack)
			if ack[4] != wireVersion || ack[5]&wireFlagClientID == 0 {
				t.Errorf("ack ver %d flags %#x: v4 ID offer not accepted", ack[4], ack[5])
			}
			writeFrame(c, appendClientID([]byte{0, 0, 0, 0}, "did:ex:alice"))
		})
		if r.err != nil || r.id != "did:ex:alice" {
			t.Fatalf("negotiate = (%q, %v), want the declared identity", r.id, r.err)
		}
	})

	t.Run("v3 flag forgery ignored", func(t *testing.T) {
		// A v3 client cannot speak the extension; a forged flag must not make
		// the server wait for a frame v3 will never send (net.Pipe would
		// deadlock the test if it did).
		r := run(t, func(c net.Conn, ack []byte) {
			hello := helloBytes(3, wireFlagClientID)
			c.Write(hello[:])
			io.ReadFull(c, ack)
			if ack[4] != 3 || ack[5]&wireFlagClientID != 0 {
				t.Errorf("ack ver %d flags %#x: forged v3 flag echoed", ack[4], ack[5])
			}
		})
		if r.err != nil || r.id != "" {
			t.Fatalf("negotiate = (%q, %v), want anonymous v3 success", r.id, r.err)
		}
	})

	t.Run("hostile ID frame drops connection", func(t *testing.T) {
		r := run(t, func(c net.Conn, ack []byte) {
			hello := helloBytes(wireVersion, wireFlagClientID)
			c.Write(hello[:])
			io.ReadFull(c, ack)
			// Frame length far beyond the 66-byte ceiling: the server must
			// reject it from the header alone.
			c.Write([]byte{0xFF, 0xFF, 0, 0})
		})
		if r.err == nil {
			t.Fatalf("negotiate accepted a hostile ID frame as %q", r.id)
		}
	})
}

// TestAddrBucket pins the legacy-identity derivation: one account per peer
// host, a disjoint namespace from declared IDs, and no panic on degenerate
// addresses.
func TestAddrBucket(t *testing.T) {
	tcp := &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4321}
	if got := addrBucket(tcp); got != "addr:127.0.0.1" {
		t.Errorf("addrBucket(%v) = %q, want addr:127.0.0.1", tcp, got)
	}
	// Two connections from one host share an account.
	tcp2 := &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9999}
	if addrBucket(tcp) != addrBucket(tcp2) {
		t.Error("same-host peers bucketed into different accounts")
	}
	if got := addrBucket(nil); got != "addr:unknown" {
		t.Errorf("addrBucket(nil) = %q", got)
	}
	if got := addrBucket(&net.UnixAddr{Name: "@sock", Net: "unix"}); got != "addr:@sock" {
		t.Errorf("addrBucket(unix) = %q", got)
	}
}

// TestNoiseResponseStatistics pins the escalation-noise arithmetic: additive
// Gaussian perturbation of the declared sigma on every payload value, in
// place, on both precisions — and a strict no-op at sigma 0.
func TestNoiseResponseStatistics(t *testing.T) {
	const n = 1 << 14
	const sigma = 0.1

	j := newJob()
	j.rng = 12345
	j.noiseSigma = sigma
	feat := tensor.New(1, n)
	resp := &Response{Features: []*tensor.Tensor{feat}}
	noiseResponse(j, resp)

	var sum, sumSq float64
	for _, v := range feat.Data {
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 5*sigma/math.Sqrt(n) {
		t.Errorf("noise mean %v too far from 0 for sigma %v over %d draws", mean, sigma, n)
	}
	if math.Abs(std-sigma) > 0.1*sigma {
		t.Errorf("noise std %v, want within 10%% of sigma %v", std, sigma)
	}

	// Sigma 0 leaves the payload untouched (and must not seed the rng).
	j2 := newJob()
	clean := tensor.New(1, 8)
	for i := range clean.Data {
		clean.Data[i] = float64(i)
	}
	noiseResponse(j2, &Response{Features: []*tensor.Tensor{clean}})
	for i, v := range clean.Data {
		if v != float64(i) {
			t.Fatalf("sigma-0 noiseResponse modified value %d", i)
		}
	}
	if j2.rng != 0 {
		t.Error("sigma-0 noiseResponse seeded the noise state")
	}

	// The f32 response path perturbs the f32 payload.
	j3 := newJob()
	j3.noiseSigma = sigma
	j3.f32Resp = true
	f32 := tensor.New32(1, n)
	j3.feats32 = []*tensor.Tensor32{f32}
	noiseResponse(j3, &Response{})
	var nonzero int
	for _, v := range f32.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < n/2 {
		t.Errorf("f32 noise touched only %d/%d values", nonzero, n)
	}
}

// benchGuard builds a guard whose per-row charge is one nano-ε against an
// enormous budget: the hot path runs the full charge arithmetic while the
// account stays healthy for any realistic iteration count.
func benchGuard(tb testing.TB) *privacy.Guard {
	tb.Helper()
	ledger, err := privacy.NewLedger(privacy.LedgerConfig{BudgetEps: 1e6, QueryEps: 1e-9})
	if err != nil {
		tb.Fatal(err)
	}
	guard, err := privacy.NewGuard(ledger, privacy.PolicyConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	return guard
}

// TestServeLoopZeroAllocsWithLedger extends the zero-allocation pin to the
// guarded serving loop, in both regimes a live server sees: a healthy
// account (charge verdict, no noise) and a half-drained one (charge verdict
// plus in-place Gaussian noise on every response value). Budget accounting
// is only deployable because it costs nothing here; this test is the gate.
func TestServeLoopZeroAllocsWithLedger(t *testing.T) {
	const nBodies = 3
	newSrv := func(g *privacy.Guard) *Server {
		return NewServer(codecBodies(nBodies), WithWorkers(2), WithBudget(g),
			WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	}
	body, err := appendRequest(nil, &Request{Features: wireTensor(23, 2, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, srv *Server, acct *privacy.Account, wantNoise bool) {
		t.Helper()
		j := newJob()
		replicas := newReplicaCache(PrecisionF64)
		encBuf := make([]byte, 0, 1<<16)
		cycle := func() {
			if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
				t.Fatal(err)
			}
			j.account = acct
			resp := srv.serve(j, replicas)
			if resp.Err != "" {
				t.Fatal(resp.Err)
			}
			if wantNoise && j.noiseSigma == 0 {
				t.Fatal("drained account served without an escalation-noise verdict")
			}
			var e error
			encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
			if e != nil {
				t.Fatal(e)
			}
			j.reset()
		}
		cycle() // warm-up: clone replicas, size arenas and buffers
		cycle()
		if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
			t.Errorf("guarded serve loop allocates %v times per request, want 0", allocs)
		}
	}

	t.Run("healthy account", func(t *testing.T) {
		g := benchGuard(t)
		run(t, newSrv(g), g.AccountFor("healthy"), false)
	})

	t.Run("noised account", func(t *testing.T) {
		// Budget sized so the warm-up drains past NoiseAt (0.5) while the
		// whole test stays far from refusal: 2 rows/request, ~0.1ε/row.
		ledger, err := privacy.NewLedger(privacy.LedgerConfig{BudgetEps: 100, QueryEps: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		g, err := privacy.NewGuard(ledger, privacy.PolicyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		acct := g.AccountFor("drained")
		// Drain to 60% spent with direct charges before serving.
		for g.Charge(acct, 100); acct.SpentEps() < 60; {
			g.Charge(acct, 100)
		}
		run(t, newSrv(g), acct, true)
	})
}

// BenchmarkServeRequestLoopLedger is BenchmarkServeRequestLoop with the
// privacy-budget guard attached and every request charged to a live
// account — the CI allocation gate for the guarded serving loop
// (`0 allocs/op` is asserted by the workflow grep, and independently by
// TestServeLoopZeroAllocsWithLedger).
func BenchmarkServeRequestLoopLedger(b *testing.B) {
	const nBodies = 4
	guard := benchGuard(b)
	acct := guard.AccountFor("bench-client")
	srv := NewServer(codecBodies(nBodies), WithWorkers(2), WithBudget(guard),
		WithReplicas(func() []*nn.Network { return codecBodies(nBodies) }))
	body, err := appendRequest(nil, &Request{Features: wireTensor(24, 4, 4, 8, 8)}, false, trace.Context{})
	if err != nil {
		b.Fatal(err)
	}
	j := newJob()
	replicas := newReplicaCache(PrecisionF64)
	encBuf := make([]byte, 0, 1<<20)
	for i := 0; i < 2; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		j.account = acct
		if resp := srv.serve(j, replicas); resp.Err != "" {
			b.Fatal(resp.Err)
		}
		j.reset()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parseRequestInto(body, &j.req, (*arenaAlloc)(&j.arena), j, nil); err != nil {
			b.Fatal(err)
		}
		j.account = acct
		resp := srv.serve(j, replicas)
		if resp.Err != "" {
			b.Fatal(resp.Err)
		}
		var e error
		encBuf, e = appendResponse(append(encBuf[:0], 0, 0, 0, 0), resp, false, true, 0)
		if e != nil {
			b.Fatal(e)
		}
		j.reset()
	}
}

// The stringer/parser helpers the serve banner and registry manifests lean
// on: round-trip every precision form and pin the wire-format names.
func TestPrecisionAndWireStrings(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
	}{{"", PrecisionF64}, {"f64", PrecisionF64}, {"f32", PrecisionF32}} {
		got, err := ParsePrecision(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Error("ParsePrecision(f16) must be rejected")
	}
	if PrecisionF64.String() != "f64" || PrecisionF32.String() != "f32" {
		t.Error("Precision.String round-trip broken")
	}
	for f, want := range map[WireFormat]string{
		WireBinary: "binary", WireBinaryF32: "binary+f32", WireGob: "gob", WireFormat(99): "WireFormat(99)",
	} {
		if f.String() != want {
			t.Errorf("WireFormat(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
