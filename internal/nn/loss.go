package nn

import (
	"fmt"
	"math"

	"ensembler/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy between logits [N,K]
// and integer labels, returning both the loss and dL/d(logits) in one pass
// (the Stage-1/Stage-3 classification loss, Eqs. 2-3 of the paper).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(logits.Shape) != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy expects [N,K], got %v", logits.Shape))
	}
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	grad := tensor.New(n, k)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		loss += logSum - row[y]
		gi := grad.Data[i*k : (i+1)*k]
		for j, v := range row {
			p := math.Exp(v - logSum)
			gi[j] = p / float64(n)
		}
		gi[y] -= 1 / float64(n)
	}
	return loss / float64(n), grad
}

// Softmax returns row-wise softmax probabilities for logits [N,K].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		orow := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// MSELoss returns mean((pred-target)²) and dL/d(pred). The decoder
// (inversion) training objective uses it with images as targets.
func MSELoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSELoss shapes %v vs %v", pred.Shape, target.Shape))
	}
	n := float64(pred.Size())
	grad := tensor.New(pred.Shape...)
	loss := 0.0
	for i, v := range pred.Data {
		d := v - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// ConcatFeatures concatenates per-branch feature matrices [N,D_i] along the
// feature dimension, producing [N, ΣD_i]. It is the Selector's Concat
// (Eq. 1); the inverse gradient routing is SplitFeatureGrad.
func ConcatFeatures(parts []*tensor.Tensor) *tensor.Tensor {
	if len(parts) == 0 {
		panic("nn: ConcatFeatures with no parts")
	}
	n := parts[0].Shape[0]
	total := 0
	for _, p := range parts {
		if len(p.Shape) != 2 || p.Shape[0] != n {
			panic(fmt.Sprintf("nn: ConcatFeatures part shape %v", p.Shape))
		}
		total += p.Shape[1]
	}
	out := tensor.New(n, total)
	off := 0
	for _, p := range parts {
		d := p.Shape[1]
		for i := 0; i < n; i++ {
			copy(out.Data[i*total+off:i*total+off+d], p.Data[i*d:(i+1)*d])
		}
		off += d
	}
	return out
}

// SplitFeatureGrad splits a gradient over a concatenated feature matrix back
// into per-branch gradients with the given widths.
func SplitFeatureGrad(grad *tensor.Tensor, widths []int) []*tensor.Tensor {
	n, total := grad.Shape[0], grad.Shape[1]
	sum := 0
	for _, w := range widths {
		sum += w
	}
	if sum != total {
		panic(fmt.Sprintf("nn: SplitFeatureGrad widths %v don't sum to %d", widths, total))
	}
	parts := make([]*tensor.Tensor, len(widths))
	off := 0
	for pi, w := range widths {
		p := tensor.New(n, w)
		for i := 0; i < n; i++ {
			copy(p.Data[i*w:(i+1)*w], grad.Data[i*total+off:i*total+off+w])
		}
		parts[pi] = p
		off += w
	}
	return parts
}
