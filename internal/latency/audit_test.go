package latency

import (
	"math"
	"strings"
	"testing"
)

func auditScenario(workers, clients int) ServingScenario {
	return ServingScenario{Base: Ensembler(10), Workers: workers, Clients: clients, Batch: 1}
}

func TestZeroAuditReducesToServingEstimate(t *testing.T) {
	sc := auditScenario(4, 8)
	plain := EstimateServing(sc)
	audited := EstimateServingAudited(sc, Rotation{}, Audit{})
	if math.Abs(plain.ThroughputRPS-audited.ThroughputRPS) > 1e-12 ||
		math.Abs(plain.RequestSeconds-audited.RequestSeconds) > 1e-12 {
		t.Errorf("zero audit must be exactly EstimateServing: %+v vs %+v", plain, audited)
	}
}

func TestMirroringInflatesServiceAndRequest(t *testing.T) {
	sc := auditScenario(4, 64) // server-bound regime
	base := EstimateServingAudited(sc, Rotation{}, Audit{})
	a := Audit{SampleEvery: 10, MirrorSeconds: 0.01}
	audited := EstimateServingAudited(sc, Rotation{}, a)
	if got, want := audited.RequestSeconds-base.RequestSeconds, 0.001; math.Abs(got-want) > 1e-9 {
		t.Errorf("request inflation = %v, want amortized mirror cost %v", got, want)
	}
	if audited.ThroughputRPS >= base.ThroughputRPS {
		t.Errorf("mirroring on a saturated server must cost throughput: %v >= %v",
			audited.ThroughputRPS, base.ThroughputRPS)
	}
	if !strings.Contains(audited.Name, "audit=1/10") {
		t.Errorf("estimate name %q must carry the sampling rate", audited.Name)
	}
}

func TestReplayStealsWorkerCapacity(t *testing.T) {
	sc := auditScenario(2, 64) // server-bound: capacity is the binding constraint
	base := EstimateServingAudited(sc, Rotation{}, Audit{})
	// The replay consumes half a worker: capacity 2 → 1.5.
	a := Audit{PeriodSeconds: 60, ReplaySeconds: 30}
	audited := EstimateServingAudited(sc, Rotation{}, a)
	if got, want := audited.ThroughputRPS/base.ThroughputRPS, 1.5/2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("replay capacity ratio = %v, want %v", got, want)
	}
	// Replay overhead clamps at one full worker.
	worst := Audit{PeriodSeconds: 1, ReplaySeconds: 10}
	if f := worst.ReplayOverheadFraction(); f != 1 {
		t.Errorf("replay fraction = %v, want clamp at 1", f)
	}
}

func TestAuditComposesWithRotation(t *testing.T) {
	sc := auditScenario(4, 64)
	rot := Rotation{PeriodSeconds: 60, CloneSeconds: 6} // 10% per worker
	a := Audit{SampleEvery: 100, MirrorSeconds: 0.001, PeriodSeconds: 60, ReplaySeconds: 6}
	both := EstimateServingAudited(sc, rot, a)
	rotOnly := EstimateServingRotated(sc, rot)
	if both.ThroughputRPS >= rotOnly.ThroughputRPS {
		t.Errorf("audit on top of rotation must cost something: %v >= %v",
			both.ThroughputRPS, rotOnly.ThroughputRPS)
	}
	if both.ThroughputRPS <= 0 {
		t.Errorf("moderate audit must not zero the pool: %+v", both)
	}
}

func TestAuditSweepMonotone(t *testing.T) {
	a := Audit{MirrorSeconds: 0.02, PeriodSeconds: 60, ReplaySeconds: 3}
	rows := AuditSweep(Ensembler(10), 4, 64, 1, a, []int{1, 10, 100, 1000})
	if len(rows) != 4 {
		t.Fatalf("sweep returned %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Coarser sampling must never serve *less*.
		if rows[i].ThroughputRPS < rows[i-1].ThroughputRPS {
			t.Errorf("sweep not monotone: row %d (%v rps) < row %d (%v rps)",
				i, rows[i].ThroughputRPS, i-1, rows[i-1].ThroughputRPS)
		}
	}
	// Coarser sampling strictly helps while the mirror cost binds.
	if !(rows[3].ThroughputRPS >= rows[0].ThroughputRPS) {
		t.Errorf("1/1000 sampling (%v rps) must beat 1/1 (%v rps)",
			rows[3].ThroughputRPS, rows[0].ThroughputRPS)
	}
}
