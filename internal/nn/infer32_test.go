package nn_test

import (
	"math"
	"testing"

	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// relErr32 is the drift gate shared by the f32-backend tests: absolute
// difference over max(1, |reference|), so features near zero are held to an
// absolute budget and large ones to a relative one.
func relErr32(got float32, want float64) float64 {
	return math.Abs(float64(got)-want) / math.Max(1, math.Abs(want))
}

// TestCompileF32Drift bounds the float32 backend against the float64 oracle:
// the same warmed network, the same inputs, every output feature within the
// 1e-5 relative budget the serving stack promises (DESIGN.md §2i). Both test
// stacks together exercise the full compiled layer inventory.
func TestCompileF32Drift(t *testing.T) {
	const budget = 1e-5
	for _, tc := range []struct {
		name  string
		net   *nn.Network
		shape []int
	}{
		{"resnet", resnetLikeStack(), []int{3, 3, 16, 16}},
		{"decoder", decoderLikeStack(), []int{5, 12}},
	} {
		warm := tensor.New(tc.shape...)
		rng.New(21).FillNormal(warm.Data, 0, 1)
		tc.net.Forward(warm, true) // populate batch-norm running statistics

		n32, err := nn.CompileF32(tc.net)
		if err != nil {
			t.Fatalf("%s: CompileF32: %v", tc.name, err)
		}
		s64 := nn.NewScratch()
		s32 := nn.NewScratch32()
		r := rng.New(22)
		for trial := 0; trial < 10; trial++ {
			x := tensor.New(tc.shape...)
			r.FillNormal(x.Data, 0, 1)
			want := tc.net.ForwardInfer(x, s64)
			got := n32.ForwardInfer(tensor.Narrow32(x), s32)
			if len(got.Data) != len(want.Data) {
				t.Fatalf("%s: f32 output shape %v, f64 %v", tc.name, got.Shape, want.Shape)
			}
			for i, v := range got.Data {
				if e := relErr32(v, want.Data[i]); e > budget {
					t.Fatalf("%s trial %d: feature %d drifts %.3g relative (f32 %v vs f64 %v), budget %g",
						tc.name, trial, i, e, v, want.Data[i], budget)
				}
			}
			s64.Reset()
			s32.Reset()
		}
	}
}

// TestCompileF32RejectsUnknownLayers pins the no-silent-fallback rule: a
// layer outside the compiled inventory fails compilation loudly instead of
// quietly computing that layer in float64.
func TestCompileF32RejectsUnknownLayers(t *testing.T) {
	net := nn.NewNetwork("mixed", nn.NewReLU(), &fallbackLayer{})
	if _, err := nn.CompileF32(net); err == nil {
		t.Fatal("CompileF32 accepted a network with an uncompilable layer")
	}
}

// TestForwardInfer32Allocs pins the tentpole property in the f32 precision:
// a warmed float32 inference pass performs zero heap allocations.
func TestForwardInfer32Allocs(t *testing.T) {
	net := resnetLikeStack()
	x := tensor.New(2, 3, 16, 16)
	rng.New(23).FillNormal(x.Data, 0, 1)
	net.Forward(x, true)
	n32, err := nn.CompileF32(net)
	if err != nil {
		t.Fatal(err)
	}
	x32 := tensor.Narrow32(x)
	s := n32.InferScratch(2, 3, 16, 16)
	allocs := testing.AllocsPerRun(20, func() {
		n32.ForwardInfer(x32, s)
		s.Reset()
	})
	if allocs != 0 {
		t.Errorf("warmed f32 ForwardInfer allocates %v times per pass, want 0", allocs)
	}
}
