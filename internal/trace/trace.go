// Package trace is the serving stack's request-tracing subsystem: per-stage
// latency attribution for every request and full span timelines for an
// interesting subset, in the same hot-path discipline as the telemetry
// registry and the audit sampler — zero steady-state allocations, no locks a
// request can block on.
//
// The moving parts:
//
//   - An Active is one in-flight request's span storage: a fixed array of
//     slots embedded in (and recycled with) the serving job, so recording a
//     span is an array write plus a histogram observe. Every request records
//     when a Tracer is attached; "sampling" decides retention, not recording.
//   - The Tracer owns a fixed ring of completed-trace Records. Finishing a
//     request copies its spans into a ring slot only when the tail-based
//     retention policy says so: errors and sheds always, the slowest-N seen
//     recently always, and a configurable probabilistic fraction of the
//     rest. Tail-based means the decision runs at completion, when the
//     outcome and total latency are known — a head sampler cannot promise
//     "every shed is traceable".
//   - Every span additionally feeds a per-stage duration histogram
//     (`ensembler_stage_seconds{stage=...}` when a telemetry registry is
//     attached), so /metrics carries latency attribution even for the
//     requests whose spans were not retained.
//
// Stitching: a trace Context (u64 ID + the retention decision) propagates on
// the wire (see internal/comm's version-3 traced frames), so the client leg,
// the dispatcher leg, and every shard leg of one logical request share one
// trace ID. Each leg finishes independently and lands as its own Record; a
// consumer (the admin plane's /traces/{id}) stitches legs by ID. The Sampled
// flag exists for cross-leg consistency: the root leg decides the
// probabilistic coin once and forces retention downstream, so a retained
// trace is never missing half its legs.
//
// Concurrency: one Active belongs to one goroutine at a time (the job
// hand-off points — reader → dispatcher → worker → writer — are all
// channel- or mutex-sequenced, which is the same ownership discipline the
// job's arena relies on). The ring write path never blocks: slots are
// claimed with an atomic cursor and guarded by per-slot try-locks, so a
// writer racing a slow scrape drops that one record instead of waiting.
package trace

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/telemetry"
)

// Stage identifies one instrumented segment of a request's lifetime.
type Stage uint8

const (
	// StageDecode is frame parse time on the server (bytes in hand to
	// decoded request; the blocking read that precedes it is idle time, not
	// work, and is deliberately unattributed).
	StageDecode Stage = iota
	// StageQueue is intake wait: submit to the worker pool (or dispatcher)
	// until compute begins, minus any deliberate batch-window wait.
	StageQueue
	// StageBatchWait is the deliberate coalescing delay the dispatcher's
	// batch window imposes — the latency spent buying occupancy.
	StageBatchWait
	// StageForward is resolve + replica lookup + the stacked body passes.
	StageForward
	// StageEncode is response encode + write on the connection writer.
	StageEncode
	// StageShed marks a request answered by admission control with
	// ErrOverloaded — the terminal span of a shed trace; its duration is the
	// time the request sat queued before being chosen as the victim.
	StageShed
	// StageClient is client-side compute: head+noise before the round trip
	// (Arg 0) and selection+tail after it (Arg 1).
	StageClient
	// StageScatter is one shard's exchange round trip as the scatter-gather
	// client measured it, retries included; Arg is the shard index.
	StageScatter
	// StageHedge marks a hedged duplicate launched against a straggling
	// shard (Arg = shard index); first answer won.
	StageHedge
	// StageRetry marks one failed attempt that earned a retry against a
	// shard (Arg = shard index).
	StageRetry

	numStages
)

var stageNames = [numStages]string{
	"decode", "queue", "batch_wait", "forward", "encode",
	"shed", "client", "scatter", "hedge", "retry",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// MaxSpans bounds one leg's span storage. A monolith server leg uses ~5; a
// scatter-gather client leg uses 2 + K + hedge/retry markers. Overflow
// increments Record.Dropped instead of allocating.
const MaxSpans = 24

// Span is one recorded stage interval. Start is the offset from the leg's
// begin time (negative when the stage began before Begin, e.g. decode on the
// gob path); Dur is its length. Both are nanoseconds. Arg carries
// stage-specific detail (shard index, client phase).
type Span struct {
	Stage Stage
	Arg   int32
	Start int64
	Dur   int64
}

// Context is the trace identity that crosses connection boundaries: the
// trace ID shared by every leg of one logical request, and the root leg's
// retention decision (Sampled forces downstream legs to retain, so a kept
// trace has all its legs).
type Context struct {
	ID      uint64
	Sampled bool
}

// Active is one in-flight leg's span storage: fixed capacity, embedded in
// the serving job (or pooled by the shard client) and recycled with it, so
// the sampled path allocates nothing. One goroutine owns an Active at a
// time; the owners hand it off through the same synchronized points the job
// itself crosses.
type Active struct {
	id      uint64
	forced  bool
	err     bool
	shed    bool
	live    bool
	start   time.Time
	dropped uint32
	n       int
	spans   [MaxSpans]Span
}

// Reset reclaims the Active for the next request. Only the bookkeeping head
// is cleared; span slots past n were never valid.
func (a *Active) Reset() {
	a.id, a.forced, a.err, a.shed, a.live = 0, false, false, false, false
	a.start = time.Time{}
	a.dropped, a.n = 0, 0
}

// Live reports whether the leg is between Begin and Finish.
func (a *Active) Live() bool { return a.live }

// ID returns the leg's trace ID (zero before Begin).
func (a *Active) ID() uint64 { return a.id }

// MarkShed tags the leg as answered by admission control; tail sampling
// always retains it.
func (a *Active) MarkShed() { a.shed = true }

// MarkErr tags the leg as failed; tail sampling always retains it.
func (a *Active) MarkErr() { a.err = true }

// Context returns what downstream legs of this request should carry.
func (a *Active) Context() Context { return Context{ID: a.id, Sampled: a.forced} }

func (a *Active) addSpan(s Stage, arg int32, off, dur time.Duration) {
	if !a.live {
		return
	}
	if a.n >= MaxSpans {
		a.dropped++
		return
	}
	a.spans[a.n] = Span{Stage: s, Arg: arg, Start: int64(off), Dur: int64(dur)}
	a.n++
}

// Record is one completed, retained leg as stored in the ring.
type Record struct {
	ID      uint64
	Start   int64 // wall clock, nanoseconds since the Unix epoch
	Dur     int64 // nanoseconds, Begin to Finish
	Err     bool
	Shed    bool
	Forced  bool // retention was decided upstream (or by the root coin)
	Dropped uint32
	N       int
	Spans   [MaxSpans]Span
}

// StageDur sums the record's spans for one stage.
func (r *Record) StageDur(s Stage) time.Duration {
	var d time.Duration
	for i := 0; i < r.N; i++ {
		if r.Spans[i].Stage == s {
			d += time.Duration(r.Spans[i].Dur)
		}
	}
	return d
}

// slot is one ring entry. The try-lock keeps writers non-blocking: a writer
// racing a scrape (or a wrapped writer) drops its record rather than wait.
type slot struct {
	mu   sync.Mutex
	data Record
}

// Config configures a Tracer. Zero values take the documented defaults.
type Config struct {
	// SampleRate is the probabilistic tail-retention rate for requests that
	// are neither errors, sheds, nor slowest-N (default 0.01; negative
	// disables the coin entirely).
	SampleRate float64
	// SlowestN is how many slowest-seen requests the slow tracker retains
	// before a new request must beat the Nth to be kept as "slow"
	// (default 8; the tracker decays every 4096 finishes so the threshold
	// follows the workload instead of ratcheting forever).
	SlowestN int
	// Capacity is the completed-trace ring size, rounded up to a power of
	// two (default 256). One Record is ~700 bytes.
	Capacity int
	// Registry, when set, receives the ensembler_stage_seconds{stage=...}
	// histogram family. Stage histograms exist (and StageStats works)
	// either way.
	Registry *telemetry.Registry
}

// DefaultSampleRate is the probabilistic tail-retention rate when
// Config.SampleRate is zero.
const DefaultSampleRate = 0.01

// slowDecayEvery is how many finished legs pass between slow-tracker decays.
const slowDecayEvery = 4096

// Tracer owns the stage histograms, the tail-retention policy, and the ring
// of retained traces. All methods are safe for concurrent use and a nil
// *Tracer is a valid no-op receiver, so call sites need no nil checks of
// their own.
type Tracer struct {
	rate  float64
	slowN int

	mask  uint64
	slots []slot
	widx  atomic.Uint64

	rng   atomic.Uint64
	idGen atomic.Uint64

	finished atomic.Uint64
	retained atomic.Uint64
	dropped  atomic.Uint64 // ring writes abandoned to a slot contended by a scrape

	slowMu  sync.Mutex
	slowTop []int64
	slowMin atomic.Int64

	hist [numStages]*telemetry.Histogram
}

// New builds a Tracer. See Config for the policy knobs.
func New(cfg Config) *Tracer {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SlowestN == 0 {
		cfg.SlowestN = 8
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	capacity := 1
	for capacity < cfg.Capacity {
		capacity <<= 1
	}
	t := &Tracer{
		rate:    cfg.SampleRate,
		slowN:   cfg.SlowestN,
		mask:    uint64(capacity - 1),
		slots:   make([]slot, capacity),
		slowTop: make([]int64, 0, max(cfg.SlowestN, 0)),
	}
	// An empty slow tracker accepts everything: the sentinel keeps the fast
	// path off the slice entirely (len(slowTop) is only read under slowMu).
	t.slowMin.Store(math.MinInt64)
	seed := uint64(time.Now().UnixNano())
	t.rng.Store(seed)
	t.idGen.Store(mix64(seed ^ 0xA5A5A5A5A5A5A5A5))
	for s := Stage(0); s < numStages; s++ {
		if cfg.Registry != nil {
			t.hist[s] = cfg.Registry.Histogram("ensembler_stage_seconds",
				"Per-stage request latency attribution (see internal/trace).",
				telemetry.DefaultLatencyBuckets, telemetry.Labels{"stage": s.String()})
		} else {
			t.hist[s] = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets)
		}
	}
	return t
}

// mix64 is the splitmix64 finalizer: a bijection, so distinct counter values
// give distinct well-scattered outputs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// NewID returns a fresh nonzero trace ID.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	for {
		if id := mix64(t.idGen.Add(1)); id != 0 {
			return id
		}
	}
}

// coin is the probabilistic tail-retention decision: lock-free, allocation-
// free, racy only in the harmless sense that concurrent callers share one
// xorshift stream.
func (t *Tracer) coin() bool {
	if t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	x := mix64(t.rng.Add(0x9E3779B97F4A7C15))
	return float64(x>>11)/(1<<53) < t.rate
}

// Root begins a root leg: a fresh trace ID with the probabilistic retention
// coin flipped once, up front, so every downstream leg of the request
// retains (or not) together. Returns the Context to propagate on the wire.
func (t *Tracer) Root(a *Active) Context {
	if t == nil {
		return Context{}
	}
	ctx := Context{ID: t.NewID(), Sampled: t.coin()}
	t.BeginAt(a, ctx, time.Now())
	return ctx
}

// Begin starts a leg now. A zero ctx.ID mints a fresh trace ID (a request
// that arrived without upstream trace context).
func (t *Tracer) Begin(a *Active, ctx Context) { t.BeginAt(a, ctx, time.Now()) }

// BeginAt starts a leg with an explicit begin time (zero means now) — the
// server uses the moment the request's bytes were in hand, so decode time
// counts against the leg total.
func (t *Tracer) BeginAt(a *Active, ctx Context, start time.Time) {
	if t == nil {
		return
	}
	a.Reset()
	id := ctx.ID
	if id == 0 {
		id = t.NewID()
	}
	if start.IsZero() {
		start = time.Now()
	}
	a.id = id
	a.forced = ctx.Sampled
	a.start = start
	a.live = true
}

// Span records one stage interval: the stage histogram always observes it,
// and when a is a live leg the span lands in its slot storage too. No
// allocation either way.
func (t *Tracer) Span(a *Active, s Stage, start time.Time, dur time.Duration) {
	t.SpanArg(a, s, 0, start, dur)
}

// SpanArg is Span with the stage-specific Arg (shard index, client phase).
func (t *Tracer) SpanArg(a *Active, s Stage, arg int32, start time.Time, dur time.Duration) {
	if t == nil || s >= numStages {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.hist[s].Observe(dur.Seconds())
	if a != nil && a.live {
		a.addSpan(s, arg, start.Sub(a.start), dur)
	}
}

// Finish completes a leg and runs the tail-retention policy: errors, sheds,
// and upstream-forced legs always retain; then the slowest-N tracker; then
// the probabilistic coin. Returns whether the leg was copied into the ring.
// The Active is dead afterwards (reusable via Begin).
func (t *Tracer) Finish(a *Active, errFlag bool) bool {
	if t == nil || !a.live {
		return false
	}
	a.live = false
	total := time.Since(a.start)
	n := t.finished.Add(1)
	if n%slowDecayEvery == 0 {
		t.decaySlow()
	}
	failed := a.err || errFlag
	retain := failed || a.shed || a.forced
	if !retain && t.slowRetain(int64(total)) {
		retain = true
	}
	if !retain && t.coin() {
		retain = true
	}
	if !retain {
		return false
	}
	t.store(a, total, failed)
	return true
}

// slowRetain reports whether dur belongs among the slowest-N seen recently,
// inserting it if so. The fast path is one atomic load; the mutex is taken
// only by requests that actually beat the current threshold.
func (t *Tracer) slowRetain(dur int64) bool {
	if t.slowN <= 0 {
		return false
	}
	if dur < t.slowMin.Load() {
		// slowMin starts at MinInt64 (empty tracker accepts everything), so
		// this one atomic load is the whole fast path — the slice itself is
		// only ever touched under slowMu.
		return false
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	if len(t.slowTop) < t.slowN {
		t.slowTop = append(t.slowTop, dur)
	} else {
		mi := 0
		for i, v := range t.slowTop {
			if v < t.slowTop[mi] {
				mi = i
			}
		}
		if dur < t.slowTop[mi] {
			return false
		}
		t.slowTop[mi] = dur
	}
	min := t.slowTop[0]
	for _, v := range t.slowTop {
		if v < min {
			min = v
		}
	}
	t.slowMin.Store(min)
	return true
}

// decaySlow halves the slow tracker's memory so the slowest-N threshold
// follows the workload down as well as up — without it one early GC pause
// would own the tracker forever.
func (t *Tracer) decaySlow() {
	t.slowMu.Lock()
	for i := range t.slowTop {
		t.slowTop[i] /= 2
	}
	if len(t.slowTop) > 0 {
		min := t.slowTop[0]
		for _, v := range t.slowTop {
			if v < min {
				min = v
			}
		}
		t.slowMin.Store(min)
	}
	t.slowMu.Unlock()
}

// store copies the finished leg into the next ring slot. Writers never
// block: the slot try-lock fails only against a concurrent scrape (or a
// writer a full ring-lap ahead), and then the record is dropped and counted.
func (t *Tracer) store(a *Active, total time.Duration, failed bool) {
	s := &t.slots[(t.widx.Add(1)-1)&t.mask]
	if !s.mu.TryLock() {
		t.dropped.Add(1)
		return
	}
	s.data.ID = a.id
	s.data.Start = a.start.UnixNano()
	s.data.Dur = int64(total)
	s.data.Err = failed
	s.data.Shed = a.shed
	s.data.Forced = a.forced
	s.data.Dropped = a.dropped
	s.data.N = a.n
	copy(s.data.Spans[:a.n], a.spans[:a.n])
	s.mu.Unlock()
	t.retained.Add(1)
}

// Counts reports how many legs finished and how many were retained.
func (t *Tracer) Counts() (finished, retained uint64) {
	if t == nil {
		return 0, 0
	}
	return t.finished.Load(), t.retained.Load()
}

// Snapshot copies every retained record out of the ring, oldest first.
// Scrape-path: it locks slots one at a time and allocates freely.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.data.ID != 0 {
			out = append(out, s.data)
		}
		s.mu.Unlock()
	}
	sortRecords(out)
	return out
}

// TraceByID returns every retained leg of one trace, oldest first — the
// stitched view of a logical request that crossed connections and shards.
func (t *Tracer) TraceByID(id uint64) []Record {
	if t == nil || id == 0 {
		return nil
	}
	var out []Record
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.data.ID == id {
			out = append(out, s.data)
		}
		s.mu.Unlock()
	}
	sortRecords(out)
	return out
}

// sortRecords orders by start time (insertion sort: snapshots are small and
// nearly sorted already).
func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Start < recs[j-1].Start; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// StageStat is one stage's aggregate latency attribution, computed from the
// same histograms /metrics exports.
type StageStat struct {
	Stage string
	Count uint64
	Mean  time.Duration
	P99   time.Duration
}

// StageStats summarizes every stage that observed at least one span —
// what ensembler-bench prints as the stage-attribution table.
func (t *Tracer) StageStats() []StageStat {
	if t == nil {
		return nil
	}
	out := make([]StageStat, 0, numStages)
	for s := Stage(0); s < numStages; s++ {
		h := t.hist[s]
		c := h.Count()
		if c == 0 {
			continue
		}
		out = append(out, StageStat{
			Stage: s.String(),
			Count: c,
			Mean:  time.Duration(h.Sum() / float64(c) * float64(time.Second)),
			P99:   time.Duration(h.Quantile(0.99) * float64(time.Second)),
		})
	}
	return out
}

// StageHistogram exposes one stage's histogram (for tests and the bench
// harness's JSON report).
func (t *Tracer) StageHistogram(s Stage) *telemetry.Histogram {
	if t == nil || s >= numStages {
		return nil
	}
	return t.hist[s]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
