package faultpoint

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("comm/frame-write=partial-write:p=0.25:frac=0.3; registry/publish-rename=error:count=1:after=2 ;comm/accept=delay:delay=5ms;x=panic;y=conn-reset")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Policy{
		"comm/frame-write":        {Kind: PartialWrite, Prob: 0.25, Frac: 0.3},
		"registry/publish-rename": {Kind: Error, Count: 1, After: 2},
		"comm/accept":             {Kind: Delay, Delay: 5 * time.Millisecond},
		"x":                       {Kind: Panic},
		"y":                       {Kind: ConnReset},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(want))
	}
	for site, p := range want {
		if got[site] != p {
			t.Errorf("site %s: got %+v, want %+v", site, got[site], p)
		}
	}
}

func TestParseSpecDefaultDelay(t *testing.T) {
	got, err := ParseSpec("a=delay")
	if err != nil {
		t.Fatal(err)
	}
	if got["a"].Delay != 10*time.Millisecond {
		t.Fatalf("bare delay kind got %v, want 10ms default", got["a"].Delay)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for spec, wantSub := range map[string]string{
		"":                 "empty spec",
		";;":               "empty spec",
		"noequals":         "want site=kind",
		"=error":           "want site=kind",
		"a=frobnicate":     "unknown kind",
		"a=error:p":        "want key=value",
		"a=error:p=2":      "outside [0,1]",
		"a=error:p=x":      "option",
		"a=error:count=x":  "option",
		"a=error:after=x":  "option",
		"a=delay:delay=x":  "option",
		"a=error:frac=1.5": "outside (0,1)",
		"a=error:frac=x":   "option",
		"a=error:bogus=1":  "unknown option",
		"a=error;a=panic":  "specified twice",
	} {
		_, err := ParseSpec(spec)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", spec, err, wantSub)
		}
	}
}

func TestEnableSpecDeferred(t *testing.T) {
	DisableAll()
	defer DisableAll()
	New("test/spec-known")
	enabled, deferred, err := EnableSpec("test/spec-known=error;test/spec-unknown=error")
	if err != nil {
		t.Fatal(err)
	}
	if len(enabled) != 1 || enabled[0] != "test/spec-known" {
		t.Fatalf("enabled = %v", enabled)
	}
	if len(deferred) != 1 || deferred[0] != "test/spec-unknown" {
		t.Fatalf("deferred = %v", deferred)
	}
	if err := New("test/spec-known").Inject(); err == nil {
		t.Fatal("spec did not arm the known site")
	}
}

func TestEnableFromEnv(t *testing.T) {
	DisableAll()
	defer DisableAll()
	t.Setenv(EnvVar, "test/env-site=error:count=1")
	t.Setenv(EnvSeedVar, "99")
	enabled, deferred, err := EnableFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(enabled) != 0 || len(deferred) != 1 {
		t.Fatalf("enabled=%v deferred=%v, want the unregistered site deferred", enabled, deferred)
	}
	if err := New("test/env-site").Inject(); err == nil {
		t.Fatal("env spec did not arm the site")
	}

	t.Setenv(EnvVar, "")
	if e, d, err := EnableFromEnv(); err != nil || e != nil || d != nil {
		t.Fatalf("unset env: got %v %v %v, want all nil", e, d, err)
	}

	t.Setenv(EnvVar, "a=error")
	t.Setenv(EnvSeedVar, "notanumber")
	if _, _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}

	t.Setenv(EnvSeedVar, "")
	t.Setenv(EnvVar, "bad spec here")
	if _, _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad spec accepted")
	}
}
