package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/split"
	"ensembler/internal/tensor"
)

func tinyArch() split.Arch {
	return split.Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

func tinyData(seed int64) *data.Dataset {
	sp := data.Generate(data.Config{Kind: data.CIFAR10Like, H: 8, W: 8, Train: 160, Aux: 16, Test: 16, Seed: seed})
	ds := sp.Train
	out := &data.Dataset{Name: ds.Name, Images: ds.Images, Labels: make([]int, ds.Len()), Classes: 4}
	for i, l := range ds.Labels {
		out.Labels[i] = l % 4
	}
	return out
}

func tinyConfig(seed int64) Config {
	return Config{
		Arch: tinyArch(), N: 3, P: 2, Sigma: 0.1, Lambda: 0.5, Seed: seed,
		Stage1:      split.TrainOptions{Epochs: 3, BatchSize: 16, LR: 0.05},
		Stage3:      split.TrainOptions{Epochs: 5, BatchSize: 16, LR: 0.05},
		Stage1Noise: true,
	}
}

func TestSelectorProperties(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%8) + 2
		p := int(pRaw)%n + 1
		s := NewSelector(n, p, rng.New(seed))
		if len(s.Indices) != p {
			return false
		}
		// Ascending and in range.
		prev := -1
		for _, i := range s.Indices {
			if i <= prev || i >= n {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectorDeterministicPerSeed(t *testing.T) {
	a := NewSelector(10, 4, rng.New(3))
	b := NewSelector(10, 4, rng.New(3))
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("same seed must give same secret selection")
		}
	}
}

func TestFixedSelectorValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate index")
		}
	}()
	FixedSelector(5, []int{1, 1})
}

func TestSelectorApplyScalesAndConcats(t *testing.T) {
	s := FixedSelector(3, []int{0, 2})
	f0 := tensor.FromSlice([]float64{2, 4}, 1, 2)
	f1 := tensor.FromSlice([]float64{9, 9}, 1, 2)
	f2 := tensor.FromSlice([]float64{6, 8}, 1, 2)
	out := s.Apply([]*tensor.Tensor{f0, f1, f2})
	want := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4) // S_i = 1/P = 1/2
	if !out.AllClose(want, 1e-12) {
		t.Errorf("Apply = %v, want %v", out.Data, want.Data)
	}
}

// Property: SplitGrad is the adjoint of ApplySelected — for any features f
// and gradient g, <ApplySelected(f), g> == Σ_i <f_i, SplitGrad(g)_i>.
func TestSelectorAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		s := FixedSelector(4, []int{1, 3})
		d := 5
		feats := []*tensor.Tensor{tensor.New(2, d), tensor.New(2, d)}
		for _, ft := range feats {
			r.FillNormal(ft.Data, 0, 1)
		}
		cat := s.ApplySelected(feats)
		g := tensor.New(cat.Shape...)
		r.FillNormal(g.Data, 0, 1)
		lhs := cat.Dot(g)
		parts := s.SplitGrad(g, d)
		rhs := 0.0
		for i, p := range parts {
			rhs += feats[i].Dot(p)
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubsetCount(t *testing.T) {
	if SubsetCount(3) != 7 {
		t.Errorf("SubsetCount(3) = %v", SubsetCount(3))
	}
	if SubsetCount(10) != 1023 {
		t.Errorf("SubsetCount(10) = %v", SubsetCount(10))
	}
}

func TestMaxCosineRegularizerGradient(t *testing.T) {
	// Numeric check of the Eq. 3 regularizer's gradient w.r.t. the new
	// head's output.
	a := tinyArch()
	r := rng.New(21)
	heads := []*split.Model{
		split.NewModel("m0", a, 0.1, 0, 0, rng.New(22)),
		split.NewModel("m1", a, 0.1, 0, 0, rng.New(23)),
	}
	x := tensor.New(2, 3, 8, 8)
	r.FillNormal(x.Data, 0, 1)
	headOut := tensor.New(2, 4, 8, 8)
	r.FillNormal(headOut.Data, 0, 1)

	regHeads := []*nn.Network{heads[0].Head, heads[1].Head}
	_, grad := maxCosineRegularizer(headOut, x, regHeads)
	const eps = 1e-6
	for _, idx := range []int{0, 77, 200} {
		old := headOut.Data[idx]
		headOut.Data[idx] = old + eps
		vp, _ := maxCosineRegularizer(headOut, x, regHeads)
		headOut.Data[idx] = old - eps
		vm, _ := maxCosineRegularizer(headOut, x, regHeads)
		headOut.Data[idx] = old
		num := (vp - vm) / (2 * eps)
		if math.Abs(num-grad.Data[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("reg grad[%d]: numeric %v vs analytic %v", idx, num, grad.Data[idx])
		}
	}
}

func TestTrainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(31)
	e := Train(tinyConfig(1), train, nil)

	if len(e.Members) != 3 || e.Selector.P != 2 {
		t.Fatal("wrong ensemble structure")
	}
	// End-to-end accuracy above chance on the training set.
	if acc := e.Accuracy(train); acc < 0.4 {
		t.Errorf("ensemble train accuracy = %.3f, expected above chance 0.25", acc)
	}

	// The secret head must differ from every stage-1 head: cosine similarity
	// of feature maps bounded away from 1.
	x, _ := train.Batch([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for i, c := range e.HeadCosines(x) {
		if c > 0.95 {
			t.Errorf("head cosine vs member %d = %.3f, regularizer should keep it below 0.95", i, c)
		}
	}
}

func TestStage1HeadsAreDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(32)
	e := Train(tinyConfig(2), train, nil)
	x, _ := train.Batch([]int{0, 1, 2, 3})
	// Pairwise cosine between stage-1 heads' outputs should not be ~1:
	// the per-member fixed noises force distinct heads (paper Stage 1 claim).
	for i := 0; i < len(e.Members); i++ {
		for j := i + 1; j < len(e.Members); j++ {
			a := e.Members[i].Head.Forward(x, false)
			b := e.Members[j].Head.Forward(x, false)
			cos := 0.0
			for s := 0; s < x.Shape[0]; s++ {
				cos += cosine(a.SampleView(s).Data, b.SampleView(s).Data)
			}
			cos /= float64(x.Shape[0])
			if cos > 0.98 {
				t.Errorf("members %d,%d head cosine %.3f — heads not distinct", i, j, cos)
			}
		}
	}
}

func TestServerComputeReturnsAllN(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	train := tinyData(33)
	cfg := tinyConfig(3)
	cfg.Stage1.Epochs = 1
	cfg.Stage3.Epochs = 1
	e := Train(cfg, train, nil)
	x, _ := train.Batch([]int{0, 1})
	feats := e.ServerCompute(e.ClientFeatures(x))
	if len(feats) != cfg.N {
		t.Fatalf("server must compute all %d bodies, got %d", cfg.N, len(feats))
	}
	for _, f := range feats {
		if f.Shape[0] != 2 || f.Shape[1] != cfg.Arch.FeatureDim() {
			t.Fatalf("body feature shape %v", f.Shape)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for P > N")
		}
	}()
	cfg := tinyConfig(4)
	cfg.P = 5
	Train(cfg, tinyData(34), nil)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(data.CIFAR10Like, 1)
	if cfg.N != 10 || cfg.Sigma != 0.1 {
		t.Errorf("default config N=%d sigma=%v, paper uses N=10 sigma=0.1", cfg.N, cfg.Sigma)
	}
}

// TestServerComputeWithMatchesServerCompute pins the scratch-backed serial
// server pass against the goroutine fan-out form, bit for bit, and asserts
// its warmed steady state allocates nothing.
func TestServerComputeWithMatchesServerCompute(t *testing.T) {
	e := New(tinyConfig(91))
	x := tensor.New(2, e.Cfg.Arch.HeadC, e.Cfg.Arch.H, e.Cfg.Arch.W)
	rng.New(92).FillNormal(x.Data, 0, 1)

	want := e.ServerCompute(x)
	bs := e.NewBodyScratch()
	got := e.ServerComputeWith(x, bs)
	if len(got) != len(want) {
		t.Fatalf("scratch pass computed %d bodies, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].AllClose(want[i], 0) {
			t.Errorf("body %d diverges between ServerCompute and ServerComputeWith", i)
		}
	}
	// Results stay valid until the NEXT call, then the buffers recycle.
	if allocs := testing.AllocsPerRun(10, func() {
		e.ServerComputeWith(x, bs)
	}); allocs != 0 {
		t.Errorf("warmed ServerComputeWith allocates %v times per pass, want 0", allocs)
	}
}
