package split

import (
	"testing"

	"ensembler/internal/data"
	"ensembler/internal/nn"
	"ensembler/internal/rng"
	"ensembler/internal/tensor"
)

// tinyArch is a fast architecture for unit tests.
func tinyArch() Arch {
	return Arch{InC: 3, H: 8, W: 8, HeadC: 4, BlockWidths: []int{8, 16}, Classes: 4, UseMaxPool: true}
}

func tinyData(seed int64) *data.Splits {
	return data.Generate(data.Config{
		Kind: data.CIFAR10Like, H: 8, W: 8, Train: 192, Aux: 32, Test: 64, Seed: seed,
	})
}

// tinyArch has 4 classes but the cifar10-like generator emits 10; remap
// labels into the arch's class count for the smoke tests.
func remap(ds *data.Dataset, classes int) *data.Dataset {
	out := &data.Dataset{Name: ds.Name, Images: ds.Images, Labels: make([]int, ds.Len()), Classes: classes}
	for i, l := range ds.Labels {
		out.Labels[i] = l % classes
	}
	return out
}

func TestDefaultArchPerKind(t *testing.T) {
	a10 := DefaultArch(data.CIFAR10Like)
	if !a10.UseMaxPool {
		t.Error("cifar10-like arch should keep MaxPool (paper §IV-A)")
	}
	a100 := DefaultArch(data.CIFAR100Like)
	if a100.UseMaxPool {
		t.Error("cifar100-like arch should drop MaxPool (paper §IV-A)")
	}
	if a100.Classes != 20 || a10.Classes != 10 {
		t.Error("class counts wrong")
	}
	if a10.FeatureDim() != 32 {
		t.Errorf("feature dim = %d", a10.FeatureDim())
	}
}

func TestHeadIsSingleConv(t *testing.T) {
	// The paper's strictest setting: h=1, the client holds one conv layer.
	head := tinyArch().NewHead("h", rng.New(1))
	if len(head.Layers) != 1 {
		t.Fatalf("head has %d layers, want 1", len(head.Layers))
	}
	if _, ok := head.Layers[0].(*nn.Conv2D); !ok {
		t.Fatal("head layer must be a convolution")
	}
}

func TestTailIsSingleFC(t *testing.T) {
	tail := tinyArch().NewTail("t", 1, 0, rng.New(2))
	if len(tail.Layers) != 1 {
		t.Fatalf("tail has %d layers, want 1", len(tail.Layers))
	}
	if _, ok := tail.Layers[0].(*nn.Linear); !ok {
		t.Fatal("tail layer must be fully connected")
	}
}

func TestTailDropoutVariant(t *testing.T) {
	tail := tinyArch().NewTail("t", 1, 0.5, rng.New(3))
	if len(tail.Layers) != 2 {
		t.Fatalf("DR tail has %d layers, want dropout+fc", len(tail.Layers))
	}
	if _, ok := tail.Layers[0].(*nn.Dropout); !ok {
		t.Fatal("first DR tail layer must be dropout")
	}
}

func TestModelShapes(t *testing.T) {
	a := tinyArch()
	m := NewModel("m", a, 0.1, nn.NoiseFixed, 0, rng.New(4))
	x := tensor.New(2, 3, 8, 8)
	f := m.ClientFeatures(x, false)
	c, h, w := a.HeadOutShape()
	want := []int{2, c, h, w}
	for i, d := range want {
		if f.Shape[i] != d {
			t.Fatalf("features shape %v, want %v", f.Shape, want)
		}
	}
	logits := m.Forward(x, false)
	if logits.Shape[0] != 2 || logits.Shape[1] != a.Classes {
		t.Fatalf("logits shape %v", logits.Shape)
	}
}

func TestNoiseChangesFeaturesButIsFixed(t *testing.T) {
	a := tinyArch()
	r := rng.New(5)
	m := NewModel("m", a, 0.3, nn.NoiseFixed, 0, r)
	bare := NewModel("bare", a, 0, nn.NoiseFixed, 0, rng.New(5))
	if bare.Noise != nil {
		t.Fatal("sigma=0 must omit the noise layer")
	}
	x := tensor.New(1, 3, 8, 8)
	f1 := m.ClientFeatures(x, false)
	f2 := m.ClientFeatures(x, false)
	if !f1.AllClose(f2, 0) {
		t.Error("fixed noise must be deterministic across calls")
	}
	h := m.Head.Forward(x, false)
	if f1.AllClose(h, 1e-9) {
		t.Error("noise must actually perturb the features")
	}
}

func TestTrainImprovesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	a := tinyArch()
	sp := tinyData(10)
	train := remap(sp.Train, a.Classes)
	test := remap(sp.Test, a.Classes)
	m := NewModel("m", a, 0.1, nn.NoiseFixed, 0, rng.New(6))
	before := Evaluate(m, test)
	Train(m, train, TrainOptions{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 1})
	after := Evaluate(m, test)
	if after <= before {
		t.Errorf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
	// 8×8 images with heavy per-sample jitter are genuinely hard; the bar
	// is "clearly above chance" (chance = 0.25 with 4 classes).
	if after < 0.4 {
		t.Errorf("accuracy after training = %.3f, expected well above chance (0.25)", after)
	}
}

func TestEvaluateFnBatches(t *testing.T) {
	sp := tinyData(11)
	ds := remap(sp.Test, 4)
	// A "classifier" that always predicts the true label via closure lookup
	// must score 1.0 — validates batching/bookkeeping.
	cursor := 0
	acc := EvaluateFn(ds, func(x *tensor.Tensor) *tensor.Tensor {
		n := x.Shape[0]
		out := tensor.New(n, 4)
		for i := 0; i < n; i++ {
			out.Set(1, i, ds.Labels[cursor+i])
		}
		cursor += n
		return out
	})
	if acc != 1 {
		t.Errorf("oracle accuracy = %v", acc)
	}
}

func TestBackwardReturnsImageGradient(t *testing.T) {
	a := tinyArch()
	m := NewModel("m", a, 0.1, nn.NoiseFixed, 0, rng.New(7))
	x := tensor.New(2, 3, 8, 8)
	rng.New(8).FillNormal(x.Data, 0, 1)
	logits := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(logits, []int{0, 1})
	gx := m.Backward(grad)
	if !gx.SameShape(x) {
		t.Fatalf("input gradient shape %v", gx.Shape)
	}
	if gx.L2Norm() == 0 {
		t.Error("input gradient must be nonzero (MIA needs it)")
	}
}
