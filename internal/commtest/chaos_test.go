package commtest_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ensembler/internal/commtest"
	"ensembler/internal/faultpoint"
	"ensembler/internal/registry"
	"ensembler/internal/rng"
	"ensembler/internal/shard"
	"ensembler/internal/tensor"
)

// chaosSeed fixes the whole storm: the schedule (which site, which policy,
// in what order) and every per-site trigger stream derive from it.
const chaosSeed = 20250807

// TestChaosFleetUnderSeededFaultSchedule is the chaos e2e: a 3-shard fleet
// takes concurrent traffic while a seeded schedule flips wire-layer and
// shard-layer faults. The invariants are the robustness contract, not "no
// errors":
//
//   - zero bit-inexact admitted responses — a fault may fail a request but
//     must never corrupt one;
//   - a bounded error budget — the redundant ensemble plus retries keep a
//     healthy fraction of requests succeeding through the storm;
//   - clean convergence — once every fault disarms, service returns to
//     bit-exact successes (breakers close, pools redial);
//   - no goroutine leaks after teardown.
func TestChaosFleetUnderSeededFaultSchedule(t *testing.T) {
	commtest.LeakCheck(t) // registered first → checked last, after fleet teardown
	defer faultpoint.DisableAll()

	f := commtest.StartShards(t, 3, 4, 2, 91)
	cfg := f.ClientConfig()
	cfg.Retries = 2
	cfg.DownAfter = 3
	cfg.BreakerBackoff = 10 * time.Millisecond
	cfg.BreakerMaxBackoff = 50 * time.Millisecond
	cfg.BreakerSeed = chaosSeed
	c, err := shard.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	arch := commtest.TinyArch()
	x := tensor.New(2, arch.InC, arch.H, arch.W)
	rng.New(chaosSeed).FillNormal(x.Data, 0, 1)
	want := f.Pipeline.Predict(x)

	traffic := func(int) error {
		logits, _, err := c.Infer(context.Background(), x)
		if err != nil {
			return err
		}
		if !logits.AllClose(want, 1e-9) {
			return commtest.ErrChaosMismatch
		}
		return nil
	}

	mild := func(p float64, kind faultpoint.Kind) faultpoint.Policy {
		return faultpoint.Policy{Kind: kind, Prob: p}
	}
	report := commtest.RunChaos(commtest.ChaosConfig{
		Seed:     chaosSeed,
		Workers:  4,
		Flips:    40,
		FlipGap:  5 * time.Millisecond,
		MaxArmed: 2,
		Sites: []commtest.ChaosSite{
			{Name: "comm/frame-write", Policies: []faultpoint.Policy{
				mild(0.4, faultpoint.ConnReset),
				{Kind: faultpoint.PartialWrite, Prob: 0.4, Frac: 0.5},
				{Kind: faultpoint.Delay, Prob: 0.5, Delay: 2 * time.Millisecond},
			}},
			{Name: "comm/frame-read", Policies: []faultpoint.Policy{mild(0.4, faultpoint.Error)}},
			{Name: "comm/dial", Policies: []faultpoint.Policy{mild(0.5, faultpoint.Error)}},
			{Name: "shard/exchange/0", Policies: []faultpoint.Policy{
				mild(0.5, faultpoint.Error),
				{Kind: faultpoint.Delay, Prob: 0.5, Delay: 2 * time.Millisecond},
			}},
			{Name: "shard/exchange/1", Policies: []faultpoint.Policy{mild(0.5, faultpoint.Error)}},
			{Name: "shard/exchange/2", Policies: []faultpoint.Policy{mild(0.5, faultpoint.Error)}},
		},
	}, traffic)

	t.Logf("chaos: %d requests, %d errors, %d mismatches, %d flips, %d faults fired %v, recovered in %v, armed %v",
		report.Requests, report.Errors, report.Mismatches, report.Flips,
		report.TotalTriggers(), report.Triggers, report.RecoverIn, report.Armed)

	if report.Mismatches != 0 {
		t.Fatalf("%d admitted responses were bit-inexact — faults must fail requests, never corrupt them", report.Mismatches)
	}
	if report.Flips != 40 {
		t.Fatalf("schedule executed %d flips, want 40", report.Flips)
	}
	if report.Requests == 0 {
		t.Fatal("no traffic flowed during the storm")
	}
	if report.TotalTriggers() == 0 {
		t.Fatal("the storm never fired a fault — the schedule proved nothing")
	}
	// The error budget: the redundant ensemble plus retries must carry at
	// least a tenth of the traffic through the storm (in practice far more;
	// the floor is deliberately loose so scheduling variance can't flake it).
	if ok := report.Requests - report.Errors; ok*10 < report.Requests {
		t.Fatalf("error budget blown: only %d/%d requests succeeded under chaos", ok, report.Requests)
	}
	if !report.Recovered {
		t.Fatal("service never converged back to clean bit-exact responses after the storm")
	}
}

// TestChaosRegistryTornPublishes storms the registry's durability path: a
// seeded loop of publishes races probabilistic crash faults at the manifest
// fsync and the final rename. The integrity contract: a fresh Open always
// succeeds, the latest loadable version is exactly the last publish that
// reported success (bit-for-bit), every torn publish lands in quarantine,
// and the quarantine area stays bounded.
func TestChaosRegistryTornPublishes(t *testing.T) {
	commtest.LeakCheck(t)
	defer faultpoint.DisableAll()

	dir := t.TempDir()
	s, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.SetSeed(chaosSeed)
	faultpoint.Enable("registry/publish-rename", faultpoint.Policy{Kind: faultpoint.Error, Prob: 0.3})
	faultpoint.Enable("registry/manifest-fsync", faultpoint.Policy{Kind: faultpoint.Error, Prob: 0.3})

	arch := commtest.TinyArch()
	x := tensor.New(2, arch.InC, arch.H, arch.W)
	rng.New(chaosSeed+1).FillNormal(x.Data, 0, 1)

	var lastGoodSeed int64
	torn, published := 0, 0
	for i := 0; i < 20; i++ {
		seed := int64(100 + i)
		_, err := s.Publish("m", commtest.Pipeline(arch, 3, 2, seed))
		switch {
		case err == nil:
			published++
			lastGoodSeed = seed
		case errors.Is(err, faultpoint.ErrInjected):
			torn++
		default:
			t.Fatalf("publish %d failed outside the injected fault: %v", i, err)
		}
	}
	faultpoint.DisableAll()
	if torn == 0 || published == 0 {
		t.Fatalf("degenerate storm: %d torn, %d published — the seed must exercise both paths", torn, published)
	}

	s2, err := registry.Open(dir)
	if err != nil {
		t.Fatalf("store failed to open after %d torn publishes: %v", torn, err)
	}
	if got := len(s2.Quarantined()); got != torn {
		t.Fatalf("sweep quarantined %d torn publishes, want %d", got, torn)
	}
	entries, err := os.ReadDir(filepath.Join(dir, ".quarantine", "m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 8 {
		t.Fatalf("quarantine area grew to %d entries, want ≤ 8", len(entries))
	}
	loaded, v, err := s2.Load("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if int(v) != published {
		t.Fatalf("latest version %d, want %d (one per successful publish)", v, published)
	}
	wantPipeline := commtest.Pipeline(arch, 3, 2, lastGoodSeed)
	if !loaded.Predict(x).AllClose(wantPipeline.Predict(x), 1e-12) {
		t.Fatal("latest version is not the last successfully published pipeline")
	}
	models, err := s2.Models()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if strings.HasPrefix(m, ".") {
			t.Fatalf("internal entry %q leaked into Models()", m)
		}
	}
}
