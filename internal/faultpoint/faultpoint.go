// Package faultpoint is a deterministic fault-injection registry: named
// sites compiled into production code paths at trust boundaries (accept,
// negotiation, frame I/O, dispatch intake, budget charge, registry publish,
// shard exchange), armed only by tests, the chaos harness, or an operator
// who explicitly opted in (ensembler-serve refuses ENSEMBLER_FAULTPOINTS
// without -allow-faultpoints).
//
// The design constraint is the serving hot path: a disabled site must cost
// one atomic load and a predicted branch — 0 allocations, ~1ns — so sites
// can live inside loops that are CI-pinned at 0 allocs/op
// (BenchmarkServeRequestLoopFaultpointsDisabled gates exactly this). The
// fast path therefore checks a single package-global atomic.Bool that is
// true iff ANY site is armed; per-site state is consulted only behind it.
//
// Determinism: every armed site draws its trigger decisions from its own
// rng stream, seeded as masterSeed ^ fnv64(siteName). Re-arming a site
// resets its stream and counters, so a fixed (seed, policy, hit sequence)
// always yields the same fault sequence — the property the chaos harness
// needs to replay a failure from its logged seed.
package faultpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ensembler/internal/rng"
)

// Kind is the failure a triggered site injects.
type Kind uint8

const (
	// Error makes the site return an injected error.
	Error Kind = iota
	// Panic makes the site panic (exercises recover paths).
	Panic
	// Delay makes the site sleep before proceeding normally.
	Delay
	// PartialWrite instructs a write-capable site to emit only a fraction
	// of the payload before failing — a torn frame. Sites that cannot cut a
	// write treat it as Error.
	PartialWrite
	// ConnReset instructs a connection-owning site to cut the payload and
	// abruptly close the underlying connection mid-frame. Sites without a
	// connection treat it as Error.
	ConnReset
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case PartialWrite:
		return "partial-write"
	case ConnReset:
		return "conn-reset"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the default error an Error/PartialWrite/ConnReset trigger
// returns; call sites and tests match it with errors.Is.
var ErrInjected = errors.New("faultpoint: injected fault")

// Policy says when a site triggers and what it does. The zero value is a
// always-trigger Error policy.
type Policy struct {
	Kind Kind
	// Err overrides the injected error (default ErrInjected, wrapped with
	// the site name).
	Err error
	// Delay is the sleep for Kind Delay.
	Delay time.Duration
	// Frac is the fraction of the payload a PartialWrite/ConnReset site
	// emits before cutting, clamped to [0,1); 0 means half.
	Frac float64
	// Prob is the per-hit trigger probability; 0 or ≥1 means always.
	Prob float64
	// After skips the first After hits before triggering starts.
	After int
	// Count caps the number of triggers; 0 means unlimited.
	Count int
}

// Outcome is one triggered fault, resolved against the policy defaults.
type Outcome struct {
	Kind  Kind
	Err   error
	Delay time.Duration
	Frac  float64
}

// Stats is one site's hit/trigger accounting since it was last armed.
type Stats struct {
	Name     string
	Armed    bool
	Hits     uint64
	Triggers uint64
}

// Site is one named injection point. Obtain via New at package init (or
// lazily for dynamic names like per-shard sites); arm via Enable.
type Site struct {
	name  string
	state atomic.Pointer[siteState]
	// hits/triggers survive disarming so Stats stays readable after a
	// chaos window closes; re-arming resets them.
	hits     atomic.Uint64
	triggers atomic.Uint64
}

type siteState struct {
	mu   sync.Mutex
	p    Policy
	r    *rng.RNG
	hits int
	done int // triggers consumed against p.Count
}

var (
	regMu   sync.Mutex
	sites   = map[string]*Site{}
	pending = map[string]Policy{} // Enable before New (dynamic sites)
	armed   int                   // number of armed sites
	seed    int64                 = 1

	// active is the global fast-path gate: true iff armed > 0. Every
	// disabled Fire/Inject is exactly one load of this plus a branch.
	active atomic.Bool
)

// fnv64 hashes a site name for seed derivation (FNV-1a).
func fnv64(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// New registers (or returns the existing) site with the given name. Safe at
// package init and from concurrent constructors; a policy Enabled before
// registration arms the new site immediately.
func New(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	sites[name] = s
	if p, ok := pending[name]; ok {
		// The pending entry already counted toward armed when Enabled;
		// transfer it to the live site without recounting.
		delete(pending, name)
		s.state.Store(&siteState{p: p, r: rng.New(seed ^ fnv64(name))})
	}
	return s
}

// Name reports the site's registered name.
func (s *Site) Name() string { return s.name }

// armLocked arms s with p; caller holds regMu.
func armLocked(s *Site, p Policy) {
	if s.state.Load() == nil {
		armed++
	}
	s.hits.Store(0)
	s.triggers.Store(0)
	s.state.Store(&siteState{p: p, r: rng.New(seed ^ fnv64(s.name))})
	active.Store(armed > 0)
}

// Enable arms the named site with p, resetting its counters and rng stream.
// An unknown name is stashed and applied when the site registers — dynamic
// sites (per-shard) may not exist yet when a chaos schedule is built.
func Enable(name string, p Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := sites[name]; ok {
		armLocked(s, p)
		return
	}
	pending[name] = p
	armed++ // pending policies count as armed: the site fires on creation
	active.Store(true)
}

// Disable disarms the named site (or drops its pending policy). Counters
// remain readable via SiteStats.
func Disable(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := sites[name]; ok {
		if s.state.Swap(nil) != nil {
			armed--
		}
	} else if _, ok := pending[name]; ok {
		delete(pending, name)
		armed--
	}
	active.Store(armed > 0)
}

// DisableAll disarms every site and clears pending policies — the test/
// chaos teardown that restores the zero-overhead state.
func DisableAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range sites {
		s.state.Store(nil)
	}
	pending = map[string]Policy{}
	armed = 0
	active.Store(false)
}

// SetSeed sets the master seed future Enable calls derive per-site streams
// from. It does not reseed already-armed sites.
func SetSeed(s int64) {
	regMu.Lock()
	defer regMu.Unlock()
	seed = s
}

// Enabled reports whether any site is armed — the same gate the fast path
// checks; callers wrap non-trivial injection plumbing (conn wrappers)
// behind it.
func Enabled() bool { return active.Load() }

// Active lists armed site names (pending ones included), sorted.
func Active() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var out []string
	for name, s := range sites {
		if s.state.Load() != nil {
			out = append(out, name)
		}
	}
	for name := range pending {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Names lists every registered site, sorted — the operator's menu.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SiteStats snapshots hit/trigger counters for every registered site,
// sorted by name.
func SiteStats() []Stats {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Stats, 0, len(sites))
	for name, s := range sites {
		out = append(out, Stats{
			Name:     name,
			Armed:    s.state.Load() != nil,
			Hits:     s.hits.Load(),
			Triggers: s.triggers.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetStats zeroes every site's hit/trigger counters (arming a site
// already resets its own). Harnesses that account triggers per run call it
// so the ledger starts from a clean slate.
func ResetStats() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range sites {
		s.hits.Store(0)
		s.triggers.Store(0)
	}
}

// Fire is the general site check: reports whether the site triggers on this
// hit and, if so, the resolved fault. The disabled cost is one atomic load
// and a branch — no allocation (the zero Outcome never escapes).
func (s *Site) Fire() (Outcome, bool) {
	if !active.Load() {
		return Outcome{}, false
	}
	return s.fireSlow()
}

// Inject is the one-line form for sites that can only fail, stall, or
// panic: it sleeps through Delay triggers itself and returns the injected
// error otherwise (PartialWrite/ConnReset degrade to Error here). Same
// disabled cost as Fire.
func (s *Site) Inject() error {
	if !active.Load() {
		return nil
	}
	out, ok := s.fireSlow()
	if !ok {
		return nil
	}
	if out.Kind == Delay {
		time.Sleep(out.Delay)
		return nil
	}
	return out.Err
}

func (s *Site) fireSlow() (Outcome, bool) {
	st := s.state.Load()
	if st == nil {
		return Outcome{}, false
	}
	st.mu.Lock()
	st.hits++
	s.hits.Add(1)
	trigger := st.hits > st.p.After &&
		(st.p.Count <= 0 || st.done < st.p.Count) &&
		(st.p.Prob <= 0 || st.p.Prob >= 1 || st.r.Float64() < st.p.Prob)
	if trigger {
		st.done++
	}
	p := st.p
	st.mu.Unlock()
	if !trigger {
		return Outcome{}, false
	}
	s.triggers.Add(1)
	out := Outcome{Kind: p.Kind, Err: p.Err, Delay: p.Delay, Frac: p.Frac}
	if out.Err == nil {
		out.Err = fmt.Errorf("%w at %s", ErrInjected, s.name)
	}
	if out.Frac <= 0 || out.Frac >= 1 {
		out.Frac = 0.5
	}
	if p.Kind == Panic {
		panic(fmt.Sprintf("faultpoint: injected panic at %s", s.name))
	}
	return out, true
}

// CutLen is the byte count a PartialWrite/ConnReset outcome lets through:
// Frac of the payload, at least 1 byte when the payload is non-empty (a
// 0-byte "partial" write is indistinguishable from a clean failure) and
// always short of the full length.
func (o Outcome) CutLen(n int) int {
	if n <= 0 {
		return 0
	}
	cut := int(float64(n) * o.Frac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return cut
}
