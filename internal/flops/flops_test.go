package flops

import (
	"math"
	"testing"
)

func TestResNet18Structure(t *testing.T) {
	s := ResNet18(32, 10, true)
	if s.HeadEnd == 0 || s.TailStart <= s.HeadEnd || s.TailStart >= len(s.Layers) {
		t.Fatalf("bad split markers: head=%d tail=%d len=%d", s.HeadEnd, s.TailStart, len(s.Layers))
	}
	// The paper's CIFAR-10 transmitted feature is [64,16,16] → 64 KiB of
	// float32 per image.
	if got := s.FeatureBytes(); got != 64*16*16*4 {
		t.Errorf("feature bytes = %v, want %v", got, 64*16*16*4)
	}
	if got := s.ServerReturnBytes(); got != 512*4 {
		t.Errorf("server return bytes = %v", got)
	}
}

func TestResNet18NoMaxPoolFeature(t *testing.T) {
	// CIFAR-100 variant (no max pool) transmits [64,32,32] — exactly the
	// paper's §IV-A statement that the intermediate grows to 64×32×32.
	s := ResNet18(32, 100, false)
	if got := s.FeatureBytes(); got != 64*32*32*4 {
		t.Errorf("feature bytes = %v, want %v", got, 64*32*32*4)
	}
}

func TestHeadIsSmallFractionOfTotal(t *testing.T) {
	s := ResNet18(32, 10, true)
	frac := s.HeadFLOPs() / s.TotalFLOPs()
	// The premise of collaborative inference: the client's share is tiny.
	if frac > 0.05 {
		t.Errorf("head fraction = %.3f, expected < 5%%", frac)
	}
	if s.TailFLOPs() >= s.HeadFLOPs() {
		t.Error("the FC tail should be cheaper than the conv head")
	}
}

func TestSegmentsSumToTotal(t *testing.T) {
	for _, pool := range []bool{true, false} {
		s := ResNet18(32, 10, pool)
		sum := s.HeadFLOPs() + s.BodyFLOPs() + s.TailFLOPs()
		if math.Abs(sum-s.TotalFLOPs()) > 1 {
			t.Errorf("pool=%v segments %.0f != total %.0f", pool, sum, s.TotalFLOPs())
		}
	}
}

func TestConvFLOPsKnownValue(t *testing.T) {
	s := &Spec{}
	// 3×3 conv, 3→64 channels, 32×32 output: 2·27·64·1024 MACs + bias.
	s.conv("c", 3, 64, 3, 1, 1, 32, 32, true)
	want := 2*27.0*64*1024 + 64*1024
	if got := s.Layers[0].FLOPs; math.Abs(got-want) > 1 {
		t.Errorf("conv FLOPs = %v, want %v", got, want)
	}
}

func TestLargerInputCostsMore(t *testing.T) {
	small := ResNet18(32, 10, true).TotalFLOPs()
	big := ResNet18(64, 10, true).TotalFLOPs()
	if big <= small {
		t.Error("64px network must cost more than 32px")
	}
}

func TestResNet18TotalMagnitude(t *testing.T) {
	// Sanity: the 32px CIFAR ResNet-18 with stem pool should be a few
	// hundred MFLOPs per image.
	total := ResNet18(32, 10, true).TotalFLOPs()
	if total < 1e8 || total > 1e9 {
		t.Errorf("total FLOPs %.3g outside plausible range", total)
	}
}
