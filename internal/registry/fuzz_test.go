package registry

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzManifestRead holds parseManifest to its decode-boundary contract:
// manifests are operator-editable JSON, and whatever is in the file, the
// parser must return a validated manifest or an error — never panic, and
// never accept a manifest whose fields later code cannot rely on.
func FuzzManifestRead(f *testing.F) {
	marshal := func(m Manifest) []byte {
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	valid := Manifest{
		Format: ManifestFormat, Model: "m", Version: 1,
		SHA256:    strings.Repeat("ab", 32),
		SizeBytes: 128, PipelineFormat: 2, N: 4, P: 2,
	}
	f.Add(marshal(valid))
	sharded := valid
	sharded.Shards = 3
	sharded.ShardRanges = []ShardRange{{0, 2}, {2, 3}, {3, 4}}
	f.Add(marshal(sharded))
	f.Add([]byte("{}"))
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"format":1,"model":"m","version":1,"sha256":"xyz","n":-2,"p":0}`))
	f.Add([]byte(`{"format":1,"model":"../../etc","version":1}`))
	badShards := sharded
	badShards.ShardRanges = []ShardRange{{0, 4}, {1, 2}, {3, 4}}
	f.Add(marshal(badShards))

	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := parseManifest(data, "m", 1)
		if err != nil {
			if man != nil {
				t.Fatal("parseManifest returned both a manifest and an error")
			}
			return
		}
		if man.Model != "m" || man.Version != 1 {
			t.Fatalf("accepted manifest for wrong identity: %+v", man)
		}
		if man.N <= 0 || man.P <= 0 || man.P > man.N {
			t.Fatalf("accepted invalid ensemble shape: %+v", man)
		}
		if man.Shards > 0 && len(man.ShardRanges) != man.Shards {
			t.Fatalf("accepted inconsistent shard plan: %+v", man)
		}
	})
}
